//! Time-driven chaos engine: scheduled, recoverable fault injection into a
//! running replay.
//!
//! The static [`crate::failures::drill`] answers "does the backup capacity
//! cover the steady state *during* a failure?" — but never re-homes a call
//! mid-flight and never lets a fault recover. This module closes that gap: a
//! [`FaultTimeline`] schedules faults (`DcDown`, `LinkDown`, `LinkFlap`,
//! `CapacityDegraded`, `PlanStale`) over absolute minutes, and
//! [`ReplayDriver`] drives a trace through the real-time selector while the
//! fault state evolves:
//!
//! * at every fault transition the routing table and latency map are
//!   recomputed under the composed [`FailureMask`] and pushed into the
//!   selector ([`RealtimeSelector::update_topology`]);
//! * in-flight calls hosted at a failed DC are re-homed down the selector's
//!   degradation ladder (plan → locality → any-reachable) and counted as
//!   *forced* migrations — distinct from the §6.4 plan migrations;
//! * per-window stranded/violation/ACL stats are accumulated and emitted
//!   through `sb-obs` (`chaos.*` counters and the `chaos.windows` table).
//!
//! The default drive is the serial oracle. [`ReplayDriver::threads`] drives
//! the same engine across worker threads with **no intra-segment barriers**:
//! fault transitions and plan installs bound the fault-free segments, and
//! within a segment every record's whole lifecycle (start → freeze → end) is
//! pinned to one worker by its quota pool
//! (`lifecycle_worker` in `replay`), so per-call event order and
//! per-pool freeze order — the only orders quota debits are sensitive to —
//! are preserved without synchronization. All bookkeeping — interval
//! flushes, re-homes, window stats — happens on the coordinating thread in
//! exact trace order, so the aggregate [`ChaosStats`] comes out identical to
//! the serial run, floats included.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, OnceLock};

use sb_core::{
    FreezeDecision, LatencyMap, PlanArtifact, PlanDelta, PlannedQuotas, RealtimeSelector,
    SelectorOutcome, SelectorStats,
};
use sb_net::{
    DcId, FailureMask, FailureScenario, LinkId, ProvisionedCapacity, RoutingTable, Topology,
};
use sb_obs::{Counter, Histogram, Table, Value};
use sb_workload::joins::CONFIG_FREEZE_SECONDS;
use sb_workload::{CallRecord, CallRecordsDb, ConfigCatalog};

use crate::crash::ServiceFault;
use crate::replay::{build_events, lifecycle_worker, EV_FREEZE, EV_START};

/// Columns of the `chaos.windows` table: one row per stats window.
pub const CHAOS_WINDOW_COLUMNS: [&str; 11] = [
    "window_start_min",
    "calls_started",
    "plan_migrations",
    "forced_migrations",
    "stranded",
    "violations",
    "down_dcs",
    "down_links",
    "plan_installs",
    "plan_stale_freezes",
    "mean_acl_ms",
];

struct ChaosMetrics {
    runs: Counter,
    forced_migrations: Counter,
    stranded: Counter,
    violations: Counter,
    wall_ns: Histogram,
    windows: Table,
}

fn chaos_metrics() -> &'static ChaosMetrics {
    static METRICS: OnceLock<ChaosMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = sb_obs::global();
        ChaosMetrics {
            runs: reg.counter("chaos.runs"),
            forced_migrations: reg.counter("chaos.forced_migrations"),
            stranded: reg.counter("chaos.stranded"),
            violations: reg.counter("chaos.capacity_violations"),
            wall_ns: reg.histogram("chaos.wall_ns"),
            windows: reg.table("chaos.windows", &CHAOS_WINDOW_COLUMNS),
        }
    })
}

/// One scheduled fault. All times are absolute trace minutes; `recover_at:
/// None` means the fault lasts to the end of the replay.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultEvent {
    /// A DC fails at `at` and (optionally) recovers at `recover_at`. Its
    /// links go down with it.
    DcDown {
        /// Failed DC.
        dc: DcId,
        /// Failure minute (inclusive).
        at: u64,
        /// Recovery minute (exclusive), `None` = never.
        recover_at: Option<u64>,
    },
    /// A WAN link fails and (optionally) recovers.
    LinkDown {
        /// Failed link.
        link: LinkId,
        /// Failure minute (inclusive).
        at: u64,
        /// Recovery minute (exclusive), `None` = never.
        recover_at: Option<u64>,
    },
    /// A link flaps: alternating `period_min`-minute down/up phases
    /// (starting down) within `[at, until)`.
    LinkFlap {
        /// Flapping link.
        link: LinkId,
        /// First down minute.
        at: u64,
        /// End of the flapping window (exclusive).
        until: u64,
        /// Length of each down/up phase in minutes (≥ 1).
        period_min: u64,
    },
    /// A DC keeps running but loses part of its compute (rolling reboot,
    /// thermal throttling): effective core capacity is multiplied by
    /// `fraction` while active.
    CapacityDegraded {
        /// Degraded DC.
        dc: DcId,
        /// Remaining capacity fraction in `[0, 1]`.
        fraction: f64,
        /// Degradation start minute (inclusive).
        at: u64,
        /// Recovery minute (exclusive), `None` = never.
        recover_at: Option<u64>,
    },
    /// The allocation plan stops being trustworthy (the controller that
    /// refreshes it is down): the selector's plan rung is disabled.
    ///
    /// With a [`Replanner`] attached, the plan is stale until the re-plan
    /// lands: an install at minute ≥ `from` restores the plan rung even
    /// inside `[from, until)`; `until` remains the fallback refresh minute
    /// for runs without a replanner.
    PlanStale {
        /// First stale minute (inclusive).
        from: u64,
        /// Minute the plan is refreshed (exclusive), `None` = never.
        until: Option<u64>,
    },
    /// The demand forecast the plan was built from drifts by `factor` from
    /// `at` onward. The trace itself is unchanged — what breaks is the
    /// *plan*: it is considered stale from `at` until a [`Replanner`]
    /// installs a replacement (there is no recovery minute; only a re-plan
    /// ends the drift). The active drift product is exposed to the
    /// replanner via [`ChaosState::demand_factor`] so its builder can
    /// re-solve against the drifted forecast.
    DemandDrift {
        /// First drifted minute (inclusive).
        at: u64,
        /// Multiplicative forecast error (> 0, finite; 1.0 = no drift).
        factor: f64,
    },
}

/// The composed fault state at one minute.
#[derive(Clone, Debug)]
pub struct ChaosState {
    /// Which DCs/links are down.
    pub mask: FailureMask,
    /// Effective per-DC core-capacity fraction (1.0 = healthy).
    pub core_fraction: Vec<f64>,
    /// Is the allocation plan trustworthy? (`false` during `PlanStale`
    /// windows and from any `DemandDrift` onward.)
    pub plan_valid: bool,
    /// Product of active `DemandDrift` factors (1.0 = no drift).
    pub demand_factor: f64,
    /// Latest onset minute among the active staleness events, if any — a
    /// plan installed at or after this minute supersedes the staleness.
    pub stale_since: Option<u64>,
}

/// A schedule of fault events, queryable per minute.
#[derive(Clone, Debug, Default)]
pub struct FaultTimeline {
    events: Vec<FaultEvent>,
}

impl FaultTimeline {
    /// Empty timeline (no faults: chaos replay degenerates to plain replay).
    pub fn new() -> FaultTimeline {
        FaultTimeline::default()
    }

    /// Add an event (builder style).
    pub fn with(mut self, ev: FaultEvent) -> FaultTimeline {
        self.push(ev);
        self
    }

    /// Add an event.
    pub fn push(&mut self, ev: FaultEvent) {
        if let FaultEvent::LinkFlap { period_min, .. } = &ev {
            assert!(*period_min >= 1, "flap period must be at least one minute");
        }
        if let FaultEvent::CapacityDegraded { fraction, .. } = &ev {
            assert!(
                (0.0..=1.0).contains(fraction),
                "capacity fraction must be within [0, 1]"
            );
        }
        if let FaultEvent::DemandDrift { factor, .. } = &ev {
            assert!(
                factor.is_finite() && *factor > 0.0,
                "drift factor must be finite and positive"
            );
        }
        self.events.push(ev);
    }

    /// The §5.3 single-fault timeline: `scenario` hits at `at` and recovers
    /// at `recover_at`.
    pub fn from_scenario(
        scenario: FailureScenario,
        at: u64,
        recover_at: Option<u64>,
    ) -> FaultTimeline {
        let mut t = FaultTimeline::new();
        match scenario {
            FailureScenario::None => {}
            FailureScenario::DcDown(dc) => t.push(FaultEvent::DcDown { dc, at, recover_at }),
            FailureScenario::LinkDown(link) => t.push(FaultEvent::LinkDown {
                link,
                at,
                recover_at,
            }),
        }
        t
    }

    /// Scheduled events.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// No faults at all?
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Minutes in `(t0, t1]` where the fault state may change, sorted and
    /// deduplicated. `t0` itself is always an implicit change point.
    pub fn change_points(&self, t0: u64, t1: u64) -> Vec<u64> {
        let mut points = Vec::new();
        let mut add = |m: u64| {
            if m > t0 && m <= t1 {
                points.push(m);
            }
        };
        for ev in &self.events {
            match *ev {
                FaultEvent::DcDown { at, recover_at, .. }
                | FaultEvent::LinkDown { at, recover_at, .. }
                | FaultEvent::CapacityDegraded { at, recover_at, .. } => {
                    add(at);
                    if let Some(r) = recover_at {
                        add(r);
                    }
                }
                FaultEvent::LinkFlap {
                    at,
                    until,
                    period_min,
                    ..
                } => {
                    let mut m = at;
                    while m < until {
                        add(m);
                        m += period_min;
                    }
                    add(until);
                }
                FaultEvent::PlanStale { from, until } => {
                    add(from);
                    if let Some(u) = until {
                        add(u);
                    }
                }
                FaultEvent::DemandDrift { at, .. } => add(at),
            }
        }
        points.sort_unstable();
        points.dedup();
        points
    }

    /// Compose the fault state active at `minute`.
    pub fn state_at(&self, topo: &Topology, minute: u64) -> ChaosState {
        let mut mask = FailureMask::healthy(topo);
        let mut core_fraction = vec![1.0f64; topo.dcs.len()];
        let mut plan_valid = true;
        let mut demand_factor = 1.0f64;
        let mut stale_since: Option<u64> = None;
        let active = |at: u64, recover: Option<u64>| -> bool {
            minute >= at && recover.is_none_or(|r| minute < r)
        };
        for ev in &self.events {
            match *ev {
                FaultEvent::DcDown { dc, at, recover_at } => {
                    if active(at, recover_at) {
                        mask.set_dc(dc, true);
                    }
                }
                FaultEvent::LinkDown {
                    link,
                    at,
                    recover_at,
                } => {
                    if active(at, recover_at) {
                        mask.set_link(link, true);
                    }
                }
                FaultEvent::LinkFlap {
                    link,
                    at,
                    until,
                    period_min,
                } => {
                    if minute >= at
                        && minute < until
                        && ((minute - at) / period_min).is_multiple_of(2)
                    {
                        mask.set_link(link, true);
                    }
                }
                FaultEvent::CapacityDegraded {
                    dc,
                    fraction,
                    at,
                    recover_at,
                } => {
                    if active(at, recover_at) {
                        let f = &mut core_fraction[dc.index()];
                        *f = f.min(fraction);
                    }
                }
                FaultEvent::PlanStale { from, until } => {
                    if active(from, until) {
                        plan_valid = false;
                        stale_since = Some(stale_since.map_or(from, |s| s.max(from)));
                    }
                }
                FaultEvent::DemandDrift { at, factor } => {
                    if minute >= at {
                        plan_valid = false;
                        demand_factor *= factor;
                        stale_since = Some(stale_since.map_or(at, |s| s.max(at)));
                    }
                }
            }
        }
        ChaosState {
            mask,
            core_fraction,
            plan_valid,
            demand_factor,
            stale_since,
        }
    }
}

/// Chaos replay configuration.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Minutes into the call at which the config freezes (A; 5 in the
    /// paper).
    pub freeze_minutes: u64,
    /// Capacity to check usage against. `CapacityDegraded` faults scale the
    /// per-DC core entries minute by minute.
    pub capacity: Option<ProvisionedCapacity>,
    /// Width of the per-window stats buckets.
    pub window_minutes: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            freeze_minutes: (CONFIG_FREEZE_SECONDS / 60) as u64,
            capacity: None,
            window_minutes: 60,
        }
    }
}

/// Why a re-plan was requested. Fault-reactive triggers (the chaos
/// timeline) and proactive triggers (the streaming forecaster's drift
/// watermark, periodic schedules) flow through the same install machinery;
/// this enum is the single taxonomy both the [`Replanner`] and the
/// [`crate::autoscale`] control loop speak.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ReplanTrigger {
    /// A DC-down fault onset ([`FaultEvent::DcDown`]).
    Fault,
    /// A staleness onset in the fault timeline ([`FaultEvent::PlanStale`]
    /// or [`FaultEvent::DemandDrift`]).
    Stale,
    /// The streaming forecaster's peak-normalized rolling-RMSE watermark
    /// fired (closed-loop autoscaling; never produced by the timeline).
    Drift,
    /// An explicit scheduled re-plan minute.
    Schedule,
}

impl ReplanTrigger {
    /// Short stable label for logs and bench JSON.
    pub fn label(self) -> &'static str {
        match self {
            ReplanTrigger::Fault => "fault",
            ReplanTrigger::Stale => "stale",
            ReplanTrigger::Drift => "drift",
            ReplanTrigger::Schedule => "schedule",
        }
    }
}

/// What a [`Replanner`] is asked to do: produce a fresh plan for the
/// remainder of the horizon, to be installed at `install_minute`.
#[derive(Clone, Debug)]
pub struct ReplanRequest {
    /// What kind of event requested this re-plan.
    pub trigger: ReplanTrigger,
    /// Minute of the fault/drift/schedule entry that triggered the re-plan.
    pub trigger_minute: u64,
    /// Minute the produced plan will be installed (trigger + latency).
    pub install_minute: u64,
    /// Epoch the new plan should carry (current selector epoch + 1).
    pub epoch: u64,
    /// Plan slot containing `install_minute`, if within the plan horizon —
    /// the natural `from_slot` for [`sb_core::SlotPlanner::replan_from`].
    pub from_slot: Option<usize>,
    /// Composed fault state at `install_minute` (mask, capacity fractions,
    /// demand drift factor).
    pub state: ChaosState,
}

/// The plan-building callback of a [`Replanner`]: `None` skips the install.
type PlanBuilder<'a> = Box<dyn FnMut(&ReplanRequest) -> Option<Arc<PlanArtifact>> + 'a>;

/// Mid-replay re-planning hook: reacts to triggers (DC-down faults,
/// demand-drift/stale events, explicit schedule minutes) by building a new
/// [`PlanArtifact`] that the engine installs `latency_min` minutes after the
/// trigger, at a barrier window. While a staleness event is active, the
/// plan rung stays disabled **until the re-plan lands** (see
/// [`FaultEvent::PlanStale`]).
pub struct Replanner<'a> {
    /// Minutes between a trigger and the produced plan's installation (the
    /// controller's re-plan latency).
    pub latency_min: u64,
    /// Trigger on `DcDown` fault onsets.
    pub on_dc_down: bool,
    /// Trigger on `PlanStale` / `DemandDrift` onsets.
    pub on_stale: bool,
    /// Additional explicit trigger minutes.
    pub schedule: Vec<u64>,
    builder: PlanBuilder<'a>,
}

impl<'a> Replanner<'a> {
    /// A replanner triggering on DC-down and staleness onsets, producing
    /// plans via `builder` (return `None` to skip an install — e.g. the
    /// re-solve failed; the plan then stays stale).
    pub fn new(
        latency_min: u64,
        builder: impl FnMut(&ReplanRequest) -> Option<Arc<PlanArtifact>> + 'a,
    ) -> Replanner<'a> {
        Replanner {
            latency_min,
            on_dc_down: true,
            on_stale: true,
            schedule: Vec::new(),
            builder: Box::new(builder),
        }
    }

    /// Add explicit trigger minutes (builder style).
    pub fn with_schedule(mut self, minutes: Vec<u64>) -> Replanner<'a> {
        self.schedule = minutes;
        self
    }

    /// Enable/disable the DC-down trigger (builder style).
    pub fn triggers_on_dc_down(mut self, yes: bool) -> Replanner<'a> {
        self.on_dc_down = yes;
        self
    }

    /// Enable/disable the staleness trigger (builder style).
    pub fn triggers_on_stale(mut self, yes: bool) -> Replanner<'a> {
        self.on_stale = yes;
        self
    }
}

/// Per-window chaos statistics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WindowStats {
    /// Absolute minute the window starts at.
    pub start_minute: u64,
    /// Calls started in the window.
    pub calls_started: u64,
    /// Call-start placements per DC (index = DC id) — shows traffic
    /// draining away from a failed DC and returning after recovery.
    pub starts_by_dc: Vec<u32>,
    /// Plan-driven migrations at config freeze (§6.4).
    pub plan_migrations: u64,
    /// Fault-forced mid-call re-homes.
    pub forced_migrations: u64,
    /// Calls stranded (no up DC) at start or re-home.
    pub stranded: u64,
    /// Minutes × resources where usage exceeded effective capacity.
    pub violations: u64,
    /// Peak number of down DCs during the window.
    pub down_dcs: u32,
    /// Peak number of explicitly-down links during the window.
    pub down_links: u32,
    /// Plan artifacts hot-swapped into the selector during the window.
    pub plan_installs: u64,
    /// Freezes that fell back to Unplanned because the plan was stale —
    /// the per-window view of `SelectorStats::plan_stale`, showing the
    /// stale window closing once a re-plan lands.
    pub plan_stale_freezes: u64,
    acl_sum: f64,
    acl_n: u64,
}

impl WindowStats {
    /// Mean ACL of placements made in this window (freeze + re-home time).
    pub fn mean_acl_ms(&self) -> f64 {
        if self.acl_n > 0 {
            self.acl_sum / self.acl_n as f64
        } else {
            0.0
        }
    }
}

/// Chaos replay results.
#[derive(Clone, Debug)]
pub struct ChaosReport {
    /// Calls in the trace.
    pub calls: u64,
    /// Final selector statistics (plan + forced migrations, rungs, …).
    pub selector: SelectorStats,
    /// Completed freeze tallies per DC (index = DC id).
    pub per_dc_tallies: Vec<u64>,
    /// Calls stranded over the whole replay.
    pub stranded: u64,
    /// Fault-forced mid-call re-homes over the whole replay.
    pub forced_migrations: u64,
    /// Plan-driven freeze migrations over the whole replay.
    pub plan_migrations: u64,
    /// Minutes × resources where usage exceeded effective capacity.
    pub capacity_violations: u64,
    /// Worst relative overshoot across all violations.
    pub worst_overshoot: f64,
    /// Observed usage peaks.
    pub peaks: ProvisionedCapacity,
    /// Mean ACL over freeze- and re-home-time placements.
    pub mean_acl_ms: f64,
    /// Plan artifacts hot-swapped into the selector over the run.
    pub plan_installs: u64,
    /// Epochs installed, in install order.
    pub installed_epochs: Vec<u64>,
    /// Injected [`ServiceFault::WorkerDeath`]s that fired (concurrent
    /// drive only; the serial oracle has no workers to kill).
    pub worker_deaths: u64,
    /// Orphaned operations the coordinator drove after worker deaths.
    pub takeover_ops: u64,
    /// Per-window breakdown.
    pub windows: Vec<WindowStats>,
}

/// The order-insensitive aggregate of a chaos run, comparable with `==`
/// between the serial and concurrent engines (floats included — both
/// engines apply all accounting on the coordinating thread in trace order).
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosStats {
    /// Calls in the trace.
    pub calls: u64,
    /// Final selector statistics.
    pub selector: SelectorStats,
    /// Completed freeze tallies per DC.
    pub per_dc_tallies: Vec<u64>,
    /// Calls stranded over the whole replay.
    pub stranded: u64,
    /// Fault-forced mid-call re-homes.
    pub forced_migrations: u64,
    /// Plan-driven freeze migrations.
    pub plan_migrations: u64,
    /// Minutes × resources where usage exceeded effective capacity.
    pub capacity_violations: u64,
    /// Worst relative overshoot across all violations.
    pub worst_overshoot: f64,
    /// Observed per-DC core peaks.
    pub peak_cores: Vec<f64>,
    /// Observed per-link Gbps peaks.
    pub peak_gbps: Vec<f64>,
    /// Mean ACL over freeze- and re-home-time placements.
    pub mean_acl_ms: f64,
    /// Plan artifacts hot-swapped into the selector over the run.
    pub plan_installs: u64,
    /// Epochs installed, in install order.
    pub installed_epochs: Vec<u64>,
    /// Per-window breakdown.
    pub windows: Vec<WindowStats>,
}

impl ChaosReport {
    /// The comparable aggregate of this run.
    pub fn stats(&self) -> ChaosStats {
        ChaosStats {
            calls: self.calls,
            selector: self.selector.clone(),
            per_dc_tallies: self.per_dc_tallies.clone(),
            stranded: self.stranded,
            forced_migrations: self.forced_migrations,
            plan_migrations: self.plan_migrations,
            capacity_violations: self.capacity_violations,
            worst_overshoot: self.worst_overshoot,
            peak_cores: self.peaks.cores.clone(),
            peak_gbps: self.peaks.gbps.clone(),
            mean_acl_ms: self.mean_acl_ms,
            plan_installs: self.plan_installs,
            installed_epochs: self.installed_epochs.clone(),
            windows: self.windows.clone(),
        }
    }
}

#[derive(Clone, Copy)]
struct Hosting {
    rec: usize,
    dc: DcId,
    since: u64,
}

/// Selector outcomes for one fault-free segment, keyed by record index.
/// The drive (serial in-order, or three-phase concurrent) fills these; the
/// coordinating thread then applies all bookkeeping in trace order.
/// Crate-visible so the [`crate::autoscale`] loop drives its windowed
/// segments through the exact same engines.
#[derive(Default)]
pub(crate) struct SegmentOutcomes {
    pub(crate) starts: HashMap<usize, SelectorOutcome>,
    pub(crate) freezes: HashMap<usize, FreezeDecision>,
}

/// Serial segment drive: every selector op in trace order (the oracle).
pub(crate) fn drive_segment_serial(
    selector: &RealtimeSelector,
    records: &[CallRecord],
    events: &[(u64, u8, usize)],
    alive: &mut HashSet<u64>,
) -> SegmentOutcomes {
    let mut out = SegmentOutcomes::default();
    for &(_, kind, i) in events {
        let r = &records[i];
        match kind {
            EV_START => {
                let o = selector.call_start(r.id, r.first_joiner);
                if o.dc().is_some() {
                    alive.insert(r.id);
                }
                out.starts.insert(i, o);
            }
            EV_FREEZE => {
                if alive.contains(&r.id) {
                    let d = selector.config_frozen(r.id, r.config, r.start_minute);
                    out.freezes.insert(i, d);
                }
            }
            _ => {
                if alive.remove(&r.id) {
                    selector.call_end(r.id);
                }
            }
        }
    }
    out
}

/// Scheduled [`ServiceFault::WorkerDeath`]s for the concurrent drive:
/// per-slot cumulative op counters plus the pending schedule. `after_ops`
/// counts against the worker *slot*'s whole op stream across segments
/// (a replacement worker inherits its predecessor's counter).
pub(crate) struct DeathState {
    /// `(worker slot, cumulative after_ops)`, sorted by `after_ops`.
    pending: Vec<(usize, u64)>,
    /// Ops assigned to each worker slot so far (takeovers included).
    driven: Vec<u64>,
    pub(crate) deaths: u64,
    pub(crate) takeover_ops: u64,
}

impl DeathState {
    pub(crate) fn new(threads: usize, faults: &[ServiceFault]) -> DeathState {
        let threads = threads.max(1);
        let mut pending: Vec<(usize, u64)> = faults
            .iter()
            .filter_map(|f| match *f {
                ServiceFault::WorkerDeath { worker, after_ops } => {
                    Some((worker % threads, after_ops))
                }
                _ => None,
            })
            .collect();
        pending.sort_by_key(|&(_, after)| after);
        DeathState {
            pending,
            driven: vec![0; threads],
            deaths: 0,
            takeover_ops: 0,
        }
    }

    /// If worker slot `w` (assigned `len` ops this segment) dies
    /// mid-segment, consume the earliest due death and return the index to
    /// cut its op list at.
    fn consume(&mut self, w: usize, len: u64) -> Option<usize> {
        let pos = self
            .pending
            .iter()
            .position(|&(slot, after)| slot == w && after.saturating_sub(self.driven[w]) <= len)?;
        let (_, after) = self.pending.remove(pos);
        Some(after.saturating_sub(self.driven[w]) as usize)
    }
}

/// Concurrent segment drive: the topology and plan are constant within a
/// segment, so no intra-segment barriers are needed. Every record's whole
/// lifecycle is pinned to one worker by its quota pool
/// (`lifecycle_worker` in `replay`), which preserves both the per-call
/// event order and the per-pool freeze order that quota debits depend on.
/// Each worker resolves aliveness from a local overlay (it owns *all* of a
/// call's events this segment) falling back to the shared `alive` snapshot;
/// the coordinator then replays the segment's events in trace order to fold
/// the overlays back into `alive`.
///
/// Injected [`ServiceFault::WorkerDeath`]s cut the dying worker's op list
/// at its death point; the coordinator serially drives the orphaned tail
/// after every surviving worker joins. Pool-pinning makes the delayed tail
/// just another valid interleaving — the aggregate [`ChaosStats`] still
/// matches the serial oracle exactly.
pub(crate) fn drive_segment_concurrent(
    selector: &RealtimeSelector,
    records: &[CallRecord],
    events: &[(u64, u8, usize)],
    alive: &mut HashSet<u64>,
    threads: usize,
    deaths: &mut DeathState,
) -> SegmentOutcomes {
    let threads = threads.max(1);
    let mut lists: Vec<Vec<(u8, usize)>> = vec![Vec::new(); threads];
    for &(_, kind, i) in events {
        lists[lifecycle_worker(selector, &records[i], threads)].push((kind, i));
    }

    // split each dying worker's list at its death point
    let mut tails: Vec<(usize, Vec<(u8, usize)>)> = Vec::new();
    for (w, list) in lists.iter_mut().enumerate() {
        let len = list.len() as u64;
        if let Some(cut) = deaths.consume(w, len) {
            let tail = list.split_off(cut);
            deaths.deaths += 1;
            deaths.takeover_ops += tail.len() as u64;
            tails.push((w, tail));
        }
        deaths.driven[w] += len;
    }

    let mut out = SegmentOutcomes::default();
    type WorkerOut = (Vec<(usize, SelectorOutcome)>, Vec<(usize, FreezeDecision)>);
    let results: Vec<WorkerOut> = std::thread::scope(|s| {
        let alive = &*alive;
        let handles: Vec<_> = lists
            .iter()
            .filter(|list| !list.is_empty())
            .map(|list| {
                let mut shard = selector.shard();
                s.spawn(move || {
                    let mut starts = Vec::new();
                    let mut freezes = Vec::new();
                    // aliveness overlay: exact because this worker owns every
                    // event of these calls for the whole segment
                    let mut local: HashMap<u64, bool> = HashMap::new();
                    for &(kind, i) in list {
                        let r = &records[i];
                        match kind {
                            EV_START => {
                                let o = shard.call_start(r.id, r.first_joiner);
                                local.insert(r.id, o.dc().is_some());
                                starts.push((i, o));
                            }
                            EV_FREEZE => {
                                let up = local
                                    .get(&r.id)
                                    .copied()
                                    .unwrap_or_else(|| alive.contains(&r.id));
                                if up {
                                    freezes.push((
                                        i,
                                        shard.config_frozen(r.id, r.config, r.start_minute),
                                    ));
                                }
                            }
                            _ => {
                                let up = local
                                    .get(&r.id)
                                    .copied()
                                    .unwrap_or_else(|| alive.contains(&r.id));
                                if up {
                                    shard.call_end(r.id);
                                }
                                local.insert(r.id, false);
                            }
                        }
                    }
                    (starts, freezes)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_default())
            .collect()
    });
    for (starts, freezes) in results {
        for (i, o) in starts {
            out.starts.insert(i, o);
        }
        for (i, d) in freezes {
            out.freezes.insert(i, d);
        }
    }

    // coordinator takeover: drive each dead worker's orphaned tail
    // serially, rebuilding its aliveness overlay from the head it did
    // drive (whose outcomes are already merged into `out`)
    for (w, tail) in &tails {
        let mut local: HashMap<u64, bool> = HashMap::new();
        for &(kind, i) in &lists[*w] {
            let r = &records[i];
            match kind {
                EV_START => {
                    local.insert(r.id, out.starts.get(&i).is_some_and(|o| o.dc().is_some()));
                }
                EV_FREEZE => {}
                _ => {
                    local.insert(r.id, false);
                }
            }
        }
        for &(kind, i) in tail {
            let r = &records[i];
            match kind {
                EV_START => {
                    let o = selector.call_start(r.id, r.first_joiner);
                    local.insert(r.id, o.dc().is_some());
                    out.starts.insert(i, o);
                }
                EV_FREEZE => {
                    let up = local
                        .get(&r.id)
                        .copied()
                        .unwrap_or_else(|| alive.contains(&r.id));
                    if up {
                        out.freezes
                            .insert(i, selector.config_frozen(r.id, r.config, r.start_minute));
                    }
                }
                _ => {
                    let up = local
                        .get(&r.id)
                        .copied()
                        .unwrap_or_else(|| alive.contains(&r.id));
                    if up {
                        selector.call_end(r.id);
                    }
                    local.insert(r.id, false);
                }
            }
        }
    }

    // fold the worker-local aliveness back into the shared set, trace order
    for &(_, kind, i) in events {
        let r = &records[i];
        match kind {
            EV_START => {
                if out.starts.get(&i).is_some_and(|o| o.dc().is_some()) {
                    alive.insert(r.id);
                }
            }
            EV_FREEZE => {}
            _ => {
                alive.remove(&r.id);
            }
        }
    }
    out
}

/// Replay `db` while injecting `timeline`, driving the selector with
/// `threads` workers per fault-free segment (`None` = serial oracle).
/// `replanner`, when present, turns triggers into plan installs at barrier
/// windows after its configured latency.
#[allow(clippy::too_many_arguments)]
fn chaos_replay_impl(
    topo: &Topology,
    catalog: &ConfigCatalog,
    db: &CallRecordsDb,
    timeline: &FaultTimeline,
    quotas: PlannedQuotas,
    cfg: &ChaosConfig,
    threads: Option<usize>,
    mut replanner: Option<&mut Replanner<'_>>,
    service_faults: &[ServiceFault],
) -> ChaosReport {
    let met = chaos_metrics();
    met.runs.inc();
    let _t = met.wall_ns.start_timer();

    let records = db.records();
    let healthy_routing = RoutingTable::compute(topo, FailureScenario::None);
    let healthy_latmap = LatencyMap::from_routing(topo, &healthy_routing);
    let selector = RealtimeSelector::from_artifact(&healthy_latmap, &PlanArtifact::seed(quotas));
    if records.is_empty() {
        return ChaosReport {
            calls: 0,
            selector: selector.stats(),
            per_dc_tallies: selector.per_dc_tallies(),
            stranded: 0,
            forced_migrations: 0,
            plan_migrations: 0,
            capacity_violations: 0,
            worst_overshoot: 0.0,
            peaks: ProvisionedCapacity::zero(topo),
            mean_acl_ms: 0.0,
            plan_installs: 0,
            installed_epochs: Vec::new(),
            worker_deaths: 0,
            takeover_ops: 0,
            windows: Vec::new(),
        };
    }

    let t0 = records.iter().map(|r| r.start_minute).min().unwrap();
    let t1 = records.iter().map(|r| r.end_minute()).max().unwrap();
    let horizon = (t1 - t0 + 1) as usize;
    let window_minutes = cfg.window_minutes.max(1);
    let num_windows = (horizon as u64).div_ceil(window_minutes) as usize;
    let mut windows: Vec<WindowStats> = (0..num_windows)
        .map(|w| WindowStats {
            start_minute: t0 + w as u64 * window_minutes,
            starts_by_dc: vec![0; topo.dcs.len()],
            ..WindowStats::default()
        })
        .collect();
    let win_of = |minute: u64| (((minute - t0) / window_minutes) as usize).min(num_windows - 1);

    let events = build_events(records, cfg.freeze_minutes);

    // re-plan installs: trigger minutes (fault onsets, staleness onsets,
    // explicit schedule) plus the re-plan latency, landing at barriers
    let mut installs: Vec<(u64, u64, ReplanTrigger)> = Vec::new(); // (install, trigger minute, kind)
    if let Some(rp) = replanner.as_deref() {
        let mut triggers: Vec<(u64, ReplanTrigger)> = Vec::new();
        for ev in timeline.events() {
            match *ev {
                FaultEvent::DcDown { at, .. } if rp.on_dc_down => {
                    triggers.push((at, ReplanTrigger::Fault))
                }
                FaultEvent::PlanStale { from, .. } if rp.on_stale => {
                    triggers.push((from, ReplanTrigger::Stale))
                }
                FaultEvent::DemandDrift { at, .. } if rp.on_stale => {
                    triggers.push((at, ReplanTrigger::Stale))
                }
                _ => {}
            }
        }
        triggers.extend(rp.schedule.iter().map(|&m| (m, ReplanTrigger::Schedule)));
        // sort faults ahead of schedule entries at the same minute so the
        // dedup below keeps the more specific trigger kind
        triggers.sort_unstable_by_key(|&(m, k)| (m, k as u8));
        triggers.dedup_by_key(|p| p.0);
        for (tr, kind) in triggers {
            let inst = tr.saturating_add(rp.latency_min).max(t0 + 1);
            if inst <= t1 {
                installs.push((inst, tr, kind));
            }
        }
        installs.sort_unstable_by_key(|&(inst, tr, k)| (inst, tr, k as u8));
        installs.dedup_by_key(|p| p.0);
    }

    // fault-state segments: [t0, cp1), [cp1, cp2), … — plan installs are
    // additional barriers
    let mut barriers = timeline.change_points(t0, t1);
    barriers.extend(installs.iter().map(|&(m, _, _)| m));
    barriers.sort_unstable();
    barriers.dedup();
    let mut seg_starts = vec![t0];
    seg_starts.extend(&barriers);
    let seg_states: Vec<ChaosState> = seg_starts
        .iter()
        .map(|&m| timeline.state_at(topo, m))
        .collect();

    // accounting
    let mut core_delta = vec![vec![0.0f64; topo.dcs.len()]; horizon + 1];
    let mut link_delta = vec![vec![0.0f64; topo.links.len()]; horizon + 1];
    let mut hosted: HashMap<u64, Hosting> = HashMap::new();
    let mut alive: HashSet<u64> = HashSet::new();

    let mut state = seg_states[0].clone();
    let mut routing = if state.mask.is_healthy() {
        healthy_routing.clone()
    } else {
        RoutingTable::compute_masked(topo, state.mask.clone())
    };
    let mut latmap = LatencyMap::from_routing(topo, &routing);
    let dc_up_vec =
        |s: &ChaosState| -> Vec<bool> { topo.dc_ids().map(|d| s.mask.dc_up(d)).collect() };
    // Effective plan validity: a staleness window closes early once a
    // re-plan has been installed at or after its onset ("stale until the
    // re-plan lands"). Without a replanner this reduces to the raw flag.
    let has_replanner = replanner.is_some();
    let effective_valid = |s: &ChaosState, last_install: Option<u64>| -> bool {
        s.plan_valid
            || (has_replanner
                && matches!((s.stale_since, last_install), (Some(on), Some(li)) if li >= on))
    };
    let mut last_install: Option<u64> = None;
    let mut cur_valid = effective_valid(&state, last_install);
    selector.update_topology(&latmap, &dc_up_vec(&state));
    selector.set_plan_valid(cur_valid);

    let mut acl_sum = 0.0;
    let mut acl_n = 0u64;
    let mut stranded = 0u64;
    let mut forced = 0u64;
    let mut plan_migrations = 0u64;
    let mut plan_installs = 0u64;
    let mut installed_epochs: Vec<u64> = Vec::new();
    let mut last_artifact: Option<Arc<PlanArtifact>> = None;
    let mut next_install = 0usize;

    let flush = |h: &mut Hosting,
                 to: u64,
                 routing: &RoutingTable,
                 core_delta: &mut Vec<Vec<f64>>,
                 link_delta: &mut Vec<Vec<f64>>| {
        if to <= h.since {
            return;
        }
        let r = &records[h.rec];
        let c = catalog.config(r.config);
        let (a, b) = ((h.since - t0) as usize, (to - t0) as usize);
        core_delta[a][h.dc.index()] += c.compute_load();
        core_delta[b][h.dc.index()] -= c.compute_load();
        let nl = c.leg_network_load();
        for &(country, n) in c.participants() {
            if let Some(route) = routing.route(country, h.dc) {
                let w = n as f64 * nl;
                for &l in &route.links {
                    link_delta[a][l.index()] += w;
                    link_delta[b][l.index()] -= w;
                }
            }
        }
        h.since = to;
    };

    let mut death_state = DeathState::new(threads.unwrap_or(1), service_faults);
    let mut next_seg = 1usize;
    let mut ei = 0usize;
    while ei < events.len() {
        let t_first = events[ei].0;

        // apply fault transitions due before the next event; per transition:
        // close hosting intervals under the old routing, swap topology,
        // re-home displaced calls — all in sorted call-id order so the run
        // is deterministic regardless of hash-map iteration order
        while next_seg < seg_starts.len() && seg_starts[next_seg] <= t_first {
            let tr = seg_starts[next_seg];
            let mut ids: Vec<u64> = hosted.keys().copied().collect();
            ids.sort_unstable();
            for id in &ids {
                if let Some(h) = hosted.get_mut(id) {
                    flush(h, tr, &routing, &mut core_delta, &mut link_delta);
                }
            }
            state = seg_states[next_seg].clone();
            routing = RoutingTable::compute_masked(topo, state.mask.clone());
            latmap = LatencyMap::from_routing(topo, &routing);
            selector.update_topology(&latmap, &dc_up_vec(&state));
            // install a due re-plan BEFORE re-homing, so displaced calls
            // land against the fresh quota pools
            while next_install < installs.len() && installs[next_install].0 == tr {
                let (inst, trigger, kind) = installs[next_install];
                next_install += 1;
                let rp = replanner
                    .as_deref_mut()
                    .expect("installs only exist with a replanner");
                let req = ReplanRequest {
                    trigger: kind,
                    trigger_minute: trigger,
                    install_minute: inst,
                    epoch: selector.plan_epoch() + 1,
                    from_slot: selector.plan_slot_of_minute(inst),
                    state: state.clone(),
                };
                if let Some(artifact) = (rp.builder)(&req) {
                    if let Some(prev) = &last_artifact {
                        PlanDelta::between(prev, &artifact).record();
                    }
                    selector.install_plan(&artifact);
                    last_install = Some(inst);
                    plan_installs += 1;
                    installed_epochs.push(artifact.epoch);
                    windows[win_of(inst)].plan_installs += 1;
                    last_artifact = Some(artifact);
                }
            }
            cur_valid = effective_valid(&state, last_install);
            selector.set_plan_valid(cur_valid);
            // re-home calls whose hosting DC just went down, in id order
            // (rehome order matters: earlier re-homes may drain plan quota)
            let displaced: Vec<u64> = ids
                .into_iter()
                .filter(|id| hosted.get(id).is_some_and(|h| !state.mask.dc_up(h.dc)))
                .collect();
            let w = win_of(tr);
            for id in displaced {
                let outcome = selector.rehome_call(id);
                match outcome.dc() {
                    Some(dc) => {
                        if let Some(h) = hosted.get_mut(&id) {
                            h.dc = dc;
                            forced += 1;
                            windows[w].forced_migrations += 1;
                            met.forced_migrations.inc();
                            if let Some(a) = latmap.acl(catalog.config(records[h.rec].config), dc) {
                                acl_sum += a;
                                acl_n += 1;
                                windows[w].acl_sum += a;
                                windows[w].acl_n += 1;
                            }
                        }
                    }
                    None => {
                        hosted.remove(&id);
                        alive.remove(&id);
                        stranded += 1;
                        windows[w].stranded += 1;
                        met.stranded.inc();
                    }
                }
            }
            next_seg += 1;
        }

        // the fault-free segment: events up to the next transition
        let seg_end_t = seg_starts.get(next_seg).copied();
        let mut ej = ei;
        while ej < events.len() && seg_end_t.is_none_or(|b| events[ej].0 < b) {
            ej += 1;
        }
        let seg_events = &events[ei..ej];

        // drive the selector …
        let outcomes = match threads {
            None => drive_segment_serial(&selector, records, seg_events, &mut alive),
            Some(n) => drive_segment_concurrent(
                &selector,
                records,
                seg_events,
                &mut alive,
                n,
                &mut death_state,
            ),
        };

        // … then apply bookkeeping in exact trace order (shared by both
        // drives — this is what keeps the float accounting bit-identical)
        for &(t, kind, i) in seg_events {
            let w = win_of(t);
            let r = &records[i];
            match kind {
                EV_START => {
                    windows[w].calls_started += 1;
                    match outcomes.starts.get(&i).and_then(|o| o.dc()) {
                        Some(dc) => {
                            windows[w].starts_by_dc[dc.index()] += 1;
                            hosted.insert(
                                r.id,
                                Hosting {
                                    rec: i,
                                    dc,
                                    since: t,
                                },
                            );
                        }
                        None => {
                            stranded += 1;
                            windows[w].stranded += 1;
                            met.stranded.inc();
                        }
                    }
                }
                EV_FREEZE => {
                    let Some(h) = hosted.get_mut(&r.id) else {
                        continue; // stranded before freezing
                    };
                    let Some(decision) = outcomes.freezes.get(&i) else {
                        continue;
                    };
                    // mirror of the selector's plan_stale accrual: while the
                    // plan is distrusted, every reached freeze comes back
                    // Unplanned via the stale branch
                    if !cur_valid && matches!(decision, FreezeDecision::Unplanned(_)) {
                        windows[w].plan_stale_freezes += 1;
                    }
                    let Some(final_dc) = decision.final_dc() else {
                        continue;
                    };
                    if decision.migrated() {
                        plan_migrations += 1;
                        windows[w].plan_migrations += 1;
                    }
                    if final_dc != h.dc {
                        flush(h, t, &routing, &mut core_delta, &mut link_delta);
                        h.dc = final_dc;
                    }
                    if let Some(a) = latmap.acl(catalog.config(r.config), final_dc) {
                        acl_sum += a;
                        acl_n += 1;
                        windows[w].acl_sum += a;
                        windows[w].acl_n += 1;
                    }
                }
                _ => {
                    if let Some(mut h) = hosted.remove(&r.id) {
                        flush(&mut h, t, &routing, &mut core_delta, &mut link_delta);
                    }
                }
            }
        }
        ei = ej;
    }

    // integrate deltas → usage; peaks and violations against *effective*
    // capacity (CapacityDegraded scales per-DC cores per minute)
    let mut peaks = ProvisionedCapacity::zero(topo);
    let mut violations = 0u64;
    let mut worst = 0.0f64;
    let mut cur_cores = vec![0.0f64; topo.dcs.len()];
    let mut cur_links = vec![0.0f64; topo.links.len()];
    let mut seg = 0usize;
    for m in 0..horizon {
        let minute = t0 + m as u64;
        while seg + 1 < seg_starts.len() && seg_starts[seg + 1] <= minute {
            seg += 1;
        }
        let st = &seg_states[seg];
        let w = win_of(minute);
        windows[w].down_dcs = windows[w].down_dcs.max(st.mask.down_dcs().count() as u32);
        windows[w].down_links = windows[w]
            .down_links
            .max(st.mask.down_links().count() as u32);
        for (c, d) in cur_cores.iter_mut().zip(&core_delta[m]) {
            *c += d;
        }
        for (c, d) in cur_links.iter_mut().zip(&link_delta[m]) {
            *c += d;
        }
        for (p, &u) in peaks.cores.iter_mut().zip(&cur_cores) {
            *p = p.max(u);
        }
        for (p, &u) in peaks.gbps.iter_mut().zip(&cur_links) {
            *p = p.max(u);
        }
        if let Some(cap) = &cfg.capacity {
            for (i, &u) in cur_cores.iter().enumerate() {
                let eff = cap.cores[i] * st.core_fraction[i];
                if u > eff + 1e-9 {
                    violations += 1;
                    windows[w].violations += 1;
                    worst = worst.max((u - eff) / eff.max(1e-9));
                }
            }
            for (i, &u) in cur_links.iter().enumerate() {
                if u > cap.gbps[i] + 1e-9 {
                    violations += 1;
                    windows[w].violations += 1;
                    worst = worst.max((u - cap.gbps[i]) / cap.gbps[i].max(1e-9));
                }
            }
        }
    }
    met.violations.add(violations);

    if sb_obs::global().enabled() {
        for w in &windows {
            met.windows.push(vec![
                Value::from(w.start_minute),
                Value::from(w.calls_started),
                Value::from(w.plan_migrations),
                Value::from(w.forced_migrations),
                Value::from(w.stranded),
                Value::from(w.violations),
                Value::from(w.down_dcs as u64),
                Value::from(w.down_links as u64),
                Value::from(w.plan_installs),
                Value::from(w.plan_stale_freezes),
                Value::from(w.mean_acl_ms()),
            ]);
        }
    }

    ChaosReport {
        calls: records.len() as u64,
        selector: selector.stats(),
        per_dc_tallies: selector.per_dc_tallies(),
        stranded,
        forced_migrations: forced,
        plan_migrations,
        capacity_violations: violations,
        worst_overshoot: worst,
        peaks,
        mean_acl_ms: if acl_n > 0 {
            acl_sum / acl_n as f64
        } else {
            0.0
        },
        plan_installs,
        installed_epochs,
        worker_deaths: death_state.deaths,
        takeover_ops: death_state.takeover_ops,
        windows,
    }
}

/// One-stop builder over the chaos/replay engine, replacing the
/// `chaos_replay` / `chaos_replay_concurrent` /
/// `chaos_replay_replanned(_concurrent)` free-function family.
///
/// Defaults: serial oracle drive, empty fault timeline (chaos replay
/// degenerates to a plain replay), no replanner, [`ChaosConfig::default`].
///
/// The selector is constructed internally (its topology view changes over
/// the run). Usage accounting matches [`crate::replay()`]: per-minute compute
/// at the hosting DC and per-leg traffic on routed links — except that
/// hosting intervals are additionally flushed at every fault transition, so
/// re-routed traffic and re-homed calls are charged to the right resources
/// minute by minute. Stranded calls stop consuming resources when dropped.
///
/// With [`threads`](ReplayDriver::threads) the selector is driven by worker
/// threads inside each fault-free segment (fault transitions and plan
/// installs are the only barriers); the aggregate [`ChaosStats`] matches the
/// serial engine exactly, floats included. With a
/// [`replanner`](ReplayDriver::replanner), triggers from the timeline (and
/// the replanner's schedule) produce fresh plan artifacts that are
/// hot-swapped into the selector after the re-plan latency, at barrier
/// windows; staleness windows close when the re-plan lands.
pub struct ReplayDriver<'a, 'p> {
    topo: &'a Topology,
    catalog: &'a ConfigCatalog,
    db: &'a CallRecordsDb,
    quotas: PlannedQuotas,
    cfg: ChaosConfig,
    timeline: FaultTimeline,
    threads: Option<usize>,
    replanner: Option<&'a mut Replanner<'p>>,
    service_faults: Vec<ServiceFault>,
}

impl<'a, 'p> ReplayDriver<'a, 'p> {
    /// A driver replaying `db` against the epoch-0 plan seeded from
    /// `quotas`, serially, with no faults.
    pub fn new(
        topo: &'a Topology,
        catalog: &'a ConfigCatalog,
        db: &'a CallRecordsDb,
        quotas: PlannedQuotas,
    ) -> ReplayDriver<'a, 'p> {
        ReplayDriver {
            topo,
            catalog,
            db,
            quotas,
            cfg: ChaosConfig::default(),
            timeline: FaultTimeline::new(),
            threads: None,
            replanner: None,
            service_faults: Vec::new(),
        }
    }

    /// Replace the [`ChaosConfig`] (freeze offset, capacity check, window
    /// width).
    pub fn config(mut self, cfg: ChaosConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Inject this fault timeline during the replay.
    pub fn faults(mut self, timeline: FaultTimeline) -> Self {
        self.timeline = timeline;
        self
    }

    /// Drive the selector with `threads` worker threads per fault-free
    /// segment instead of the serial oracle (0 is clamped to 1).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Attach a mid-replay re-planning hook.
    pub fn replanner(mut self, replanner: &'a mut Replanner<'p>) -> Self {
        self.replanner = Some(replanner);
        self
    }

    /// Inject service-layer faults. Only
    /// [`ServiceFault::WorkerDeath`] applies here (and only with
    /// [`threads`](ReplayDriver::threads) — the serial oracle has no
    /// workers to kill); journal/crash faults belong to the journaled
    /// crash drill ([`crate::crash::drive_with_crashes`]).
    pub fn service_faults(mut self, faults: Vec<ServiceFault>) -> Self {
        self.service_faults = faults;
        self
    }

    /// Run the replay and produce the report.
    pub fn run(self) -> ChaosReport {
        chaos_replay_impl(
            self.topo,
            self.catalog,
            self.db,
            &self.timeline,
            self.quotas,
            &self.cfg,
            self.threads,
            self.replanner,
            &self.service_faults,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_core::AllocationShares;
    use sb_workload::{CallConfig, CallRecord, ConfigId, DemandMatrix, MediaType};

    fn world() -> (Topology, ConfigCatalog, ConfigId) {
        let topo = sb_net::presets::toy_three_dc();
        let jp = topo.country_by_name("JP");
        let mut cat = ConfigCatalog::new();
        let id = cat.intern(CallConfig::new(vec![(jp, 2)], MediaType::Audio));
        (topo, cat, id)
    }

    fn record(id: u64, cfg: ConfigId, start: u64, dur: u16, c: sb_net::CountryId) -> CallRecord {
        CallRecord {
            id,
            config: cfg,
            start_minute: start,
            duration_min: dur,
            first_joiner: c,
            join_offsets_s: vec![0, 60],
        }
    }

    /// Quotas that put every call of `cfg` at `dc` for `slots` slots.
    fn all_at(cfg: ConfigId, dc: DcId, slots: usize, per_slot: f64) -> PlannedQuotas {
        let mut shares = AllocationShares::new(slots);
        let mut demand = DemandMatrix::zero(cfg.index() + 1, slots, 30, 0);
        for s in 0..slots {
            shares.set(cfg, s, vec![(dc, 1.0)]);
            demand.set(cfg, s, per_slot);
        }
        PlannedQuotas::from_plan(&shares, &demand)
    }

    #[test]
    fn empty_timeline_matches_plain_replay_counters() {
        let (topo, cat, id) = world();
        let jp = topo.country_by_name("JP");
        let tokyo = topo.dc_by_name("Tokyo");
        let mut db = CallRecordsDb::new(cat.clone());
        for i in 0..10 {
            db.push(record(i, id, i, 30, jp));
        }
        let quotas = all_at(id, tokyo, 2, 30.0);
        let report = ReplayDriver::new(&topo, &cat, &db, quotas).run();
        assert_eq!(report.calls, 10);
        assert_eq!(report.stranded, 0);
        assert_eq!(report.forced_migrations, 0);
        assert_eq!(report.plan_migrations, 0);
        assert_eq!(report.per_dc_tallies[tokyo.index()], 10);
        assert!(report.peaks.cores[tokyo.index()] > 0.0);
    }

    #[test]
    fn dc_outage_rehomes_inflight_calls_and_recovery_brings_new_calls_back() {
        let (topo, cat, id) = world();
        let jp = topo.country_by_name("JP");
        let tokyo = topo.dc_by_name("Tokyo");
        let mut db = CallRecordsDb::new(cat.clone());
        // steady stream: one 30-minute call starting each minute for 3 hours
        for i in 0..180 {
            db.push(record(i, id, i, 30, jp));
        }
        let quotas = all_at(id, tokyo, 6, 40.0);
        // Tokyo down minutes [60, 120)
        let timeline = FaultTimeline::from_scenario(FailureScenario::DcDown(tokyo), 60, Some(120));
        let cfg = ChaosConfig {
            window_minutes: 60,
            ..ChaosConfig::default()
        };
        let report = ReplayDriver::new(&topo, &cat, &db, quotas)
            .faults(timeline)
            .config(cfg)
            .run();
        assert_eq!(report.stranded, 0, "two DCs survive — nobody strands");
        // the ~29 calls in flight at minute 60 are forcibly re-homed
        assert!(
            report.forced_migrations >= 25,
            "{}",
            report.forced_migrations
        );
        assert_eq!(report.selector.forced_migrations, report.forced_migrations);
        // windows: [0,60) healthy, [60,120) outage, [120,180+) recovered
        let w0 = &report.windows[0];
        let w1 = &report.windows[1];
        let w2 = &report.windows[2];
        assert_eq!(w0.down_dcs, 0);
        assert_eq!(w1.down_dcs, 1);
        assert_eq!(w2.down_dcs, 0);
        assert!(w0.starts_by_dc[tokyo.index()] > 0);
        // during the outage no new call lands on Tokyo …
        assert_eq!(w1.starts_by_dc[tokyo.index()], 0);
        assert!(w1.calls_started > 0);
        assert_eq!(w1.forced_migrations, report.forced_migrations);
        // … and after recovery new calls return to it (mid-replay recovery)
        assert!(w2.starts_by_dc[tokyo.index()] > 0);
    }

    #[test]
    fn total_outage_strands_and_usage_stops() {
        let (topo, cat, id) = world();
        let jp = topo.country_by_name("JP");
        let tokyo = topo.dc_by_name("Tokyo");
        let mut db = CallRecordsDb::new(cat.clone());
        for i in 0..10 {
            db.push(record(i, id, 0, 60, jp));
        }
        // all three DCs down from minute 20, forever
        let mut timeline = FaultTimeline::new();
        for dc in topo.dc_ids() {
            timeline.push(FaultEvent::DcDown {
                dc,
                at: 20,
                recover_at: None,
            });
        }
        let quotas = all_at(id, tokyo, 2, 10.0);
        let report = ReplayDriver::new(&topo, &cat, &db, quotas)
            .faults(timeline)
            .run();
        assert_eq!(report.stranded, 10, "every in-flight call strands");
        // dropped calls stop consuming: peak equals the pre-outage level and
        // usage after minute 20 is zero (peaks reflect [0,20) only)
        let cl = cat.config(id).compute_load();
        assert!((report.peaks.cores[tokyo.index()] - 10.0 * cl).abs() < 1e-9);
    }

    #[test]
    fn link_flap_toggles_state() {
        let (topo, _cat, _id) = world();
        let l = sb_net::LinkId(0);
        let timeline = FaultTimeline::new().with(FaultEvent::LinkFlap {
            link: l,
            at: 10,
            until: 50,
            period_min: 10,
        });
        // down [10,20) up [20,30) down [30,40) up [40,50)
        assert!(!timeline
            .state_at(&topo, 9)
            .mask
            .down_links()
            .any(|x| x == l));
        assert!(timeline
            .state_at(&topo, 10)
            .mask
            .down_links()
            .any(|x| x == l));
        assert!(timeline
            .state_at(&topo, 15)
            .mask
            .down_links()
            .any(|x| x == l));
        assert!(!timeline
            .state_at(&topo, 25)
            .mask
            .down_links()
            .any(|x| x == l));
        assert!(timeline
            .state_at(&topo, 35)
            .mask
            .down_links()
            .any(|x| x == l));
        assert!(!timeline
            .state_at(&topo, 45)
            .mask
            .down_links()
            .any(|x| x == l));
        assert!(!timeline
            .state_at(&topo, 50)
            .mask
            .down_links()
            .any(|x| x == l));
        let cps = timeline.change_points(0, 100);
        assert_eq!(cps, vec![10, 20, 30, 40, 50]);
    }

    #[test]
    fn capacity_degradation_creates_violations_without_migrations() {
        let (topo, cat, id) = world();
        let jp = topo.country_by_name("JP");
        let tokyo = topo.dc_by_name("Tokyo");
        let mut db = CallRecordsDb::new(cat.clone());
        for i in 0..10 {
            db.push(record(i, id, 0, 60, jp));
        }
        let quotas = all_at(id, tokyo, 2, 10.0);
        let cl = cat.config(id).compute_load();
        // capacity exactly fits 10 calls; degrade Tokyo to 40% mid-run
        let mut cap = ProvisionedCapacity::zero(&topo);
        cap.cores = vec![10.0 * cl; topo.dcs.len()];
        cap.gbps = vec![1e9; topo.links.len()];
        let timeline = FaultTimeline::new().with(FaultEvent::CapacityDegraded {
            dc: tokyo,
            fraction: 0.4,
            at: 30,
            recover_at: Some(40),
        });
        let cfg = ChaosConfig {
            capacity: Some(cap),
            ..ChaosConfig::default()
        };
        let report = ReplayDriver::new(&topo, &cat, &db, quotas)
            .faults(timeline)
            .config(cfg)
            .run();
        assert_eq!(report.forced_migrations, 0, "DC never went down");
        assert_eq!(report.capacity_violations, 10, "one per degraded minute");
        assert!(report.worst_overshoot > 0.0);
    }

    #[test]
    fn plan_stale_window_disables_plan_migrations() {
        let (topo, cat, id) = world();
        let jp = topo.country_by_name("JP");
        let pune = topo.dc_by_name("Pune");
        let mut db = CallRecordsDb::new(cat.clone());
        // calls freeze at minute start+5; first batch freezes during the
        // stale window, second after the plan refresh
        for i in 0..5 {
            db.push(record(i, id, 0, 30, jp));
        }
        for i in 5..10 {
            db.push(record(i, id, 60, 30, jp));
        }
        // plan wants everything at Pune (remote) → normally 100% migrations
        let quotas = all_at(id, pune, 4, 10.0);
        let timeline = FaultTimeline::new().with(FaultEvent::PlanStale {
            from: 0,
            until: Some(30),
        });
        let report = ReplayDriver::new(&topo, &cat, &db, quotas)
            .faults(timeline)
            .run();
        // stale window: 5 calls stay local; refreshed plan: 5 migrate
        assert_eq!(report.plan_migrations, 5);
        assert_eq!(report.selector.plan_stale, 5);
        assert_eq!(report.stranded, 0);
    }

    /// Shares + quotas that put every call of `cfg` at `dc`.
    fn plan_all_at(
        cfg: ConfigId,
        dc: DcId,
        slots: usize,
        per_slot: f64,
        epoch: u64,
    ) -> PlanArtifact {
        let mut shares = AllocationShares::new(slots);
        let mut demand = DemandMatrix::zero(cfg.index() + 1, slots, 30, 0);
        for s in 0..slots {
            shares.set(cfg, s, vec![(dc, 1.0)]);
            demand.set(cfg, s, per_slot);
        }
        let quotas = PlannedQuotas::from_plan(&shares, &demand);
        PlanArtifact::new(epoch, shares, quotas, sb_core::PlanProvenance::default())
    }

    #[test]
    fn replanner_closes_stale_window_after_latency() {
        let (topo, cat, id) = world();
        let jp = topo.country_by_name("JP");
        let pune = topo.dc_by_name("Pune");
        let mut db = CallRecordsDb::new(cat.clone());
        // first batch freezes at minute 5 (inside the stale window), second
        // at minute 65 (after the re-plan lands at 0 + 15 = 15)
        for i in 0..5 {
            db.push(record(i, id, 0, 90, jp));
        }
        for i in 5..10 {
            db.push(record(i, id, 60, 30, jp));
        }
        // plan wants everything at Pune (remote) → planned freezes migrate
        let quotas = all_at(id, pune, 4, 10.0);
        // stale forever unless a re-plan lands
        let timeline = FaultTimeline::new().with(FaultEvent::PlanStale {
            from: 0,
            until: None,
        });
        let cfg = ChaosConfig {
            window_minutes: 60,
            ..ChaosConfig::default()
        };
        // without a replanner every freeze is unplanned
        let bare = ReplayDriver::new(&topo, &cat, &db, quotas.clone())
            .faults(timeline.clone())
            .config(cfg.clone())
            .run();
        assert_eq!(bare.plan_migrations, 0);
        assert_eq!(bare.selector.plan_stale, 10);
        assert_eq!(bare.plan_installs, 0);
        // with a 15-minute re-plan latency the stale window closes at 15:
        // the early freezes stay local, the late ones follow the plan again
        let mut seen_requests: Vec<(u64, u64, u64)> = Vec::new();
        let mut rp = Replanner::new(15, |req: &ReplanRequest| {
            seen_requests.push((req.trigger_minute, req.install_minute, req.epoch));
            Some(Arc::new(plan_all_at(id, pune, 4, 10.0, req.epoch)))
        });
        let report = ReplayDriver::new(&topo, &cat, &db, quotas)
            .faults(timeline)
            .config(cfg)
            .replanner(&mut rp)
            .run();
        drop(rp);
        assert_eq!(seen_requests, vec![(0, 15, 1)]);
        assert_eq!(report.plan_installs, 1);
        assert_eq!(report.installed_epochs, vec![1]);
        assert_eq!(report.selector.plan_stale, 5, "only the pre-install batch");
        assert_eq!(report.plan_migrations, 5, "the post-install batch migrates");
        assert_eq!(report.stranded, 0);
        // per-window: stale freezes stop accruing once the re-plan lands
        assert_eq!(report.windows[0].plan_stale_freezes, 5);
        assert_eq!(report.windows[0].plan_installs, 1);
        assert_eq!(report.windows[1].plan_stale_freezes, 0);
    }

    #[test]
    fn demand_drift_is_stale_until_replan() {
        let (topo, cat, id) = world();
        let jp = topo.country_by_name("JP");
        let pune = topo.dc_by_name("Pune");
        let mut db = CallRecordsDb::new(cat.clone());
        for i in 0..4 {
            db.push(record(i, id, 0, 30, jp)); // freeze at 5: before drift
        }
        for i in 4..8 {
            db.push(record(i, id, 30, 30, jp)); // freeze at 35: drifted
        }
        for i in 8..12 {
            db.push(record(i, id, 90, 30, jp)); // freeze at 95: re-planned
        }
        let quotas = all_at(id, pune, 5, 10.0);
        let timeline = FaultTimeline::new().with(FaultEvent::DemandDrift {
            at: 30,
            factor: 1.5,
        });
        // no recovery minute: without a replanner the drifted plan never
        // becomes trustworthy again
        let bare = ReplayDriver::new(&topo, &cat, &db, quotas.clone())
            .faults(timeline.clone())
            .run();
        assert_eq!(bare.plan_migrations, 4);
        assert_eq!(bare.selector.plan_stale, 8);
        // a replanner triggered by the drift re-plans against the drifted
        // forecast (factor visible in the request state)
        let mut drift_seen = 0.0f64;
        let mut rp = Replanner::new(20, |req: &ReplanRequest| {
            drift_seen = req.state.demand_factor;
            Some(Arc::new(plan_all_at(id, pune, 5, 15.0, req.epoch)))
        });
        let report = ReplayDriver::new(&topo, &cat, &db, quotas)
            .faults(timeline)
            .replanner(&mut rp)
            .run();
        drop(rp);
        assert_eq!(drift_seen, 1.5);
        assert_eq!(report.plan_installs, 1);
        // drifted batch froze at 35 < install 50 → stale; last batch planned
        assert_eq!(report.selector.plan_stale, 4);
        assert_eq!(report.plan_migrations, 8);
    }

    #[test]
    fn concurrent_replanned_chaos_matches_serial_across_swaps() {
        let (topo, cat, id) = world();
        let jp = topo.country_by_name("JP");
        let tokyo = topo.dc_by_name("Tokyo");
        let pune = topo.dc_by_name("Pune");
        let mut db = CallRecordsDb::new(cat.clone());
        for i in 0..180 {
            db.push(record(i, id, i, 30, jp));
        }
        let quotas = all_at(id, tokyo, 6, 40.0);
        // DC-down + staleness: the re-plan lands mid-outage and moves quota
        let timeline = FaultTimeline::new()
            .with(FaultEvent::DcDown {
                dc: tokyo,
                at: 60,
                recover_at: Some(120),
            })
            .with(FaultEvent::PlanStale {
                from: 60,
                until: None,
            });
        let cfg = ChaosConfig {
            window_minutes: 60,
            ..ChaosConfig::default()
        };
        let build = |req: &ReplanRequest| {
            // quota moves to Pune while Tokyo is down
            let dc = if req.state.mask.dc_up(tokyo) {
                tokyo
            } else {
                pune
            };
            Some(Arc::new(plan_all_at(id, dc, 6, 40.0, req.epoch)))
        };
        let serial = {
            let mut rp = Replanner::new(15, build);
            ReplayDriver::new(&topo, &cat, &db, quotas.clone())
                .faults(timeline.clone())
                .config(cfg.clone())
                .replanner(&mut rp)
                .run()
        };
        assert!(serial.plan_installs >= 1);
        assert!(serial.forced_migrations > 0);
        for threads in [1usize, 4] {
            let mut rp = Replanner::new(15, build);
            let conc = ReplayDriver::new(&topo, &cat, &db, quotas.clone())
                .faults(timeline.clone())
                .config(cfg.clone())
                .threads(threads)
                .replanner(&mut rp)
                .run();
            assert_eq!(serial.stats(), conc.stats(), "threads={threads}");
        }
    }

    #[test]
    fn concurrent_chaos_matches_serial_through_an_outage() {
        let (topo, cat, id) = world();
        let jp = topo.country_by_name("JP");
        let tokyo = topo.dc_by_name("Tokyo");
        let mut db = CallRecordsDb::new(cat.clone());
        for i in 0..180 {
            db.push(record(i, id, i, 30, jp));
        }
        let quotas = all_at(id, tokyo, 6, 40.0);
        let timeline = FaultTimeline::from_scenario(FailureScenario::DcDown(tokyo), 60, Some(120));
        let cfg = ChaosConfig {
            window_minutes: 60,
            ..ChaosConfig::default()
        };
        let serial = ReplayDriver::new(&topo, &cat, &db, quotas.clone())
            .faults(timeline.clone())
            .config(cfg.clone())
            .run();
        for threads in [1usize, 4] {
            let conc = ReplayDriver::new(&topo, &cat, &db, quotas.clone())
                .faults(timeline.clone())
                .config(cfg.clone())
                .threads(threads)
                .run();
            assert_eq!(serial.stats(), conc.stats(), "threads={threads}");
        }
        assert!(
            serial.forced_migrations > 0,
            "outage must exercise re-homes"
        );
    }

    /// Killing engine workers mid-segment (the coordinator serially drives
    /// the orphaned ops) must not change the aggregate stats: the delayed
    /// tail is just another valid interleaving under pool-pinning.
    #[test]
    fn worker_deaths_with_takeover_match_serial_stats() {
        let (topo, cat, id) = world();
        let jp = topo.country_by_name("JP");
        let tokyo = topo.dc_by_name("Tokyo");
        let mut db = CallRecordsDb::new(cat.clone());
        for i in 0..120 {
            db.push(record(i, id, i % 60, 30, jp));
        }
        let quotas = all_at(id, tokyo, 4, 120.0);
        let serial = ReplayDriver::new(&topo, &cat, &db, quotas.clone()).run();
        assert_eq!(serial.worker_deaths, 0);
        // one scheduled death per worker slot: whichever slots actually
        // receive op lists die mid-segment and hand their tail over
        let deaths: Vec<ServiceFault> = (0..3)
            .map(|w| ServiceFault::WorkerDeath {
                worker: w,
                after_ops: 7,
            })
            .collect();
        let conc = ReplayDriver::new(&topo, &cat, &db, quotas)
            .threads(3)
            .service_faults(deaths)
            .run();
        assert_eq!(serial.stats(), conc.stats());
        assert!(conc.worker_deaths >= 1, "{}", conc.worker_deaths);
        assert!(conc.takeover_ops > 0, "{}", conc.takeover_ops);
    }
}
