//! The daily allocation plan (§5.3, Eq. 10): with capacities fixed to what
//! was provisioned, choose per-slot, per-config DC shares minimizing mean
//! ACL. Because capacities are constants here, the LP decomposes per time
//! slot into small independent problems.

use sb_lp::{LpProblem, Solver, Var};
use sb_net::{LinkId, ProvisionedCapacity};
use sb_workload::ConfigId;

use crate::formulation::{PlanningInputs, ProvisionError, ScenarioData, SolveOptions};
use crate::shares::AllocationShares;

/// Compute the latency-optimal allocation plan under fixed capacity.
///
/// Returns shares for every `(config, slot)` with demand. Infeasibility (the
/// capacity cannot place a slot's demand within the latency filter) is
/// reported as an error naming the scenario.
pub fn allocation_plan(
    inputs: &PlanningInputs<'_>,
    sd: &ScenarioData,
    capacity: &ProvisionedCapacity,
    opts: &SolveOptions,
) -> Result<AllocationShares, ProvisionError> {
    let topo = inputs.topo;
    let demand = inputs.demand;
    let mut shares = AllocationShares::new(demand.num_slots());

    // precompute per config: allowed DCs + per-DC link loads
    struct CfgInfo {
        id: ConfigId,
        allowed: Vec<(sb_net::DcId, f64)>,
        call_cl: f64,
        per_dc_links: Vec<Vec<(LinkId, f64)>>,
    }
    let mut infos: Vec<CfgInfo> = Vec::new();
    for (cfg_id, cfg) in inputs.catalog.iter() {
        // the demand matrix may cover fewer configs than the catalog; skip
        // (not stop at) configs beyond it — catalog order is not guaranteed
        // to put all in-demand configs first
        if cfg_id.index() >= demand.num_configs() {
            continue;
        }
        if demand.series(cfg_id).iter().all(|&d| d <= opts.min_demand) {
            continue;
        }
        let allowed = sd.latmap.allowed_dcs(cfg, inputs.latency_threshold_ms);
        if allowed.is_empty() {
            continue;
        }
        let nl = cfg.leg_network_load();
        let per_dc_links = allowed
            .iter()
            .map(|&(dc, _)| {
                let mut loads: Vec<(LinkId, f64)> = Vec::new();
                for &(country, n) in cfg.participants() {
                    if let Some(route) = sd.routing.route(country, dc) {
                        for &l in &route.links {
                            match loads.iter_mut().find(|(ll, _)| *ll == l) {
                                Some((_, w)) => *w += n as f64 * nl,
                                None => loads.push((l, n as f64 * nl)),
                            }
                        }
                    }
                }
                loads
            })
            .collect();
        infos.push(CfgInfo {
            id: cfg_id,
            allowed,
            call_cl: cfg.compute_load(),
            per_dc_links,
        });
    }

    // headroom against round-off between the provisioning LP and this one
    let slack = |v: f64| v * (1.0 + 1e-7) + 1e-7;

    for slot in 0..demand.num_slots() {
        let mut lp = LpProblem::new();
        let mut compute_rows: Vec<Vec<(Var, f64)>> = vec![Vec::new(); topo.dcs.len()];
        let mut network_rows: Vec<Vec<(Var, f64)>> = vec![Vec::new(); topo.links.len()];
        let mut vars: Vec<(ConfigId, sb_net::DcId, Var, f64)> = Vec::new();
        let mut any = false;
        for info in &infos {
            let d = demand.get(info.id, slot);
            if d <= opts.min_demand {
                continue;
            }
            any = true;
            let mut completeness = Vec::with_capacity(info.allowed.len());
            for (k, &(dc, acl)) in info.allowed.iter().enumerate() {
                let v = lp.add_var(format!("S_{}_{}", info.id.index(), dc.index()), acl, 0.0, d);
                completeness.push((v, 1.0));
                compute_rows[dc.index()].push((v, info.call_cl));
                for &(l, w) in &info.per_dc_links[k] {
                    network_rows[l.index()].push((v, w));
                }
                vars.push((info.id, dc, v, d));
            }
            lp.add_eq(completeness, d);
        }
        if !any {
            continue;
        }
        for dc in topo.dc_ids() {
            let row = std::mem::take(&mut compute_rows[dc.index()]);
            if !row.is_empty() {
                lp.add_le(row, slack(capacity.cores[dc.index()]));
            }
        }
        for l in topo.link_ids() {
            let row = std::mem::take(&mut network_rows[l.index()]);
            if !row.is_empty() {
                lp.add_le(row, slack(capacity.gbps[l.index()]));
            }
        }
        let sol = opts
            .solver
            .solve(&lp)
            .map_err(|source| ProvisionError::Lp {
                scenario: sd.scenario,
                source,
            })?;
        use std::collections::HashMap;
        let mut grouped: HashMap<ConfigId, Vec<(sb_net::DcId, f64)>> = HashMap::new();
        for (cfg, dc, v, d) in vars {
            let val = sol.value(v).max(0.0);
            if val > 1e-9 * d.max(1.0) {
                grouped.entry(cfg).or_default().push((dc, val / d));
            }
        }
        for (cfg, fr) in grouped {
            shares.set(cfg, slot, fr);
        }
    }
    Ok(shares)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formulation::{solve_scenario, PlanningInputs};
    use crate::usage::{compute_usage, mean_acl, placed_fraction};
    use sb_net::{FailureScenario, Topology};
    use sb_workload::{CallConfig, ConfigCatalog, DemandMatrix, MediaType};

    fn instance() -> (Topology, ConfigCatalog, DemandMatrix) {
        let topo = sb_net::presets::toy_three_dc();
        let jp = topo.country_by_name("JP");
        let iin = topo.country_by_name("IN");
        let mut cat = ConfigCatalog::new();
        let c_jp = cat.intern(CallConfig::new(vec![(jp, 2)], MediaType::Audio));
        let c_in = cat.intern(CallConfig::new(vec![(iin, 2)], MediaType::Audio));
        let mut demand = DemandMatrix::zero(2, 2, 30, 0);
        demand.set(c_jp, 0, 100.0);
        demand.set(c_jp, 1, 10.0);
        demand.set(c_in, 0, 10.0);
        demand.set(c_in, 1, 100.0);
        (topo, cat, demand)
    }

    #[test]
    fn plan_fits_capacity_and_places_everything() {
        let (topo, cat, demand) = instance();
        let inputs = PlanningInputs {
            topo: &topo,
            catalog: &cat,
            demand: &demand,
            latency_threshold_ms: 120.0,
        };
        let sd = ScenarioData::compute(&topo, FailureScenario::None);
        let opts = SolveOptions::default();
        let prov = solve_scenario(&inputs, &sd, None, &opts).unwrap();
        let plan = allocation_plan(&inputs, &sd, &prov.capacity, &opts).unwrap();
        assert!((placed_fraction(&demand, &plan) - 1.0).abs() < 1e-6);
        let usage = compute_usage(&topo, &sd.routing, &cat, &demand, &plan);
        assert!(usage.fits_within(&prov.capacity, 1e-3));
    }

    #[test]
    fn plan_acl_no_worse_than_provisioning_shares() {
        // Eq. 10 minimizes ACL given capacity, so it must weakly beat the
        // cost-optimal shares on latency
        let (topo, cat, demand) = instance();
        let inputs = PlanningInputs {
            topo: &topo,
            catalog: &cat,
            demand: &demand,
            latency_threshold_ms: 120.0,
        };
        let sd = ScenarioData::compute(&topo, FailureScenario::None);
        let opts = SolveOptions::default();
        let prov = solve_scenario(&inputs, &sd, None, &opts).unwrap();
        let plan = allocation_plan(&inputs, &sd, &prov.capacity, &opts).unwrap();
        let acl_plan = mean_acl(&sd.latmap, &cat, &demand, &plan);
        let acl_prov = mean_acl(&sd.latmap, &cat, &demand, &prov.shares);
        assert!(
            acl_plan <= acl_prov + 1e-6,
            "plan {acl_plan} vs prov {acl_prov}"
        );
    }

    #[test]
    fn generous_capacity_yields_locality_first_allocation() {
        // with unconstrained capacity, the latency-optimal plan is LF
        let (topo, cat, demand) = instance();
        let inputs = PlanningInputs {
            topo: &topo,
            catalog: &cat,
            demand: &demand,
            latency_threshold_ms: 120.0,
        };
        let sd = ScenarioData::compute(&topo, FailureScenario::None);
        let big = ProvisionedCapacity {
            cores: vec![1e9; topo.dcs.len()],
            gbps: vec![1e9; topo.links.len()],
        };
        let plan = allocation_plan(&inputs, &sd, &big, &SolveOptions::default()).unwrap();
        let tokyo = topo.dc_by_name("Tokyo");
        let pune = topo.dc_by_name("Pune");
        assert_eq!(plan.get(sb_workload::ConfigId(0), 0), &[(tokyo, 1.0)]);
        assert_eq!(plan.get(sb_workload::ConfigId(1), 1), &[(pune, 1.0)]);
    }

    #[test]
    fn sparse_catalog_beyond_demand_matrix_does_not_truncate_plan() {
        // The catalog holds more configs than the demand matrix covers. The
        // out-of-range configs must be skipped individually, not end the
        // scan: every in-range config with demand still gets shares.
        let (topo, cat, demand) = instance();
        let jp = topo.country_by_name("JP");
        let mut cat = cat;
        // configs 2..6 exist in the catalog but not in the 2-config demand
        // matrix
        for n in 3..7 {
            cat.intern(CallConfig::new(vec![(jp, n)], MediaType::Video));
        }
        assert!(cat.len() > demand.num_configs());
        let inputs = PlanningInputs {
            topo: &topo,
            catalog: &cat,
            demand: &demand,
            latency_threshold_ms: 120.0,
        };
        let sd = ScenarioData::compute(&topo, FailureScenario::None);
        let big = ProvisionedCapacity {
            cores: vec![1e9; topo.dcs.len()],
            gbps: vec![1e9; topo.links.len()],
        };
        let plan = allocation_plan(&inputs, &sd, &big, &SolveOptions::default()).unwrap();
        // both in-demand configs are fully planned, same as with the exact
        // catalog
        assert!((placed_fraction(&demand, &plan) - 1.0).abs() < 1e-6);
        assert!(plan.covers(sb_workload::ConfigId(0)));
        assert!(plan.covers(sb_workload::ConfigId(1)));
        assert!(!plan.covers(sb_workload::ConfigId(3)));
    }

    #[test]
    fn infeasible_capacity_is_an_error() {
        let (topo, cat, demand) = instance();
        let inputs = PlanningInputs {
            topo: &topo,
            catalog: &cat,
            demand: &demand,
            latency_threshold_ms: 120.0,
        };
        let sd = ScenarioData::compute(&topo, FailureScenario::None);
        let tiny = ProvisionedCapacity {
            cores: vec![0.001; topo.dcs.len()],
            gbps: vec![1e9; topo.links.len()],
        };
        assert!(allocation_plan(&inputs, &sd, &tiny, &SolveOptions::default()).is_err());
    }
}
