//! §6.4: frequency of call migration. A call is assigned to the DC closest
//! to its first joiner; once its config freezes (A = 300 s), it migrates if
//! the precomputed allocation plan requires a different DC. The paper
//! measures 1.53 % migrations for Switchboard — the same as locality-first.

use sb_bench::common::print_table;
use sb_core::allocation::allocation_plan;
use sb_core::formulation::{PlanningInputs, ScenarioData, SolveOptions};
use sb_core::provision::{provision, ProvisionerParams};
use sb_core::{baselines, BaselinePolicy, PlanArtifact, PlannedQuotas, RealtimeSelector};
use sb_net::FailureScenario;
use sb_sim::{replay, ReplayConfig};
use sb_workload::{Generator, UniverseParams, WorkloadParams};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (num_configs, daily_calls, slot_minutes, coverage) = if quick {
        (300, 4_000.0, 120, 0.97)
    } else {
        (2_000, 20_000.0, 240, 0.90)
    };
    let topo = sb_net::presets::apac();
    let params = WorkloadParams {
        universe: UniverseParams {
            num_configs,
            ..Default::default()
        },
        daily_calls,
        slot_minutes,
        ..Default::default()
    };
    let generator = Generator::new(&topo, params);

    // plan for day 2 (a Wednesday) from *expected* demand (the daily offline
    // stage, §5.3); replay the *sampled* trace of the same day
    let day = 2;
    let expected = generator.expected_demand(day, 1);
    let selected = expected.top_configs_covering(coverage);
    // §5.2 cushion: plan slots for a bit more than the expectation so Poisson
    // noise rarely exhausts the planned quotas
    let planned_demand = expected.filtered(&selected).scaled(1.15);
    let db = generator.sample_records(day, 1, 9);
    eprintln!(
        "plan covers {} configs; trace has {} calls",
        selected.len(),
        db.len()
    );

    let inputs = PlanningInputs {
        topo: &topo,
        catalog: &generator.universe().catalog,
        demand: &planned_demand,
        latency_threshold_ms: 120.0,
    };
    let sd0 = ScenarioData::compute(&topo, FailureScenario::None);

    // Switchboard: provision serving capacity, then add the backup headroom
    // factor instead of running the full 37-scenario sweep — §6.3 notes that
    // with backup capacity SB's no-failure placement is effectively LF's, and
    // this experiment only needs the capacity envelope the planner sees.
    eprintln!("provisioning + planning (SB) …");
    let plan = provision(
        &inputs,
        &ProvisionerParams {
            with_backup: false,
            ..Default::default()
        },
    )
    .expect("provision");
    let mut capacity = plan.capacity.clone();
    for c in capacity.cores.iter_mut() {
        *c *= 4.0 / 3.0;
    }
    for g in capacity.gbps.iter_mut() {
        *g *= 4.0 / 3.0;
    }
    let sb_shares = allocation_plan(&inputs, &sd0, &capacity, &SolveOptions::default())
        .expect("allocation plan");
    // Locality-first plan
    let lf_shares = baselines::baseline_shares(BaselinePolicy::LocalityFirst, &inputs, &sd0);

    println!("== §6.4: call migration frequency ==\n");
    let mut rows = Vec::new();
    for (name, shares) in [("SB", &sb_shares), ("LF", &lf_shares)] {
        let quotas = PlannedQuotas::from_plan(shares, &planned_demand);
        let selector = RealtimeSelector::from_artifact(&sd0.latmap, &PlanArtifact::seed(quotas));
        let report = replay(
            &topo,
            &sd0.routing,
            &sd0.latmap,
            &generator.universe().catalog,
            &db,
            &selector,
            &ReplayConfig::default(),
        );
        rows.push(vec![
            name.to_string(),
            report.calls.to_string(),
            report.selector.migrations.to_string(),
            format!("{:.2}%", 100.0 * report.selector.migration_rate()),
            format!(
                "{:.2}%",
                100.0 * report.selector.unplanned as f64 / report.calls as f64
            ),
            format!(
                "{:.2}%",
                100.0 * report.selector.overflow as f64 / report.calls as f64
            ),
            format!("{:.1}", report.mean_acl_ms),
        ]);
    }
    print_table(
        &[
            "Scheme",
            "calls",
            "migrations",
            "migration%",
            "unplanned%",
            "overflow%",
            "ACL(ms)",
        ],
        &rows,
    );
    println!(
        "\npaper: SB migrates 1.53% of calls — the same as LF, since both need the\n\
         true participant spread that is only known A minutes into the call."
    );
}
