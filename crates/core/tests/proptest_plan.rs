//! Property tests for plan quota rounding: `PlannedQuotas::from_plan` uses
//! largest-remainder apportionment to turn fractional per-DC shares into
//! integer call quotas, and that conversion must conserve totals — the
//! per-(config, slot) quotas sum to the rounded placed demand, and no DC
//! that holds a zero share is ever handed quota.

use proptest::prelude::*;
use sb_core::{AllocationShares, PlannedQuotas};
use sb_net::DcId;
use sb_workload::{ConfigId, DemandMatrix};

#[derive(Debug, Clone)]
struct Instance {
    /// per (config, slot): integer demand and raw per-DC weights (over 4 DCs);
    /// weights are normalised to shares, zero weights dropped by `set`.
    cells: Vec<Vec<(u16, [u8; 4])>>,
}

fn instance_strategy() -> impl Strategy<Value = Instance> {
    (1usize..4, 1usize..5).prop_flat_map(|(n_cfg, n_slots)| {
        proptest::collection::vec(
            proptest::collection::vec(
                (0u16..300, (0u8..8, 0u8..8, 0u8..8, 0u8..8))
                    .prop_map(|(d, (a, b, c, e))| (d, [a, b, c, e])),
                n_slots,
            ),
            n_cfg,
        )
        .prop_map(|cells| Instance { cells })
    })
}

fn build(inst: &Instance) -> (AllocationShares, DemandMatrix) {
    let n_cfg = inst.cells.len();
    let n_slots = inst.cells[0].len();
    let mut demand = DemandMatrix::zero(n_cfg, n_slots, 30, 0);
    let mut shares = AllocationShares::new(n_slots);
    for (c, row) in inst.cells.iter().enumerate() {
        let cfg = ConfigId(c as u32);
        for (s, &(d, weights)) in row.iter().enumerate() {
            demand.set(cfg, s, d as f64);
            let total: u32 = weights.iter().map(|&w| w as u32).sum();
            if total == 0 {
                continue;
            }
            let fracs: Vec<(DcId, f64)> = weights
                .iter()
                .enumerate()
                .map(|(i, &w)| (DcId(i as u16), w as f64 / total as f64))
                .collect();
            shares.set(cfg, s, fracs);
        }
    }
    (shares, demand)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Largest-remainder rounding conserves totals: for every planned
    /// (config, slot) the integer quotas sum to the rounded placed demand
    /// (== rounded slot demand when shares form a full distribution).
    #[test]
    fn rounding_conserves_totals(inst in instance_strategy()) {
        let (shares, demand) = build(&inst);
        let quotas = PlannedQuotas::from_plan(&shares, &demand);
        let mut expected_total = 0u64;
        for (cfg, slot, fracs) in shares.iter() {
            let d = demand.get(cfg, slot).round() as u32;
            let placed: f64 = fracs.iter().map(|&(_, f)| f * d as f64).sum();
            let want = placed.round() as u32;
            let pool = quotas.get(cfg, slot);
            if d == 0 {
                prop_assert!(pool.is_empty(), "zero-demand slot got a quota pool");
                continue;
            }
            let got: u32 = pool.iter().map(|&(_, q)| q).sum();
            prop_assert_eq!(got, want, "cfg {:?} slot {}: quota {} != rounded demand {}",
                cfg, slot, got, want);
            // shares here sum to 1 exactly, so placed demand is slot demand
            prop_assert_eq!(want, d);
            expected_total += want as u64;
        }
        prop_assert_eq!(quotas.total_quota(), expected_total);
    }

    /// Apportionment never invents placements: every DC holding quota holds
    /// a strictly positive share, and each DC appears at most once per pool.
    #[test]
    fn zero_share_dcs_get_no_quota(inst in instance_strategy()) {
        let (shares, demand) = build(&inst);
        let quotas = PlannedQuotas::from_plan(&shares, &demand);
        for (cfg, slot, fracs) in shares.iter() {
            let pool = quotas.get(cfg, slot);
            let mut seen: Vec<DcId> = Vec::new();
            for &(dc, q) in pool {
                prop_assert!(!seen.contains(&dc), "duplicate pool entry for {dc:?}");
                seen.push(dc);
                let share = fracs.iter().find(|&&(d, _)| d == dc).map(|&(_, f)| f);
                prop_assert!(
                    share.is_some_and(|f| f > 0.0),
                    "cfg {:?} slot {}: DC {:?} got quota {} with share {:?}",
                    cfg, slot, dc, q, share
                );
            }
        }
    }
}
