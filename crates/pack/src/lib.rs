//! # sb-pack — intra-DC call packing onto heterogeneous MP server fleets
//!
//! Switchboard's selector (PAPER.md) answers *which DC* hosts a call. This
//! crate answers the next question — *which media-processing server inside
//! that DC* — following the Tetris line of work (PAPERS.md, arXiv
//! 2508.00426, the same Microsoft conferencing lineage): participant-count
//! growth and CPU heterogeneity, not admission, are what actually create
//! server hotspots and reactive migrations inside a DC.
//!
//! With it, a placement becomes a two-level `(DC, server)` pair end-to-end:
//! `sb-engine` packs at admission, re-packs on participant growth, carries
//! the server id through freeze debits, WAL records and recovery, and
//! drains server deaths in-DC before escalating to the PR-2 degradation
//! ladder.
//!
//! ## Layout
//!
//! | module | contents |
//! |---|---|
//! | [`fleet`] | [`FleetSpec`] capacity classes, [`ServerId`], affine [`CostModel`] |
//! | [`growth`] | [`GrowthModel`] participant-growth predictor on the `sb-predict` Markov chain |
//! | [`packer`] | [`FleetPacker`] scoring, re-pack, eviction, death drains, restore ops |
//!
//! ## Determinism
//!
//! All packing state is integer millicores and every tie-break is total
//! (lowest server index, lowest call id), so a serial op sequence fully
//! determines placements and [`PackStats`] — the contract the differential
//! harness (serial packing oracle vs concurrent replay) checks bitwise.
//! Predicted load only shapes *scores*; the `used ≤ capacity` invariant is
//! enforced on actual cost alone, so a bad model can never cause a
//! capacity violation.
//!
//! Fleet-level `pack.*` counters (placements, migrations, deaths, spills,
//! violations, utilization) are published through the global [`sb_obs`]
//! registry.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fleet;
pub mod growth;
pub mod packer;

pub use fleet::{CostModel, FleetSpec, ServerClass, ServerId, NO_SERVER};
pub use growth::{GrowthConfig, GrowthModel};
pub use packer::{
    best_fit_decreasing, CallInfo, FleetPacker, GrowKind, GrowOutcome, KillResult, MoveDcOutcome,
    PackPolicy, PackStateExport, PackStats, PackerConfig, SpilledCall,
};
