//! Property tests for routing: on random topologies, shortest-path routes
//! must be internally consistent and failures can only make latency worse.

use proptest::prelude::*;
use sb_net::{
    CountryId, DcId, FailureScenario, GeoPoint, LinkId, Node, RoutingTable, Topology,
    TopologyBuilder,
};

/// A random connected topology: `n_dcs` DCs on a ring of DC–DC links plus
/// random chords, and countries hooked to `k` random DCs.
fn random_topology(
    n_dcs: usize,
    n_countries: usize,
    chords: &[(usize, usize)],
    uplinks: &[Vec<usize>],
    lats: &[u16],
) -> Topology {
    let mut b = TopologyBuilder::new();
    let r = b.region("R");
    let mut dcs = Vec::new();
    for i in 0..n_dcs {
        let p = GeoPoint::new(10.0 + i as f64 * 3.0, 100.0 + i as f64 * 5.0);
        dcs.push(b.datacenter(format!("dc{i}"), r, p, 100.0));
    }
    let mut lat_iter = lats.iter().cycle();
    let mut next_lat = || 1.0 + *lat_iter.next().unwrap() as f64;
    for i in 0..n_dcs {
        let j = (i + 1) % n_dcs;
        if i != j {
            b.link_with_latency(Node::Dc(dcs[i]), Node::Dc(dcs[j]), next_lat(), 10.0);
        }
    }
    for &(i, j) in chords {
        let (i, j) = (i % n_dcs, j % n_dcs);
        if i != j {
            b.link_with_latency(Node::Dc(dcs[i]), Node::Dc(dcs[j]), next_lat(), 10.0);
        }
    }
    for (c, ups) in uplinks.iter().enumerate().take(n_countries) {
        let p = GeoPoint::new(-10.0 - c as f64 * 2.0, 80.0 + c as f64 * 4.0);
        let cid = b.country(format!("c{c}"), r, p, c as f64, 1.0);
        let mut connected = std::collections::HashSet::new();
        for &u in ups {
            connected.insert(u % n_dcs);
        }
        connected.insert(c % n_dcs); // at least one uplink
        for u in connected {
            b.link_with_latency(Node::Edge(cid), Node::Dc(dcs[u]), next_lat(), 5.0);
        }
    }
    b.build()
}

fn topo_strategy() -> impl Strategy<Value = Topology> {
    (
        2usize..6,
        1usize..4,
        proptest::collection::vec((0usize..6, 0usize..6), 0..4),
        proptest::collection::vec(proptest::collection::vec(0usize..6, 1..3), 1..4),
        proptest::collection::vec(1u16..40, 8..20),
    )
        .prop_map(|(n_dcs, n_countries, chords, uplinks, lats)| {
            let n_countries = n_countries.min(uplinks.len());
            random_topology(n_dcs, n_countries, &chords, &uplinks, &lats)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Route latency equals the sum of its links' latencies, the route's
    /// links form a connected chain starting at the edge site, and `in_path`
    /// agrees with the route.
    #[test]
    fn routes_are_consistent(topo in topo_strategy()) {
        let rt = RoutingTable::compute(&topo, FailureScenario::None);
        for c in topo.country_ids() {
            for d in topo.dc_ids() {
                let Some(route) = rt.route(c, d) else { continue };
                let sum: f64 = route
                    .links
                    .iter()
                    .map(|l| topo.links[l.index()].latency_ms)
                    .sum();
                prop_assert!((sum - route.latency_ms).abs() < 1e-9);
                // chain check: walk from the edge site
                let mut at = Node::Edge(c);
                for &lid in &route.links {
                    let link = &topo.links[lid.index()];
                    prop_assert!(link.a == at || link.b == at, "route not a chain");
                    at = if link.a == at { link.b } else { link.a };
                }
                prop_assert_eq!(at, Node::Dc(d), "route must end at the DC");
                for l in topo.link_ids() {
                    prop_assert_eq!(rt.in_path(l, d, c), route.uses(l));
                }
            }
        }
    }

    /// A failure can only remove options: latency never improves, and routes
    /// never use failed elements.
    #[test]
    fn failures_only_hurt(topo in topo_strategy()) {
        let rt0 = RoutingTable::compute(&topo, FailureScenario::None);
        let mut scenarios = vec![];
        scenarios.extend(topo.dc_ids().map(FailureScenario::DcDown));
        scenarios.extend(topo.link_ids().map(FailureScenario::LinkDown));
        for sc in scenarios {
            let rt = RoutingTable::compute(&topo, sc);
            for c in topo.country_ids() {
                for d in topo.dc_ids() {
                    match (rt0.latency_ms(c, d), rt.latency_ms(c, d)) {
                        (None, Some(_)) => prop_assert!(false, "failure created a route"),
                        (Some(base), Some(failed)) => {
                            prop_assert!(failed >= base - 1e-9, "failure improved latency")
                        }
                        _ => {}
                    }
                    if let Some(route) = rt.route(c, d) {
                        if let FailureScenario::DcDown(down) = sc {
                            prop_assert!(d != down);
                            for &l in &route.links {
                                let link = &topo.links[l.index()];
                                prop_assert!(link.a != Node::Dc(down) && link.b != Node::Dc(down));
                            }
                        }
                        if let FailureScenario::LinkDown(down) = sc {
                            prop_assert!(!route.uses(down));
                        }
                    }
                }
            }
        }
    }

    /// Shortest-path optimality spot check: no single link can beat the
    /// computed route (triangle inequality over the route set).
    #[test]
    fn no_direct_link_beats_route(topo in topo_strategy()) {
        let rt = RoutingTable::compute(&topo, FailureScenario::None);
        for c in topo.country_ids() {
            for link in &topo.links {
                let (edge, dc) = match (link.a, link.b) {
                    (Node::Edge(e), Node::Dc(d)) | (Node::Dc(d), Node::Edge(e)) => (e, d),
                    _ => continue,
                };
                if edge == c {
                    let best = rt.latency_ms(c, dc).unwrap();
                    prop_assert!(best <= link.latency_ms + 1e-9);
                }
            }
        }
    }
}

#[test]
fn deterministic_tie_breaking() {
    // equal-latency parallel paths must resolve deterministically
    let mut b = TopologyBuilder::new();
    let r = b.region("R");
    let d0 = b.datacenter("a", r, GeoPoint::new(0.0, 0.0), 100.0);
    let d1 = b.datacenter("b", r, GeoPoint::new(0.0, 10.0), 100.0);
    let c = b.country("c", r, GeoPoint::new(1.0, 0.0), 0.0, 1.0);
    b.link_with_latency(Node::Edge(c), Node::Dc(d0), 5.0, 1.0);
    b.link_with_latency(Node::Edge(c), Node::Dc(d1), 5.0, 1.0);
    b.link_with_latency(Node::Dc(d0), Node::Dc(d1), 5.0, 1.0);
    let topo = b.build();
    let r1 = RoutingTable::compute(&topo, FailureScenario::None);
    let r2 = RoutingTable::compute(&topo, FailureScenario::None);
    for dc in topo.dc_ids() {
        assert_eq!(r1.route(CountryId(0), dc), r2.route(CountryId(0), dc));
        assert_eq!(r1.route(CountryId(0), dc).unwrap().links.len(), 1);
    }
    let _ = (DcId(0), LinkId(0));
}
