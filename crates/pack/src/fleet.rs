//! Heterogeneous per-DC server-fleet model.
//!
//! A fleet is a list of media-processing (MP) servers per data center, each
//! with a CPU capacity expressed in **millicores** (`mcpu`). Calls consume an
//! integer millicore cost that grows with participant count (see
//! [`CostModel`]). Everything in this module is plain integer bookkeeping so
//! the packing layer can be compared bitwise between serial and concurrent
//! drivers.

use sb_net::DcId;

/// Sentinel server index meaning "this call holds no server slot".
///
/// Mirrors `sb_engine::wal::NO_DC`: WAL records and exports use it where a
/// call was admitted at the DC level but could not be packed onto a server.
pub const NO_SERVER: u16 = u16::MAX;

/// A CPU capacity class: `count` identical servers of `capacity_mcpu` each.
///
/// Fleets are described as a list of classes per DC so heterogeneous
/// deployments (a few big boxes plus many small ones) are one-liners.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerClass {
    /// Number of servers in this class.
    pub count: u16,
    /// Per-server CPU capacity in millicores.
    pub capacity_mcpu: u32,
}

/// Fully-qualified server identity: `(DC, server index within the DC)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ServerId {
    /// Data center the server lives in.
    pub dc: DcId,
    /// Index of the server inside its DC's fleet (dense, starting at 0).
    pub index: u16,
}

impl std::fmt::Display for ServerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dc{}/s{}", self.dc.0, self.index)
    }
}

/// Static description of every server in every DC.
///
/// `per_dc[d][s]` is the capacity in millicores of server `s` in DC `d`.
/// The spec is immutable once built; liveness (server death) is dynamic
/// state owned by the packer, not the spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetSpec {
    per_dc: Vec<Vec<u32>>,
}

impl FleetSpec {
    /// A fleet where every one of `dcs` DCs has `count` servers of
    /// `capacity_mcpu` millicores each.
    pub fn uniform(dcs: usize, count: u16, capacity_mcpu: u32) -> Self {
        let dc = vec![capacity_mcpu; count as usize];
        Self {
            per_dc: vec![dc; dcs],
        }
    }

    /// A fleet where every DC has the same mix of capacity classes.
    pub fn heterogeneous(dcs: usize, classes: &[ServerClass]) -> Self {
        let mut dc = Vec::new();
        for c in classes {
            for _ in 0..c.count {
                dc.push(c.capacity_mcpu);
            }
        }
        Self {
            per_dc: vec![dc; dcs],
        }
    }

    /// An empty fleet with `dcs` DCs and no servers; populate with
    /// [`FleetSpec::push_server`].
    pub fn empty(dcs: usize) -> Self {
        Self {
            per_dc: vec![Vec::new(); dcs],
        }
    }

    /// Append one server of `capacity_mcpu` to DC `dc` and return its id.
    ///
    /// # Panics
    /// Panics if `dc` is out of range or the DC already holds
    /// `NO_SERVER` (65535) servers.
    pub fn push_server(&mut self, dc: DcId, capacity_mcpu: u32) -> ServerId {
        let fleet = &mut self.per_dc[dc.0 as usize];
        let index = fleet.len();
        assert!(index < NO_SERVER as usize, "fleet too large for u16 index");
        fleet.push(capacity_mcpu);
        ServerId {
            dc,
            index: index as u16,
        }
    }

    /// Number of DCs covered by the spec.
    pub fn num_dcs(&self) -> usize {
        self.per_dc.len()
    }

    /// Number of servers in DC `dc` (0 for out-of-range DCs).
    pub fn servers_in(&self, dc: DcId) -> usize {
        self.per_dc.get(dc.0 as usize).map_or(0, Vec::len)
    }

    /// Total number of servers across all DCs.
    pub fn num_servers(&self) -> usize {
        self.per_dc.iter().map(Vec::len).sum()
    }

    /// Per-server capacities of DC `dc`.
    ///
    /// # Panics
    /// Panics if `dc` is out of range.
    pub fn capacities(&self, dc: DcId) -> &[u32] {
        &self.per_dc[dc.0 as usize]
    }

    /// Total capacity of DC `dc` in millicores.
    pub fn dc_capacity_mcpu(&self, dc: DcId) -> u64 {
        self.per_dc
            .get(dc.0 as usize)
            .map_or(0, |v| v.iter().map(|&c| c as u64).sum())
    }

    /// Flattened index of `server` across all DCs, in `(dc, index)` order.
    ///
    /// Used for dense per-server tally vectors in replay stats and benches.
    ///
    /// # Panics
    /// Panics if the server does not exist in the spec.
    pub fn flat_index(&self, server: ServerId) -> usize {
        let dc = server.dc.0 as usize;
        assert!(
            (server.index as usize) < self.per_dc[dc].len(),
            "server {server} not in fleet spec"
        );
        let before: usize = self.per_dc[..dc].iter().map(Vec::len).sum();
        before + server.index as usize
    }
}

/// Affine per-call CPU cost as a function of participant count.
///
/// `cost(p) = base_mcpu + per_participant_mcpu * p`, saturating. Tetris
/// (arXiv 2508.00426) models MP load as roughly linear in participants with
/// a fixed session overhead; the affine model keeps costs integral so the
/// serial and concurrent packers agree bitwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Fixed session overhead in millicores.
    pub base_mcpu: u32,
    /// Marginal cost per participant in millicores.
    pub per_participant_mcpu: u32,
}

impl CostModel {
    /// Millicore cost of a call with `participants` participants.
    pub fn cost_mcpu(&self, participants: u32) -> u32 {
        self.base_mcpu
            .saturating_add(self.per_participant_mcpu.saturating_mul(participants))
    }
}

impl Default for CostModel {
    /// 300 mcpu session overhead plus 250 mcpu per participant — a small
    /// SFU-style media server where a ~30-party call saturates two cores.
    fn default() -> Self {
        Self {
            base_mcpu: 300,
            per_participant_mcpu: 250,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_and_heterogeneous_fleets() {
        let u = FleetSpec::uniform(3, 4, 8_000);
        assert_eq!(u.num_dcs(), 3);
        assert_eq!(u.num_servers(), 12);
        assert_eq!(u.dc_capacity_mcpu(DcId(1)), 32_000);

        let h = FleetSpec::heterogeneous(
            2,
            &[
                ServerClass {
                    count: 2,
                    capacity_mcpu: 16_000,
                },
                ServerClass {
                    count: 3,
                    capacity_mcpu: 4_000,
                },
            ],
        );
        assert_eq!(h.servers_in(DcId(0)), 5);
        assert_eq!(
            h.capacities(DcId(1)),
            &[16_000, 16_000, 4_000, 4_000, 4_000]
        );
        assert_eq!(h.dc_capacity_mcpu(DcId(0)), 44_000);
    }

    #[test]
    fn flat_index_is_dense_and_ordered() {
        let mut spec = FleetSpec::empty(3);
        let a = spec.push_server(DcId(0), 1_000);
        let b = spec.push_server(DcId(1), 1_000);
        let c = spec.push_server(DcId(1), 2_000);
        let d = spec.push_server(DcId(2), 3_000);
        assert_eq!(spec.flat_index(a), 0);
        assert_eq!(spec.flat_index(b), 1);
        assert_eq!(spec.flat_index(c), 2);
        assert_eq!(spec.flat_index(d), 3);
        assert_eq!(spec.num_servers(), 4);
    }

    #[test]
    fn cost_model_is_affine_and_saturating() {
        let m = CostModel::default();
        assert_eq!(m.cost_mcpu(1), 550);
        assert_eq!(m.cost_mcpu(10), 2_800);
        let big = CostModel {
            base_mcpu: u32::MAX,
            per_participant_mcpu: u32::MAX,
        };
        assert_eq!(big.cost_mcpu(7), u32::MAX);
    }

    #[test]
    fn server_id_formats_and_orders() {
        let s = ServerId {
            dc: DcId(3),
            index: 7,
        };
        assert_eq!(s.to_string(), "dc3/s7");
        let t = ServerId {
            dc: DcId(3),
            index: 8,
        };
        assert!(s < t);
    }
}
