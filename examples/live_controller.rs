//! The real-time path (§5.4) as a service: plan offline, then run the day
//! through `sb-engine` — admission, config freeze at A = 300 s, plan
//! tallying, migrations — with call state persisted into the sharded store
//! and per-op latency collected by the engine, finishing with a graceful
//! drain.
//!
//! ```sh
//! cargo run --release --example live_controller
//! ```

use switchboard::core::formulation::{ScenarioData, SolveOptions};
use switchboard::prelude::engine::{Admission, Engine, EngineConfig};
use switchboard::prelude::*;
use switchboard::sim::replay::{build_events, EV_FREEZE, EV_START};

fn main() {
    let topo = switchboard::net::presets::apac();
    let params = WorkloadParams {
        universe: UniverseParams {
            num_configs: 300,
            ..Default::default()
        },
        daily_calls: 3_000.0,
        slot_minutes: 120,
        ..Default::default()
    };
    let generator = Generator::new(&topo, params);

    // offline: provision and compute today's allocation plan
    let day = 2;
    let expected = generator.expected_demand(day, 1);
    let selected = expected.top_configs_covering(0.97);
    let planned = expected.filtered(&selected).scaled(1.3);
    let inputs = PlanningInputs::new(&topo, &generator.universe().catalog, &planned);
    let plan = provision(
        &inputs,
        &ProvisionerParams {
            with_backup: false,
            ..Default::default()
        },
    )
    .expect("provision");
    let sd0 = ScenarioData::compute(&topo, FailureScenario::None);
    let shares =
        allocation_plan(&inputs, &sd0, &plan.capacity, &SolveOptions::default()).expect("plan");

    // online: boot the engine on the plan artifact and offer the day's
    // trace to its admission path in canonical event order
    let db = generator.sample_records(day, 1, 3);
    let quotas = PlannedQuotas::from_plan(&shares, &planned);
    let artifact = PlanArtifact::seed(quotas);
    let engine = Engine::new(&sd0.latmap, &artifact, &EngineConfig::default());
    let records = db.records();
    let mut worker = engine.worker();
    let mut stranded = 0u64;
    for (_, kind, i) in build_events(records, 5) {
        let r = &records[i];
        match kind {
            EV_START => {
                if let Admission::Granted(outcome) = worker.admit(r.id, r.first_joiner) {
                    if outcome.dc().is_none() {
                        stranded += 1;
                    }
                }
            }
            EV_FREEZE => {
                if worker.current_dc(r.id).is_some() {
                    worker.freeze(r.id, r.config, r.start_minute);
                }
            }
            _ => worker.end(r.id),
        }
    }
    worker.flush();

    let stats = engine.stats();
    println!(
        "engine served {} calls ({stranded} stranded):",
        stats.admitted
    );
    println!("  migrations          {}", stats.selector.migrations);
    println!("  unplanned configs   {}", stats.selector.unplanned);
    println!("  quota overflows     {}", stats.selector.overflow);
    println!("  store writes        {}", stats.store_writes);
    let ops = engine.op_latency();
    println!(
        "  selector op latency p50 {:?}, p99 {:?}, p999 {:?}",
        ops.quantile(0.5),
        ops.quantile(0.99),
        ops.quantile(0.999)
    );

    // end of day: drain — no new admissions, in-flight calls finish
    engine.begin_drain();
    assert!(matches!(
        worker.admit(u64::MAX, records[0].first_joiner),
        Admission::Draining
    ));
    assert!(engine.drained(), "all calls ended, the drain completes");
    println!("\nengine drained: {} calls ended cleanly", stats.ended);
}
