//! # sb-predict — call-config prediction for recurring meetings (§8)
//!
//! If Switchboard could predict the config of an incoming call it could
//! eliminate inter-DC migrations. For recurring meetings the paper trains a
//! variable-length multi-order Markov chain (MOMC) over each participant's
//! attendance history and feeds its outputs into a logistic regression that
//! predicts next-instance attendance; aggregating per-country probabilities
//! yields the predicted call config. The evaluation compares per-country
//! participant-count RMSE/MAE against a previous-instance baseline.

//!
//! ```
//! use sb_predict::{ConfigPredictor, ParticipantHistory, PredictorParams, SeriesHistory};
//!
//! // ten series of one habitual attendee + one alternator
//! let series: Vec<SeriesHistory> = (0..10)
//!     .map(|i| SeriesHistory {
//!         participants: vec![
//!             ParticipantHistory { country: 0, attendance: vec![true; 8] },
//!             ParticipantHistory {
//!                 country: 1,
//!                 attendance: (0..8).map(|t| (t + i) % 2 == 0).collect(),
//!             },
//!         ],
//!     })
//!     .collect();
//! let predictor = ConfigPredictor::train(&series, &PredictorParams::default());
//! // the habitual attendee is predicted present
//! assert!(predictor.attend_probability(&[true; 8]) > 0.7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod logistic;
pub mod momc;
pub mod predictor;

pub use logistic::{Logistic, LogisticParams};
pub use momc::Momc;
pub use predictor::{
    count_error, evaluate, ConfigPredictor, ParticipantHistory, PredictionEval, PredictorParams,
    SeriesHistory,
};
