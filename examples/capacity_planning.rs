//! Capacity planning deep-dive: compare Round-Robin, Locality-First and
//! Switchboard on the same forecast, with and without failure backup —
//! a runnable miniature of the paper's Table 3 analysis with commentary.
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use switchboard::core::provision_baseline;
use switchboard::prelude::*;

fn describe(topo: &Topology, name: &str, cores: f64, wan: f64, cost: f64, acl: f64) {
    let _ = topo;
    println!("  {name:<3} {cores:>8.0} cores  {wan:>6.2} Gbps  ${cost:>9.0}  {acl:>5.1} ms");
}

fn main() {
    let topo = switchboard::net::presets::apac();
    let params = WorkloadParams {
        universe: UniverseParams {
            num_configs: 300,
            ..Default::default()
        },
        daily_calls: 4_000.0,
        slot_minutes: 120,
        ..Default::default()
    };
    let generator = Generator::new(&topo, params);
    let demand = generator.sample_demand(0, 7, 1);
    let selected = demand.top_configs_covering(0.8);
    let envelope: DemandMatrix = demand
        .filtered(&selected)
        .scaled(1.1)
        .envelope_day(generator.slots_per_day());
    let inputs = PlanningInputs::new(&topo, &generator.universe().catalog, &envelope);

    for with_backup in [false, true] {
        println!(
            "\n== {} ==",
            if with_backup {
                "with single-failure backup"
            } else {
                "serving only"
            }
        );
        for (name, policy) in [
            ("RR", BaselinePolicy::RoundRobin),
            ("LF", BaselinePolicy::LocalityFirst),
        ] {
            let p = provision_baseline(policy, &inputs, with_backup);
            describe(
                &topo,
                name,
                p.capacity.total_cores(),
                p.capacity.total_wan_gbps(&topo),
                p.cost,
                p.mean_acl,
            );
        }
        let p = provision(
            &inputs,
            &ProvisionerParams {
                with_backup,
                ..Default::default()
            },
        )
        .expect("SB provisioning");
        // SB's delivered latency comes from the daily allocation plan; for
        // brevity this example reports the capacity side only
        describe(
            &topo,
            "SB",
            p.capacity.total_cores(),
            p.capacity.total_wan_gbps(&topo),
            p.cost,
            f64::NAN,
        );
    }
    println!(
        "\nreading the numbers: RR needs the fewest cores but sprays calls across\n\
         the WAN (cost + latency); LF is latency-optimal but provisions the sum of\n\
         time-shifted local peaks; Switchboard shaves peaks within the 120 ms bound\n\
         and reuses off-peak serving capacity as failure backup (§4.1–§4.2)."
    );
}
