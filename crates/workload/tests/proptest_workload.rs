//! Property tests for the workload pipeline: demand matrices, envelope and
//! selection math, and trace persistence must hold for arbitrary parameters.

use proptest::prelude::*;
use sb_workload::{persist, ConfigId, Generator, UniverseParams, WorkloadParams};

fn params_strategy() -> impl Strategy<Value = WorkloadParams> {
    (
        10usize..80,
        100.0f64..2_000.0,
        prop_oneof![Just(60u32), Just(120), Just(240)],
        0u64..50,
    )
        .prop_map(
            |(num_configs, daily_calls, slot_minutes, seed)| WorkloadParams {
                universe: UniverseParams {
                    num_configs,
                    seed,
                    ..Default::default()
                },
                daily_calls,
                slot_minutes,
                seed,
                ..Default::default()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Expected demand is non-negative, weekly total tracks `daily_calls`,
    /// and the envelope day dominates every day of the window.
    #[test]
    fn demand_matrix_invariants(params in params_strategy()) {
        let topo = sb_net::presets::apac();
        let g = Generator::new(&topo, params.clone());
        let demand = g.expected_demand(0, 7);
        let spd = g.slots_per_day();
        prop_assert_eq!(demand.num_slots(), spd * 7);
        let total = demand.total_calls();
        prop_assert!(total > 0.0);
        prop_assert!(
            (total - 7.0 * params.daily_calls).abs() < 0.2 * 7.0 * params.daily_calls,
            "weekly total {} vs {}/day",
            total,
            params.daily_calls
        );
        let env = demand.envelope_day(spd);
        for c in 0..demand.num_configs() {
            let id = ConfigId(c as u32);
            for (s, &v) in demand.series(id).iter().enumerate() {
                prop_assert!(v >= 0.0);
                prop_assert!(env.get(id, s % spd) >= v - 1e-12);
            }
        }
    }

    /// Top-coverage selection really covers what it claims, in rank order.
    #[test]
    fn coverage_selection_is_correct(params in params_strategy(), frac in 0.2f64..0.95) {
        let topo = sb_net::presets::apac();
        let g = Generator::new(&topo, params);
        let demand = g.expected_demand(0, 7);
        let selected = demand.top_configs_covering(frac);
        let total = demand.total_calls();
        let covered: f64 = selected
            .iter()
            .map(|&id| demand.series(id).iter().sum::<f64>())
            .collect::<Vec<_>>()
            .iter()
            .sum();
        prop_assert!(covered >= frac * total - 1e-9, "covered {covered} of {total}");
        // dropping the last selected config must fall below the target
        if selected.len() > 1 {
            let all = demand.config_totals();
            let without_last: f64 = covered - all[selected.last().unwrap().index()];
            prop_assert!(without_last < frac * total + 1e-9);
        }
        // selection is by descending popularity
        let totals = demand.config_totals();
        for w in selected.windows(2) {
            prop_assert!(totals[w[0].index()] >= totals[w[1].index()] - 1e-12);
        }
    }

    /// Traces round-trip through the TSV persistence byte-exactly at the
    /// record level.
    #[test]
    fn trace_persistence_roundtrip(params in params_strategy()) {
        let topo = sb_net::presets::apac();
        let g = Generator::new(&topo, params);
        let db = g.sample_records(0, 1, 99);
        let text = persist::to_tsv(&db);
        let back = persist::from_tsv(&text).unwrap();
        prop_assert_eq!(back.len(), db.len());
        for (a, b) in db.records().iter().zip(back.records()) {
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(a.start_minute, b.start_minute);
            prop_assert_eq!(a.duration_min, b.duration_min);
            prop_assert_eq!(a.first_joiner, b.first_joiner);
            prop_assert_eq!(&a.join_offsets_s, &b.join_offsets_s);
            prop_assert_eq!(
                db.catalog().config(a.config),
                back.catalog().config(b.config)
            );
        }
    }

    /// Sampling is deterministic in the seed and the sampled totals stay
    /// near expectation.
    #[test]
    fn sampling_deterministic_and_unbiased(params in params_strategy()) {
        let topo = sb_net::presets::apac();
        let g = Generator::new(&topo, params);
        let a = g.sample_demand(0, 3, 7);
        let b = g.sample_demand(0, 3, 7);
        prop_assert_eq!(a.total_calls(), b.total_calls());
        let e = g.expected_demand(0, 3).total_calls();
        let s = a.total_calls();
        prop_assert!((s - e).abs() < 0.25 * e.max(50.0), "sampled {s} expected {e}");
    }
}
