//! Property tests: the two simplex engines must agree on random LPs, and any
//! reported optimum must be primal-feasible.

use proptest::prelude::*;
use sb_lp::{Constraint, DenseSimplex, LpError, LpProblem, Relation, RevisedSimplex, Solver};

/// A randomly generated LP description with small integer data, so that
/// tolerance differences between engines cannot flip feasibility verdicts.
#[derive(Debug, Clone)]
struct RandomLp {
    n: usize,
    costs: Vec<i8>,
    uppers: Vec<Option<u8>>,
    rows: Vec<(Vec<i8>, u8, i8)>, // coeffs per var, relation tag, rhs
}

fn random_lp() -> impl Strategy<Value = RandomLp> {
    (1usize..5).prop_flat_map(|n| {
        let costs = proptest::collection::vec(-4i8..5, n);
        let uppers = proptest::collection::vec(proptest::option::of(1u8..9), n);
        let row = (proptest::collection::vec(-3i8..4, n), 0u8..3, -6i8..7);
        let rows = proptest::collection::vec(row, 1..5);
        (costs, uppers, rows).prop_map(move |(costs, uppers, rows)| RandomLp {
            n,
            costs,
            uppers,
            rows,
        })
    })
}

fn build(r: &RandomLp) -> LpProblem {
    let mut lp = LpProblem::new();
    let vars: Vec<_> = (0..r.n)
        .map(|j| {
            let upper = r.uppers[j].map(|u| u as f64).unwrap_or(f64::INFINITY);
            lp.add_var(format!("x{j}"), r.costs[j] as f64, 0.0, upper)
        })
        .collect();
    for (coeffs, rel, rhs) in &r.rows {
        let cs: Vec<_> = coeffs
            .iter()
            .enumerate()
            .filter(|(_, &a)| a != 0)
            .map(|(j, &a)| (vars[j], a as f64))
            .collect();
        if cs.is_empty() {
            continue;
        }
        let rel = match rel {
            0 => Relation::Le,
            1 => Relation::Ge,
            _ => Relation::Eq,
        };
        lp.add_constraint(Constraint {
            coeffs: cs,
            rel,
            rhs: *rhs as f64,
        });
    }
    if lp.num_constraints() == 0 {
        // ensure at least one row so the model is non-trivial
        lp.add_le(vec![(vars[0], 1.0)], 100.0);
    }
    lp
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Engines agree on the outcome class, and on the objective when optimal.
    #[test]
    fn engines_agree(r in random_lp()) {
        let lp = build(&r);
        let d = DenseSimplex::new().solve(&lp);
        let rv = RevisedSimplex::new().solve(&lp);
        match (d, rv) {
            (Ok(a), Ok(b)) => {
                let scale = 1.0 + a.objective().abs();
                prop_assert!((a.objective() - b.objective()).abs() < 1e-6 * scale,
                    "objectives differ: dense={} revised={}", a.objective(), b.objective());
                prop_assert!(lp.max_violation(a.values()) < 1e-6);
                prop_assert!(lp.max_violation(b.values()) < 1e-6);
            }
            (Err(LpError::Infeasible), Err(LpError::Infeasible)) => {}
            (Err(LpError::Unbounded), Err(LpError::Unbounded)) => {}
            (a, b) => prop_assert!(false, "engines disagree: dense={a:?} revised={b:?}"),
        }
    }

    /// A feasible random point can never beat the reported optimum.
    #[test]
    fn optimum_dominates_random_feasible_points(
        r in random_lp(),
        point in proptest::collection::vec(0.0f64..8.0, 1..5)
    ) {
        let lp = build(&r);
        if let Ok(sol) = RevisedSimplex::new().solve(&lp) {
            let mut x = vec![0.0; lp.num_vars()];
            for (j, v) in x.iter_mut().enumerate() {
                *v = *point.get(j).unwrap_or(&0.0);
            }
            if lp.max_violation(&x) < 1e-12 {
                prop_assert!(lp.objective_at(&x) >= sol.objective() - 1e-6,
                    "random feasible point beats 'optimum'");
            }
        }
    }
}
