//! The call-records database (§5, "Call Records Database"): one row per call
//! with its config, timing and join dynamics. This is the synthetic stand-in
//! for Microsoft Teams' 15 months of production records.

use sb_net::CountryId;

use crate::config::{ConfigCatalog, ConfigId};
use crate::demand::DemandMatrix;

/// One call.
#[derive(Clone, Debug)]
pub struct CallRecord {
    /// Unique id.
    pub id: u64,
    /// Interned call configuration.
    pub config: ConfigId,
    /// Absolute UTC minute the first participant joined.
    pub start_minute: u64,
    /// Call duration in minutes.
    pub duration_min: u16,
    /// Country of the first joiner (drives the real-time assigner, §5.4).
    pub first_joiner: CountryId,
    /// Sorted join offsets in seconds per participant (first = 0).
    pub join_offsets_s: Vec<u16>,
}

impl CallRecord {
    /// Absolute UTC minute the call ends.
    pub fn end_minute(&self) -> u64 {
        self.start_minute + self.duration_min as u64
    }
}

/// An in-memory, append-only call-records table.
#[derive(Clone, Debug)]
pub struct CallRecordsDb {
    catalog: ConfigCatalog,
    records: Vec<CallRecord>,
}

impl CallRecordsDb {
    /// Empty database with the given catalog.
    pub fn new(catalog: ConfigCatalog) -> Self {
        CallRecordsDb {
            catalog,
            records: Vec::new(),
        }
    }

    /// Append a record.
    pub fn push(&mut self, r: CallRecord) {
        debug_assert!(r.config.index() < self.catalog.len());
        self.records.push(r);
    }

    /// Number of calls.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records.
    pub fn records(&self) -> &[CallRecord] {
        &self.records
    }

    /// The shared config catalog.
    pub fn catalog(&self) -> &ConfigCatalog {
        &self.catalog
    }

    /// Sort by start time (generators may emit out of order).
    pub fn sort_by_start(&mut self) {
        self.records.sort_by_key(|r| (r.start_minute, r.id));
    }

    /// Group calls into a `(config, slot)` demand matrix — the §5.2 "group
    /// calls happening every 30-minute by their call config" step. Calls
    /// outside `[start_minute, start_minute + num_slots·slot)` are dropped.
    pub fn demand_matrix(
        &self,
        slot_minutes: u32,
        start_minute: u64,
        num_slots: usize,
    ) -> DemandMatrix {
        let mut m = DemandMatrix::zero(self.catalog.len(), num_slots, slot_minutes, start_minute);
        for r in &self.records {
            if let Some(slot) = m.slot_of_minute(r.start_minute) {
                m.add(r.config, slot, 1.0);
            }
        }
        m
    }

    /// Fraction of calls whose majority country equals the first joiner's
    /// country (the §5.4 statistic; 95.2 % in the paper).
    pub fn majority_matches_first_joiner_frac(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let hits = self
            .records
            .iter()
            .filter(|r| self.catalog.config(r.config).majority_country() == r.first_joiner)
            .count();
        hits as f64 / self.records.len() as f64
    }

    /// Join-offset lists for Fig. 8.
    pub fn join_offset_lists(&self) -> Vec<Vec<u16>> {
        self.records
            .iter()
            .map(|r| r.join_offsets_s.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CallConfig, MediaType};

    fn db() -> (CallRecordsDb, ConfigId, ConfigId) {
        let mut cat = ConfigCatalog::new();
        let a = cat.intern(CallConfig::new(vec![(CountryId(0), 3)], MediaType::Audio));
        let b = cat.intern(CallConfig::new(
            vec![(CountryId(0), 1), (CountryId(1), 2)],
            MediaType::Video,
        ));
        let mut db = CallRecordsDb::new(cat);
        db.push(CallRecord {
            id: 0,
            config: a,
            start_minute: 10,
            duration_min: 30,
            first_joiner: CountryId(0),
            join_offsets_s: vec![0, 30, 60],
        });
        db.push(CallRecord {
            id: 1,
            config: b,
            start_minute: 35,
            duration_min: 60,
            first_joiner: CountryId(0), // majority is country 1 → mismatch
            join_offsets_s: vec![0, 120, 400],
        });
        db.push(CallRecord {
            id: 2,
            config: a,
            start_minute: 45,
            duration_min: 15,
            first_joiner: CountryId(0),
            join_offsets_s: vec![0, 10, 20],
        });
        (db, a, b)
    }

    #[test]
    fn demand_matrix_grouping() {
        let (db, a, b) = db();
        let m = db.demand_matrix(30, 0, 2);
        assert_eq!(m.get(a, 0), 1.0);
        assert_eq!(m.get(b, 1), 1.0);
        assert_eq!(m.get(a, 1), 1.0);
        assert_eq!(m.total_calls(), 3.0);
    }

    #[test]
    fn out_of_window_calls_dropped() {
        let (db, _, _) = db();
        let m = db.demand_matrix(30, 0, 1);
        assert_eq!(m.total_calls(), 1.0);
        let m = db.demand_matrix(30, 60, 2);
        assert_eq!(m.total_calls(), 0.0);
    }

    #[test]
    fn majority_fraction() {
        let (db, _, _) = db();
        // 2 of 3 calls have majority == first joiner
        let f = db.majority_matches_first_joiner_frac();
        assert!((f - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn end_minute() {
        let (db, _, _) = db();
        assert_eq!(db.records()[1].end_minute(), 95);
    }

    #[test]
    fn sort_by_start_orders() {
        let (mut db, a, _) = db();
        db.push(CallRecord {
            id: 3,
            config: a,
            start_minute: 1,
            duration_min: 5,
            first_joiner: CountryId(0),
            join_offsets_s: vec![0],
        });
        db.sort_by_start();
        assert_eq!(db.records()[0].id, 3);
    }
}
