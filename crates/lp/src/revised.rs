//! Production engine: revised simplex with implicit variable bounds.
//!
//! Differences from the dense tableau engine:
//!
//! * upper bounds `0 ≤ x ≤ u` are handled natively (bound flips instead of
//!   extra rows), which matters for the provisioning LPs where most
//!   allocation-share variables carry a demand upper bound;
//! * only the basis inverse `B⁻¹` (m×m, dense) is maintained, updated in
//!   `O(m²)` per pivot with periodic refactorization for numerical hygiene;
//! * the constraint matrix stays column-sparse, so pricing costs
//!   `O(m² + nnz)` per iteration rather than `O(m·n)`.
//!
//! Anti-cycling: Dantzig pricing normally, switching to Bland's rule after a
//! run of degenerate pivots; this guarantees termination.

use crate::metrics::lp_metrics;
use crate::problem::{
    Basis, LpError, LpProblem, Solution, SolveRung, SolveStats, Solver, VarStatus,
};
use crate::standard::{PreparedProblem, StandardForm};
use std::time::{Duration, Instant};

/// Column-selection strategy for the entering variable.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Pricing {
    /// Scan every column, pick the most negative reduced cost. Simple and
    /// steep, but each iteration costs a full `O(n)` sweep.
    Dantzig,
    /// Candidate-list partial pricing: a full sweep harvests the
    /// `list_size` most attractive columns, then subsequent iterations price
    /// only that short list (dropping entries that turn unfavorable) until
    /// it runs dry or `full_sweep_every` iterations have passed, whichever
    /// comes first. Optimality is only ever declared by a *full* sweep, so
    /// the strategy trades per-iteration cost for (possibly) more
    /// iterations — never correctness.
    Partial {
        /// Candidate columns kept per full sweep.
        list_size: usize,
        /// Force a full sweep after this many candidate-list iterations
        /// (keeps the list from going stale on degenerate stretches).
        full_sweep_every: u64,
    },
}

impl Pricing {
    /// Partial pricing with the default list size (64) and sweep period
    /// (64) — a good fit for the provisioning LPs (thousands of columns,
    /// few hundred pivots).
    pub fn partial() -> Pricing {
        Pricing::Partial {
            list_size: 64,
            full_sweep_every: 64,
        }
    }
}

/// Revised simplex with bounded variables.
#[derive(Clone, Debug)]
pub struct RevisedSimplex {
    /// Hard iteration cap across both phases (`0` = automatic).
    pub max_iterations: u64,
    /// Wall-clock budget across both phases (`None` = unlimited). Exceeding
    /// it aborts the solve with [`LpError::TimeLimit`]; checked every few
    /// iterations so the overhead is negligible.
    pub time_budget: Option<Duration>,
    /// Reduced-cost / pivot tolerance.
    pub eps: f64,
    /// Primal feasibility tolerance used for the phase-1 decision and for
    /// accepting a warm-started basis.
    pub feas_eps: f64,
    /// Refactorize (recompute `B⁻¹` from scratch) every this many pivots.
    pub refactor_every: u64,
    /// Entering-column selection strategy.
    pub pricing: Pricing,
}

impl Default for RevisedSimplex {
    fn default() -> Self {
        RevisedSimplex {
            max_iterations: 0,
            time_budget: None,
            eps: 1e-9,
            feas_eps: 1e-7,
            refactor_every: 2_000,
            pricing: Pricing::Dantzig,
        }
    }
}

impl RevisedSimplex {
    /// Engine with default tolerances.
    pub fn new() -> Self {
        Self::default()
    }

    /// Same engine with a wall-clock budget.
    pub fn with_time_budget(budget: Duration) -> Self {
        RevisedSimplex {
            time_budget: Some(budget),
            ..Self::default()
        }
    }

    /// Same engine with candidate-list partial pricing (default parameters).
    pub fn with_partial_pricing() -> Self {
        RevisedSimplex {
            pricing: Pricing::partial(),
            ..Self::default()
        }
    }
}

#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum VStat {
    Basic(u32),
    Lower,
    Upper,
}

struct Engine<'a> {
    sf: &'a StandardForm,
    /// Effective upper bound per column (artificials pinned to 0 in phase 2).
    upper: Vec<f64>,
    /// Current objective coefficients (phase 1 or phase 2).
    cost: Vec<f64>,
    status: Vec<VStat>,
    basis: Vec<usize>,
    /// Row-major `m × m` basis inverse.
    binv: Vec<f64>,
    /// Values of basic variables, `xb[i]` belongs to column `basis[i]`.
    xb: Vec<f64>,
    m: usize,
    eps: f64,
    iterations: u64,
    pivots_since_refactor: u64,
    refactor_every: u64,
    refactorizations: u64,
    pricing: Pricing,
    /// Candidate columns harvested by the last full pricing sweep (partial
    /// pricing only).
    cand: Vec<usize>,
    /// Candidate-list iterations since the last full sweep.
    iters_since_full_sweep: u64,
    pricing_scans: u64,
    pricing_cols_scanned: u64,
    full_pricing_sweeps: u64,
}

enum StepOutcome {
    Optimal,
    Unbounded,
    Moved,
}

/// Why an injected warm basis could not be used.
enum WarmReject {
    /// Wrong shape for this standard form, duplicate basic column, or a
    /// numerically singular basis matrix.
    Singular,
    /// The basis factorized fine but the implied point violates bounds
    /// beyond tolerance.
    Infeasible,
}

impl<'a> Engine<'a> {
    fn new(sf: &'a StandardForm, eps: f64, refactor_every: u64, pricing: Pricing) -> Engine<'a> {
        let m = sf.m;
        let mut status = vec![VStat::Lower; sf.n];
        for (i, &b) in sf.basis0.iter().enumerate() {
            status[b] = VStat::Basic(i as u32);
        }
        let mut binv = vec![0.0f64; m * m];
        for i in 0..m {
            binv[i * m + i] = 1.0;
        }
        Engine {
            sf,
            upper: sf.upper.clone(),
            cost: vec![0.0; sf.n],
            status,
            basis: sf.basis0.clone(),
            binv,
            xb: sf.b.clone(),
            m,
            eps,
            iterations: 0,
            pivots_since_refactor: 0,
            refactor_every,
            refactorizations: 0,
            pricing,
            cand: Vec::new(),
            iters_since_full_sweep: 0,
            pricing_scans: 0,
            pricing_cols_scanned: 0,
            full_pricing_sweeps: 0,
        }
    }

    /// Build an engine positioned at `warm` with artificials already pinned,
    /// ready for phase 2. Rejects bases that don't match the standard form,
    /// fail to factorize, or imply a primal-infeasible point.
    fn from_basis(
        sf: &'a StandardForm,
        eps: f64,
        feas_eps: f64,
        refactor_every: u64,
        pricing: Pricing,
        warm: &Basis,
    ) -> Result<Engine<'a>, WarmReject> {
        if warm.basic.len() != sf.m || warm.status.len() != sf.n {
            return Err(WarmReject::Singular);
        }
        let mut eng = Engine::new(sf, eps, refactor_every, pricing);
        // Pin artificials before positioning: a warm basis comes from a
        // finished solve, so any artificial it still carries must stay at 0.
        for j in sf.first_artificial..sf.n {
            eng.upper[j] = 0.0;
        }
        let mut status = vec![VStat::Lower; sf.n];
        for (i, &j) in warm.basic.iter().enumerate() {
            if j >= sf.n || matches!(status[j], VStat::Basic(_)) {
                return Err(WarmReject::Singular);
            }
            status[j] = VStat::Basic(i as u32);
        }
        for (j, st) in status.iter_mut().enumerate() {
            if matches!(st, VStat::Basic(_)) {
                continue;
            }
            // `AtUpper` only survives where the (current) bound is finite
            // and positive — a patched bound may have turned
            // finite↔infinite since the basis was exported, and on a pinned
            // column (upper 0) the two bounds coincide.
            *st = match warm.status[j] {
                VarStatus::AtUpper if eng.upper[j].is_finite() && eng.upper[j] > 0.0 => {
                    VStat::Upper
                }
                _ => VStat::Lower,
            };
        }
        eng.status = status;
        eng.basis = warm.basic.clone();
        if eng.refactorize_repair().is_err() {
            return Err(WarmReject::Singular);
        }
        // Phase-2 costs: the dual ratio test below prices against the real
        // objective (the caller re-assigns the same values before phase 2).
        eng.cost.copy_from_slice(&sf.cost);
        // Primal feasibility of the implied point, row-relative tolerance. A
        // patched problem (new bounds / rhs) usually pushes the old optimal
        // point slightly out of bounds — repair with dual-simplex pivots
        // before giving up on the basis.
        if !eng.primal_feasible(feas_eps) && !eng.dual_restore(feas_eps) {
            return Err(WarmReject::Infeasible);
        }
        Ok(eng)
    }

    /// Does the current basic point satisfy all bounds within `feas_eps`
    /// (row-relative)?
    fn primal_feasible(&self, feas_eps: f64) -> bool {
        (0..self.m).all(|i| {
            let x = self.xb[i];
            let tol = feas_eps * (1.0 + self.sf.b[i].abs());
            if x < -tol {
                return false;
            }
            let ub = self.upper[self.basis[i]];
            !ub.is_finite() || x <= ub + tol
        })
    }

    /// Dual-simplex feasibility restoration. Starting from a factorized
    /// basis whose implied point violates bounds (the typical fate of a warm
    /// basis after a scenario patch pins columns or moves the rhs), pivot
    /// each violated basic variable out to its nearest bound, selecting the
    /// entering column by the bounded-variable dual ratio test so the basis
    /// stays close to dual feasibility.
    ///
    /// This is purely a restoration pass: it never declares optimality (the
    /// primal phase 2 that follows has the full pricing-based test), so any
    /// failure — iteration cap, no sign-eligible entering column, singular
    /// refactorization — just returns `false` and the caller falls back to a
    /// cold two-phase solve. Pivots performed here are counted as phase-1
    /// iterations: they are the warm path's "get feasible" work.
    fn dual_restore(&mut self, feas_eps: f64) -> bool {
        let m = self.m;
        let cap = 2 * (m as u64) + 100;
        let start = self.iterations;
        loop {
            // leaving row: the most-violated basic variable
            let mut leave_row = usize::MAX;
            let mut worst = 0.0f64;
            let mut above = false;
            for i in 0..m {
                let x = self.xb[i];
                let tol = feas_eps * (1.0 + self.sf.b[i].abs());
                if x < -tol {
                    if -x > worst {
                        worst = -x;
                        leave_row = i;
                        above = false;
                    }
                } else {
                    let ub = self.upper[self.basis[i]];
                    if ub.is_finite() && x > ub + tol && x - ub > worst {
                        worst = x - ub;
                        leave_row = i;
                        above = true;
                    }
                }
            }
            if leave_row == usize::MAX {
                if std::env::var_os("SB_LP_RESTORE_DEBUG").is_some() {
                    eprintln!("restore ok after {} pivots", self.iterations - start);
                }
                return true; // primal feasible — basis usable for phase 2
            }
            if self.iterations - start >= cap {
                if std::env::var_os("SB_LP_RESTORE_DEBUG").is_some() {
                    eprintln!("restore cap hit ({cap}), worst viol {worst:.3e}");
                }
                return false;
            }
            if self.pivots_since_refactor >= self.refactor_every && self.refactorize().is_err() {
                if std::env::var_os("SB_LP_RESTORE_DEBUG").is_some() {
                    eprintln!("restore refactor singular");
                }
                return false;
            }
            // α_j = (B⁻¹ A_j)[leave_row]: one dense B⁻¹ row dotted with each
            // sparse column, O(nnz) total.
            let brow = self.binv[leave_row * m..(leave_row + 1) * m].to_vec();
            let y = self.duals();
            let mut enter = usize::MAX;
            let mut best_ratio = f64::INFINITY;
            let mut best_alpha = 0.0f64;
            for j in 0..self.sf.n {
                let st = self.status[j];
                if matches!(st, VStat::Basic(_)) {
                    continue;
                }
                if self.upper[j] <= self.eps {
                    continue; // fixed column (pinned artificial or u = 0)
                }
                let mut alpha = 0.0;
                for &(r, v) in &self.sf.cols[j] {
                    alpha += brow[r] * v;
                }
                if alpha.abs() <= 1e-9 {
                    continue;
                }
                // The entering move (up from lower / down from upper) must
                // push the leaving variable toward its violated bound.
                let at_upper = st == VStat::Upper;
                let eligible = if above {
                    (alpha > 0.0) != at_upper
                } else {
                    (alpha < 0.0) != at_upper
                };
                if !eligible {
                    continue;
                }
                let ratio = self.reduced_cost(j, &y).abs() / alpha.abs();
                if ratio < best_ratio - 1e-12
                    || (ratio < best_ratio + 1e-12 && alpha.abs() > best_alpha.abs())
                {
                    best_ratio = ratio;
                    best_alpha = alpha;
                    enter = j;
                }
            }
            if enter == usize::MAX {
                if std::env::var_os("SB_LP_RESTORE_DEBUG").is_some() {
                    eprintln!(
                        "restore no-enter after {} pivots, worst viol {worst:.3e}",
                        self.iterations - start
                    );
                }
                return false; // no eligible pivot — give up, solve cold
            }
            // Pivot: the leaving variable exits exactly at its violated
            // bound; the entering variable absorbs the difference (possibly
            // overshooting its own bound, which a later round then repairs).
            let leaving = self.basis[leave_row];
            let target = if above { self.upper[leaving] } else { 0.0 };
            let delta = (self.xb[leave_row] - target) / best_alpha;
            let w = self.ftran(enter);
            for i in 0..m {
                if i != leave_row {
                    self.xb[i] -= delta * w[i];
                }
            }
            // A fixed column (pinned artificial, u = 0) leaves "above" at a
            // bound where lower == upper: mark it Lower so phase-2 pricing
            // treats it as fixed.
            self.status[leaving] = if above && self.upper[leaving] > self.eps {
                VStat::Upper
            } else {
                VStat::Lower
            };
            let enter_from = if self.status[enter] == VStat::Upper {
                self.upper[enter]
            } else {
                0.0
            };
            self.xb[leave_row] = enter_from + delta;
            self.basis[leave_row] = enter;
            self.status[enter] = VStat::Basic(leave_row as u32);
            self.update_binv(leave_row, &w);
            self.iterations += 1;
        }
    }

    /// Snapshot the current basis for reuse by a warm-started solve.
    fn export_basis(&self) -> Basis {
        Basis {
            basic: self.basis.clone(),
            status: self
                .status
                .iter()
                .map(|st| match st {
                    VStat::Basic(_) => VarStatus::Basic,
                    VStat::Lower => VarStatus::AtLower,
                    VStat::Upper => VarStatus::AtUpper,
                })
                .collect(),
        }
    }

    /// `y = c_Bᵀ B⁻¹`
    fn duals(&self) -> Vec<f64> {
        let m = self.m;
        let mut y = vec![0.0f64; m];
        for i in 0..m {
            let cb = self.cost[self.basis[i]];
            if cb != 0.0 {
                let row = &self.binv[i * m..(i + 1) * m];
                for (k, yk) in y.iter_mut().enumerate() {
                    *yk += cb * row[k];
                }
            }
        }
        y
    }

    fn reduced_cost(&self, j: usize, y: &[f64]) -> f64 {
        let mut d = self.cost[j];
        for &(r, v) in &self.sf.cols[j] {
            d -= y[r] * v;
        }
        d
    }

    /// `w = B⁻¹ A_j`
    fn ftran(&self, j: usize) -> Vec<f64> {
        let m = self.m;
        let mut w = vec![0.0f64; m];
        for &(r, v) in &self.sf.cols[j] {
            // add v * column r of binv
            for i in 0..m {
                w[i] += v * self.binv[i * m + r];
            }
        }
        w
    }

    fn current_objective(&self) -> f64 {
        let mut obj = 0.0;
        for (i, &b) in self.basis.iter().enumerate() {
            obj += self.cost[b] * self.xb[i];
        }
        for j in 0..self.sf.n {
            if self.status[j] == VStat::Upper {
                obj += self.cost[j] * self.upper[j];
            }
        }
        obj
    }

    /// Recompute `B⁻¹` and `xb` from scratch (numerical hygiene).
    fn refactorize(&mut self) -> Result<(), LpError> {
        let m = self.m;
        // dense B from basis columns
        let mut a = vec![0.0f64; m * m];
        for (col_idx, &j) in self.basis.iter().enumerate() {
            for &(r, v) in &self.sf.cols[j] {
                a[r * m + col_idx] = v;
            }
        }
        // Gauss-Jordan with partial pivoting: invert `a` into `inv`
        let mut inv = vec![0.0f64; m * m];
        for i in 0..m {
            inv[i * m + i] = 1.0;
        }
        for col in 0..m {
            // pivot search
            let mut piv_row = col;
            let mut piv_val = a[col * m + col].abs();
            for r in (col + 1)..m {
                let v = a[r * m + col].abs();
                if v > piv_val {
                    piv_val = v;
                    piv_row = r;
                }
            }
            if piv_val < 1e-12 {
                return Err(LpError::BadModel(
                    "singular basis during refactorization".into(),
                ));
            }
            if piv_row != col {
                for k in 0..m {
                    a.swap(col * m + k, piv_row * m + k);
                    inv.swap(col * m + k, piv_row * m + k);
                }
            }
            let d = 1.0 / a[col * m + col];
            for k in 0..m {
                a[col * m + k] *= d;
                inv[col * m + k] *= d;
            }
            for r in 0..m {
                if r == col {
                    continue;
                }
                let f = a[r * m + col];
                if f == 0.0 {
                    continue;
                }
                for k in 0..m {
                    a[r * m + k] -= f * a[col * m + k];
                    inv[r * m + k] -= f * inv[col * m + k];
                }
            }
        }
        self.binv = inv;
        self.recompute_xb();
        self.pivots_since_refactor = 0;
        self.refactorizations += 1;
        Ok(())
    }

    /// Like [`refactorize`](Self::refactorize), but instead of failing on a
    /// rank-deficient basis it *repairs* it: a basis column that turns out
    /// linearly dependent (the typical fate of a warm basis after a patch
    /// rewrote matrix coefficients) is kicked out and replaced by the unit
    /// column — slack or artificial — of a row the basis no longer covers.
    /// The repaired point may violate bounds (an artificial forced in is
    /// pinned at 0); callers follow up with [`dual_restore`](Self::dual_restore).
    fn refactorize_repair(&mut self) -> Result<usize, LpError> {
        let m = self.m;
        let mut a = vec![0.0f64; m * m];
        for (col_idx, &j) in self.basis.iter().enumerate() {
            for &(r, v) in &self.sf.cols[j] {
                a[r * m + col_idx] = v;
            }
        }
        let mut inv = vec![0.0f64; m * m];
        for i in 0..m {
            inv[i * m + i] = 1.0;
        }
        let mut repaired = 0usize;
        for col in 0..m {
            let mut piv_row = col;
            let mut piv_val = a[col * m + col].abs();
            for r in (col + 1)..m {
                let v = a[r * m + col].abs();
                if v > piv_val {
                    piv_val = v;
                    piv_row = r;
                }
            }
            if piv_val < 1e-12 {
                // Basis column `col` is dependent on the previous ones. Find
                // an original row `r` whose unit column is (a) not already
                // basic and (b) has usable support in the uneliminated rows:
                // its reduced image under the accumulated row ops is column
                // `r` of `inv`.
                let mut best = 1e-8;
                let (mut br, mut bpos) = (usize::MAX, col);
                for r in 0..m {
                    let unit = self.sf.basis0[r];
                    if matches!(self.status[unit], VStat::Basic(_)) {
                        continue;
                    }
                    for pos in col..m {
                        let v = inv[pos * m + r].abs();
                        if v > best {
                            best = v;
                            br = r;
                            bpos = pos;
                        }
                    }
                }
                if br == usize::MAX {
                    return Err(LpError::BadModel(
                        "unrepairable singular basis during refactorization".into(),
                    ));
                }
                let unit = self.sf.basis0[br];
                let old = self.basis[col];
                self.status[old] = VStat::Lower;
                self.basis[col] = unit;
                self.status[unit] = VStat::Basic(col as u32);
                // Earlier Jordan steps zeroed columns < col everywhere and
                // never touch them again (each pivot row is zero there), so
                // overwriting the whole reduced column is safe.
                for i in 0..m {
                    a[i * m + col] = inv[i * m + br];
                }
                piv_row = bpos;
                piv_val = a[bpos * m + col].abs();
                repaired += 1;
            }
            debug_assert!(piv_val >= 1e-12);
            if piv_row != col {
                for k in 0..m {
                    a.swap(col * m + k, piv_row * m + k);
                    inv.swap(col * m + k, piv_row * m + k);
                }
            }
            let d = 1.0 / a[col * m + col];
            for k in 0..m {
                a[col * m + k] *= d;
                inv[col * m + k] *= d;
            }
            for r in 0..m {
                if r == col {
                    continue;
                }
                let f = a[r * m + col];
                if f == 0.0 {
                    continue;
                }
                for k in 0..m {
                    a[r * m + k] -= f * a[col * m + k];
                    inv[r * m + k] -= f * inv[col * m + k];
                }
            }
        }
        self.binv = inv;
        self.recompute_xb();
        self.pivots_since_refactor = 0;
        self.refactorizations += 1;
        Ok(repaired)
    }

    /// `xb = B⁻¹ (b − Σ_{j at upper} A_j u_j)`
    fn recompute_xb(&mut self) {
        let m = self.m;
        let mut rhs = self.sf.b.clone();
        for j in 0..self.sf.n {
            if self.status[j] == VStat::Upper {
                let u = self.upper[j];
                if u != 0.0 {
                    for &(r, v) in &self.sf.cols[j] {
                        rhs[r] -= v * u;
                    }
                }
            }
        }
        let mut xb = vec![0.0f64; m];
        for (i, x) in xb.iter_mut().enumerate() {
            let row = &self.binv[i * m..(i + 1) * m];
            let mut acc = 0.0;
            for (k, &r) in rhs.iter().enumerate() {
                acc += row[k] * r;
            }
            *x = acc;
        }
        self.xb = xb;
    }

    /// Favorability of nonbasic column `j`: `Some((|d|, σ))` when moving it
    /// improves the objective (σ = +1 up from lower, −1 down from upper).
    fn favorability(&self, j: usize, y: &[f64]) -> Option<(f64, f64)> {
        match self.status[j] {
            VStat::Basic(_) => None,
            VStat::Lower => {
                if self.upper[j] <= self.eps {
                    return None; // fixed column (artificial after phase 1, or u = 0)
                }
                let d = self.reduced_cost(j, y);
                (d < -self.eps).then_some((-d, 1.0))
            }
            VStat::Upper => {
                let d = self.reduced_cost(j, y);
                (d > self.eps).then_some((d, -1.0))
            }
        }
    }

    /// Full Dantzig/Bland sweep over every column. Under partial pricing it
    /// also repopulates the candidate list with the `collect` most favorable
    /// columns. Returns the entering column and its direction.
    fn price_full(&mut self, y: &[f64], bland: bool, collect: usize) -> Option<(usize, f64)> {
        self.full_pricing_sweeps += 1;
        self.iters_since_full_sweep = 0;
        self.cand.clear();
        let mut enter = usize::MAX;
        let mut enter_sigma = 1.0f64;
        let mut best = 0.0f64;
        // (|d|, j) pairs of favorable columns, kept only when collecting.
        let mut favorable: Vec<(f64, usize)> = Vec::new();
        for j in 0..self.sf.n {
            self.pricing_cols_scanned += 1;
            let Some((d_abs, sigma)) = self.favorability(j, y) else {
                continue;
            };
            if bland {
                // Bland: first favorable column by index.
                return Some((j, sigma));
            }
            if collect > 0 {
                favorable.push((d_abs, j));
            }
            if d_abs > best {
                best = d_abs;
                enter = j;
                enter_sigma = sigma;
            }
        }
        if collect > 0 && !favorable.is_empty() {
            favorable.sort_unstable_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
            favorable.truncate(collect);
            self.cand.extend(favorable.iter().map(|&(_, j)| j));
        }
        (enter != usize::MAX).then_some((enter, enter_sigma))
    }

    /// Select the entering column. Dantzig (and Bland) always sweep every
    /// column; partial pricing prices the candidate list and falls back to a
    /// full sweep when the list runs dry, goes stale, or fails to produce a
    /// favorable column — so `None` (optimality) is only ever declared by a
    /// full sweep.
    fn price(&mut self, y: &[f64], bland: bool) -> Option<(usize, f64)> {
        self.pricing_scans += 1;
        let (list_size, full_sweep_every) = match self.pricing {
            Pricing::Partial {
                list_size,
                full_sweep_every,
            } if !bland => (list_size, full_sweep_every),
            _ => return self.price_full(y, bland, 0),
        };
        if self.cand.is_empty() || self.iters_since_full_sweep >= full_sweep_every {
            return self.price_full(y, bland, list_size);
        }
        let mut keep: Vec<usize> = Vec::with_capacity(self.cand.len());
        let mut enter = usize::MAX;
        let mut enter_sigma = 1.0f64;
        let mut best = 0.0f64;
        for idx in 0..self.cand.len() {
            let j = self.cand[idx];
            self.pricing_cols_scanned += 1;
            if let Some((d_abs, sigma)) = self.favorability(j, y) {
                keep.push(j);
                if d_abs > best {
                    best = d_abs;
                    enter = j;
                    enter_sigma = sigma;
                }
            }
        }
        self.cand = keep;
        if enter == usize::MAX {
            return self.price_full(y, bland, list_size);
        }
        self.iters_since_full_sweep += 1;
        Some((enter, enter_sigma))
    }

    /// One simplex step. `bland` selects Bland's rule.
    fn step(&mut self, bland: bool) -> StepOutcome {
        let y = self.duals();
        let Some((enter, enter_sigma)) = self.price(&y, bland) else {
            return StepOutcome::Optimal;
        };

        // --- ratio test (two-pass Harris style) -----------------------------
        let w = self.ftran(enter);
        let sigma = enter_sigma;
        // entering var moves by t >= 0 in direction sigma; basic values change
        // by −t·σ·w. Pass 1 finds the tightest limit; pass 2 picks, among the
        // rows within a tolerance of it, the numerically best (largest) pivot
        // — tiny pivots breed singular bases.
        let bound_flip_t = if self.upper[enter].is_finite() {
            self.upper[enter] // bound-to-bound distance (lower is 0)
        } else {
            f64::INFINITY
        };
        let mut t_min = bound_flip_t;
        let limit_of = |i: usize, this: &Self| -> Option<(f64, bool)> {
            let wi = sigma * w[i];
            let bi = this.basis[i];
            if wi > this.eps {
                Some(((this.xb[i]).max(0.0) / wi, false))
            } else if wi < -this.eps {
                let ub = this.upper[bi];
                ub.is_finite()
                    .then(|| ((ub - this.xb[i]).max(0.0) / (-wi), true))
            } else {
                None
            }
        };
        for i in 0..self.m {
            if let Some((lim, _)) = limit_of(i, self) {
                t_min = t_min.min(lim);
            }
        }
        if !t_min.is_finite() {
            return StepOutcome::Unbounded;
        }
        let tie_tol = self.eps * 10.0 * (1.0 + t_min.abs());
        let mut leave_row = usize::MAX;
        let mut leave_to_upper = false;
        let mut best_pivot = 0.0f64;
        for i in 0..self.m {
            if let Some((lim, to_upper)) = limit_of(i, self) {
                if lim <= t_min + tie_tol {
                    let piv = w[i].abs();
                    let better = if bland {
                        // Bland: smallest basis index among eligible rows
                        leave_row == usize::MAX || self.basis[i] < self.basis[leave_row]
                    } else {
                        piv > best_pivot
                    };
                    if better {
                        best_pivot = piv;
                        leave_row = i;
                        leave_to_upper = to_upper;
                    }
                }
            }
        }
        let t_star = if leave_row == usize::MAX {
            bound_flip_t
        } else {
            t_min
        };
        let t = t_star.max(0.0);

        // --- apply ----------------------------------------------------------
        if leave_row == usize::MAX {
            // bound flip: entering var runs to its other bound
            for i in 0..self.m {
                self.xb[i] -= t * sigma * w[i];
            }
            self.status[enter] = if sigma > 0.0 {
                VStat::Upper
            } else {
                VStat::Lower
            };
            return StepOutcome::Moved;
        }

        // basis change
        for i in 0..self.m {
            if i != leave_row {
                self.xb[i] -= t * sigma * w[i];
                if self.xb[i] < 0.0 && self.xb[i] > -1e-9 {
                    self.xb[i] = 0.0;
                }
            }
        }
        let leaving = self.basis[leave_row];
        self.status[leaving] = if leave_to_upper {
            VStat::Upper
        } else {
            VStat::Lower
        };
        // entering variable's new value
        let enter_val = if sigma > 0.0 {
            t
        } else {
            self.upper[enter] - t
        };
        self.xb[leave_row] = enter_val;
        self.basis[leave_row] = enter;
        self.status[enter] = VStat::Basic(leave_row as u32);
        self.update_binv(leave_row, &w);
        StepOutcome::Moved
    }

    /// Rank-1 update of `B⁻¹` after swapping the basic column at `leave_row`
    /// for a column whose ftran image is `w` (pivot element `w[leave_row]`).
    fn update_binv(&mut self, leave_row: usize, w: &[f64]) {
        let m = self.m;
        let piv = w[leave_row];
        debug_assert!(piv.abs() > 1e-12);
        let inv_piv = 1.0 / piv;
        // scale pivot row
        {
            let row = &mut self.binv[leave_row * m..(leave_row + 1) * m];
            for v in row.iter_mut() {
                *v *= inv_piv;
            }
        }
        for i in 0..m {
            if i == leave_row {
                continue;
            }
            let f = w[i];
            if f == 0.0 {
                continue;
            }
            // binv[i] -= f * binv[leave_row] (already scaled)
            let (head, tail) = self.binv.split_at_mut(leave_row.max(i) * m);
            let (src, dst) = if i < leave_row {
                (&tail[..m], &mut head[i * m..i * m + m])
            } else {
                (&head[leave_row * m..leave_row * m + m], &mut tail[..m])
            };
            for (d, s) in dst.iter_mut().zip(src.iter()) {
                *d -= f * s;
            }
        }
        self.pivots_since_refactor += 1;
    }

    fn run_phase(&mut self, max_iter: u64, deadline: Option<Instant>) -> Result<(), LpError> {
        let mut stalled: u64 = 0;
        let stall_limit = 4 * (self.m as u64 + self.sf.n as u64) + 64;
        let mut last_obj = self.current_objective();
        loop {
            if self.iterations >= max_iter {
                return Err(LpError::IterationLimit);
            }
            // amortize the clock read over a batch of pivots
            if self.iterations.is_multiple_of(32) {
                if let Some(dl) = deadline {
                    if Instant::now() >= dl {
                        return Err(LpError::TimeLimit);
                    }
                }
            }
            if self.pivots_since_refactor >= self.refactor_every {
                self.refactorize()?;
            }
            let bland = stalled > stall_limit;
            match self.step(bland) {
                StepOutcome::Optimal => return Ok(()),
                StepOutcome::Unbounded => return Err(LpError::Unbounded),
                StepOutcome::Moved => {}
            }
            self.iterations += 1;
            let obj = self.current_objective();
            if last_obj - obj > self.eps * (1.0 + last_obj.abs()) {
                stalled = 0;
            } else {
                stalled += 1;
            }
            last_obj = obj;
        }
    }

    /// Full standard-form assignment.
    fn extract(&self) -> Vec<f64> {
        let mut x = vec![0.0f64; self.sf.n];
        for j in 0..self.sf.n {
            match self.status[j] {
                VStat::Basic(i) => x[j] = self.xb[i as usize].max(0.0),
                VStat::Lower => x[j] = 0.0,
                VStat::Upper => x[j] = self.upper[j],
            }
        }
        x
    }
}

impl RevisedSimplex {
    /// Solve `lp`, optionally warm-starting from `warm` (a basis exported by
    /// a previous [`Solution::basis`] on a layout-identical problem). An
    /// unusable warm basis (wrong shape, singular, or primal-infeasible
    /// beyond `feas_eps`) silently falls back to a cold two-phase solve.
    pub fn solve_with_basis(
        &self,
        lp: &LpProblem,
        warm: Option<&Basis>,
    ) -> Result<Solution, LpError> {
        if lp.num_vars() == 0 {
            return Err(LpError::BadModel("no variables".into()));
        }
        let sf = StandardForm::build(lp);
        self.solve_standard(lp, &sf, warm)
    }

    /// Like [`solve_with_basis`](Self::solve_with_basis) but reuses a cached
    /// `LpProblem → StandardForm` conversion (see [`PreparedProblem`]).
    pub fn solve_prepared(
        &self,
        lp: &LpProblem,
        prep: &PreparedProblem,
        warm: Option<&Basis>,
    ) -> Result<Solution, LpError> {
        if lp.num_vars() == 0 {
            return Err(LpError::BadModel("no variables".into()));
        }
        self.solve_standard(lp, &prep.sf, warm)
    }

    fn solve_standard(
        &self,
        lp: &LpProblem,
        sf: &StandardForm,
        warm: Option<&Basis>,
    ) -> Result<Solution, LpError> {
        let wall_start = Instant::now();
        let deadline = self.time_budget.map(|b| wall_start + b);
        let max_iter = if self.max_iterations > 0 {
            self.max_iterations
        } else {
            50_000 + 40 * (sf.m as u64 + sf.n as u64)
        };

        // ---- warm start: try to skip phase 1 entirely -----------------------
        let mut warm_started = false;
        let mut eng = match warm {
            Some(basis) => {
                match Engine::from_basis(
                    sf,
                    self.eps,
                    self.feas_eps,
                    self.refactor_every,
                    self.pricing,
                    basis,
                ) {
                    Ok(eng) => {
                        warm_started = true;
                        lp_metrics().record_warm_accepted();
                        eng
                    }
                    Err(reject) => {
                        if std::env::var_os("SB_LP_RESTORE_DEBUG").is_some() {
                            eprintln!(
                                "warm reject: {}",
                                if matches!(reject, WarmReject::Singular) {
                                    "singular"
                                } else {
                                    "infeasible"
                                }
                            );
                        }
                        lp_metrics().record_warm_rejected(matches!(reject, WarmReject::Singular));
                        Engine::new(sf, self.eps, self.refactor_every, self.pricing)
                    }
                }
            }
            None => Engine::new(sf, self.eps, self.refactor_every, self.pricing),
        };

        // ---- phase 1 (cold starts only) -------------------------------------
        if !warm_started && sf.first_artificial < sf.n {
            // The phase-1 objective reshapes reduced costs on nearly every
            // pivot, so a candidate list harvested by one sweep is stale by
            // the next — measured on the provisioning LPs, partial pricing
            // more than tripled phase-1 iterations. Phase 1 therefore always
            // prices with full Dantzig sweeps; the requested strategy is
            // restored for phase 2.
            eng.pricing = Pricing::Dantzig;
            for j in sf.first_artificial..sf.n {
                eng.cost[j] = 1.0;
            }
            // Per-artificial feasibility test: an artificial's column is a
            // unit vector on its original row, so a basic artificial at value
            // v means that row is violated by v. Compare v against the row's
            // own scale — an aggregate Σb-scaled test would let a huge-RHS
            // row mask a real violation on a small-RHS row.
            let residual_violation = |eng: &Engine<'_>| -> bool {
                (0..sf.m).any(|i| {
                    let j = eng.basis[i];
                    j >= sf.first_artificial && {
                        let row = sf.cols[j][0].0;
                        eng.xb[i] > self.feas_eps * (1.0 + sf.b[row].abs())
                    }
                })
            };
            // Numerical drift can make phase 1 stop early with artificials
            // still carrying value; refactorize (exact recompute of B⁻¹ and
            // x_B) and resume before declaring the model infeasible.
            let mut attempts = 0;
            loop {
                match eng.run_phase(max_iter, deadline) {
                    Ok(()) => {}
                    Err(LpError::Unbounded) => {
                        return Err(LpError::BadModel(
                            "phase-1 objective unbounded (internal error)".into(),
                        ))
                    }
                    Err(e) => return Err(e),
                }
                if !residual_violation(&eng) {
                    break;
                }
                if attempts >= 2 || eng.refactorize().is_err() {
                    return Err(LpError::Infeasible);
                }
                if !residual_violation(&eng) {
                    break;
                }
                attempts += 1;
            }
            // pin artificials to zero; reset costs
            for j in sf.first_artificial..sf.n {
                eng.upper[j] = 0.0;
                eng.cost[j] = 0.0;
                if eng.status[j] == VStat::Upper {
                    eng.status[j] = VStat::Lower;
                }
            }
        }

        // ---- phase 2 --------------------------------------------------------
        let phase1_iterations = eng.iterations;
        eng.pricing = self.pricing;
        for (j, &c) in sf.cost.iter().enumerate() {
            eng.cost[j] = c;
        }
        // Phase-2 costs invalidate any phase-1 candidate list.
        eng.cand.clear();
        eng.run_phase(max_iter, deadline)?;

        // Drift guard: the incrementally-updated B⁻¹ accumulates error, so
        // the point `run_phase` stopped at can be subtly wrong in two ways —
        // a basic variable's *exact* value (recomputed below) may sit outside
        // its bounds, or a favorable reduced cost may have been masked by
        // noise. Either would silently corrupt the extracted solution (the
        // clamp in `extract` turns an out-of-bounds basic into an `Ax = b`
        // violation). Refactorize to exact values, repair any bound
        // violations with dual-simplex pivots, and re-price; repeat until a
        // clean round. A (rare) singular refactorization means the
        // incrementally-maintained inverse is still the best state we have —
        // keep it; `refactorize` only commits on success.
        let mut clean = false;
        for _ in 0..6 {
            if eng.refactorize().is_err() {
                break;
            }
            let mut progressed = false;
            if !eng.primal_feasible(self.feas_eps) {
                if !eng.dual_restore(self.feas_eps) {
                    return Err(LpError::BadModel(
                        "numerical: primal feasibility lost and not restorable".into(),
                    ));
                }
                progressed = true;
            }
            eng.cand.clear();
            let before = eng.iterations;
            eng.run_phase(max_iter, deadline)?;
            if eng.iterations != before {
                progressed = true;
            }
            if !progressed {
                clean = true;
                break;
            }
        }
        if !clean && !eng.primal_feasible(self.feas_eps) {
            return Err(LpError::BadModel(
                "numerical: drift guard failed to converge".into(),
            ));
        }
        let x = eng.extract();
        let values = sf.recover(&x);
        let objective = lp.objective_at(&values);
        let duals = Some(sf.recover_duals(&eng.duals()));
        let basis = eng.export_basis();
        let stats = SolveStats {
            phase1_iterations,
            phase2_iterations: eng.iterations - phase1_iterations,
            refactorizations: eng.refactorizations,
            wall: wall_start.elapsed(),
            warm_started,
            // Proxy for avoided phase-1 work: every row whose cold start
            // would begin on an artificial column needs at least one phase-1
            // pivot to drive it out.
            phase1_iterations_saved: if warm_started {
                sf.basis0
                    .iter()
                    .filter(|&&j| j >= sf.first_artificial)
                    .count() as u64
            } else {
                0
            },
            pricing_scans: eng.pricing_scans,
            pricing_cols_scanned: eng.pricing_cols_scanned,
            full_pricing_sweeps: eng.full_pricing_sweeps,
            rung: if warm_started {
                SolveRung::WarmPrimary
            } else {
                SolveRung::ColdPrimary
            },
        };
        lp_metrics().record_solve(&stats);
        Ok(Solution {
            values,
            objective,
            duals,
            iterations: eng.iterations,
            stats,
            basis: Some(basis),
        })
    }
}

impl Solver for RevisedSimplex {
    fn solve(&self, lp: &LpProblem) -> Result<Solution, LpError> {
        self.solve_with_basis(lp, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseSimplex;
    use crate::problem::LpProblem;

    fn solve(lp: &LpProblem) -> Result<Solution, LpError> {
        RevisedSimplex::new().solve(lp)
    }

    #[test]
    fn classic_two_var() {
        let mut lp = LpProblem::new();
        let x = lp.add_nonneg("x", -3.0);
        let y = lp.add_nonneg("y", -5.0);
        lp.add_le(vec![(x, 1.0)], 4.0);
        lp.add_le(vec![(y, 2.0)], 12.0);
        lp.add_le(vec![(x, 3.0), (y, 2.0)], 18.0);
        let s = solve(&lp).unwrap();
        assert!((s.objective() + 36.0).abs() < 1e-8);
    }

    #[test]
    fn bound_flip_path() {
        // min -x - y with x <= 1, y <= 1 as *bounds* and x + y <= 1.5 as a row
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", -1.0, 0.0, 1.0);
        let y = lp.add_var("y", -1.0, 0.0, 1.0);
        lp.add_le(vec![(x, 1.0), (y, 1.0)], 1.5);
        let s = solve(&lp).unwrap();
        assert!((s.objective() + 1.5).abs() < 1e-8);
        assert!(lp.max_violation(s.values()) < 1e-9);
    }

    #[test]
    fn infeasible() {
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", 1.0, 0.0, 1.0);
        lp.add_ge(vec![(x, 1.0)], 2.0);
        assert_eq!(solve(&lp).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded() {
        let mut lp = LpProblem::new();
        let x = lp.add_nonneg("x", -1.0);
        let y = lp.add_nonneg("y", 0.0);
        lp.add_ge(vec![(x, 1.0), (y, -1.0)], 0.0);
        assert_eq!(solve(&lp).unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn equality_with_bounds() {
        // min 2a + b  s.t. a + b = 5, a <= 2
        let mut lp = LpProblem::new();
        let a = lp.add_var("a", 2.0, 0.0, 2.0);
        let b = lp.add_nonneg("b", 1.0);
        lp.add_eq(vec![(a, 1.0), (b, 1.0)], 5.0);
        let s = solve(&lp).unwrap();
        assert!((s.objective() - 5.0).abs() < 1e-8);
        assert!((s.value(a) - 0.0).abs() < 1e-8);
    }

    #[test]
    fn agrees_with_dense_on_mixed_model() {
        let mut lp = LpProblem::new();
        let a = lp.add_var("a", 3.0, 0.0, 10.0);
        let b = lp.add_var("b", 1.0, 0.5, 10.0);
        let c = lp.add_var("c", 2.0, 0.0, 4.0);
        let d = lp.add_var("d", -1.0, 0.0, 2.0);
        lp.add_ge(vec![(a, 1.0), (b, 1.0)], 6.0);
        lp.add_ge(vec![(b, 1.0), (c, 1.0)], 8.0);
        lp.add_le(vec![(a, 1.0), (c, 2.0), (d, 1.0)], 14.0);
        lp.add_eq(vec![(d, 1.0), (a, 0.5)], 2.0);
        let s1 = solve(&lp).unwrap();
        let s2 = DenseSimplex::new().solve(&lp).unwrap();
        assert!((s1.objective() - s2.objective()).abs() < 1e-7);
        assert!(lp.max_violation(s1.values()) < 1e-7);
    }

    #[test]
    fn duals_reconstruct_objective_for_tight_lp() {
        // A pure ≤ model with optimum away from bounds: strong duality gives
        // obj = yᵀb.
        let mut lp = LpProblem::new();
        let x = lp.add_nonneg("x", -3.0);
        let y = lp.add_nonneg("y", -5.0);
        lp.add_le(vec![(x, 1.0)], 4.0);
        lp.add_le(vec![(y, 2.0)], 12.0);
        lp.add_le(vec![(x, 3.0), (y, 2.0)], 18.0);
        let s = solve(&lp).unwrap();
        let yb: f64 = (0..3)
            .map(|i| s.dual(i).unwrap() * [4.0, 12.0, 18.0][i])
            .sum();
        assert!((yb - s.objective()).abs() < 1e-7);
    }

    #[test]
    fn degenerate_terminates() {
        let mut lp = LpProblem::new();
        let x1 = lp.add_nonneg("x1", -0.75);
        let x2 = lp.add_nonneg("x2", 150.0);
        let x3 = lp.add_nonneg("x3", -0.02);
        let x4 = lp.add_nonneg("x4", 6.0);
        lp.add_le(vec![(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)], 0.0);
        lp.add_le(vec![(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)], 0.0);
        lp.add_le(vec![(x3, 1.0)], 1.0);
        let s = solve(&lp).unwrap();
        assert!((s.objective() + 0.05).abs() < 1e-8);
    }

    #[test]
    fn moderately_sized_transport_problem() {
        // 12 sources × 15 sinks transportation LP with known optimum
        // (verified against the dense engine).
        let ns = 12;
        let nd = 15;
        let mut lp = LpProblem::new();
        let mut xs = Vec::new();
        for i in 0..ns {
            for j in 0..nd {
                let cost = ((i * 7 + j * 13) % 10 + 1) as f64;
                xs.push(lp.add_nonneg(format!("x{i}_{j}"), cost));
            }
        }
        let supply = 10.0;
        let demand = supply * ns as f64 / nd as f64;
        for i in 0..ns {
            let coeffs = (0..nd).map(|j| (xs[i * nd + j], 1.0)).collect();
            lp.add_eq(coeffs, supply);
        }
        for j in 0..nd {
            let coeffs = (0..ns).map(|i| (xs[i * nd + j], 1.0)).collect();
            lp.add_eq(coeffs, demand);
        }
        let s1 = solve(&lp).unwrap();
        let s2 = DenseSimplex::new().solve(&lp).unwrap();
        assert!((s1.objective() - s2.objective()).abs() < 1e-6 * (1.0 + s2.objective().abs()));
        assert!(lp.max_violation(s1.values()) < 1e-6);
    }

    #[test]
    fn peak_minimization_structure() {
        // miniature of the provisioning LP: two slots, two sites, one config;
        // min peak subject to demand split per slot
        let mut lp = LpProblem::new();
        let p1 = lp.add_nonneg("peak1", 1.0);
        let p2 = lp.add_nonneg("peak2", 1.0);
        // slot 0 demand 10, slot 1 demand 10, shares s_tx
        let mut s = Vec::new();
        for t in 0..2 {
            for x in 0..2 {
                s.push(lp.add_var(format!("s{t}{x}"), 0.0, 0.0, 10.0));
            }
        }
        for t in 0..2 {
            lp.add_eq(vec![(s[t * 2], 1.0), (s[t * 2 + 1], 1.0)], 10.0);
            lp.add_le(vec![(s[t * 2], 1.0), (p1, -1.0)], 0.0);
            lp.add_le(vec![(s[t * 2 + 1], 1.0), (p2, -1.0)], 0.0);
        }
        let sol = solve(&lp).unwrap();
        // optimal: split 5/5 each slot → total peak 10
        assert!((sol.objective() - 10.0).abs() < 1e-7);
    }

    #[test]
    fn fixed_variable_is_respected() {
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", -5.0, 2.0, 2.0); // fixed at 2
        let y = lp.add_var("y", 1.0, 0.0, f64::INFINITY);
        lp.add_ge(vec![(x, 1.0), (y, 1.0)], 3.0);
        let s = solve(&lp).unwrap();
        assert!((s.value(x) - 2.0).abs() < 1e-9);
        assert!((s.value(y) - 1.0).abs() < 1e-8);
    }

    fn transport_lp(ns: usize, nd: usize) -> LpProblem {
        let mut lp = LpProblem::new();
        let mut xs = Vec::new();
        for i in 0..ns {
            for j in 0..nd {
                let cost = ((i * 7 + j * 13) % 10 + 1) as f64;
                xs.push(lp.add_nonneg(format!("x{i}_{j}"), cost));
            }
        }
        let supply = 10.0;
        let demand = supply * ns as f64 / nd as f64;
        for i in 0..ns {
            lp.add_eq((0..nd).map(|j| (xs[i * nd + j], 1.0)).collect(), supply);
        }
        for j in 0..nd {
            lp.add_eq((0..ns).map(|i| (xs[i * nd + j], 1.0)).collect(), demand);
        }
        lp
    }

    #[test]
    fn warm_restart_on_same_problem_skips_phase1() {
        let lp = transport_lp(8, 9);
        let cold = solve(&lp).unwrap();
        assert!(!cold.stats().warm_started);
        assert!(cold.stats().phase1_iterations > 0);
        let warm = RevisedSimplex::new()
            .solve_with_basis(&lp, cold.basis())
            .unwrap();
        assert!(warm.stats().warm_started);
        assert_eq!(warm.stats().phase1_iterations, 0);
        // re-solving at the optimum should take (near) zero pivots
        assert!(warm.iterations() <= 2, "iterations = {}", warm.iterations());
        assert!((warm.objective() - cold.objective()).abs() < 1e-7);
        assert!(warm.stats().phase1_iterations_saved > 0);
    }

    #[test]
    fn warm_start_after_rhs_patch_agrees_with_cold() {
        let mut lp = transport_lp(6, 5);
        let mut prep = crate::standard::PreparedProblem::new(&lp);
        let base = RevisedSimplex::new()
            .solve_prepared(&lp, &prep, None)
            .unwrap();
        // perturb one equality rhs pair (keep the transport balance intact)
        lp.set_rhs(0, 12.0);
        lp.set_rhs(6, 14.0); // first demand row: 12 + 5*10 - 4*12 = 14
        lp.set_rhs(7, 12.0);
        assert_eq!(
            prep.refresh(&lp),
            crate::standard::PatchOutcome::Patched,
            "rhs-only change must not change the layout"
        );
        let warm = RevisedSimplex::new()
            .solve_prepared(&lp, &prep, base.basis())
            .unwrap();
        let cold = solve(&lp).unwrap();
        assert!(warm.stats().warm_started);
        assert!((warm.objective() - cold.objective()).abs() < 1e-6);
        assert!(lp.max_violation(warm.values()) < 1e-6);
        assert!(warm.iterations() < cold.iterations());
    }

    #[test]
    fn garbage_basis_falls_back_to_cold_solve() {
        let lp = transport_lp(5, 6);
        let cold = solve(&lp).unwrap();
        // a basis from a structurally different problem: wrong shape
        let other = solve(&transport_lp(3, 4)).unwrap();
        let s = RevisedSimplex::new()
            .solve_with_basis(&lp, other.basis())
            .unwrap();
        assert!(!s.stats().warm_started);
        assert!((s.objective() - cold.objective()).abs() < 1e-7);
    }

    #[test]
    fn partial_pricing_agrees_with_dantzig() {
        for (ns, nd) in [(8, 9), (12, 15), (4, 17)] {
            let lp = transport_lp(ns, nd);
            let dantzig = solve(&lp).unwrap();
            let partial = RevisedSimplex::with_partial_pricing().solve(&lp).unwrap();
            assert!(
                (dantzig.objective() - partial.objective()).abs()
                    < 1e-6 * (1.0 + dantzig.objective().abs())
            );
            assert!(lp.max_violation(partial.values()) < 1e-6);
            // the whole point: fewer reduced costs evaluated
            assert!(
                partial.stats().pricing_cols_scanned < dantzig.stats().pricing_cols_scanned,
                "partial {} vs dantzig {}",
                partial.stats().pricing_cols_scanned,
                dantzig.stats().pricing_cols_scanned
            );
        }
    }

    #[test]
    fn tiny_candidate_list_still_reaches_optimum() {
        let lp = transport_lp(10, 11);
        let solver = RevisedSimplex {
            pricing: Pricing::Partial {
                list_size: 2,
                full_sweep_every: 3,
            },
            ..RevisedSimplex::default()
        };
        let s = solver.solve(&lp).unwrap();
        let reference = solve(&lp).unwrap();
        assert!((s.objective() - reference.objective()).abs() < 1e-6);
    }
}
