//! The full MP capacity provisioning pass (§5.3): solve the LP once per
//! failure scenario (`F₀`, every DC down, every link down) and take the
//! component-wise maximum (Eq. 7–8).
//!
//! The sweep is *warm-start-first*: one [`SweepModel`] master LP is built
//! over the union of all scenarios, `F₀` is solved cold, and every other
//! scenario re-optimizes from an already-optimal basis — in
//! [`solve_scenarios`] each worker thread seeds from the `F₀` basis, and in
//! [`provision`]'s sequential increment pass each solve chains from the
//! previous one's basis.

use sb_lp::Basis;
use sb_net::{FailureScenario, ProvisionedCapacity};

use crate::formulation::{
    PlanningInputs, ProvisionError, ScenarioData, ScenarioSolution, SolveOptions, SweepModel,
};
use crate::shares::AllocationShares;

/// Provisioner configuration.
#[derive(Clone, Debug)]
pub struct ProvisionerParams {
    /// Provision backup capacity by sweeping all single-failure scenarios
    /// (`true` = the paper's "with backup" column).
    pub with_backup: bool,
    /// Scenario-LP options.
    pub solve: SolveOptions,
    /// Max worker threads for the scenario sweep (0 = available parallelism).
    pub threads: usize,
    /// Cross-scenario refinement passes: each pass re-solves every scenario
    /// (including `F₀`) against the capacity the *other* scenarios already
    /// require, letting serving and backup share capacity in both directions
    /// (§4.2). 0 disables refinement.
    pub refine_passes: usize,
}

impl Default for ProvisionerParams {
    fn default() -> Self {
        ProvisionerParams {
            with_backup: true,
            solve: SolveOptions::default(),
            threads: 0,
            refine_passes: 2,
        }
    }
}

/// Output of provisioning.
#[derive(Clone, Debug)]
pub struct ProvisioningPlan {
    /// Final capacity to provision: max over scenarios (Eq. 7–8).
    pub capacity: ProvisionedCapacity,
    /// Serving capacity: the no-failure scenario's requirement.
    pub serving: ProvisionedCapacity,
    /// Optimal `F₀` shares (used to seed the daily allocation plan).
    pub f0_shares: AllocationShares,
    /// Per-scenario capacities (for inspection/drills).
    pub scenarios: Vec<(FailureScenario, ProvisionedCapacity)>,
    /// Total cost of the final capacity.
    pub cost: f64,
}

/// Run provisioning for `inputs`.
///
/// Two stages, matching §4.2/§5.3: first the no-failure LP fixes the
/// *serving* capacity; then every single-failure scenario LP buys only the
/// cheapest *increment* on top of it (off-peak serving capacity at surviving
/// DCs is reused as backup for free). The final capacity is the
/// component-wise max across scenarios (Eq. 7–8).
pub fn provision(
    inputs: &PlanningInputs<'_>,
    params: &ProvisionerParams,
) -> Result<ProvisioningPlan, ProvisionError> {
    // requirement of one scenario = the usage peaks of its solution
    let peaks_of = |sd: &ScenarioData, shares: &crate::shares::AllocationShares| {
        crate::usage::compute_usage(
            inputs.topo,
            &sd.routing,
            inputs.catalog,
            inputs.demand,
            shares,
        )
        .peaks()
    };

    // stage 1: serving capacity (F0)
    let sd0 = ScenarioData::compute(inputs.topo, FailureScenario::None);

    if !params.with_backup {
        let mut model = SweepModel::new(inputs, std::slice::from_ref(&sd0), &params.solve)?;
        let (f0, _) = model.solve_one(inputs, &sd0, None, None)?;
        let capacity = f0.capacity.clone();
        let cost = capacity.cost(inputs.topo);
        return Ok(ProvisioningPlan {
            capacity,
            serving: f0.capacity.clone(),
            f0_shares: f0.shares,
            scenarios: vec![(FailureScenario::None, f0.capacity)],
            cost,
        });
    }

    // Scenario data (routing + latency under each failure) is hoisted once:
    // the same `ScenarioData` feeds the master LP structure, every solve of
    // that scenario across refinement passes, and its usage peaks. DC
    // failures are the big perturbations, so they go first.
    let mut scenarios: Vec<FailureScenario> = FailureScenario::enumerate(inputs.topo)
        .into_iter()
        .filter(|s| *s != FailureScenario::None)
        .collect();
    scenarios.sort_by_key(|s| match s {
        FailureScenario::DcDown(_) => 0,
        _ => 1,
    });
    let mut sds: Vec<ScenarioData> = Vec::with_capacity(1 + scenarios.len());
    sds.push(sd0);
    sds.extend(
        scenarios
            .iter()
            .map(|&sc| ScenarioData::compute(inputs.topo, sc)),
    );
    let mut model = SweepModel::new(inputs, &sds, &params.solve)?;

    // One basis threads through the whole pass: F0 solves cold, everything
    // after warm-starts from the most recent optimal basis (consecutive
    // scenarios differ by one failure, so bases transfer almost unchanged).
    let (f0, mut last_basis) = model.solve_one(inputs, &sds[0], None, None)?;
    let mut f0_shares = f0.shares.clone();
    let serving = f0.capacity.clone();

    // Stage 2: per-failure increments, accumulated sequentially — backup
    // capacity bought for one failure scenario is reused by the next for
    // free (only one failure happens at a time, §5.3), which is the §4.2
    // sharing that makes SB's backup cheap.
    // requirements per scenario (usage peaks), F0 first
    let mut reqs: Vec<(FailureScenario, ProvisionedCapacity)> =
        vec![(FailureScenario::None, peaks_of(&sds[0], &f0.shares))];
    {
        let mut union = reqs[0].1.clone();
        for sd in &sds[1..] {
            let (sol, basis) = model.solve_one(inputs, sd, Some(&union), last_basis.as_ref())?;
            let peaks = peaks_of(sd, &sol.shares);
            union.max_with(&peaks);
            reqs.push((sd.scenario, peaks));
            if basis.is_some() {
                last_basis = basis;
            }
        }
    }

    // Stage 3: cross-scenario refinement — re-solve each scenario (F0 too)
    // against the union of the *other* scenarios' requirements, so serving
    // can also sit in capacity that failures forced anyway. Scenarios whose
    // requirement the others already cover are skipped (zero-increment).
    for _ in 0..params.refine_passes {
        for i in 0..reqs.len() {
            let mut others = ProvisionedCapacity::zero(inputs.topo);
            for (j, (_, r)) in reqs.iter().enumerate() {
                if j != i {
                    others.max_with(r);
                }
            }
            if others.covers(&reqs[i].1, 1e-9) {
                crate::metrics::provision_metrics().record_refine_skipped();
                continue;
            }
            let (sol, basis) =
                model.solve_one(inputs, &sds[i], Some(&others), last_basis.as_ref())?;
            reqs[i].1 = peaks_of(&sds[i], &sol.shares);
            if reqs[i].0 == FailureScenario::None {
                f0_shares = sol.shares;
            }
            if basis.is_some() {
                last_basis = basis;
            }
        }
    }

    let mut capacity = ProvisionedCapacity::zero(inputs.topo);
    for (_, r) in &reqs {
        capacity.max_with(r);
    }
    let cost = capacity.cost(inputs.topo);
    Ok(ProvisioningPlan {
        capacity,
        serving,
        f0_shares,
        scenarios: reqs,
        cost,
    })
}

/// Solve a set of scenarios (optionally above a base capacity) in parallel,
/// preserving order.
///
/// Warm-start-first: the first scenario is solved cold on the shared
/// [`SweepModel`] and its optimal basis seeds *every* remaining solve.
/// Because each worker starts from the same seed basis (never from another
/// worker's result), the output is bit-identical regardless of thread count;
/// serial and threaded execution share this one code path.
pub fn solve_scenarios(
    inputs: &PlanningInputs<'_>,
    scenarios: &[FailureScenario],
    base: Option<&ProvisionedCapacity>,
    params: &ProvisionerParams,
) -> Result<Vec<ScenarioSolution>, ProvisionError> {
    if scenarios.is_empty() {
        return Ok(Vec::new());
    }
    let sds: Vec<ScenarioData> = scenarios
        .iter()
        .map(|&sc| ScenarioData::compute(inputs.topo, sc))
        .collect();
    let mut model = SweepModel::new(inputs, &sds, &params.solve)?;

    // seed solve: first scenario, cold
    let (first, seed) = model.solve_one(inputs, &sds[0], base, None)?;
    let seed: Option<&Basis> = seed.as_ref();

    let mut results: Vec<Option<Result<ScenarioSolution, ProvisionError>>> =
        (0..sds.len()).map(|_| None).collect();
    results[0] = Some(Ok(first));

    let remaining = sds.len() - 1;
    let threads = if params.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        params.threads
    }
    .min(remaining.max(1));

    if remaining > 0 {
        if threads <= 1 {
            for (i, slot) in results.iter_mut().enumerate().skip(1) {
                *slot = Some(model.solve_one(inputs, &sds[i], base, seed).map(|(s, _)| s));
            }
        } else {
            // strided fan-out: worker w owns indices 1+w, 1+w+threads, …;
            // each returns (index, result) pairs scattered back afterwards,
            // so no locks and a deterministic index → worker mapping
            let sds_ref = &sds;
            let filled: Vec<Vec<(usize, Result<ScenarioSolution, ProvisionError>)>> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..threads)
                        .map(|w| {
                            let mut local = model.clone();
                            scope.spawn(move || {
                                let mut out = Vec::new();
                                let mut i = 1 + w;
                                while i < sds_ref.len() {
                                    let r = local
                                        .solve_one(inputs, &sds_ref[i], base, seed)
                                        .map(|(s, _)| s);
                                    out.push((i, r));
                                    i += threads;
                                }
                                out
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("scenario worker panicked"))
                        .collect()
                });
            for chunk in filled {
                for (i, r) in chunk {
                    results[i] = Some(r);
                }
            }
        }
    }

    results
        .into_iter()
        .map(|r| r.expect("every scenario slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_net::Topology;
    use sb_workload::{CallConfig, ConfigCatalog, DemandMatrix, MediaType};

    fn instance() -> (Topology, ConfigCatalog, DemandMatrix) {
        let topo = sb_net::presets::toy_three_dc();
        let jp = topo.country_by_name("JP");
        let iin = topo.country_by_name("IN");
        let hk = topo.country_by_name("HK");
        let mut cat = ConfigCatalog::new();
        let c_jp = cat.intern(CallConfig::new(vec![(jp, 2)], MediaType::Audio));
        let c_in = cat.intern(CallConfig::new(vec![(iin, 2)], MediaType::Audio));
        let c_hk = cat.intern(CallConfig::new(vec![(hk, 2)], MediaType::Video));
        let mut demand = DemandMatrix::zero(3, 3, 30, 0);
        demand.set(c_jp, 0, 50.0);
        demand.set(c_in, 1, 50.0);
        demand.set(c_hk, 2, 20.0);
        (topo, cat, demand)
    }

    #[test]
    fn backup_capacity_dominates_serving() {
        let (topo, cat, demand) = instance();
        let inputs = PlanningInputs {
            topo: &topo,
            catalog: &cat,
            demand: &demand,
            latency_threshold_ms: 120.0,
        };
        let plan = provision(&inputs, &ProvisionerParams::default()).unwrap();
        assert!(plan.capacity.covers(&plan.serving, 1e-9));
        assert!(plan.cost >= plan.serving.cost(&topo) - 1e-9);
        // scenario list: F0 + 3 DCs + all links
        assert_eq!(plan.scenarios.len(), 1 + 3 + topo.links.len());
    }

    #[test]
    fn without_backup_is_cheaper() {
        let (topo, cat, demand) = instance();
        let inputs = PlanningInputs {
            topo: &topo,
            catalog: &cat,
            demand: &demand,
            latency_threshold_ms: 120.0,
        };
        let with = provision(&inputs, &ProvisionerParams::default()).unwrap();
        let without = provision(
            &inputs,
            &ProvisionerParams {
                with_backup: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(without.cost <= with.cost + 1e-9);
        assert_eq!(without.scenarios.len(), 1);
    }

    #[test]
    fn capacity_survives_any_dc_failure() {
        // the provisioned capacity must admit a feasible placement under
        // every DC failure — by construction it covers each scenario's needs
        let (topo, cat, demand) = instance();
        let inputs = PlanningInputs {
            topo: &topo,
            catalog: &cat,
            demand: &demand,
            latency_threshold_ms: 120.0,
        };
        let plan = provision(&inputs, &ProvisionerParams::default()).unwrap();
        for (sc, cap) in &plan.scenarios {
            assert!(
                plan.capacity.covers(cap, 1e-6),
                "final capacity does not cover scenario {sc:?}"
            );
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let (topo, cat, demand) = instance();
        let inputs = PlanningInputs {
            topo: &topo,
            catalog: &cat,
            demand: &demand,
            latency_threshold_ms: 120.0,
        };
        let par = provision(&inputs, &ProvisionerParams::default()).unwrap();
        let seq = provision(
            &inputs,
            &ProvisionerParams {
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert!((par.cost - seq.cost).abs() < 1e-6 * (1.0 + seq.cost));
        assert_eq!(par.scenarios.len(), seq.scenarios.len());
    }
}
