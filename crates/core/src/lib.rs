//! # sb-core — the Switchboard controller
//!
//! The paper's primary contribution: peak-aware, joint compute+network,
//! application-specific resource management for conferencing services.
//!
//! * [`latency`] — `Lat(x,u)` maps and `ACL(x,c)` math (Table 2);
//! * [`formulation`] — the provisioning LP (Eq. 3–9) built per failure
//!   scenario;
//! * [`mod@provision`] — the scenario sweep (Eq. 7–8) producing a
//!   [`ProvisioningPlan`];
//! * [`allocation`] — the daily latency-optimal allocation plan (Eq. 10);
//! * [`realtime`] — the real-time MP selector with the first-joiner
//!   heuristic, slot tallying, and migration (§5.4);
//! * [`plan`] — versioned plan artifacts, plan deltas, warm incremental
//!   re-planning, and plan persistence (§6.3's refresh loop);
//! * [`baselines`] — Round-Robin and Locality-First (§3), with the Eq. 1–2
//!   backup LP in [`backup`];
//! * [`decomposed`] — a greedy scalable provisioner (ablation);
//! * [`shares`] / [`usage`] — the `S_tcx` representation and forward
//!   evaluation of Eq. 5–6 (usage, peaks, mean ACL).
//!
//! ```
//! use sb_core::formulation::PlanningInputs;
//! use sb_core::provision::{provision, ProvisionerParams};
//! use sb_workload::{CallConfig, ConfigCatalog, DemandMatrix, MediaType};
//!
//! let topo = sb_net::presets::toy_three_dc();
//! let jp = topo.country_by_name("JP");
//! let mut catalog = ConfigCatalog::new();
//! let cfg = catalog.intern(CallConfig::new(vec![(jp, 4)], MediaType::Video));
//! let mut demand = DemandMatrix::zero(1, 2, 30, 0);
//! demand.set(cfg, 0, 25.0);
//! demand.set(cfg, 1, 10.0);
//! let inputs = PlanningInputs::new(&topo, &catalog, &demand);
//! let plan = provision(&inputs, &ProvisionerParams::default()).unwrap();
//! assert!(plan.capacity.total_cores() > 0.0);
//! assert!(plan.capacity.covers(&plan.serving, 1e-9));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allocation;
pub mod backup;
pub mod baselines;
pub mod decomposed;
pub mod formulation;
pub mod latency;
mod metrics;
pub mod plan;
pub mod provision;
pub mod realtime;
pub mod report;
pub mod shares;
pub mod usage;

pub use allocation::allocation_plan;
pub use baselines::{provision_baseline, BaselinePlan, BaselinePolicy};
pub use formulation::{
    solve_scenario, PlanningInputs, ProvisionError, ScenarioData, ScenarioSolution, SolveOptions,
    SweepModel,
};
pub use latency::LatencyMap;
pub use metrics::PLAN_SLOT_COLUMNS;
pub use plan::{
    PlanArtifact, PlanDelta, PlanParseError, PlanProvenance, QuotaChange, ReplanReport,
    SlotPlanner, SlotSolveInfo, PLAN_EXPORT_COLUMNS,
};
pub use provision::{provision, ProvisionerParams, ProvisioningPlan};
pub use realtime::{
    CallExport, FreezeDecision, PlanSwapStats, PlannedQuotas, QuotaCellExport, RealtimeSelector,
    RestoreDebit, SelectorOutcome, SelectorRung, SelectorShard, SelectorStateExport, SelectorStats,
};
pub use shares::AllocationShares;
pub use usage::{compute_usage, mean_acl, placed_fraction, UsageTimeline};
