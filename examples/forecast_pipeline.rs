//! The forecasting pipeline (§5.2): group call records into per-config
//! 30-minute timeseries, fit Holt–Winters per config, predict months ahead,
//! and check accuracy with the paper's peak-normalized metrics.
//!
//! ```sh
//! cargo run --release --example forecast_pipeline
//! ```

use switchboard::forecast::{fit_auto, mae, peak_normalized, rmse, Cdf};
use switchboard::prelude::*;

fn main() {
    let topo = switchboard::net::presets::apac();
    let params = WorkloadParams {
        universe: UniverseParams {
            num_configs: 500,
            ..Default::default()
        },
        daily_calls: 10_000.0,
        slot_minutes: 60,
        ..Default::default()
    };
    let generator = Generator::new(&topo, params);
    let season = generator.slots_per_day() * 7; // weekly seasonality
    let train_days = 9 * 30;
    let horizon_days = 30;

    // §5.2: forecast only the head configs; a cushion covers the tail
    let mut ranked: Vec<_> = generator.universe().specs.iter().collect();
    ranked.sort_by(|a, b| b.weight.total_cmp(&a.weight));
    let head: Vec<_> = ranked.iter().take(40).map(|s| s.id).collect();

    println!(
        "fitting Holt–Winters for {} head configs ({} train days)…",
        head.len(),
        train_days
    );
    let mut rmses = Vec::new();
    let mut maes = Vec::new();
    for &id in &head {
        let history = generator.sample_config_series(id, 0, train_days, 50);
        let truth = generator.sample_config_series(id, train_days, horizon_days, 51);
        let model = fit_auto(&history, season).expect("two seasons of history");
        let forecast = model.forecast(truth.len());
        if let (Some(r), Some(m)) = (
            peak_normalized(rmse(&forecast, &truth), &truth),
            peak_normalized(mae(&forecast, &truth), &truth),
        ) {
            rmses.push(r);
            maes.push(m);
        }
    }
    let rc = Cdf::new(rmses);
    let mc = Cdf::new(maes);
    println!(
        "\n{}-day-ahead accuracy across {} configs:",
        horizon_days,
        rc.len()
    );
    println!("  median peak-normalized RMSE {:.1}%", 100.0 * rc.median());
    println!("  median peak-normalized MAE  {:.1}%", 100.0 * mc.median());
    println!("  p90 RMSE {:.1}%", 100.0 * rc.quantile(0.9));
    println!("\n(the paper reports medians of 13% RMSE / 8% MAE on real Teams data, §6.5)");
}
