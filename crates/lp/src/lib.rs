//! # sb-lp — linear programming for the Switchboard reproduction
//!
//! A self-contained LP toolkit: model a problem with [`LpProblem`], then solve
//! it with one of two engines:
//!
//! * [`DenseSimplex`] — two-phase tableau simplex; simple, used as the test
//!   oracle and for small models;
//! * [`RevisedSimplex`] — revised simplex with implicit variable bounds and a
//!   maintained basis inverse; the engine used by the Switchboard
//!   provisioning and allocation LPs (thousands of rows).
//!
//! Both engines minimize; to maximize, negate the objective.
//!
//! ```
//! use sb_lp::{LpProblem, RevisedSimplex, Solver};
//!
//! // minimize total peak capacity for two sites sharing demand 10
//! let mut lp = LpProblem::new();
//! let p1 = lp.add_nonneg("peak_a", 1.0);
//! let p2 = lp.add_nonneg("peak_b", 1.0);
//! let sa = lp.add_var("share_a", 0.0, 0.0, 10.0);
//! let sb = lp.add_var("share_b", 0.0, 0.0, 10.0);
//! lp.add_eq(vec![(sa, 1.0), (sb, 1.0)], 10.0);
//! lp.add_le(vec![(sa, 1.0), (p1, -1.0)], 0.0);
//! lp.add_le(vec![(sb, 1.0), (p2, -1.0)], 0.0);
//! let sol = RevisedSimplex::new().solve(&lp).unwrap();
//! assert!((sol.objective() - 10.0).abs() < 1e-7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dense;
mod export;
mod factor;
mod guarded;
mod metrics;
mod problem;
mod ratio;
mod revised;
mod sparse;
mod standard;

pub use dense::DenseSimplex;
pub use export::to_lp_format;
pub use factor::FactorKind;
pub use guarded::GuardedSimplex;
pub use problem::{
    Basis, Constraint, LpError, LpProblem, Relation, Solution, SolveRung, SolveStats, Solver, Var,
    VarStatus,
};
pub use revised::{Pricing, RevisedSimplex};
pub use standard::{PatchOutcome, PreparedProblem};
