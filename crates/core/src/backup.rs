//! The baseline backup-capacity LP (§3.2, Eq. 1–2): given each DC's serving
//! capacity, place the minimum total backup such that any single DC's
//! serving load fits in the other DCs' backup.

use sb_lp::{LpProblem, RevisedSimplex, Solver};

/// Minimize `Σ_x Backup_x` subject to
/// `Serving_x ≤ Σ_{y ≠ x, allowed(x,y)} Backup_y` for every DC `x`.
///
/// `allowed(failed, host)` restricts which DCs may absorb a failed DC's load
/// (e.g. latency-feasible failover); pass `|_, _| true` for the unrestricted
/// Eq. 1–2. Returns `None` when the system is infeasible (e.g. a DC whose
/// load nobody may host).
pub fn min_total_backup(
    serving: &[f64],
    allowed: impl Fn(usize, usize) -> bool,
) -> Option<Vec<f64>> {
    let n = serving.len();
    if n == 0 {
        return Some(Vec::new());
    }
    if n == 1 {
        // a single DC cannot back itself up
        return if serving[0] > 0.0 {
            None
        } else {
            Some(vec![0.0])
        };
    }
    let mut lp = LpProblem::new();
    let backup: Vec<_> = (0..n)
        .map(|x| lp.add_nonneg(format!("backup_{x}"), 1.0))
        .collect();
    for x in 0..n {
        if serving[x] <= 0.0 {
            continue;
        }
        let coeffs: Vec<_> = (0..n)
            .filter(|&y| y != x && allowed(x, y))
            .map(|y| (backup[y], 1.0))
            .collect();
        if coeffs.is_empty() {
            return None;
        }
        lp.add_ge(coeffs, serving[x]);
    }
    let sol = RevisedSimplex::new().solve(&lp).ok()?;
    Some(backup.iter().map(|&v| sol.value(v).max(0.0)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total(v: &[f64]) -> f64 {
        v.iter().sum()
    }

    #[test]
    fn equal_serving_splits_evenly() {
        // §3.1's example: four equal DCs, each 25 % of total serving → each
        // needs 25/3 ≈ 8.33 % backup, i.e. total backup 4·25/3 ≈ 33.3
        let serving = [25.0; 4];
        let b = min_total_backup(&serving, |_, _| true).unwrap();
        assert!(
            (total(&b) - 4.0 * 25.0 / 3.0).abs() < 1e-6,
            "total {}",
            total(&b)
        );
        // binding constraint: any failed DC's 25 fits in the others
        for x in 0..4 {
            let others: f64 = (0..4).filter(|&y| y != x).map(|y| b[y]).sum();
            assert!(others >= 25.0 - 1e-6);
        }
    }

    #[test]
    fn skewed_serving_needs_more_backup() {
        // §3.2's example: one DC with 75 % of serving forces 75 % backup
        let serving = [75.0, 8.0, 9.0, 8.0];
        let b = min_total_backup(&serving, |_, _| true).unwrap();
        assert!((total(&b) - 75.0).abs() < 1e-6);
        // none of it sits on the big DC (useless there)
        let others: f64 = b[1] + b[2] + b[3];
        assert!((others - 75.0).abs() < 1e-6);
    }

    #[test]
    fn two_dcs_mirror_each_other() {
        let serving = [10.0, 4.0];
        let b = min_total_backup(&serving, |_, _| true).unwrap();
        assert!((b[1] - 10.0).abs() < 1e-6);
        assert!((b[0] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn allowed_filter_restricts_hosts() {
        // DC0's load may only go to DC2
        let serving = [10.0, 10.0, 0.0];
        let b = min_total_backup(&serving, |x, y| !(x == 0 && y == 1)).unwrap();
        assert!(b[2] >= 10.0 - 1e-6);
        assert!((total(&b) - 10.0).abs() < 1e-6); // DC2's 10 also covers DC1's failure
    }

    #[test]
    fn infeasible_when_no_host_allowed() {
        let serving = [10.0, 5.0];
        assert!(min_total_backup(&serving, |x, _| x != 0).is_none());
    }

    #[test]
    fn trivial_cases() {
        assert_eq!(min_total_backup(&[], |_, _| true), Some(vec![]));
        assert_eq!(min_total_backup(&[0.0], |_, _| true), Some(vec![0.0]));
        assert_eq!(min_total_backup(&[5.0], |_, _| true), None);
        let b = min_total_backup(&[0.0, 0.0], |_, _| true).unwrap();
        assert_eq!(total(&b), 0.0);
    }
}
