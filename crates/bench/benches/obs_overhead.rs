//! Overhead of the observability layer when the global registry is disabled
//! (the default). Each disabled-path op must stay at roughly one relaxed
//! atomic load, so instrumented hot paths (LP solves, selector decisions,
//! store writes) run within 1% of their uninstrumented speed.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sb_lp::{LpProblem, RevisedSimplex, Solver};

fn small_lp() -> LpProblem {
    let mut lp = LpProblem::new();
    let p1 = lp.add_nonneg("peak_a", 1.0);
    let p2 = lp.add_nonneg("peak_b", 1.0);
    let sa = lp.add_var("share_a", 0.0, 0.0, 10.0);
    let sb = lp.add_var("share_b", 0.0, 0.0, 10.0);
    lp.add_eq(vec![(sa, 1.0), (sb, 1.0)], 10.0);
    lp.add_le(vec![(sa, 1.0), (p1, -1.0)], 0.0);
    lp.add_le(vec![(sb, 1.0), (p2, -1.0)], 0.0);
    lp
}

fn bench_disabled_ops(c: &mut Criterion) {
    assert!(
        !sb_obs::global().enabled(),
        "global registry must start disabled"
    );
    let counter = sb_obs::global().counter("bench.obs_overhead.counter");
    let hist = sb_obs::global().histogram("bench.obs_overhead.hist");

    let mut g = c.benchmark_group("obs_disabled");
    g.bench_function("counter_inc", |b| b.iter(|| counter.inc()));
    g.bench_function("histogram_record", |b| {
        b.iter(|| hist.record(black_box(42)))
    });
    g.bench_function("scoped_timer", |b| b.iter(|| drop(hist.start_timer())));
    g.finish();
}

fn bench_instrumented_solve(c: &mut Criterion) {
    // end-to-end check: an instrumented solve with the registry disabled vs
    // enabled; the disabled number is the one that must match pre-obs speed
    let lp = small_lp();
    let mut g = c.benchmark_group("lp_solve_instrumented");
    g.bench_function("registry_disabled", |b| {
        b.iter(|| RevisedSimplex::new().solve(black_box(&lp)).unwrap())
    });
    sb_obs::global().set_enabled(true);
    g.bench_function("registry_enabled", |b| {
        b.iter(|| RevisedSimplex::new().solve(black_box(&lp)).unwrap())
    });
    sb_obs::global().set_enabled(false);
    g.finish();
}

criterion_group!(benches, bench_disabled_ops, bench_instrumented_solve);
criterion_main!(benches);
