//! Cached handles into the global [`sb_obs`] registry for the LP engines.
//!
//! Handles are resolved once per process; when the global registry is
//! disabled (the default) every record below is a single relaxed load.

use crate::problem::{LpError, SolveStats};
use sb_obs::{Counter, Gauge, Histogram};
use std::sync::OnceLock;

pub(crate) struct LpMetrics {
    solves: Counter,
    phase1_iterations: Counter,
    phase2_iterations: Counter,
    refactorizations: Counter,
    solve_wall_ns: Histogram,
    time_limit_aborts: Counter,
    dense_fallbacks: Counter,
    cold_retries: Counter,
    warm_accepted: Counter,
    warm_rejected_singular: Counter,
    warm_rejected_infeasible: Counter,
    phase1_iterations_saved: Counter,
    pricing_scans: Counter,
    pricing_cols_scanned: Counter,
    full_pricing_sweeps: Counter,
    eta_updates: Counter,
    devex_resets: Counter,
    basis_nnz: Gauge,
    fill_ratio: Gauge,
}

impl LpMetrics {
    pub(crate) fn record_solve(&self, stats: &SolveStats) {
        self.solves.inc();
        self.phase1_iterations.add(stats.phase1_iterations);
        self.phase2_iterations.add(stats.phase2_iterations);
        self.refactorizations.add(stats.refactorizations);
        self.solve_wall_ns.record_duration(stats.wall);
        self.phase1_iterations_saved
            .add(stats.phase1_iterations_saved);
        self.pricing_scans.add(stats.pricing_scans);
        self.pricing_cols_scanned.add(stats.pricing_cols_scanned);
        self.full_pricing_sweeps.add(stats.full_pricing_sweeps);
        self.eta_updates.add(stats.eta_updates);
        self.devex_resets.add(stats.devex_resets);
        self.basis_nnz.set(stats.basis_nnz as f64);
        self.fill_ratio.set(stats.fill_ratio);
    }

    pub(crate) fn record_fallback(&self, cause: &LpError) {
        self.dense_fallbacks.inc();
        if matches!(cause, LpError::TimeLimit) {
            self.time_limit_aborts.inc();
        }
    }

    pub(crate) fn record_cold_retry(&self) {
        self.cold_retries.inc();
    }

    pub(crate) fn record_warm_accepted(&self) {
        self.warm_accepted.inc();
    }

    pub(crate) fn record_warm_rejected(&self, singular: bool) {
        if singular {
            self.warm_rejected_singular.inc();
        } else {
            self.warm_rejected_infeasible.inc();
        }
    }
}

pub(crate) fn lp_metrics() -> &'static LpMetrics {
    static METRICS: OnceLock<LpMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = sb_obs::global();
        LpMetrics {
            solves: reg.counter("lp.solves"),
            phase1_iterations: reg.counter("lp.phase1_iterations"),
            phase2_iterations: reg.counter("lp.phase2_iterations"),
            refactorizations: reg.counter("lp.refactorizations"),
            solve_wall_ns: reg.histogram("lp.solve_wall_ns"),
            time_limit_aborts: reg.counter("lp.time_limit_aborts"),
            dense_fallbacks: reg.counter("lp.dense_fallbacks"),
            cold_retries: reg.counter("lp.cold_retries"),
            warm_accepted: reg.counter("lp.warm_accepted"),
            warm_rejected_singular: reg.counter("lp.warm_rejected_singular"),
            warm_rejected_infeasible: reg.counter("lp.warm_rejected_infeasible"),
            phase1_iterations_saved: reg.counter("lp.phase1_iterations_saved"),
            pricing_scans: reg.counter("lp.pricing_scans"),
            pricing_cols_scanned: reg.counter("lp.pricing_cols_scanned"),
            full_pricing_sweeps: reg.counter("lp.full_pricing_sweeps"),
            eta_updates: reg.counter("lp.eta_updates"),
            devex_resets: reg.counter("lp.devex_resets"),
            basis_nnz: reg.gauge("lp.basis_nnz"),
            fill_ratio: reg.gauge("lp.fill_ratio"),
        }
    })
}
