//! Human-readable plan reporting: what was provisioned where, how cost
//! splits between compute and WAN, and which failure scenario forced each
//! DC's capacity — the questions an operator asks of a plan.

use sb_net::{FailureScenario, ProvisionedCapacity, Topology};

use crate::provision::ProvisioningPlan;

/// Per-DC capacity line items.
#[derive(Clone, Debug)]
pub struct DcLine {
    /// DC name.
    pub name: String,
    /// Serving cores (no-failure requirement).
    pub serving_cores: f64,
    /// Final cores (incl. backup).
    pub total_cores: f64,
    /// Compute cost of the final cores.
    pub cost: f64,
    /// The scenario that forced this DC's final capacity.
    pub binding: FailureScenario,
}

/// Structured plan summary.
#[derive(Clone, Debug)]
pub struct PlanSummary {
    /// One line per DC.
    pub dcs: Vec<DcLine>,
    /// Total inter-country WAN Gbps.
    pub wan_gbps: f64,
    /// Compute share of total cost.
    pub compute_cost: f64,
    /// Network share of total cost.
    pub network_cost: f64,
    /// Backup premium over serving-only cost (fraction ≥ 0).
    pub backup_premium: f64,
}

/// The scenario whose requirement at `dc` matches the final capacity
/// (ties: earliest in plan order, which puts `F₀` first).
fn binding_scenario(plan: &ProvisioningPlan, dc: usize) -> FailureScenario {
    let target = plan.capacity.cores[dc];
    plan.scenarios
        .iter()
        .find(|(_, req)| (req.cores[dc] - target).abs() <= 1e-6 * (1.0 + target))
        .map(|(sc, _)| *sc)
        .unwrap_or(FailureScenario::None)
}

/// Build a [`PlanSummary`].
pub fn summarize(topo: &Topology, plan: &ProvisioningPlan) -> PlanSummary {
    let dcs = topo
        .dcs
        .iter()
        .enumerate()
        .map(|(i, dc)| DcLine {
            name: dc.name.clone(),
            serving_cores: plan.serving.cores[i],
            total_cores: plan.capacity.cores[i],
            cost: plan.capacity.cores[i] * dc.core_cost,
            binding: binding_scenario(plan, i),
        })
        .collect();
    let compute_cost: f64 = plan
        .capacity
        .cores
        .iter()
        .zip(&topo.dcs)
        .map(|(c, d)| c * d.core_cost)
        .sum();
    let network_cost = plan.cost - compute_cost;
    let serving_cost = plan.serving.cost(topo);
    let backup_premium = if serving_cost > 0.0 {
        (plan.cost / serving_cost - 1.0).max(0.0)
    } else {
        0.0
    };
    PlanSummary {
        dcs,
        wan_gbps: plan.capacity.total_wan_gbps(topo),
        compute_cost,
        network_cost,
        backup_premium,
    }
}

/// Render the summary as a text block.
pub fn render(topo: &Topology, plan: &ProvisioningPlan) -> String {
    use std::fmt::Write;
    let s = summarize(topo, plan);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "capacity plan ({} DCs, {} links):",
        topo.dcs.len(),
        topo.links.len()
    );
    for line in &s.dcs {
        let _ = writeln!(
            out,
            "  {:>12}: {:>8.1} cores (serving {:>8.1})  ${:>9.0}  binding: {}",
            line.name,
            line.total_cores,
            line.serving_cores,
            line.cost,
            scenario_label(topo, line.binding)
        );
    }
    let _ = writeln!(out, "  inter-country WAN: {:.2} Gbps", s.wan_gbps);
    let _ = writeln!(
        out,
        "  cost: ${:.0} compute + ${:.0} network = ${:.0}  (backup premium {:.0}%)",
        s.compute_cost,
        s.network_cost,
        s.compute_cost + s.network_cost,
        100.0 * s.backup_premium
    );
    out
}

/// Short label for a scenario.
pub fn scenario_label(topo: &Topology, sc: FailureScenario) -> String {
    match sc {
        FailureScenario::None => "no failure".to_string(),
        FailureScenario::DcDown(d) => format!("{} down", topo.dcs[d.index()].name),
        FailureScenario::LinkDown(l) => {
            let link = &topo.links[l.index()];
            let name = |n: sb_net::Node| match n {
                sb_net::Node::Dc(d) => topo.dcs[d.index()].name.clone(),
                sb_net::Node::Edge(c) => format!("{} edge", topo.countries[c.index()].name),
            };
            format!("link {}–{} down", name(link.a), name(link.b))
        }
    }
}

/// Export the provisioned topology to Graphviz DOT, link width scaled by
/// provisioned Gbps — handy for eyeballing a plan.
pub fn to_dot(topo: &Topology, cap: &ProvisionedCapacity) -> String {
    use std::fmt::Write;
    let mut out = String::from("graph switchboard {\n  overlap=false;\n");
    for (i, dc) in topo.dcs.iter().enumerate() {
        let _ = writeln!(
            out,
            "  dc{} [shape=box,label=\"{}\\n{:.0} cores\"];",
            i, dc.name, cap.cores[i]
        );
    }
    for (i, c) in topo.countries.iter().enumerate() {
        let _ = writeln!(out, "  c{} [shape=ellipse,label=\"{}\"];", i, c.name);
    }
    let max_g = cap.gbps.iter().cloned().fold(1e-9, f64::max);
    for (i, link) in topo.links.iter().enumerate() {
        let id = |n: sb_net::Node| match n {
            sb_net::Node::Dc(d) => format!("dc{}", d.index()),
            sb_net::Node::Edge(c) => format!("c{}", c.index()),
        };
        let w = 0.5 + 4.0 * cap.gbps[i] / max_g;
        let _ = writeln!(
            out,
            "  {} -- {} [penwidth={w:.1},label=\"{:.1}G\"];",
            id(link.a),
            id(link.b),
            cap.gbps[i]
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formulation::PlanningInputs;
    use crate::provision::{provision, ProvisionerParams};
    use sb_workload::{CallConfig, ConfigCatalog, DemandMatrix, MediaType};

    fn plan() -> (Topology, ProvisioningPlan) {
        let topo = sb_net::presets::toy_three_dc();
        let jp = topo.country_by_name("JP");
        let mut cat = ConfigCatalog::new();
        let id = cat.intern(CallConfig::new(vec![(jp, 2)], MediaType::Audio));
        let mut demand = DemandMatrix::zero(1, 2, 30, 0);
        demand.set(id, 0, 50.0);
        demand.set(id, 1, 20.0);
        let inputs = PlanningInputs {
            topo: &topo,
            catalog: &cat,
            demand: &demand,
            latency_threshold_ms: 120.0,
        };
        let plan = provision(&inputs, &ProvisionerParams::default()).unwrap();
        (topo, plan)
    }

    #[test]
    fn summary_accounts_costs_exactly() {
        let (topo, plan) = plan();
        let s = summarize(&topo, &plan);
        assert_eq!(s.dcs.len(), topo.dcs.len());
        assert!((s.compute_cost + s.network_cost - plan.cost).abs() < 1e-6);
        assert!(s.backup_premium >= 0.0);
        for line in &s.dcs {
            assert!(line.total_cores >= line.serving_cores - 1e-9);
        }
    }

    #[test]
    fn binding_scenarios_exist_in_plan() {
        let (topo, plan) = plan();
        let s = summarize(&topo, &plan);
        for line in &s.dcs {
            // the label must render for every binding scenario
            let label = scenario_label(&topo, line.binding);
            assert!(!label.is_empty());
        }
    }

    #[test]
    fn render_mentions_every_dc() {
        let (topo, plan) = plan();
        let text = render(&topo, &plan);
        for dc in &topo.dcs {
            assert!(text.contains(&dc.name), "missing {}", dc.name);
        }
        assert!(text.contains("backup premium"));
    }

    #[test]
    fn dot_export_is_wellformed() {
        let (topo, plan) = plan();
        let dot = to_dot(&topo, &plan.capacity);
        assert!(dot.starts_with("graph switchboard {"));
        assert!(dot.trim_end().ends_with('}'));
        assert_eq!(dot.matches(" -- ").count(), topo.links.len());
        assert_eq!(dot.matches("shape=box").count(), topo.dcs.len());
        assert_eq!(dot.matches("shape=ellipse").count(), topo.countries.len());
    }
}
