//! Write-ahead journal: append-only, CRC-framed, fsync-batched.
//!
//! The engine appends one opaque payload per lifecycle operation
//! (admission / join / media change / freeze / end / plan install) and the
//! journal makes a durable prefix of those payloads survive a process
//! crash. Durability is batched: appends accumulate in an in-memory buffer
//! and are written + `fsync`ed together once either `sync_every` records
//! are pending or the `group_commit` window has elapsed — the classic
//! group-commit trade of bounded loss for bounded write amplification.
//!
//! ## On-disk format
//!
//! ```text
//! [ magic: 8 bytes "SBJRNL01" ]
//! [ frame ]*
//! frame = [ len: u32 LE ]            // 8 + payload length
//!         [ crc: u32 LE ]            // CRC-32 (IEEE) over seq || payload
//!         [ seq: u64 LE ]            // record index, 0-based
//!         [ payload: len - 8 bytes ]
//! ```
//!
//! The sequence number is embedded in (and covered by) every frame, so a
//! scan can detect duplicated or re-ordered records — a frame whose `seq`
//! does not equal its position is a typed [`JournalReadError::SeqMismatch`],
//! never silently accepted. A half-written frame at end-of-file (torn tail)
//! is the *expected* crash artifact and is truncated on recovery; a corrupt
//! frame with valid data after it is a hard [`JournalReadError`].
//!
//! Because appends buffer in memory until the group-commit fires, the file
//! content is always exactly the synced prefix: [`Journal::crash`] models a
//! process death by discarding the buffer, and a subsequent
//! [`Journal::recover`] sees only records that were actually durable.
//!
//! Fault injection mirrors the sharded-map chaos hooks: a
//! [`JournalFault::Stall`] delays every append (slow disk), a
//! [`JournalFault::Drop`] fails appends with a typed error (full disk /
//! dead volume) without consuming sequence numbers, so the surviving log
//! stays dense and scannable.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// File magic: identifies a Switchboard journal, version 01.
pub const JOURNAL_MAGIC: [u8; 8] = *b"SBJRNL01";

/// Per-frame header bytes preceding the payload: len + crc + seq.
const FRAME_HEADER: usize = 4 + 4 + 8;

/// Hard ceiling on one frame's `len` field (8-byte seq + payload). Anything
/// larger is treated as corruption — plan artifacts are the biggest records
/// and stay far below this.
pub const MAX_FRAME_LEN: u32 = 64 << 20;

/// CRC-32 (IEEE 802.3, reflected) over `seq || payload`. Hand-rolled table
/// — the workspace vendors no checksum crate and the journal must not grow
/// a dependency for 20 lines of table math.
fn crc32(seq: u64, payload: &[u8]) -> u32 {
    const POLY: u32 = 0xEDB8_8320;
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            }
            *e = c;
        }
        t
    });
    let mut c = !0u32;
    for &b in seq.to_le_bytes().iter().chain(payload) {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Group-commit tuning for a [`Journal`].
#[derive(Copy, Clone, Debug)]
pub struct JournalConfig {
    /// Maximum time an appended record may sit unsynced before the next
    /// append forces a group commit.
    pub group_commit: Duration,
    /// Sync once this many records are pending, regardless of the window.
    pub sync_every: usize,
}

impl Default for JournalConfig {
    fn default() -> JournalConfig {
        JournalConfig {
            group_commit: Duration::from_millis(5),
            sync_every: 64,
        }
    }
}

/// Injected journal fault (service-layer chaos).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum JournalFault {
    /// Healthy.
    #[default]
    None,
    /// Every append stalls for this long before proceeding (slow disk).
    Stall(Duration),
    /// Every append fails with [`JournalError::Dropped`] (dead volume).
    Drop,
}

/// Append-side failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JournalError {
    /// The journal was crashed ([`Journal::crash`]); no further appends.
    Crashed,
    /// An injected [`JournalFault::Drop`] rejected the append.
    Dropped,
    /// The underlying file write or fsync failed.
    Io(String),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Crashed => write!(f, "journal crashed"),
            JournalError::Dropped => write!(f, "journal write dropped by injected fault"),
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
        }
    }
}

impl std::error::Error for JournalError {}

/// Scan/recovery-side failure. Torn tails are *not* errors — they are
/// reported via [`JournalScan::torn_tail_bytes`] and truncated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JournalReadError {
    /// The file could not be opened or read.
    Io(String),
    /// The file does not start with [`JOURNAL_MAGIC`].
    BadMagic,
    /// Frame `index` failed its CRC (or has a nonsense length) while valid
    /// data follows it — mid-log corruption, not a torn tail.
    CorruptRecord {
        /// 0-based frame index.
        index: u64,
    },
    /// Frame `index` carries a sequence number other than its position —
    /// a duplicated, re-ordered, or spliced record.
    SeqMismatch {
        /// 0-based frame index.
        index: u64,
        /// The sequence number the position demands.
        expected: u64,
        /// The sequence number found in the frame.
        found: u64,
    },
}

impl fmt::Display for JournalReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalReadError::Io(e) => write!(f, "journal read error: {e}"),
            JournalReadError::BadMagic => write!(f, "not a journal file (bad magic)"),
            JournalReadError::CorruptRecord { index } => {
                write!(f, "corrupt journal record at index {index}")
            }
            JournalReadError::SeqMismatch {
                index,
                expected,
                found,
            } => write!(
                f,
                "journal sequence mismatch at index {index}: expected {expected}, found {found}"
            ),
        }
    }
}

impl std::error::Error for JournalReadError {}

/// Result of scanning a journal file: the durable records in order, plus
/// how many trailing bytes were discarded as a torn tail.
#[derive(Clone, Debug)]
pub struct JournalScan {
    /// Decoded payloads, frame order == sequence order.
    pub records: Vec<Vec<u8>>,
    /// Bytes past the last valid frame (half-written tail), 0 if clean.
    pub torn_tail_bytes: u64,
}

struct Inner {
    file: File,
    /// Encoded frames not yet written+synced. The file on disk always
    /// contains exactly the synced prefix.
    pending: Vec<u8>,
    pending_records: u64,
    next_seq: u64,
    synced_records: u64,
    last_sync: Instant,
    crashed: bool,
}

/// An append-only write-ahead journal with group commit.
pub struct Journal {
    inner: Mutex<Inner>,
    cfg: JournalConfig,
    fault: Mutex<JournalFault>,
    path: PathBuf,
    appended: AtomicU64,
    syncs: AtomicU64,
    dropped: AtomicU64,
    stalled: AtomicU64,
}

impl Journal {
    /// Create (truncating) a fresh journal at `path`.
    pub fn create(path: &Path, cfg: JournalConfig) -> Result<Journal, JournalError> {
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)
            .map_err(|e| JournalError::Io(e.to_string()))?;
        file.write_all(&JOURNAL_MAGIC)
            .and_then(|()| file.sync_data())
            .map_err(|e| JournalError::Io(e.to_string()))?;
        Ok(Journal::with_file(file, 0, path, cfg))
    }

    fn with_file(file: File, next_seq: u64, path: &Path, cfg: JournalConfig) -> Journal {
        Journal {
            inner: Mutex::new(Inner {
                file,
                pending: Vec::new(),
                pending_records: 0,
                next_seq,
                synced_records: next_seq,
                last_sync: Instant::now(),
                crashed: false,
            }),
            cfg,
            fault: Mutex::new(JournalFault::None),
            path: path.to_path_buf(),
            appended: AtomicU64::new(0),
            syncs: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            stalled: AtomicU64::new(0),
        }
    }

    /// Scan a journal file without opening it for writing: validates magic,
    /// CRCs, and sequence density; truncates nothing.
    pub fn scan(path: &Path) -> Result<JournalScan, JournalReadError> {
        let mut buf = Vec::new();
        File::open(path)
            .and_then(|mut f| f.read_to_end(&mut buf))
            .map_err(|e| JournalReadError::Io(e.to_string()))?;
        Journal::scan_bytes(&buf)
    }

    fn scan_bytes(buf: &[u8]) -> Result<JournalScan, JournalReadError> {
        if buf.len() < JOURNAL_MAGIC.len() || buf[..JOURNAL_MAGIC.len()] != JOURNAL_MAGIC {
            return Err(JournalReadError::BadMagic);
        }
        let mut records: Vec<Vec<u8>> = Vec::new();
        let mut pos = JOURNAL_MAGIC.len();
        loop {
            let remaining = buf.len() - pos;
            if remaining == 0 {
                return Ok(JournalScan {
                    records,
                    torn_tail_bytes: 0,
                });
            }
            let index = records.len() as u64;
            let torn = |records: Vec<Vec<u8>>| {
                Ok(JournalScan {
                    records,
                    torn_tail_bytes: remaining as u64,
                })
            };
            if remaining < FRAME_HEADER {
                return torn(records);
            }
            let len = u32::from_le_bytes([buf[pos], buf[pos + 1], buf[pos + 2], buf[pos + 3]]);
            let bad_len = !(8..=MAX_FRAME_LEN).contains(&len);
            let frame_end = if bad_len {
                usize::MAX
            } else {
                pos + 8 + len as usize
            };
            if bad_len || frame_end > buf.len() {
                // A nonsense length field or a frame overrunning EOF: if
                // this is the last thing in the file it is a torn tail;
                // there is no "valid data after it" to distinguish, so
                // truncate. (A mid-log flipped length byte degrades to
                // tail truncation too — recovery then rebuilds the prefix,
                // which is exactly the "identical state or typed error"
                // contract.)
                return torn(records);
            }
            let crc = u32::from_le_bytes([buf[pos + 4], buf[pos + 5], buf[pos + 6], buf[pos + 7]]);
            let seq =
                u64::from_le_bytes(buf[pos + 8..pos + 16].try_into().expect("slice is 8 bytes"));
            let payload = &buf[pos + 16..frame_end];
            if crc32(seq, payload) != crc {
                if frame_end == buf.len() {
                    // bad CRC on the final frame: half-written tail
                    return torn(records);
                }
                return Err(JournalReadError::CorruptRecord { index });
            }
            if seq != index {
                return Err(JournalReadError::SeqMismatch {
                    index,
                    expected: index,
                    found: seq,
                });
            }
            records.push(payload.to_vec());
            pos = frame_end;
        }
    }

    /// Open an existing journal for recovery: scan it, truncate any torn
    /// tail, and return a journal positioned to append record
    /// `scan.records.len()` next.
    pub fn recover(
        path: &Path,
        cfg: JournalConfig,
    ) -> Result<(Journal, JournalScan), JournalReadError> {
        let mut buf = Vec::new();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| JournalReadError::Io(e.to_string()))?;
        file.read_to_end(&mut buf)
            .map_err(|e| JournalReadError::Io(e.to_string()))?;
        let scan = Journal::scan_bytes(&buf)?;
        let valid_len = buf.len() as u64 - scan.torn_tail_bytes;
        if scan.torn_tail_bytes > 0 {
            file.set_len(valid_len)
                .and_then(|()| file.sync_data())
                .map_err(|e| JournalReadError::Io(e.to_string()))?;
        }
        file.seek(SeekFrom::Start(valid_len))
            .map_err(|e| JournalReadError::Io(e.to_string()))?;
        let journal = Journal::with_file(file, scan.records.len() as u64, path, cfg);
        Ok((journal, scan))
    }

    /// Append one record; returns its sequence number. Durability is
    /// deferred to the group commit — call [`Journal::sync`] to force it.
    pub fn append(&self, payload: &[u8]) -> Result<u64, JournalError> {
        match *self.fault.lock() {
            JournalFault::None => {}
            JournalFault::Stall(d) => {
                self.stalled.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(d);
            }
            JournalFault::Drop => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return Err(JournalError::Dropped);
            }
        }
        let mut inner = self.inner.lock();
        if inner.crashed {
            return Err(JournalError::Crashed);
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let crc = crc32(seq, payload);
        let len = (8 + payload.len()) as u32;
        inner.pending.extend_from_slice(&len.to_le_bytes());
        inner.pending.extend_from_slice(&crc.to_le_bytes());
        inner.pending.extend_from_slice(&seq.to_le_bytes());
        inner.pending.extend_from_slice(payload);
        inner.pending_records += 1;
        self.appended.fetch_add(1, Ordering::Relaxed);
        if inner.pending_records >= self.cfg.sync_every as u64
            || inner.last_sync.elapsed() >= self.cfg.group_commit
        {
            self.sync_locked(&mut inner)?;
        }
        Ok(seq)
    }

    fn sync_locked(&self, inner: &mut Inner) -> Result<(), JournalError> {
        if inner.pending.is_empty() {
            inner.last_sync = Instant::now();
            return Ok(());
        }
        let pending = std::mem::take(&mut inner.pending);
        let n = inner.pending_records;
        inner.pending_records = 0;
        inner
            .file
            .write_all(&pending)
            .and_then(|()| inner.file.sync_data())
            .map_err(|e| JournalError::Io(e.to_string()))?;
        inner.synced_records += n;
        inner.last_sync = Instant::now();
        self.syncs.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Force the group commit: write and fsync all pending records.
    pub fn sync(&self) -> Result<(), JournalError> {
        let mut inner = self.inner.lock();
        if inner.crashed {
            return Err(JournalError::Crashed);
        }
        self.sync_locked(&mut inner)
    }

    /// Model a process crash: discard every record still in the group-commit
    /// buffer (they were never durable) and refuse further appends. Returns
    /// the number of records lost.
    pub fn crash(&self) -> u64 {
        let mut inner = self.inner.lock();
        inner.crashed = true;
        inner.pending.clear();
        let lost = inner.pending_records;
        inner.pending_records = 0;
        lost
    }

    /// Install (or clear) an injected fault.
    pub fn set_fault(&self, fault: JournalFault) {
        *self.fault.lock() = fault;
    }

    /// The path this journal writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records accepted by [`Journal::append`] since creation (durable or
    /// still pending).
    pub fn appended_records(&self) -> u64 {
        self.appended.load(Ordering::Relaxed)
    }

    /// Records made durable so far.
    pub fn synced_records(&self) -> u64 {
        self.inner.lock().synced_records
    }

    /// Records currently buffered, not yet durable.
    pub fn pending_records(&self) -> u64 {
        self.inner.lock().pending_records
    }

    /// Group commits performed.
    pub fn sync_count(&self) -> u64 {
        self.syncs.load(Ordering::Relaxed)
    }

    /// Appends rejected by an injected [`JournalFault::Drop`].
    pub fn dropped_appends(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Appends delayed by an injected [`JournalFault::Stall`].
    pub fn stalled_appends(&self) -> u64 {
        self.stalled.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sb_journal_test_{}_{}", std::process::id(), name));
        p
    }

    fn cfg_every(n: usize) -> JournalConfig {
        JournalConfig {
            group_commit: Duration::from_secs(3600),
            sync_every: n,
        }
    }

    #[test]
    fn append_sync_scan_roundtrip() {
        let path = tmp("roundtrip");
        let j = Journal::create(&path, cfg_every(2)).unwrap();
        assert_eq!(j.append(b"alpha").unwrap(), 0);
        assert_eq!(j.pending_records(), 1);
        assert_eq!(j.append(b"beta").unwrap(), 1); // hits sync_every=2
        assert_eq!(j.pending_records(), 0);
        j.append(b"gamma").unwrap();
        j.sync().unwrap();
        assert_eq!(j.synced_records(), 3);
        let scan = Journal::scan(&path).unwrap();
        assert_eq!(scan.torn_tail_bytes, 0);
        assert_eq!(
            scan.records,
            vec![b"alpha".to_vec(), b"beta".to_vec(), b"gamma".to_vec()]
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn crash_loses_only_the_unsynced_tail() {
        let path = tmp("crash");
        let j = Journal::create(&path, cfg_every(100)).unwrap();
        j.append(b"a").unwrap();
        j.append(b"b").unwrap();
        j.sync().unwrap();
        j.append(b"c").unwrap();
        j.append(b"d").unwrap();
        assert_eq!(j.crash(), 2);
        assert!(matches!(j.append(b"e"), Err(JournalError::Crashed)));
        let scan = Journal::scan(&path).unwrap();
        assert_eq!(scan.records, vec![b"a".to_vec(), b"b".to_vec()]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_on_recover() {
        let path = tmp("torn");
        let j = Journal::create(&path, cfg_every(1)).unwrap();
        j.append(b"keep-me").unwrap();
        j.append(b"tear-me").unwrap();
        drop(j);
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 3).unwrap(); // rip 3 bytes off the last frame
        drop(f);
        let (j2, scan) = Journal::recover(&path, cfg_every(1)).unwrap();
        assert_eq!(scan.records, vec![b"keep-me".to_vec()]);
        assert!(scan.torn_tail_bytes > 0);
        // the journal resumes at the right sequence number
        assert_eq!(j2.append(b"after").unwrap(), 1);
        j2.sync().unwrap();
        let scan2 = Journal::scan(&path).unwrap();
        assert_eq!(scan2.records, vec![b"keep-me".to_vec(), b"after".to_vec()]);
        assert_eq!(scan2.torn_tail_bytes, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn duplicated_frame_is_a_seq_mismatch() {
        let path = tmp("dup");
        let j = Journal::create(&path, cfg_every(1)).unwrap();
        j.append(b"only").unwrap();
        drop(j);
        // duplicate the single frame byte-for-byte
        let bytes = std::fs::read(&path).unwrap();
        let frame = bytes[JOURNAL_MAGIC.len()..].to_vec();
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&frame).unwrap();
        drop(f);
        match Journal::scan(&path) {
            Err(JournalReadError::SeqMismatch {
                index,
                expected,
                found,
            }) => {
                assert_eq!((index, expected, found), (1, 1, 0));
            }
            other => panic!("expected SeqMismatch, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mid_log_corruption_is_a_typed_error() {
        let path = tmp("midcorrupt");
        let j = Journal::create(&path, cfg_every(1)).unwrap();
        j.append(b"first-record").unwrap();
        j.append(b"second-record").unwrap();
        drop(j);
        let mut bytes = std::fs::read(&path).unwrap();
        // flip a payload byte inside the *first* frame (payload starts at
        // magic + header)
        let idx = JOURNAL_MAGIC.len() + FRAME_HEADER + 2;
        bytes[idx] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            Journal::scan(&path),
            Err(JournalReadError::CorruptRecord { index: 0 })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_and_missing_file_are_typed() {
        let path = tmp("badmagic");
        std::fs::write(&path, b"definitely not a journal").unwrap();
        assert!(matches!(
            Journal::scan(&path),
            Err(JournalReadError::BadMagic)
        ));
        std::fs::remove_file(&path).ok();
        assert!(matches!(Journal::scan(&path), Err(JournalReadError::Io(_))));
    }

    #[test]
    fn drop_fault_is_typed_and_keeps_seq_dense() {
        let path = tmp("dropfault");
        let j = Journal::create(&path, cfg_every(1)).unwrap();
        j.append(b"a").unwrap();
        j.set_fault(JournalFault::Drop);
        assert!(matches!(j.append(b"lost"), Err(JournalError::Dropped)));
        assert_eq!(j.dropped_appends(), 1);
        j.set_fault(JournalFault::None);
        // the dropped append consumed no sequence number
        assert_eq!(j.append(b"b").unwrap(), 1);
        j.sync().unwrap();
        let scan = Journal::scan(&path).unwrap();
        assert_eq!(scan.records, vec![b"a".to_vec(), b"b".to_vec()]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stall_fault_delays_but_succeeds() {
        let path = tmp("stallfault");
        let j = Journal::create(&path, cfg_every(1)).unwrap();
        j.set_fault(JournalFault::Stall(Duration::from_millis(2)));
        let t = Instant::now();
        j.append(b"slow").unwrap();
        assert!(t.elapsed() >= Duration::from_millis(2));
        assert_eq!(j.stalled_appends(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn group_commit_window_forces_sync() {
        let path = tmp("window");
        let cfg = JournalConfig {
            group_commit: Duration::from_millis(1),
            sync_every: 1_000_000,
        };
        let j = Journal::create(&path, cfg).unwrap();
        j.append(b"first").unwrap();
        std::thread::sleep(Duration::from_millis(3));
        // window elapsed: this append flushes both records
        j.append(b"second").unwrap();
        assert_eq!(j.pending_records(), 0);
        assert_eq!(j.synced_records(), 2);
        std::fs::remove_file(&path).ok();
    }
}
