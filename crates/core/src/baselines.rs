//! The §3 baselines: Round-Robin (RR) and Locality-First (LF) server
//! allocation with their §3.1/§3.2 capacity-provisioning rules.

use sb_net::{DcId, FailureScenario, ProvisionedCapacity};

use crate::backup::min_total_backup;
use crate::formulation::{PlanningInputs, ScenarioData};
use crate::shares::AllocationShares;
use crate::usage::{compute_usage, mean_acl};

/// Which baseline.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum BaselinePolicy {
    /// Round-robin across the DCs of the call's region (§3.1). With equal
    /// weights this equalizes load, minimizing serving + backup compute at
    /// the price of WAN and latency.
    RoundRobin,
    /// Host at the ACL-minimizing DC (§3.2): best latency and lean WAN, but
    /// the sum of time-shifted local peaks exceeds the global peak.
    LocalityFirst,
}

/// Provisioning output for a baseline.
#[derive(Clone, Debug)]
pub struct BaselinePlan {
    /// Serving capacity (no-failure peaks).
    pub serving: ProvisionedCapacity,
    /// Final capacity (serving + Eq. 1–2 compute backup, failover WAN max)
    /// when backup was requested, otherwise equal to `serving`.
    pub capacity: ProvisionedCapacity,
    /// The no-failure allocation shares.
    pub f0_shares: AllocationShares,
    /// Expected mean ACL of the no-failure allocation.
    pub mean_acl: f64,
    /// Cost of the final capacity.
    pub cost: f64,
}

/// Allocation shares a baseline produces under a given scenario.
pub fn baseline_shares(
    policy: BaselinePolicy,
    inputs: &PlanningInputs<'_>,
    sd: &ScenarioData,
) -> AllocationShares {
    let topo = inputs.topo;
    let demand = inputs.demand;
    let mut shares = AllocationShares::new(demand.num_slots());
    for (cfg_id, cfg) in inputs.catalog.iter() {
        if cfg_id.index() >= demand.num_configs() {
            break;
        }
        if demand.series(cfg_id).iter().all(|&d| d <= 0.0) {
            continue;
        }
        let per_dc: Vec<(DcId, f64)> = match policy {
            BaselinePolicy::RoundRobin => {
                let region = topo.countries[cfg.majority_country().index()].region;
                // DCs of the call's region that are up and reachable
                let mut dcs: Vec<DcId> = topo
                    .dcs_in_region(region)
                    .map(|d| d.id)
                    .filter(|&d| sd.latmap.acl(cfg, d).is_some())
                    .collect();
                if dcs.is_empty() {
                    // region wiped out (or unreachable): fall back to any DC
                    dcs = topo
                        .dc_ids()
                        .filter(|&d| sd.latmap.acl(cfg, d).is_some())
                        .collect();
                }
                let n = dcs.len();
                dcs.into_iter().map(|d| (d, 1.0 / n as f64)).collect()
            }
            BaselinePolicy::LocalityFirst => match sd.latmap.acl_min_dc(cfg) {
                Some((dc, _)) => vec![(dc, 1.0)],
                None => Vec::new(),
            },
        };
        if per_dc.is_empty() {
            continue;
        }
        for slot in 0..demand.num_slots() {
            if demand.get(cfg_id, slot) > 0.0 {
                shares.set(cfg_id, slot, per_dc.clone());
            }
        }
    }
    shares
}

/// Provision for a baseline policy, optionally with backup.
///
/// Compute backup follows the paper's §3.2 LP (Eq. 1–2) on the per-DC peak
/// serving capacities; WAN backup is the max over single-failure scenarios of
/// the WAN usage the policy's failover produces (a failed DC's calls follow
/// the same policy over the surviving DCs).
pub fn provision_baseline(
    policy: BaselinePolicy,
    inputs: &PlanningInputs<'_>,
    with_backup: bool,
) -> BaselinePlan {
    let sd0 = ScenarioData::compute(inputs.topo, FailureScenario::None);
    let f0_shares = baseline_shares(policy, inputs, &sd0);
    let usage0 = compute_usage(
        inputs.topo,
        &sd0.routing,
        inputs.catalog,
        inputs.demand,
        &f0_shares,
    );
    let serving = usage0.peaks();
    let acl = mean_acl(&sd0.latmap, inputs.catalog, inputs.demand, &f0_shares);

    let mut capacity = serving.clone();
    if with_backup {
        // compute backup via Eq. 1–2
        let backup = min_total_backup(&serving.cores, |_, _| true)
            .expect("multi-DC topologies always admit a backup plan");
        for (c, b) in capacity.cores.iter_mut().zip(&backup) {
            *c += b;
        }
        // WAN backup: failover usage under each failure scenario
        for sc in FailureScenario::enumerate(inputs.topo) {
            if sc == FailureScenario::None {
                continue;
            }
            let sd = ScenarioData::compute(inputs.topo, sc);
            let shares = baseline_shares(policy, inputs, &sd);
            let usage = compute_usage(
                inputs.topo,
                &sd.routing,
                inputs.catalog,
                inputs.demand,
                &shares,
            );
            let peaks = usage.peaks();
            for (g, p) in capacity.gbps.iter_mut().zip(&peaks.gbps) {
                *g = g.max(*p);
            }
        }
    }
    let cost = capacity.cost(inputs.topo);
    BaselinePlan {
        serving,
        capacity,
        f0_shares,
        mean_acl: acl,
        cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_net::Topology;
    use sb_workload::{CallConfig, ConfigCatalog, ConfigId, DemandMatrix, MediaType};

    fn instance() -> (Topology, ConfigCatalog, DemandMatrix) {
        let topo = sb_net::presets::toy_three_dc();
        let jp = topo.country_by_name("JP");
        let iin = topo.country_by_name("IN");
        let mut cat = ConfigCatalog::new();
        let c_jp = cat.intern(CallConfig::new(vec![(jp, 2)], MediaType::Audio));
        let c_in = cat.intern(CallConfig::new(vec![(iin, 2)], MediaType::Audio));
        let mut demand = DemandMatrix::zero(2, 2, 30, 0);
        demand.set(c_jp, 0, 90.0);
        demand.set(c_in, 1, 90.0);
        demand.set(c_in, 0, 10.0);
        demand.set(c_jp, 1, 10.0);
        (topo, cat, demand)
    }

    fn inputs<'a>(
        topo: &'a Topology,
        cat: &'a ConfigCatalog,
        demand: &'a DemandMatrix,
    ) -> PlanningInputs<'a> {
        PlanningInputs {
            topo,
            catalog: cat,
            demand,
            latency_threshold_ms: 120.0,
        }
    }

    #[test]
    fn rr_spreads_evenly() {
        let (topo, cat, demand) = instance();
        let inp = inputs(&topo, &cat, &demand);
        let sd = ScenarioData::compute(&topo, FailureScenario::None);
        let shares = baseline_shares(BaselinePolicy::RoundRobin, &inp, &sd);
        let s = shares.get(ConfigId(0), 0);
        assert_eq!(s.len(), 3);
        for &(_, f) in s {
            assert!((f - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn lf_picks_local_dc() {
        let (topo, cat, demand) = instance();
        let inp = inputs(&topo, &cat, &demand);
        let sd = ScenarioData::compute(&topo, FailureScenario::None);
        let shares = baseline_shares(BaselinePolicy::LocalityFirst, &inp, &sd);
        assert_eq!(
            shares.get(ConfigId(0), 0),
            &[(topo.dc_by_name("Tokyo"), 1.0)]
        );
        assert_eq!(
            shares.get(ConfigId(1), 1),
            &[(topo.dc_by_name("Pune"), 1.0)]
        );
    }

    #[test]
    fn lf_fails_over_when_local_dc_down() {
        let (topo, cat, demand) = instance();
        let inp = inputs(&topo, &cat, &demand);
        let tokyo = topo.dc_by_name("Tokyo");
        let sd = ScenarioData::compute(&topo, FailureScenario::DcDown(tokyo));
        let shares = baseline_shares(BaselinePolicy::LocalityFirst, &inp, &sd);
        let s = shares.get(ConfigId(0), 0);
        assert_eq!(s.len(), 1);
        assert_ne!(s[0].0, tokyo);
    }

    #[test]
    fn rr_minimizes_cores_lf_minimizes_acl_and_wan() {
        // the Table 3 qualitative ordering on a miniature instance
        let (topo, cat, demand) = instance();
        let inp = inputs(&topo, &cat, &demand);
        let rr = provision_baseline(BaselinePolicy::RoundRobin, &inp, false);
        let lf = provision_baseline(BaselinePolicy::LocalityFirst, &inp, false);
        assert!(rr.serving.total_cores() <= lf.serving.total_cores() + 1e-9);
        assert!(lf.mean_acl < rr.mean_acl);
        assert!(lf.serving.total_wan_gbps(&topo) < rr.serving.total_wan_gbps(&topo));
    }

    #[test]
    fn backup_adds_capacity() {
        let (topo, cat, demand) = instance();
        let inp = inputs(&topo, &cat, &demand);
        for policy in [BaselinePolicy::RoundRobin, BaselinePolicy::LocalityFirst] {
            let plain = provision_baseline(policy, &inp, false);
            let with = provision_baseline(policy, &inp, true);
            assert!(with.capacity.total_cores() > plain.capacity.total_cores());
            assert!(with.cost > plain.cost);
            assert!(with.capacity.covers(&with.serving, 1e-9));
            // ACL unaffected by backup (allocation is the same under F0)
            assert!((with.mean_acl - plain.mean_acl).abs() < 1e-12);
        }
    }

    #[test]
    fn rr_backup_fraction_matches_paper_formula() {
        // §3.1: n equal DCs, each serving s → each needs s/(n−1) backup,
        // total backup n·s/(n−1). Here n = 3.
        let (topo, cat, demand) = instance();
        let inp = inputs(&topo, &cat, &demand);
        let plan = provision_baseline(BaselinePolicy::RoundRobin, &inp, true);
        let per_dc = plan.serving.cores[0];
        for &c in &plan.serving.cores {
            assert!((c - per_dc).abs() < 1e-6, "RR serving should be equal");
        }
        let backup_total = plan.capacity.total_cores() - plan.serving.total_cores();
        assert!((backup_total - 3.0 * per_dc / 2.0).abs() < 1e-6);
    }
}
