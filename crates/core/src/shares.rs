//! Allocation shares: for each `(call config, time slot)`, the fraction of
//! that slot's calls hosted at each DC — the `S_tcx` of the paper, whether
//! produced by the LP (Switchboard) or by a closed-form policy (RR, LF).

use std::collections::HashMap;

use sb_net::DcId;
use sb_workload::ConfigId;

/// Sparse `S_tcx`: per config, per slot, a short `(dc, fraction)` list.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AllocationShares {
    num_slots: usize,
    shares: HashMap<ConfigId, Vec<Vec<(DcId, f64)>>>,
}

impl AllocationShares {
    /// Empty shares over `num_slots` slots.
    pub fn new(num_slots: usize) -> AllocationShares {
        AllocationShares {
            num_slots,
            shares: HashMap::new(),
        }
    }

    /// Number of slots.
    pub fn num_slots(&self) -> usize {
        self.num_slots
    }

    /// Set the share list for `(cfg, slot)`. Fractions must be non-negative;
    /// zero entries are dropped.
    pub fn set(&mut self, cfg: ConfigId, slot: usize, mut fracs: Vec<(DcId, f64)>) {
        assert!(slot < self.num_slots);
        fracs.retain(|&(_, f)| f > 0.0);
        for &(_, f) in &fracs {
            assert!(f.is_finite() && f >= 0.0);
        }
        let per_slot = self
            .shares
            .entry(cfg)
            .or_insert_with(|| vec![Vec::new(); self.num_slots]);
        per_slot[slot] = fracs;
    }

    /// Share list for `(cfg, slot)`; empty when unset.
    pub fn get(&self, cfg: ConfigId, slot: usize) -> &[(DcId, f64)] {
        static EMPTY: Vec<(DcId, f64)> = Vec::new();
        self.shares
            .get(&cfg)
            .map(|v| &v[slot][..])
            .unwrap_or(&EMPTY)
    }

    /// Does the plan mention this config at all?
    pub fn covers(&self, cfg: ConfigId) -> bool {
        self.shares.contains_key(&cfg)
    }

    /// Iterate `(config, slot, shares)` for all non-empty entries.
    pub fn iter(&self) -> impl Iterator<Item = (ConfigId, usize, &[(DcId, f64)])> {
        self.shares.iter().flat_map(|(&cfg, per_slot)| {
            per_slot
                .iter()
                .enumerate()
                .filter(|(_, v)| !v.is_empty())
                .map(move |(slot, v)| (cfg, slot, &v[..]))
        })
    }

    /// Configs present in the plan.
    pub fn configs(&self) -> impl Iterator<Item = ConfigId> + '_ {
        self.shares.keys().copied()
    }

    /// Sum of fractions for `(cfg, slot)` (≈1.0 when demand is fully placed).
    pub fn total_fraction(&self, cfg: ConfigId, slot: usize) -> f64 {
        self.get(cfg, slot).iter().map(|&(_, f)| f).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_iter() {
        let mut s = AllocationShares::new(3);
        let c = ConfigId(4);
        s.set(c, 1, vec![(DcId(0), 0.7), (DcId(2), 0.3), (DcId(1), 0.0)]);
        assert_eq!(s.get(c, 1), &[(DcId(0), 0.7), (DcId(2), 0.3)]);
        assert_eq!(s.get(c, 0), &[]);
        assert!(s.covers(c));
        assert!(!s.covers(ConfigId(9)));
        assert!((s.total_fraction(c, 1) - 1.0).abs() < 1e-12);
        assert_eq!(s.total_fraction(c, 0), 0.0);
        let all: Vec<_> = s.iter().collect();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].0, c);
        assert_eq!(all[0].1, 1);
    }

    #[test]
    fn overwrite_replaces() {
        let mut s = AllocationShares::new(2);
        let c = ConfigId(0);
        s.set(c, 0, vec![(DcId(0), 1.0)]);
        s.set(c, 0, vec![(DcId(1), 1.0)]);
        assert_eq!(s.get(c, 0), &[(DcId(1), 1.0)]);
    }

    #[test]
    #[should_panic]
    fn slot_out_of_range() {
        let mut s = AllocationShares::new(1);
        s.set(ConfigId(0), 1, vec![]);
    }
}
