//! # sb-workload — synthetic conferencing workload and call-records database
//!
//! Microsoft Teams' 15 months of production call records are proprietary;
//! this crate generates a synthetic workload calibrated to every property the
//! paper states about the real one:
//!
//! * demand peaks follow local work hours, shifted across time zones
//!   ([`diurnal`], Fig. 3);
//! * call-config popularity is extremely head-heavy ([`universe`], Fig. 7c:
//!   top 0.1 % / 1 % of configs ≈ 86 % / 93 % of calls);
//! * per-config growth trends differ widely ([`universe`], Fig. 7b);
//! * ~80 % of participants have joined by 300 s ([`joins`], Fig. 8);
//! * ~95 % of calls have their majority in the first joiner's country
//!   ([`generator`], §5.4);
//! * recurring meeting series show habitual/alternating attendance
//!   ([`series`], §8).
//!
//! The [`generator::Generator`] produces expected demand matrices
//! (provisioning ground truth), Poisson-sampled counts, and full call-record
//! traces ([`records::CallRecordsDb`]) for replay.

//!
//! ```
//! use sb_workload::{Generator, UniverseParams, WorkloadParams};
//!
//! let topo = sb_net::presets::apac();
//! let params = WorkloadParams {
//!     universe: UniverseParams { num_configs: 50, ..Default::default() },
//!     daily_calls: 500.0,
//!     slot_minutes: 120,
//!     ..Default::default()
//! };
//! let generator = Generator::new(&topo, params);
//! let demand = generator.expected_demand(0, 7);           // a week of rates
//! let trace = generator.sample_records(0, 1, 7);           // one day of calls
//! assert!(demand.total_calls() > 0.0);
//! assert!(trace.majority_matches_first_joiner_frac() > 0.9); // §5.4 statistic
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod demand;
pub mod diurnal;
pub mod generator;
pub mod joins;
pub mod persist;
pub mod records;
pub mod sampling;
pub mod series;
pub mod stream;
pub mod universe;

pub use config::{CallConfig, ConfigCatalog, ConfigId, MediaType};
pub use demand::DemandMatrix;
pub use generator::{Generator, WorkloadParams};
pub use records::{CallRecord, CallRecordsDb};
pub use stream::{WindowBatch, WindowStream};
pub use universe::{Universe, UniverseParams};
