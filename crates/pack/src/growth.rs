//! Call-size growth prediction for growth-aware packing.
//!
//! Reuses the `sb-predict` multi-order Markov chain ([`Momc`]) — the same
//! machinery the selector uses for call-config attendance — but fits it on
//! per-minute *"did this call gain a participant?"* histories derived from
//! workload join offsets. The packer consults the model at placement and
//! growth time to reserve headroom for calls that are likely to keep
//! growing (the Tetris insight: hotspots come from calls that grow *after*
//! placement, so score servers on predicted, not current, load).
//!
//! Predictions feed only the *scoring* side of the packer; the hard
//! capacity invariant is always enforced on actual (not predicted) cost, so
//! a wildly wrong model can cost migrations but never a capacity violation.

use crate::fleet::CostModel;
use sb_predict::Momc;
use sb_workload::CallRecordsDb;

/// Tuning for [`GrowthModel::fit`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GrowthConfig {
    /// How many leading minutes of each call feed the training histories.
    /// Growth is front-loaded (most joins land in the first minutes), so a
    /// short horizon keeps the chain focused on the regime that matters.
    pub horizon_minutes: usize,
    /// Markov chain order (1..=16), as in [`Momc::fit`].
    pub max_order: usize,
    /// Minutes of future growth a reservation should cover.
    pub lookahead_minutes: u32,
}

impl Default for GrowthConfig {
    fn default() -> Self {
        Self {
            horizon_minutes: 10,
            max_order: 3,
            lookahead_minutes: 4,
        }
    }
}

#[derive(Debug, Clone)]
enum Kind {
    /// Fitted Markov chain plus the mean number of joins observed in a
    /// minute that had at least one join.
    Fitted { momc: Momc, mean_joins: f64 },
    /// Fixed prediction used by tests and as a model-free fallback.
    Flat { extra: u32 },
}

/// Predictor of how many more participants a call is likely to gain.
#[derive(Debug, Clone)]
pub struct GrowthModel {
    kind: Kind,
    lookahead_minutes: u32,
}

impl GrowthModel {
    /// Fit on a workload trace: each call becomes a per-minute binary
    /// history where minute `m` is `true` iff some participant beyond the
    /// first joined during `[m, m+1)` minutes after call start.
    pub fn fit(db: &CallRecordsDb, cfg: GrowthConfig) -> Self {
        let mut histories = Vec::with_capacity(db.records().len());
        let mut joins_in_grow_minutes = 0u64;
        let mut grow_minutes = 0u64;
        for r in db.records() {
            let minutes = (r.duration_min as usize).min(cfg.horizon_minutes);
            if minutes == 0 {
                continue;
            }
            let mut h = vec![false; minutes];
            let mut per_minute = vec![0u64; minutes];
            // offset 0 is the first joiner (the call existing), not growth
            for &off in r.join_offsets_s.iter().skip(1) {
                let m = (off / 60) as usize;
                if m < minutes {
                    h[m] = true;
                    per_minute[m] += 1;
                }
            }
            for m in 0..minutes {
                if h[m] {
                    grow_minutes += 1;
                    joins_in_grow_minutes += per_minute[m];
                }
            }
            histories.push(h);
        }
        let mean_joins = if grow_minutes > 0 {
            joins_in_grow_minutes as f64 / grow_minutes as f64
        } else {
            1.0
        };
        Self {
            kind: Kind::Fitted {
                momc: Momc::fit(&histories, cfg.max_order),
                mean_joins,
            },
            lookahead_minutes: cfg.lookahead_minutes,
        }
    }

    /// A model that always predicts exactly `extra` more participants.
    /// Handy in tests and as a conservative static reservation policy.
    pub fn flat(extra: u32) -> Self {
        Self {
            kind: Kind::Flat { extra },
            lookahead_minutes: 0,
        }
    }

    /// Predicted number of additional participants over the lookahead
    /// window, given the call's growth history so far (`history[m]` =
    /// "minute `m` saw a join"; most recent minute last).
    pub fn expected_extra(&self, history: &[bool]) -> u32 {
        match &self.kind {
            Kind::Flat { extra } => *extra,
            Kind::Fitted { momc, mean_joins } => {
                let k = history.len().clamp(1, momc.max_order());
                let p = momc.order_prob(history, k);
                (p * mean_joins * self.lookahead_minutes as f64).ceil() as u32
            }
        }
    }

    /// Millicores to *reserve* for a call that currently has
    /// `participants` participants: its actual cost plus the cost delta of
    /// the predicted extra participants. Always `>=` the actual cost.
    pub fn reserve_mcpu(&self, cost: &CostModel, participants: u32, history: &[bool]) -> u32 {
        cost.cost_mcpu(participants.saturating_add(self.expected_extra(history)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_net::CountryId;
    use sb_workload::{CallConfig, CallRecord, CallRecordsDb, ConfigCatalog, MediaType};

    fn db(specs: Vec<(u64, u16, Vec<u16>)>) -> CallRecordsDb {
        let mut cat = ConfigCatalog::new();
        let cfg = cat.intern(CallConfig::new(vec![(CountryId(0), 2)], MediaType::Audio));
        let mut db = CallRecordsDb::new(cat);
        for (id, duration_min, join_offsets_s) in specs {
            db.push(CallRecord {
                id,
                config: cfg,
                start_minute: 0,
                duration_min,
                first_joiner: CountryId(0),
                join_offsets_s,
            });
        }
        db
    }

    #[test]
    fn flat_model_is_constant() {
        let m = GrowthModel::flat(3);
        assert_eq!(m.expected_extra(&[]), 3);
        assert_eq!(m.expected_extra(&[true, false]), 3);
        let cost = CostModel::default();
        assert_eq!(m.reserve_mcpu(&cost, 2, &[]), cost.cost_mcpu(5));
    }

    #[test]
    fn reserve_never_below_actual_cost() {
        let m = GrowthModel::flat(0);
        let cost = CostModel::default();
        for p in 0..20 {
            assert!(m.reserve_mcpu(&cost, p, &[]) >= cost.cost_mcpu(p));
        }
    }

    #[test]
    fn fitted_model_separates_growers_from_stable_calls() {
        // Growers gain a participant every minute for 8 minutes; stable
        // calls never grow after the first joiner.
        let mut specs = Vec::new();
        for i in 0..40u64 {
            let offs: Vec<u16> = std::iter::once(0)
                .chain((0..8).map(|m| m * 60 + 5))
                .collect();
            specs.push((i, 10, offs));
            specs.push((100 + i, 10, vec![0, 1]));
        }
        let m = GrowthModel::fit(&db(specs), GrowthConfig::default());
        let grew = m.expected_extra(&[true, true, true]);
        let idle = m.expected_extra(&[false, false, false]);
        assert!(
            grew > idle,
            "growth streak should predict more joins: {grew} vs {idle}"
        );
        assert!(grew >= 1);
    }

    #[test]
    fn empty_trace_still_fits() {
        let m = GrowthModel::fit(&db(Vec::new()), GrowthConfig::default());
        // base-rate fallback path; any finite prediction is fine
        let _ = m.expected_extra(&[]);
    }
}
