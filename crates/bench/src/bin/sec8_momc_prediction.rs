//! §8: predicting the call config of recurring meetings with multi-order
//! Markov chains feeding a logistic regression, against the previous-instance
//! baseline. The paper trains on 24,000 records of series with ≥3 past
//! occurrences and evaluates 3,600 unseen instances: MOMC+LR reaches
//! RMSE 0.97 / MAE 0.90 vs the baseline's 24.90 / 23.60.

use sb_bench::common::print_table;
use sb_predict::{evaluate, ParticipantHistory, PredictorParams, SeriesHistory};
use sb_workload::series::{generate_series, SeriesParams};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let params = SeriesParams {
        num_series: if quick { 400 } else { 3_600 },
        occurrences: 12,
        max_roster: 60,
        seed: 17,
    };
    let topo = sb_net::presets::apac();
    let (series, occurrences) = generate_series(&topo, &params);
    let records: usize = series.iter().map(|s| s.roster_size()).sum::<usize>();
    println!("== §8: MOMC + logistic-regression call-config prediction ==\n");
    println!(
        "{} series, {} occurrences, {} participant histories",
        series.len(),
        occurrences.len(),
        records
    );

    // reshape into sb-predict's input
    let histories: Vec<SeriesHistory> = series
        .iter()
        .map(|s| {
            let occs: Vec<_> = occurrences.iter().filter(|o| o.series == s.id).collect();
            let participants = (0..s.roster_size())
                .map(|i| ParticipantHistory {
                    country: s.countries[i].0,
                    attendance: occs.iter().map(|o| o.attended[i]).collect(),
                })
                .collect();
            SeriesHistory { participants }
        })
        .collect();

    let eval = evaluate(&histories, &PredictorParams::default());
    println!(
        "evaluated on the held-out final occurrence of {} series\n",
        eval.series
    );
    let rows = vec![
        vec![
            "MOMC + LR".to_string(),
            format!("{:.2}", eval.rmse),
            format!("{:.2}", eval.mae),
        ],
        vec![
            "last-instance baseline".to_string(),
            format!("{:.2}", eval.baseline_rmse),
            format!("{:.2}", eval.baseline_mae),
        ],
    ];
    print_table(&["predictor", "RMSE", "MAE"], &rows);
    println!(
        "\nimprovement: RMSE ÷{:.1}, MAE ÷{:.1}   (paper: 0.97/0.90 vs 24.90/23.60 —\n\
         the baseline is hurt most by large rosters and alternating attendees)",
        eval.baseline_rmse / eval.rmse.max(1e-9),
        eval.baseline_mae / eval.mae.max(1e-9)
    );
}
