//! Full-pipeline integration test: synthesize a workload, select the head
//! configs, provision with the scenario LP, compute the daily allocation
//! plan, and replay a sampled trace through the real-time selector — the
//! whole §5 design running end to end.

use switchboard::core::{
    allocation_plan, mean_acl, placed_fraction, provision, PlanArtifact, PlannedQuotas,
    PlanningInputs, ProvisionerParams, RealtimeSelector, ScenarioData, SolveOptions,
};
use switchboard::net::FailureScenario;
use switchboard::sim::{replay, ReplayConfig};
use switchboard::workload::{Generator, UniverseParams, WorkloadParams};

fn generator(topo: &switchboard::net::Topology) -> Generator<'_> {
    let params = WorkloadParams {
        universe: UniverseParams {
            num_configs: 150,
            seed: 21,
            ..Default::default()
        },
        daily_calls: 2_000.0,
        slot_minutes: 120,
        seed: 21,
        ..Default::default()
    };
    Generator::new(topo, params)
}

#[test]
fn provision_allocate_replay() {
    let topo = switchboard::net::presets::apac();
    let generator = generator(&topo);
    let day = 2;
    let expected = generator.expected_demand(day, 1);
    let selected = expected.top_configs_covering(0.9);
    let planned = expected.filtered(&selected).scaled(1.2);
    let inputs = PlanningInputs {
        topo: &topo,
        catalog: &generator.universe().catalog,
        demand: &planned,
        latency_threshold_ms: 120.0,
    };

    // provision (serving only — backup covered by the failure test)
    let plan = provision(
        &inputs,
        &ProvisionerParams {
            with_backup: false,
            ..Default::default()
        },
    )
    .expect("provisioning succeeds");
    assert!(plan.capacity.total_cores() > 0.0);
    assert!((placed_fraction(&planned, &plan.f0_shares) - 1.0).abs() < 1e-6);

    // daily allocation plan fits the capacity and meets the latency bound
    let sd0 = ScenarioData::compute(&topo, FailureScenario::None);
    let shares = allocation_plan(&inputs, &sd0, &plan.capacity, &SolveOptions::default())
        .expect("allocation plan");
    assert!((placed_fraction(&planned, &shares) - 1.0).abs() < 1e-6);
    let acl = mean_acl(
        &sd0.latmap,
        &generator.universe().catalog,
        &planned,
        &shares,
    );
    assert!(
        acl < 120.0,
        "planned mean ACL {acl} must sit under the threshold"
    );

    // replay the sampled day through the real-time selector
    let db = generator.sample_records(day, 1, 13);
    assert!(db.len() > 300, "trace too small");
    let quotas = PlannedQuotas::from_plan(&shares, &planned);
    let selector = RealtimeSelector::from_artifact(&sd0.latmap, &PlanArtifact::seed(quotas));
    let report = replay(
        &topo,
        &sd0.routing,
        &sd0.latmap,
        &generator.universe().catalog,
        &db,
        &selector,
        &ReplayConfig::default(),
    );
    assert_eq!(report.calls as usize, db.len());
    // per-call mean ACL also under the bound (replay uses real placements)
    assert!(
        report.mean_acl_ms < 120.0,
        "replayed ACL {}",
        report.mean_acl_ms
    );
    // migrations occur but stay a small fraction (§6.4: ~1.5% in the paper)
    let migration = report.selector.migration_rate();
    assert!(
        migration < 0.15,
        "migration rate {migration} implausibly high"
    );
    // most calls follow the plan (quota overflow must be the exception)
    let overflow_frac = report.selector.overflow as f64 / report.calls as f64;
    assert!(overflow_frac < 0.30, "overflow fraction {overflow_frac}");
}

#[test]
fn replayed_usage_stays_within_capacity_envelope() {
    let topo = switchboard::net::presets::apac();
    let generator = generator(&topo);
    let day = 3;
    let expected = generator.expected_demand(day, 1);
    let selected = expected.top_configs_covering(0.95);
    // generous cushion so Poisson noise stays inside the envelope
    let planned = expected.filtered(&selected).scaled(1.6);
    let inputs = PlanningInputs {
        topo: &topo,
        catalog: &generator.universe().catalog,
        demand: &planned,
        latency_threshold_ms: 120.0,
    };
    let plan = provision(
        &inputs,
        &ProvisionerParams {
            with_backup: false,
            ..Default::default()
        },
    )
    .expect("provisioning succeeds");
    let sd0 = ScenarioData::compute(&topo, FailureScenario::None);
    let shares = allocation_plan(&inputs, &sd0, &plan.capacity, &SolveOptions::default())
        .expect("allocation plan");
    let db = generator.sample_records(day, 1, 17);
    let quotas = PlannedQuotas::from_plan(&shares, &planned);
    let selector = RealtimeSelector::from_artifact(&sd0.latmap, &PlanArtifact::seed(quotas));
    // §5.2: the deployed capacity carries a cushion over the head-config
    // plan, covering unplanned tail configs and their traffic on links the
    // plan itself never exercised.
    let mut cushioned = plan.capacity.clone();
    let max_g = cushioned.gbps.iter().cloned().fold(0.0f64, f64::max);
    for g in cushioned.gbps.iter_mut() {
        *g = (g.max(0.02 * max_g)) * 1.25;
    }
    for c in cushioned.cores.iter_mut() {
        *c *= 1.25;
    }
    let cfg = ReplayConfig {
        capacity: Some(cushioned),
        ..Default::default()
    };
    let report = replay(
        &topo,
        &sd0.routing,
        &sd0.latmap,
        &generator.universe().catalog,
        &db,
        &selector,
        &cfg,
    );
    // minute-level usage must respect the provisioned envelope (a few
    // violation-minutes from unplanned tail configs are tolerated)
    let minutes = 24 * 60 * (topo.dcs.len() + topo.links.len()) as u64;
    assert!(
        report.capacity_violations < minutes / 100,
        "too many violation-minutes: {} (worst overshoot {:.1}%)",
        report.capacity_violations,
        100.0 * report.worst_overshoot
    );
}
