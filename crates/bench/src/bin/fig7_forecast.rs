//! Fig. 7: forecasting call counts per call config.
//!
//! (a) Holt–Winters forecast vs ground truth for one head config (9 months of
//!     30-minute buckets fit, 3 months predicted);
//! (b) normalized growth of 15 randomly selected configs over 4 months;
//! (c) fraction of calls covered by the top-N fraction of configs.

use sb_bench::common::sparkline;
use sb_forecast::{fit_auto, peak_normalized, rmse};
use sb_workload::{ConfigId, Generator, Universe, UniverseParams, WorkloadParams};

fn part_a(generator: &Generator<'_>) {
    println!("-- (a) forecast vs ground truth, most popular config --\n");
    // most popular config = max weight
    let best = generator
        .universe()
        .specs
        .iter()
        .max_by(|a, b| a.weight.total_cmp(&b.weight))
        .unwrap()
        .id;
    let train_days = 9 * 30;
    let test_days = 7; // show one week of the 3-month horizon
    let train = generator.sample_config_series(best, 0, train_days, 100);
    let truth = generator.sample_config_series(best, train_days, test_days, 101);
    let season = generator.slots_per_day() * 7;
    let model = fit_auto(&train, season).expect("fit");
    let forecast = model.forecast(truth.len());
    println!("truth    {}", sparkline(&truth));
    println!("forecast {}", sparkline(&forecast));
    let e = rmse(&forecast, &truth);
    let norm = peak_normalized(e, &truth).unwrap_or(0.0);
    println!(
        "\nRMSE {e:.2} calls/slot, peak-normalized {:.1}% (paper Fig. 7a: forecast and\n\
         ground truth overlap for most points)\n",
        100.0 * norm
    );
}

fn part_b(generator: &Generator<'_>) {
    println!("-- (b) growth of 15 randomly selected configs over 4 months --\n");
    let n = generator.universe().len();
    let ids: Vec<ConfigId> = (0..15).map(|i| ConfigId(((i * 7919) % n) as u32)).collect();
    // growth measured as (month-4 weekly calls) / (month-1 weekly calls)
    let mut rates: Vec<(ConfigId, f64)> = ids
        .iter()
        .map(|&id| {
            let early: f64 = generator.expected_config_series(id, 0, 7).iter().sum();
            let late: f64 = generator.expected_config_series(id, 120, 7).iter().sum();
            (id, if early > 0.0 { late / early } else { 1.0 })
        })
        .collect();
    rates.sort_by(|a, b| b.1.total_cmp(&a.1));
    let max_rate = rates[0].1;
    println!("config        growth (4mo)   normalized to max (paper's Fig. 7b normalization)");
    for (id, r) in &rates {
        println!(
            "  {:>8}    {:>6.2}x        {:>5.2}",
            format!("{id:?}"),
            r,
            r / max_rate
        );
    }
    println!();
}

fn part_c() {
    println!("-- (c) fraction of calls covered by top-N configs --\n");
    // the paper's universe has 10M+ configs; we use a 100k-config universe
    // where the inter-country tail plays the role of the rare-config mass
    let topo = sb_net::presets::apac();
    let universe = Universe::generate(
        &topo,
        &UniverseParams {
            num_configs: 100_000,
            seed: 5,
            ..Default::default()
        },
    );
    let mut weights: Vec<f64> = universe.specs.iter().map(|s| s.weight).collect();
    weights.sort_by(|a, b| b.total_cmp(a));
    let n = weights.len();
    let coverage = |frac: f64| -> f64 {
        weights
            .iter()
            .take(((n as f64 * frac) as usize).max(1))
            .sum::<f64>()
    };
    println!("universe: {n} distinct configs");
    for frac in [0.001, 0.01, 0.05, 0.10, 0.25] {
        println!(
            "  top {:>5.1}% of configs → {:>5.1}% of calls",
            frac * 100.0,
            coverage(frac) * 100.0
        );
    }
    println!("\npaper: top 0.1% → 86% of calls, top 1% → 93% (10M+ configs; the knee of\nthe curve is the property Switchboard's §5.2 selection relies on)");
}

fn main() {
    let topo = sb_net::presets::apac();
    let params = WorkloadParams {
        universe: UniverseParams {
            num_configs: 2_000,
            ..Default::default()
        },
        daily_calls: 20_000.0,
        slot_minutes: 30,
        ..Default::default()
    };
    let generator = Generator::new(&topo, params);
    println!("== Fig. 7: forecasting call counts per call config ==\n");
    let only: Vec<String> = std::env::args().skip(1).collect();
    let run = |p: &str| only.is_empty() || only.iter().any(|a| a == p);
    if run("a") {
        part_a(&generator);
    }
    if run("b") {
        part_b(&generator);
    }
    if run("c") {
        part_c();
    }
}
