//! A sharded concurrent hash map — the in-process stand-in for the Azure
//! Redis instance the paper's controller writes call state to (§6.6).
//! Sharding by key hash keeps writer threads from serializing on one lock.

use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, RandomState};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};
use sb_obs::{Counter, Histogram};

struct StoreMetrics {
    read_ops: Counter,
    write_ops: Counter,
    lock_wait_ns: Histogram,
}

fn store_metrics() -> &'static StoreMetrics {
    static METRICS: OnceLock<StoreMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = sb_obs::global();
        StoreMetrics {
            read_ops: reg.counter("store.read_ops"),
            write_ops: reg.counter("store.write_ops"),
            lock_wait_ns: reg.histogram("store.lock_wait_ns"),
        }
    })
}

/// One shard: its lock plus a relaxed op counter for hot-spot diagnosis.
#[derive(Debug)]
struct Shard<K, V> {
    lock: RwLock<HashMap<K, V>>,
    ops: AtomicU64,
}

/// Sharded `HashMap` with per-shard `RwLock`s.
#[derive(Debug)]
pub struct ShardedMap<K, V> {
    shards: Vec<Shard<K, V>>,
    hasher: RandomState,
    mask: usize,
}

impl<K: Hash + Eq, V> ShardedMap<K, V> {
    /// Create with `shards` rounded up to a power of two (minimum 1).
    pub fn new(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        ShardedMap {
            shards: (0..n)
                .map(|_| Shard {
                    lock: RwLock::new(HashMap::new()),
                    ops: AtomicU64::new(0),
                })
                .collect(),
            hasher: RandomState::new(),
            mask: n - 1,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Ops (any kind) that have touched each shard since creation. A skewed
    /// distribution here means the key hash is concentrating load.
    pub fn shard_ops(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.ops.load(Ordering::Relaxed))
            .collect()
    }

    fn shard(&self, key: &K) -> &Shard<K, V> {
        let h = self.hasher.hash_one(key) as usize;
        &self.shards[h & self.mask]
    }

    /// Acquire a shard's read lock, recording the wait in the global registry.
    fn read_shard(&self, key: &K) -> RwLockReadGuard<'_, HashMap<K, V>> {
        let s = self.shard(key);
        s.ops.fetch_add(1, Ordering::Relaxed);
        let m = store_metrics();
        m.read_ops.inc();
        let _t = m.lock_wait_ns.start_timer();
        s.lock.read()
    }

    /// Acquire a shard's write lock, recording the wait in the global registry.
    fn write_shard(&self, key: &K) -> RwLockWriteGuard<'_, HashMap<K, V>> {
        let s = self.shard(key);
        s.ops.fetch_add(1, Ordering::Relaxed);
        let m = store_metrics();
        m.write_ops.inc();
        let _t = m.lock_wait_ns.start_timer();
        s.lock.write()
    }

    /// Insert, returning the previous value.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        self.write_shard(&key).insert(key, value)
    }

    /// Clone-read a value.
    pub fn get(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        self.read_shard(key).get(key).cloned()
    }

    /// Read through a closure without cloning.
    pub fn with<R>(&self, key: &K, f: impl FnOnce(&V) -> R) -> Option<R> {
        self.read_shard(key).get(key).map(f)
    }

    /// Atomic read-modify-write; returns false when the key is absent.
    pub fn update(&self, key: &K, f: impl FnOnce(&mut V)) -> bool {
        match self.write_shard(key).get_mut(key) {
            Some(v) => {
                f(v);
                true
            }
            None => false,
        }
    }

    /// Insert-or-update.
    pub fn upsert(&self, key: K, insert: impl FnOnce() -> V, update: impl FnOnce(&mut V)) {
        let mut guard = self.write_shard(&key);
        match guard.get_mut(&key) {
            Some(v) => update(v),
            None => {
                guard.insert(key, insert());
            }
        }
    }

    /// Remove a key, returning its value.
    pub fn remove(&self, key: &K) -> Option<V> {
        self.write_shard(key).remove(key)
    }

    /// Total entries across shards (not linearizable, like Redis `DBSIZE`).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock.read().len()).sum()
    }

    /// Is the map empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn shard_count_power_of_two() {
        assert_eq!(ShardedMap::<u64, u64>::new(0).num_shards(), 1);
        assert_eq!(ShardedMap::<u64, u64>::new(5).num_shards(), 8);
        assert_eq!(ShardedMap::<u64, u64>::new(16).num_shards(), 16);
    }

    #[test]
    fn basic_ops() {
        let m = ShardedMap::new(8);
        assert!(m.is_empty());
        assert_eq!(m.insert(1u64, "a"), None);
        assert_eq!(m.insert(1, "b"), Some("a"));
        assert_eq!(m.get(&1), Some("b"));
        assert_eq!(m.with(&1, |v| v.len()), Some(1));
        assert!(m.update(&1, |v| *v = "c"));
        assert!(!m.update(&2, |_| unreachable!()));
        m.upsert(2, || "x", |_| unreachable!());
        m.upsert(2, || unreachable!(), |v| *v = "y");
        assert_eq!(m.get(&2), Some("y"));
        assert_eq!(m.len(), 2);
        assert_eq!(m.remove(&1), Some("c"));
        assert_eq!(m.remove(&1), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn concurrent_counters_are_exact() {
        // read-modify-write under contention must not lose updates
        let m = Arc::new(ShardedMap::new(4));
        for k in 0..8u64 {
            m.insert(k, 0u64);
        }
        let threads = 8;
        let per_thread = 5_000;
        std::thread::scope(|s| {
            for t in 0..threads {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for i in 0..per_thread {
                        let k = ((t + i) % 8) as u64;
                        m.update(&k, |v| *v += 1);
                    }
                });
            }
        });
        let total: u64 = (0..8u64).map(|k| m.get(&k).unwrap()).sum();
        assert_eq!(total, (threads * per_thread) as u64);
    }
}
