//! # Switchboard — efficient resource management for conferencing services
//!
//! A from-scratch Rust reproduction of *Bothra et al., "Switchboard:
//! Efficient Resource Management for Conferencing Services", ACM SIGCOMM
//! 2023*: a controller that provisions media-processing (MP) compute and WAN
//! capacity jointly, exploits time-shifted demand peaks across time zones,
//! and assigns calls to datacenters in real time.
//!
//! This facade re-exports the workspace crates:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`lp`] | `sb-lp` | dense + revised simplex LP engines |
//! | [`net`] | `sb-net` | geography, topology, routing, costs, presets |
//! | [`workload`] | `sb-workload` | synthetic call records, demand, configs |
//! | [`forecast`] | `sb-forecast` | Holt–Winters forecasting, eval metrics |
//! | [`core`] | `sb-core` | provisioning LP, allocation plan, realtime selector, baselines |
//! | [`sim`] | `sb-sim` | trace replay, latency estimation, failure drills |
//! | [`store`] | `sb-store` | sharded call-state store + throughput harness |
//! | [`predict`] | `sb-predict` | MOMC + logistic-regression config predictor |
//!
//! ## Quickstart
//!
//! ```
//! use switchboard::core::{provision, PlanningInputs, ProvisionerParams};
//! use switchboard::workload::{Generator, WorkloadParams, UniverseParams};
//!
//! // 1. a provider topology (the Fig. 4 three-DC toy; see presets::apac()
//! //    for the paper's full running example)
//! let topo = switchboard::net::presets::toy_three_dc();
//!
//! // 2. a synthetic workload (stand-in for Teams call records)
//! let params = WorkloadParams {
//!     universe: UniverseParams { num_configs: 10, ..Default::default() },
//!     daily_calls: 200.0,
//!     slot_minutes: 120,
//!     ..Default::default()
//! };
//! let generator = Generator::new(&topo, params);
//! let demand = generator.expected_demand(0, 1);
//!
//! // 3. provision compute + WAN jointly (add backup by flipping the flag)
//! let inputs = PlanningInputs {
//!     topo: &topo,
//!     catalog: &generator.universe().catalog,
//!     demand: &demand,
//!     latency_threshold_ms: 120.0,
//! };
//! let opts = ProvisionerParams { with_backup: false, ..Default::default() };
//! let plan = provision(&inputs, &opts).unwrap();
//! assert!(plan.capacity.total_cores() > 0.0);
//! ```

#![forbid(unsafe_code)]

pub use sb_core as core;
pub use sb_forecast as forecast;
pub use sb_lp as lp;
pub use sb_net as net;
pub use sb_predict as predict;
pub use sb_sim as sim;
pub use sb_store as store;
pub use sb_workload as workload;
