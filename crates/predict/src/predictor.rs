//! The full §8 call-config predictor: MOMC features per participant feed a
//! logistic regression that predicts next-instance attendance; per-country
//! expected participant counts aggregate into the predicted call config.

use crate::logistic::{Logistic, LogisticParams};
use crate::momc::Momc;

/// One rostered participant's data within a series.
#[derive(Clone, Debug)]
pub struct ParticipantHistory {
    /// Country index of the participant.
    pub country: u16,
    /// Attendance at each past occurrence (aligned across the series).
    pub attendance: Vec<bool>,
}

/// A recurring meeting series: rostered participants with aligned histories.
#[derive(Clone, Debug)]
pub struct SeriesHistory {
    /// Roster.
    pub participants: Vec<ParticipantHistory>,
}

impl SeriesHistory {
    /// Number of occurrences (0 when the roster is empty).
    pub fn occurrences(&self) -> usize {
        self.participants
            .first()
            .map(|p| p.attendance.len())
            .unwrap_or(0)
    }

    /// Per-country attended counts at occurrence `t`.
    pub fn counts_at(&self, t: usize) -> Vec<(u16, f64)> {
        let mut counts: Vec<(u16, f64)> = Vec::new();
        for p in &self.participants {
            if p.attendance[t] {
                match counts.iter_mut().find(|(c, _)| *c == p.country) {
                    Some((_, n)) => *n += 1.0,
                    None => counts.push((p.country, 1.0)),
                }
            }
        }
        counts.sort_unstable_by_key(|&(c, _)| c);
        counts
    }
}

/// Predictor configuration.
#[derive(Clone, Debug)]
pub struct PredictorParams {
    /// MOMC max order `K`.
    pub max_order: usize,
    /// Logistic-regression training parameters.
    pub logistic: LogisticParams,
}

impl Default for PredictorParams {
    fn default() -> Self {
        PredictorParams {
            max_order: 3,
            logistic: LogisticParams::default(),
        }
    }
}

/// A trained MOMC + logistic-regression config predictor.
pub struct ConfigPredictor {
    momc: Momc,
    model: Logistic,
    max_order: usize,
}

/// Build the feature row for a participant whose history so far is `hist`:
/// the MOMC order probabilities, the participant's own attendance rate, and
/// the most recent outcome.
fn features(momc: &Momc, hist: &[bool]) -> Vec<f64> {
    let mut x = momc.features(hist);
    let own_rate = if hist.is_empty() {
        momc.base_rate()
    } else {
        hist.iter().filter(|&&a| a).count() as f64 / hist.len() as f64
    };
    x.push(own_rate);
    x.push(hist.last().copied().unwrap_or(false) as u8 as f64);
    x
}

impl ConfigPredictor {
    /// Train on the given series: every `(participant, occurrence t ≥ 1)`
    /// prefix is one training example predicting attendance at `t`.
    pub fn train(series: &[SeriesHistory], params: &PredictorParams) -> ConfigPredictor {
        let histories: Vec<Vec<bool>> = series
            .iter()
            .flat_map(|s| s.participants.iter().map(|p| p.attendance.clone()))
            .collect();
        let momc = Momc::fit(&histories, params.max_order);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for h in &histories {
            for t in 1..h.len() {
                xs.push(features(&momc, &h[..t]));
                ys.push(h[t]);
            }
        }
        let model = Logistic::train(&xs, &ys, &params.logistic);
        ConfigPredictor {
            momc,
            model,
            max_order: params.max_order,
        }
    }

    /// Probability that a participant with history `hist` attends next time.
    pub fn attend_probability(&self, hist: &[bool]) -> f64 {
        self.model.predict(&features(&self.momc, hist))
    }

    /// Predicted per-country expected participant counts for the next
    /// occurrence of a series, given the first `upto` occurrences.
    pub fn predict_counts(&self, series: &SeriesHistory, upto: usize) -> Vec<(u16, f64)> {
        let mut counts: Vec<(u16, f64)> = Vec::new();
        for p in &series.participants {
            let hist = &p.attendance[..upto.min(p.attendance.len())];
            let prob = self.attend_probability(hist);
            match counts.iter_mut().find(|(c, _)| *c == p.country) {
                Some((_, n)) => *n += prob,
                None => counts.push((p.country, prob)),
            }
        }
        counts.sort_unstable_by_key(|&(c, _)| c);
        counts
    }

    /// The MOMC order in use.
    pub fn max_order(&self) -> usize {
        self.max_order
    }
}

/// Per-country count error between prediction and ground truth:
/// `(rmse, mae)` over the union of countries.
pub fn count_error(pred: &[(u16, f64)], truth: &[(u16, f64)]) -> (f64, f64) {
    let mut countries: Vec<u16> = pred.iter().chain(truth).map(|&(c, _)| c).collect();
    countries.sort_unstable();
    countries.dedup();
    if countries.is_empty() {
        return (0.0, 0.0);
    }
    let get = |v: &[(u16, f64)], c: u16| {
        v.iter()
            .find(|&&(cc, _)| cc == c)
            .map(|&(_, n)| n)
            .unwrap_or(0.0)
    };
    let mut sse = 0.0;
    let mut sae = 0.0;
    for &c in &countries {
        let d = get(pred, c) - get(truth, c);
        sse += d * d;
        sae += d.abs();
    }
    let n = countries.len() as f64;
    ((sse / n).sqrt(), sae / n)
}

/// Evaluation over held-out final occurrences: the MOMC+LR predictor vs the
/// last-instance baseline (§8's comparison).
#[derive(Clone, Debug)]
pub struct PredictionEval {
    /// Mean per-series RMSE of the predictor.
    pub rmse: f64,
    /// Mean per-series MAE of the predictor.
    pub mae: f64,
    /// Mean per-series RMSE of the previous-instance baseline.
    pub baseline_rmse: f64,
    /// Mean per-series MAE of the previous-instance baseline.
    pub baseline_mae: f64,
    /// Series evaluated.
    pub series: usize,
}

/// Train on every series' prefix (all but the final occurrence) and evaluate
/// predictions of the final occurrence against the last-instance baseline.
pub fn evaluate(series: &[SeriesHistory], params: &PredictorParams) -> PredictionEval {
    // train on prefixes only to keep the held-out instance unseen
    let train_set: Vec<SeriesHistory> = series
        .iter()
        .filter(|s| s.occurrences() >= 3)
        .map(|s| SeriesHistory {
            participants: s
                .participants
                .iter()
                .map(|p| ParticipantHistory {
                    country: p.country,
                    attendance: p.attendance[..p.attendance.len() - 1].to_vec(),
                })
                .collect(),
        })
        .collect();
    let predictor = ConfigPredictor::train(&train_set, params);
    let mut rmse = 0.0;
    let mut mae = 0.0;
    let mut b_rmse = 0.0;
    let mut b_mae = 0.0;
    let mut n = 0usize;
    for s in series {
        let t = s.occurrences();
        if t < 3 {
            continue;
        }
        let truth = s.counts_at(t - 1);
        let pred = predictor.predict_counts(s, t - 1);
        let baseline = s.counts_at(t - 2);
        let (r, m) = count_error(&pred, &truth);
        let (br, bm) = count_error(&baseline, &truth);
        rmse += r;
        mae += m;
        b_rmse += br;
        b_mae += bm;
        n += 1;
    }
    let n_f = n.max(1) as f64;
    PredictionEval {
        rmse: rmse / n_f,
        mae: mae / n_f,
        baseline_rmse: b_rmse / n_f,
        baseline_mae: b_mae / n_f,
        series: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regulars (always attend) + alternators (every other week).
    fn synthetic_series(n: usize, occ: usize) -> Vec<SeriesHistory> {
        (0..n)
            .map(|i| {
                let mut participants = Vec::new();
                for p in 0..10 {
                    let country = (p % 3) as u16;
                    let attendance: Vec<bool> = (0..occ)
                        .map(|t| {
                            if p < 6 {
                                true // regulars
                            } else {
                                (t + i + p) % 2 == 0 // alternators
                            }
                        })
                        .collect();
                    participants.push(ParticipantHistory {
                        country,
                        attendance,
                    });
                }
                SeriesHistory { participants }
            })
            .collect()
    }

    #[test]
    fn counts_at_sums() {
        let s = &synthetic_series(1, 4)[0];
        let counts = s.counts_at(0);
        let total: f64 = counts.iter().map(|&(_, n)| n).sum();
        let attended = s.participants.iter().filter(|p| p.attendance[0]).count();
        assert_eq!(total as usize, attended);
    }

    #[test]
    fn predictor_beats_baseline_on_structured_attendance() {
        let series = synthetic_series(30, 10);
        let eval = evaluate(&series, &PredictorParams::default());
        assert_eq!(eval.series, 30);
        assert!(
            eval.rmse < eval.baseline_rmse,
            "MOMC RMSE {} should beat baseline {}",
            eval.rmse,
            eval.baseline_rmse
        );
        assert!(eval.mae <= eval.baseline_mae + 1e-9);
    }

    #[test]
    fn attend_probability_tracks_pattern() {
        let series = synthetic_series(30, 10);
        let p = ConfigPredictor::train(&series, &PredictorParams::default());
        // a perfect regular
        let regular = vec![true; 9];
        assert!(p.attend_probability(&regular) > 0.8);
        // an alternator who just attended → likely absent next
        let alternator = vec![true, false, true, false, true, false, true, false, true];
        assert!(p.attend_probability(&alternator) < 0.5);
    }

    #[test]
    fn count_error_math() {
        let pred = vec![(0u16, 2.0), (1, 1.0)];
        let truth = vec![(0u16, 3.0), (2, 2.0)];
        let (rmse, mae) = count_error(&pred, &truth);
        // diffs: c0: -1, c1: +1, c2: -2 → mae = 4/3, rmse = sqrt(6/3)
        assert!((mae - 4.0 / 3.0).abs() < 1e-12);
        assert!((rmse - (2.0f64).sqrt()).abs() < 1e-12);
        assert_eq!(count_error(&[], &[]), (0.0, 0.0));
    }

    #[test]
    fn predict_counts_bounded_by_roster() {
        let series = synthetic_series(5, 8);
        let p = ConfigPredictor::train(&series, &PredictorParams::default());
        let counts = p.predict_counts(&series[0], 7);
        let total: f64 = counts.iter().map(|&(_, n)| n).sum();
        assert!(total <= series[0].participants.len() as f64 + 1e-9);
        assert!(total > 0.0);
    }
}
