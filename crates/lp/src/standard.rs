//! Conversion of an [`LpProblem`](crate::LpProblem) into the computational
//! standard form shared by both simplex engines:
//!
//! ```text
//! minimize  cᵀx + k      s.t.  A x = b,   0 ≤ x ≤ u,   b ≥ 0
//! ```
//!
//! * variables with a finite lower bound are shifted (`x = l + x'`),
//! * variables bounded only above are mirrored (`x = u − x'`),
//! * fully free variables are split (`x = x⁺ − x⁻`),
//! * `≤` rows gain a slack, `≥` rows a surplus + artificial, `=` rows an
//!   artificial; rows are sign-normalized so every `bᵢ ≥ 0`,
//! * the initial basis (one column per row) is the slack where available and
//!   the artificial otherwise, so `B = I` at the start of phase 1.

use crate::problem::{LpProblem, Relation};
use crate::sparse::CscMatrix;

/// How one user variable maps onto standard-form columns.
#[derive(Clone, Debug)]
pub(crate) enum VarMap {
    /// `x = lower + col`
    Shifted { col: usize, lower: f64 },
    /// `x = upper − col`
    Mirrored { col: usize, upper: f64 },
    /// `x = pos − neg`
    Split { pos: usize, neg: usize },
}

/// Standard-form data consumed by the engines.
#[derive(Clone, Debug)]
pub(crate) struct StandardForm {
    /// Number of rows.
    pub m: usize,
    /// Total number of columns (structural + slack/surplus + artificial).
    pub n: usize,
    /// Column-compressed sparse constraint matrix (structural columns first,
    /// then slack/surplus in row order, then artificials in row order).
    pub cols: CscMatrix,
    /// Phase-2 objective per column (0 for slacks and artificials).
    pub cost: Vec<f64>,
    /// Upper bound per column (∞ allowed; artificials get `0` after phase 1
    /// by the engines, here they carry ∞ like slacks).
    pub upper: Vec<f64>,
    /// Right-hand side, all entries ≥ 0.
    pub b: Vec<f64>,
    /// Constant added to the standard-form objective to recover the user
    /// objective. (Engines recover the objective by evaluating the original
    /// cost vector instead, so this is informational / test-only.)
    #[cfg_attr(not(test), allow(dead_code))]
    pub obj_offset: f64,
    /// Mapping from user variable index to standard columns.
    pub var_map: Vec<VarMap>,
    /// First artificial column index (`n` if there are none).
    pub first_artificial: usize,
    /// Initial basis: one column per row.
    pub basis0: Vec<usize>,
    /// Whether user row `i` was negated during normalization (for duals).
    pub row_flip: Vec<bool>,
    /// Normalized relation per row (after any sign flip). Together with the
    /// per-variable mapping class this determines the whole column layout,
    /// so it doubles as the layout fingerprint for in-place patching.
    pub row_rel: Vec<Relation>,
}

/// Merge duplicates, apply the variable mapping and sign-normalize one user
/// row. Returns `(entries over structural columns, rhs ≥ 0, normalized
/// relation, flipped)`.
fn map_row(
    row: &crate::problem::Constraint,
    var_map: &[VarMap],
) -> (Vec<(usize, f64)>, f64, Relation, bool) {
    let mut entries: Vec<(usize, f64)> = Vec::with_capacity(row.coeffs.len() + 1);
    let mut rhs = row.rhs;
    for &(v, a) in &row.coeffs {
        if a == 0.0 {
            continue;
        }
        match var_map[v.index()] {
            VarMap::Shifted { col, lower } => {
                rhs -= a * lower;
                entries.push((col, a));
            }
            VarMap::Mirrored { col, upper: u } => {
                rhs -= a * u;
                entries.push((col, -a));
            }
            VarMap::Split { pos, neg } => {
                entries.push((pos, a));
                entries.push((neg, -a));
            }
        }
    }
    entries.sort_unstable_by_key(|e| e.0);
    entries.dedup_by(|later, first| {
        if later.0 == first.0 {
            first.1 += later.1;
            true
        } else {
            false
        }
    });
    entries.retain(|e| e.1 != 0.0);

    let mut rel = row.rel;
    let mut flip = false;
    if rhs < 0.0 {
        rhs = -rhs;
        flip = true;
        for e in &mut entries {
            e.1 = -e.1;
        }
        rel = match rel {
            Relation::Le => Relation::Ge,
            Relation::Ge => Relation::Le,
            Relation::Eq => Relation::Eq,
        };
    }
    (entries, rhs, rel, flip)
}

/// Compute the per-variable mapping classes for `lp` (no side effects).
fn classify_vars(lp: &LpProblem) -> Vec<VarMap> {
    let mut var_map = Vec::with_capacity(lp.num_vars());
    let mut next = 0usize;
    for j in 0..lp.num_vars() {
        let (lo, hi) = (lp.lower[j], lp.upper[j]);
        if lo.is_finite() {
            var_map.push(VarMap::Shifted {
                col: next,
                lower: lo,
            });
            next += 1;
        } else if hi.is_finite() {
            var_map.push(VarMap::Mirrored {
                col: next,
                upper: hi,
            });
            next += 1;
        } else {
            var_map.push(VarMap::Split {
                pos: next,
                neg: next + 1,
            });
            next += 2;
        }
    }
    var_map
}

fn same_class(a: &VarMap, b: &VarMap) -> bool {
    matches!(
        (a, b),
        (VarMap::Shifted { .. }, VarMap::Shifted { .. })
            | (VarMap::Mirrored { .. }, VarMap::Mirrored { .. })
            | (VarMap::Split { .. }, VarMap::Split { .. })
    )
}

impl StandardForm {
    /// Build the standard form of `lp`.
    pub fn build(lp: &LpProblem) -> StandardForm {
        let m = lp.num_constraints();

        // --- map user variables to structural columns -----------------------
        let var_map = classify_vars(lp);
        let mut cost: Vec<f64> = Vec::new();
        let mut upper: Vec<f64> = Vec::new();
        let mut obj_offset = 0.0f64;
        for (j, vm) in var_map.iter().enumerate() {
            let (lo, hi) = (lp.lower[j], lp.upper[j]);
            let c = lp.cost[j];
            match vm {
                VarMap::Shifted { .. } => {
                    cost.push(c);
                    upper.push(hi - lo); // may be ∞
                    obj_offset += c * lo;
                }
                VarMap::Mirrored { .. } => {
                    cost.push(-c);
                    upper.push(f64::INFINITY);
                    obj_offset += c * hi;
                }
                VarMap::Split { .. } => {
                    cost.push(c);
                    upper.push(f64::INFINITY);
                    cost.push(-c);
                    upper.push(f64::INFINITY);
                }
            }
        }
        let n_structural = cost.len();

        // --- rows ------------------------------------------------------------
        let mut b = Vec::with_capacity(m);
        let mut row_flip = vec![false; m];
        let mut row_rel = Vec::with_capacity(m);
        let mut row_entries: Vec<Vec<(usize, f64)>> = Vec::with_capacity(m);
        for (i, row) in lp.rows.iter().enumerate() {
            let (entries, rhs, rel, flip) = map_row(row, &var_map);
            row_flip[i] = flip;
            row_rel.push(rel);
            b.push(rhs);
            row_entries.push(entries);
        }
        let mut cols = CscMatrix::new(m);
        cols.assemble_structural(n_structural, &row_entries);

        // --- slack / surplus columns, in row order ---------------------------
        let mut basis0 = vec![usize::MAX; m];
        for (i, rel) in row_rel.iter().enumerate() {
            match rel {
                Relation::Le => {
                    basis0[i] = cols.n();
                    cols.push_unit_col(i, 1.0);
                    cost.push(0.0);
                    upper.push(f64::INFINITY);
                }
                Relation::Ge => {
                    cols.push_unit_col(i, -1.0);
                    cost.push(0.0);
                    upper.push(f64::INFINITY);
                    // needs an artificial too; assigned below
                }
                Relation::Eq => {}
            }
        }

        // --- artificials -------------------------------------------------------
        let first_artificial = cols.n();
        for i in 0..m {
            if basis0[i] == usize::MAX {
                basis0[i] = cols.n();
                cols.push_unit_col(i, 1.0);
                cost.push(0.0);
                upper.push(f64::INFINITY);
            }
        }

        StandardForm {
            m,
            n: cols.n(),
            cols,
            cost,
            upper,
            b,
            obj_offset,
            var_map,
            first_artificial,
            basis0,
            row_flip,
            row_rel,
        }
    }

    /// Re-derive this standard form from `lp` **in place**, reusing every
    /// allocation, provided the column layout is unchanged: same variables in
    /// the same order with the same bound classes (finite-below / finite-above
    /// only / free), and same rows with the same normalized relations. Bounds,
    /// costs, right-hand sides and coefficients may all differ — that is the
    /// point: a scenario sweep patches deltas into one cached conversion
    /// instead of rebuilding it per scenario.
    ///
    /// Returns `false` (leaving `self` untouched) when the layout changed and
    /// a full [`StandardForm::build`] is required.
    pub fn patch_in_place(&mut self, lp: &LpProblem) -> bool {
        if lp.num_constraints() != self.m || lp.num_vars() != self.var_map.len() {
            return false;
        }
        // --- layout pre-check: variable classes ------------------------------
        let var_map = classify_vars(lp);
        if !var_map
            .iter()
            .zip(&self.var_map)
            .all(|(a, b)| same_class(a, b))
        {
            return false;
        }
        // --- layout pre-check: normalized row relations ----------------------
        // Mapping the rows is the bulk of the conversion work; keep the
        // results so the commit pass below does not redo it.
        let mut row_entries = Vec::with_capacity(self.m);
        let mut rhs_flip = Vec::with_capacity(self.m);
        for (i, row) in lp.rows.iter().enumerate() {
            let (entries, rhs, rel, flip) = map_row(row, &var_map);
            if rel != self.row_rel[i] {
                return false;
            }
            row_entries.push(entries);
            rhs_flip.push((rhs, flip));
        }

        // --- commit: refill buffers ------------------------------------------
        self.var_map = var_map;
        self.obj_offset = 0.0;
        let mut next = 0usize;
        for j in 0..lp.num_vars() {
            let (lo, hi) = (lp.lower[j], lp.upper[j]);
            let c = lp.cost[j];
            match self.var_map[j] {
                VarMap::Shifted { .. } => {
                    self.cost[next] = c;
                    self.upper[next] = hi - lo;
                    self.obj_offset += c * lo;
                    next += 1;
                }
                VarMap::Mirrored { .. } => {
                    self.cost[next] = -c;
                    self.upper[next] = f64::INFINITY;
                    self.obj_offset += c * hi;
                    next += 1;
                }
                VarMap::Split { .. } => {
                    self.cost[next] = c;
                    self.cost[next + 1] = -c;
                    self.upper[next] = f64::INFINITY;
                    self.upper[next + 1] = f64::INFINITY;
                    next += 2;
                }
            }
        }
        // structural columns are re-scattered from the mapped rows, then the
        // slack/surplus/artificial tail is re-pushed in the exact layout the
        // fingerprint checks above guarantee — so `basis0`,
        // `first_artificial` and the tail's cost/upper entries stay valid
        // (cost/upper of non-structural columns never change).
        for (i, (rhs, flip)) in rhs_flip.into_iter().enumerate() {
            self.b[i] = rhs;
            self.row_flip[i] = flip;
        }
        self.cols.assemble_structural(next, &row_entries);
        for (i, rel) in self.row_rel.iter().enumerate() {
            match rel {
                Relation::Le => self.cols.push_unit_col(i, 1.0),
                Relation::Ge => self.cols.push_unit_col(i, -1.0),
                Relation::Eq => {}
            }
        }
        for i in 0..self.m {
            if self.basis0[i] >= self.first_artificial {
                self.cols.push_unit_col(i, 1.0);
            }
        }
        true
    }

    /// Recover user-variable values from a standard-form assignment.
    pub fn recover(&self, x: &[f64]) -> Vec<f64> {
        self.var_map
            .iter()
            .map(|mp| match *mp {
                VarMap::Shifted { col, lower } => lower + x[col],
                VarMap::Mirrored { col, upper } => upper - x[col],
                VarMap::Split { pos, neg } => x[pos] - x[neg],
            })
            .collect()
    }

    /// Map standard-form row duals back to user rows (undo sign flips).
    pub fn recover_duals(&self, y: &[f64]) -> Vec<f64> {
        y.iter()
            .zip(&self.row_flip)
            .map(|(&yi, &flip)| if flip { -yi } else { yi })
            .collect()
    }
}

/// What [`PreparedProblem::refresh`] had to do.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum PatchOutcome {
    /// The cached conversion was patched in place (layout unchanged).
    Patched,
    /// The layout changed; the conversion was rebuilt from scratch.
    Rebuilt,
}

/// A cached `LpProblem → standard form` conversion.
///
/// Converting a model to the engine's standard form costs `O(nnz)` per
/// solve. A scenario sweep solves dozens of structurally identical models
/// that differ only in bounds, costs, right-hand sides and a few
/// coefficients; preparing once and [`refresh`](PreparedProblem::refresh)-ing
/// per scenario patches those deltas into the cached conversion in place
/// (reusing every allocation) instead of rebuilding it.
///
/// A `PreparedProblem` also guarantees a stable internal column layout
/// across refreshes, which is exactly the precondition for re-injecting a
/// [`crate::Basis`] exported from an earlier solve.
///
/// Contract: after mutating the `LpProblem`, call `refresh` before
/// [`crate::RevisedSimplex::solve_prepared`]; solving with a stale
/// preparation answers the previously prepared model.
#[derive(Clone, Debug)]
pub struct PreparedProblem {
    pub(crate) sf: StandardForm,
}

impl PreparedProblem {
    /// Convert `lp` and cache the result.
    pub fn new(lp: &LpProblem) -> PreparedProblem {
        PreparedProblem {
            sf: StandardForm::build(lp),
        }
    }

    /// Bring the cached conversion up to date with `lp` after mutations.
    pub fn refresh(&mut self, lp: &LpProblem) -> PatchOutcome {
        if self.sf.patch_in_place(lp) {
            PatchOutcome::Patched
        } else {
            self.sf = StandardForm::build(lp);
            PatchOutcome::Rebuilt
        }
    }

    /// Rows in the prepared standard form.
    pub fn num_rows(&self) -> usize {
        self.sf.m
    }

    /// Columns in the prepared standard form (structural + slack/surplus +
    /// artificial).
    pub fn num_cols(&self) -> usize {
        self.sf.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Constraint, LpProblem};

    #[test]
    fn slack_and_artificial_assignment() {
        let mut lp = LpProblem::new();
        let x = lp.add_nonneg("x", 1.0);
        lp.add_constraint(Constraint::le(vec![(x, 1.0)], 4.0));
        lp.add_constraint(Constraint::ge(vec![(x, 1.0)], 1.0));
        lp.add_constraint(Constraint::eq(vec![(x, 1.0)], 2.0));
        let sf = StandardForm::build(&lp);
        assert_eq!(sf.m, 3);
        // x + slack(le) + surplus(ge) + artificial(ge) + artificial(eq)
        assert_eq!(sf.n, 5);
        assert_eq!(sf.first_artificial, 3);
        // row 0 basis is the slack, rows 1&2 artificials
        assert_eq!(sf.basis0[0], 1);
        assert!(sf.basis0[1] >= sf.first_artificial);
        assert!(sf.basis0[2] >= sf.first_artificial);
        assert!(sf.b.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn negative_rhs_flips_relation() {
        let mut lp = LpProblem::new();
        let x = lp.add_nonneg("x", 1.0);
        // x >= -3 is trivially true; flipped to -x <= 3
        lp.add_constraint(Constraint::ge(vec![(x, 1.0)], -3.0));
        let sf = StandardForm::build(&lp);
        assert!(sf.row_flip[0]);
        assert_eq!(sf.b[0], 3.0);
        // flipped Ge becomes Le, so the row basis is a slack (no artificial)
        assert_eq!(sf.first_artificial, sf.n);
    }

    #[test]
    fn shifting_adjusts_rhs_and_offset() {
        let mut lp = LpProblem::new();
        // 2 <= x <= 5, cost 3
        let x = lp.add_var("x", 3.0, 2.0, 5.0);
        lp.add_constraint(Constraint::le(vec![(x, 2.0)], 10.0));
        let sf = StandardForm::build(&lp);
        // 2(x'+2) <= 10  =>  2x' <= 6
        assert_eq!(sf.b[0], 6.0);
        assert_eq!(sf.obj_offset, 6.0);
        assert_eq!(sf.upper[0], 3.0);
        let user = sf.recover(&[1.5, 0.0]);
        assert_eq!(user[0], 3.5);
    }

    #[test]
    fn free_variable_splits() {
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", 1.0, f64::NEG_INFINITY, f64::INFINITY);
        lp.add_constraint(Constraint::eq(vec![(x, 1.0)], -4.0));
        let sf = StandardForm::build(&lp);
        // pos, neg, artificial
        assert_eq!(sf.n, 3);
        let user = sf.recover(&[0.0, 4.0, 0.0]);
        assert_eq!(user[0], -4.0);
    }

    #[test]
    fn mirrored_upper_only_variable() {
        let mut lp = LpProblem::new();
        // x <= 7, free below, cost 1  =>  mirrored col with cost -1
        let x = lp.add_var("x", 1.0, f64::NEG_INFINITY, 7.0);
        lp.add_constraint(Constraint::le(vec![(x, 1.0)], 5.0));
        let sf = StandardForm::build(&lp);
        assert_eq!(sf.cost[0], -1.0);
        assert_eq!(sf.obj_offset, 7.0);
        // 7 - x' <= 5  =>  -x' <= -2  =>  flipped to x' >= 2
        assert!(sf.row_flip[0]);
        let user = sf.recover(&[3.0, 0.0, 0.0]);
        assert_eq!(user[0], 4.0);
    }

    #[test]
    fn duplicate_coefficients_are_summed() {
        let mut lp = LpProblem::new();
        let x = lp.add_nonneg("x", 1.0);
        lp.add_constraint(Constraint::le(vec![(x, 1.0), (x, 2.5)], 7.0));
        let sf = StandardForm::build(&lp);
        assert_eq!(sf.cols.iter_col(0).collect::<Vec<_>>(), vec![(0, 3.5)]);
    }
}
