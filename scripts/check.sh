#!/usr/bin/env bash
# Full pre-merge gate: formatting, lints, and the tier-1 build+test pass.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> workspace tests: cargo test --workspace -q"
cargo test --workspace -q

echo "==> chaos smoke drill: sec63_failure_drills --smoke"
cargo run --release -q -p sb-bench --bin sec63_failure_drills -- --smoke

echo "==> solver smoke: lp_scenario_sweep --smoke (sparse vs committed dense baseline, 1e-9)"
# Runs the sparse-factorization variants on the APAC sweep and asserts the
# provisioned capacities match the committed dense-factorization baseline
# arrays in BENCH_lp.json to 1e-9 relative.
cargo run --release -q -p sb-bench --bin lp_scenario_sweep -- --smoke \
    --json /tmp/BENCH_lp_smoke.json --baseline BENCH_lp.json

echo "==> replay differential: serial oracle vs concurrent engine"
cargo test -q --test replay_differential

echo "==> replay equivalence smoke: replay_throughput --smoke"
cargo run --release -q -p sb-bench --bin replay_throughput -- --smoke --json /tmp/BENCH_replay_smoke.json

echo "==> engine equivalence smoke: engine_load --smoke"
cargo run --release -q -p sb-bench --bin engine_load -- --smoke --json /tmp/BENCH_engine_smoke.json

echo "==> plan-swap differential: identical-plan hot-swap is a no-op"
cargo test -q --test plan_swap_differential

echo "==> plan lifecycle smoke: replan_loop --smoke"
cargo run --release -q -p sb-bench --bin replan_loop -- --smoke --json /tmp/BENCH_replan_smoke.json

echo "==> closed-loop autoscaling smoke: autoscale_loop --smoke"
# Streams a one-week world through the control loop and asserts the loop's
# contract: every drift-induced stale window closes at its install with 0
# stranded, re-plans land warm, and the threaded drive matches the serial
# oracle stats bit for bit.
cargo run --release -q -p sb-bench --bin autoscale_loop -- --smoke --json /tmp/BENCH_autoscale_smoke.json

echo "==> crash-safety smoke: crash_recovery_drill --smoke"
cargo run --release -q -p sb-bench --bin crash_recovery_drill -- --smoke --json /tmp/BENCH_crash_smoke.json

echo "==> packing efficiency smoke: pack_efficiency --smoke (serial vs 8-thread tallies)"
cargo run --release -q -p sb-bench --bin pack_efficiency -- --smoke --json /tmp/BENCH_pack_smoke.json

echo "==> panic-free service gate: no unwrap/expect on the engine's serve path"
# The line-protocol serve loop must degrade typed (protocol errors on the
# wire, exit codes at startup) — a panicking unwrap/expect would let one
# malformed frame or I/O hiccup kill the service.
panics=$(grep -n -E '\.(unwrap|expect)\(' crates/engine/src/main.rs || true)
if [ -n "$panics" ]; then
    echo "unwrap/expect on the engine serve path:" >&2
    echo "$panics" >&2
    exit 1
fi

echo "all checks passed"
