//! Table 3: resources provisioned (cores, inter-country WAN Gbps), cost and
//! mean ACL for RR, LF and Switchboard, with and without backup capacity,
//! normalized to RR.
//!
//! Usage: `table3_provisioning [--quick] [--metrics <path>]`
//!
//! `--metrics` enables the observability registry and writes per-scenario LP
//! metrics (rows/cols, simplex iterations, wall times, increment cost) plus
//! aggregate counters to the given path (TSV, or NDJSON for `.ndjson`).

use sb_bench::common::{
    build_eval, dump_metrics, metrics_path_from_args, normalize_to_first, print_table, table3_rows,
    EvalScale,
};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let metrics_path = metrics_path_from_args();
    let scale = if quick {
        EvalScale::quick()
    } else {
        EvalScale::default_eval()
    };
    eprintln!(
        "building workload: {} configs, {:.0} calls/day, {} days, {}-min slots …",
        scale.num_configs, scale.daily_calls, scale.days, scale.slot_minutes
    );
    let t0 = std::time::Instant::now();
    let data = build_eval(&scale);
    eprintln!(
        "selected {} head configs covering {:.1}% of calls ({:.1}s)",
        data.selected.len(),
        100.0 * data.coverage_achieved,
        t0.elapsed().as_secs_f64()
    );

    println!("== Table 3: provisioning comparison (normalized to RR) ==\n");
    for (label, with_backup) in [("Without backup", false), ("With backup", true)] {
        let t = std::time::Instant::now();
        let rows = table3_rows(&data, with_backup);
        let norm = normalize_to_first(&rows);
        println!("{label} (solved in {:.1}s):", t.elapsed().as_secs_f64());
        let table: Vec<Vec<String>> = rows
            .iter()
            .zip(&norm)
            .map(|(abs, n)| {
                vec![
                    n.scheme.to_string(),
                    format!("{:.2}", n.cores),
                    format!("{:.2}", n.wan),
                    format!("{:.2}", n.cost),
                    format!("{:.2}", n.acl),
                    format!("{:.0}", abs.cores),
                    format!("{:.1}", abs.wan),
                    format!("{:.0}", abs.cost),
                    format!("{:.1}", abs.acl),
                ]
            })
            .collect();
        print_table(
            &[
                "Scheme", "Cores", "WAN", "Cost", "MeanACL", "(cores)", "(Gbps)", "($)", "(ms)",
            ],
            &table,
        );
        println!();
    }
    println!(
        "paper (Table 3), normalized to RR:\n\
         \x20 without backup: RR 1.00/1.00/1.00/1.00, LF 1.08/0.18/0.35/0.45, SB 1.00/0.14/0.29/0.51\n\
         \x20 with    backup: RR 1.00/1.00/1.00/1.00, LF 1.10/0.55/0.64/0.45, SB 1.00/0.43/0.49/0.45"
    );
    if let Some(path) = metrics_path {
        dump_metrics(&path);
    }
}
