//! Packing-efficiency bench for the two-level placement: seeded APAC day
//! traces are replayed with the intra-DC packing leg enabled under the
//! `BestFit` and `GrowthAware` online policies, and each run reports how
//! many servers the policy touched, the intra-DC migration rate (forced +
//! proactive repacks + evictions per 1 000 placements), and growth
//! rejections — against an offline best-fit-decreasing lower bound packed
//! on the trace's global peak-concurrency snapshot (DC boundaries relaxed,
//! so it lower-bounds any online policy).
//!
//! Usage: `pack_efficiency [--smoke] [--json <path>]`
//!
//! `--smoke` shrinks the workloads and additionally asserts the 8-thread
//! concurrent replay's packing tallies are bitwise-identical to the serial
//! oracle — it is the CI gate for the packing leg. The full run writes
//! `BENCH_pack.json` and `results/pack_efficiency.txt`.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use sb_core::formulation::ScenarioData;
use sb_core::{AllocationShares, PlanArtifact, PlannedQuotas, RealtimeSelector};
use sb_net::{FailureScenario, Topology};
use sb_pack::{
    best_fit_decreasing, CostModel, FleetSpec, GrowthConfig, GrowthModel, PackPolicy, PackerConfig,
    ServerClass,
};
use sb_sim::{replay, replay_concurrent, PackSetup, ReplayConfig, ReplayReport};
use sb_workload::{
    CallRecord, CallRecordsDb, ConfigCatalog, Generator, UniverseParams, WorkloadParams,
};

struct World {
    name: &'static str,
    topo: Topology,
    catalog: ConfigCatalog,
    db: CallRecordsDb,
    artifact: PlanArtifact,
}

/// A seeded APAC day: sampled trace + a synthetic plan spreading each
/// planned config across every DC (same construction as the replay
/// differential tests and the crash drill).
fn world(
    name: &'static str,
    seed: u64,
    daily_calls: f64,
    coverage: f64,
    quota_scale: f64,
) -> World {
    let topo = sb_net::presets::apac();
    let params = WorkloadParams {
        universe: UniverseParams {
            num_configs: 250,
            seed,
            ..Default::default()
        },
        daily_calls,
        slot_minutes: 120,
        seed,
        ..Default::default()
    };
    let generator = Generator::new(&topo, params);
    let day = 2;
    let expected = generator.expected_demand(day, 1);
    let selected = expected.top_configs_covering(coverage);
    let planned = expected.filtered(&selected).scaled(quota_scale);
    let db = generator.sample_records(day, 1, seed);

    let slots = planned.num_slots();
    let mut shares = AllocationShares::new(slots);
    let n = topo.dcs.len() as f64;
    let spread: Vec<_> = topo.dc_ids().map(|d| (d, 1.0 / n)).collect();
    for &cfg in &selected {
        for s in 0..slots {
            shares.set(cfg, s, spread.clone());
        }
    }
    let quotas = PlannedQuotas::from_plan(&shares, &planned);
    World {
        name,
        catalog: generator.universe().catalog.clone(),
        topo,
        db,
        artifact: PlanArtifact::seed(quotas),
    }
}

/// The bench fleet: per DC, 4 large boxes plus 8 small ones — enough
/// heterogeneity that best-fit and growth-aware scoring genuinely diverge.
fn fleet(dcs: usize) -> FleetSpec {
    FleetSpec::heterogeneous(
        dcs,
        &[
            ServerClass {
                count: 4,
                capacity_mcpu: 32_000,
            },
            ServerClass {
                count: 8,
                capacity_mcpu: 8_000,
            },
        ],
    )
}

fn packed_config(w: &World, policy: PackPolicy) -> ReplayConfig {
    ReplayConfig {
        pack: Some(Arc::new(PackSetup {
            spec: fleet(w.topo.dcs.len()),
            packer: PackerConfig {
                policy,
                hysteresis_mcpu: 256,
                max_evictions: 4,
            },
            cost: CostModel::default(),
            growth: Some(GrowthModel::fit(&w.db, GrowthConfig::default())),
            server_deaths: Vec::new(),
        })),
        ..Default::default()
    }
}

fn run(w: &World, rcfg: &ReplayConfig) -> ReplayReport {
    let sd0 = ScenarioData::compute(&w.topo, FailureScenario::None);
    let selector = RealtimeSelector::from_artifact(&sd0.latmap, &w.artifact);
    replay(
        &w.topo,
        &sd0.routing,
        &sd0.latmap,
        &w.catalog,
        &w.db,
        &selector,
        rcfg,
    )
}

fn run_concurrent(w: &World, rcfg: &ReplayConfig, threads: usize) -> ReplayReport {
    let sd0 = ScenarioData::compute(&w.topo, FailureScenario::None);
    let selector = RealtimeSelector::from_artifact(&sd0.latmap, &w.artifact);
    replay_concurrent(
        &w.topo,
        &sd0.routing,
        &sd0.latmap,
        &w.catalog,
        &w.db,
        &selector,
        rcfg,
        threads,
    )
}

/// Per-call costs live at the minute of peak total demand, mirroring the
/// packing pass's cost accounting (place at 1 participant, each later join
/// offset bumps the charge, remove at end-of-call). Returns the peak total
/// in mcpu alongside the snapshot.
fn peak_snapshot(records: &[CallRecord], cost: &CostModel) -> (u64, Vec<u32>) {
    const OP_PLACE: u8 = 1;
    const OP_GROW: u8 = 2;
    const OP_REMOVE: u8 = 4;
    let mut ops: Vec<(u64, u8, usize)> = Vec::with_capacity(records.len() * 3);
    for (i, r) in records.iter().enumerate() {
        ops.push((r.start_minute, OP_PLACE, i));
        for &off in r.join_offsets_s.iter().skip(1) {
            let minute = (r.start_minute + (off / 60) as u64).min(r.end_minute());
            ops.push((minute, OP_GROW, i));
        }
        ops.push((r.end_minute(), OP_REMOVE, i));
    }
    ops.sort_unstable_by_key(|&(t, k, i)| (t, k, i));

    let mut parts = vec![0u32; records.len()];
    let mut total = 0u64;
    let mut best = 0u64;
    let mut best_idx = 0usize;
    for (idx, &(_, k, i)) in ops.iter().enumerate() {
        match k {
            OP_PLACE => {
                parts[i] = 1;
                total += cost.cost_mcpu(1) as u64;
            }
            OP_GROW => {
                let old = cost.cost_mcpu(parts[i]);
                parts[i] += 1;
                total += (cost.cost_mcpu(parts[i]) - old) as u64;
            }
            _ => {
                total -= cost.cost_mcpu(parts[i]) as u64;
                parts[i] = 0;
            }
        }
        if total > best {
            best = total;
            best_idx = idx;
        }
    }

    let mut parts = vec![0u32; records.len()];
    for &(_, k, i) in &ops[..=best_idx] {
        match k {
            OP_PLACE => parts[i] = 1,
            OP_GROW => parts[i] += 1,
            _ => parts[i] = 0,
        }
    }
    let snapshot = parts
        .iter()
        .filter(|&&p| p > 0)
        .map(|&p| cost.cost_mcpu(p))
        .collect();
    (best, snapshot)
}

struct PolicyResult {
    world: &'static str,
    policy: &'static str,
    placed: u64,
    migrations: u64,
    migr_per_1k: f64,
    grow_rejections: u64,
    servers_touched: usize,
    wall: Duration,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let json_path = {
        let mut args = std::env::args().skip(1);
        let mut path = String::from("BENCH_pack.json");
        while let Some(a) = args.next() {
            if a == "--json" {
                path = args.next().unwrap_or_else(|| {
                    eprintln!("--json requires a path argument");
                    std::process::exit(2);
                });
            } else if let Some(p) = a.strip_prefix("--json=") {
                path = p.to_string();
            }
        }
        path
    };
    let calls_scale = if smoke { 0.15 } else { 1.0 };

    // the four seeded workloads of the replay differential suite: ample
    // quota, quota pressure, capacity-checked, and the chaos seed
    let worlds = [
        world("ample", 11, 6_000.0 * calls_scale, 0.95, 1.3),
        world("pressure", 23, 8_000.0 * calls_scale, 0.90, 0.4),
        world("capacity", 37, 5_000.0 * calls_scale, 0.92, 1.0),
        world("chaos-seed", 53, 5_000.0 * calls_scale, 0.92, 1.2),
    ];
    let policies = [
        ("best-fit", PackPolicy::BestFit),
        ("growth-aware", PackPolicy::GrowthAware),
    ];

    let cost = CostModel::default();
    let mut results: Vec<PolicyResult> = Vec::new();
    let mut baselines: Vec<(&'static str, u64, usize, usize, usize, f64)> = Vec::new();
    for w in &worlds {
        // offline lower bound: BFD over the peak-concurrency snapshot with
        // DC boundaries relaxed (one fleet-wide pool of servers)
        let spec = fleet(w.topo.dcs.len());
        let flat_caps: Vec<u32> = w
            .topo
            .dc_ids()
            .flat_map(|d| spec.capacities(d).to_vec())
            .collect();
        let (peak_mcpu, snapshot) = peak_snapshot(w.db.records(), &cost);
        let (bfd_servers, bfd_dropped) = best_fit_decreasing(&flat_caps, &snapshot);
        let fleet_cap: u64 = flat_caps.iter().map(|&c| c as u64).sum();
        let peak_util = peak_mcpu as f64 / fleet_cap as f64;
        baselines.push((
            w.name,
            peak_mcpu,
            snapshot.len(),
            bfd_servers,
            bfd_dropped,
            peak_util,
        ));
        eprintln!(
            "world {}: {} calls, peak {} mcpu across {} live calls -> BFD lower bound {} servers \
             ({} dropped, peak util {:.1}%)",
            w.name,
            w.db.len(),
            peak_mcpu,
            snapshot.len(),
            bfd_servers,
            bfd_dropped,
            peak_util * 100.0
        );

        for &(pname, policy) in &policies {
            let started = Instant::now();
            let rcfg = packed_config(w, policy);
            let rep = run(w, &rcfg);
            let pack = rep.pack.as_ref().expect("packing leg was enabled");
            assert_eq!(
                pack.violations, 0,
                "world {} policy {pname}: packer overcommitted a live server",
                w.name
            );
            assert!(
                pack.stats.placed > 0,
                "world {} policy {pname}: packing leg never placed a call",
                w.name
            );
            if smoke {
                let rep8 = run_concurrent(w, &rcfg, 8);
                assert_eq!(
                    rep8.pack, rep.pack,
                    "world {} policy {pname}: 8-thread packing tallies diverged from serial",
                    w.name
                );
            }
            let servers_touched = pack.per_server_peak_mcpu.iter().filter(|&&p| p > 0).count();
            let migrations = pack.stats.intra_dc_migrations();
            results.push(PolicyResult {
                world: w.name,
                policy: pname,
                placed: pack.stats.placed,
                migrations,
                migr_per_1k: migrations as f64 * 1_000.0 / pack.stats.placed as f64,
                grow_rejections: pack.stats.grow_rejections,
                servers_touched,
                wall: started.elapsed(),
            });
        }
    }

    println!("== Packing efficiency: online policies vs offline BFD lower bound ==\n");
    println!(
        "fleet: per DC 4x32000 + 8x8000 mcpu; BFD packs the global peak-concurrency \
         snapshot with DC boundaries relaxed\n"
    );
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            let bfd = baselines
                .iter()
                .find(|b| b.0 == r.world)
                .map(|b| b.3)
                .unwrap_or(0);
            vec![
                r.world.to_string(),
                r.policy.to_string(),
                r.placed.to_string(),
                r.migrations.to_string(),
                format!("{:.1}", r.migr_per_1k),
                r.grow_rejections.to_string(),
                r.servers_touched.to_string(),
                bfd.to_string(),
                format!("{:.2}", r.wall.as_secs_f64()),
            ]
        })
        .collect();
    sb_bench::common::print_table(
        &[
            "world", "policy", "placed", "migr", "migr/1k", "grow-rej", "servers", "bfd-lb",
            "wall(s)",
        ],
        &rows,
    );

    // machine-readable dump
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"pack_efficiency\",\n");
    out.push_str("  \"topology\": \"apac\",\n");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    out.push_str("  \"violations\": 0,\n");
    out.push_str("  \"baselines\": [\n");
    for (i, b) in baselines.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"world\": \"{}\", \"peak_mcpu\": {}, \"peak_calls\": {}, \
             \"bfd_servers\": {}, \"bfd_dropped\": {}, \"peak_util\": {:.4}}}{}",
            b.0,
            b.1,
            b.2,
            b.3,
            b.4,
            b.5,
            if i + 1 < baselines.len() { "," } else { "" }
        );
    }
    out.push_str("  ],\n");
    out.push_str("  \"policies\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"world\": \"{}\", \"policy\": \"{}\", \"placed\": {}, \
             \"migrations\": {}, \"migr_per_1k\": {:.2}, \"grow_rejections\": {}, \
             \"servers_touched\": {}, \"wall_s\": {:.3}}}{}",
            r.world,
            r.policy,
            r.placed,
            r.migrations,
            r.migr_per_1k,
            r.grow_rejections,
            r.servers_touched,
            r.wall.as_secs_f64(),
            if i + 1 < results.len() { "," } else { "" }
        );
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    match std::fs::write(&json_path, &out) {
        Ok(()) => eprintln!("wrote {json_path}"),
        Err(e) => {
            eprintln!("failed to write {json_path}: {e}");
            std::process::exit(1);
        }
    }
    if !smoke {
        let mut txt = String::new();
        let _ = writeln!(
            txt,
            "Packing efficiency — online BestFit / GrowthAware vs offline BFD lower bound\n"
        );
        let _ = writeln!(
            txt,
            "{:<12} {:<14} {:>7} {:>6} {:>8} {:>9} {:>8} {:>7} {:>8}",
            "world",
            "policy",
            "placed",
            "migr",
            "migr/1k",
            "grow-rej",
            "servers",
            "bfd-lb",
            "wall(s)"
        );
        for r in &results {
            let bfd = baselines
                .iter()
                .find(|b| b.0 == r.world)
                .map(|b| b.3)
                .unwrap_or(0);
            let _ = writeln!(
                txt,
                "{:<12} {:<14} {:>7} {:>6} {:>8.1} {:>9} {:>8} {:>7} {:>8.2}",
                r.world,
                r.policy,
                r.placed,
                r.migrations,
                r.migr_per_1k,
                r.grow_rejections,
                r.servers_touched,
                bfd,
                r.wall.as_secs_f64()
            );
        }
        let _ = writeln!(
            txt,
            "\nBFD packs the global peak-concurrency snapshot with DC boundaries relaxed \
             (a lower bound on any online policy); every run had 0 capacity violations."
        );
        if let Err(e) = std::fs::write("results/pack_efficiency.txt", txt) {
            eprintln!("failed to write results/pack_efficiency.txt: {e}");
        } else {
            eprintln!("wrote results/pack_efficiency.txt");
        }
    }
}
