//! The real-time MP selector (§5.4): assign a DC the moment the first
//! participant joins (closest-DC heuristic), tally the call against the
//! precomputed allocation plan once its config freezes (A = 300 s in), and
//! migrate when the initial choice disagrees with the plan.

use std::collections::HashMap;

use sb_net::{CountryId, DcId};
use sb_workload::{ConfigId, DemandMatrix};

use crate::latency::LatencyMap;
use crate::shares::AllocationShares;

/// Integer per-DC call quotas per `(config, slot)`, derived from the
/// fractional allocation plan by largest-remainder rounding.
#[derive(Clone, Debug)]
pub struct PlannedQuotas {
    slot_minutes: u32,
    start_minute: u64,
    num_slots: usize,
    quotas: HashMap<(ConfigId, usize), Vec<(DcId, u32)>>,
}

impl PlannedQuotas {
    /// Round `share × demand` into integer slots that sum to the rounded
    /// demand (largest-remainder method).
    pub fn from_plan(shares: &AllocationShares, demand: &DemandMatrix) -> PlannedQuotas {
        let mut quotas = HashMap::new();
        for (cfg, slot, fracs) in shares.iter() {
            let d = demand.get(cfg, slot).round() as u32;
            if d == 0 {
                continue;
            }
            let targets: Vec<(DcId, f64)> =
                fracs.iter().map(|&(dc, f)| (dc, f * d as f64)).collect();
            let mut counts: Vec<(DcId, u32)> = targets
                .iter()
                .map(|&(dc, t)| (dc, t.floor() as u32))
                .collect();
            let assigned: u32 = counts.iter().map(|&(_, n)| n).sum();
            let mut remainders: Vec<(usize, f64)> = targets
                .iter()
                .enumerate()
                .map(|(i, &(_, t))| (i, t - t.floor()))
                .collect();
            remainders.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
            let total_target: f64 = targets.iter().map(|&(_, t)| t).sum();
            let want = total_target.round() as u32;
            for k in 0..(want.saturating_sub(assigned)) as usize {
                let idx = remainders[k % remainders.len()].0;
                counts[idx].1 += 1;
            }
            quotas.insert((cfg, slot), counts);
        }
        PlannedQuotas {
            slot_minutes: demand.slot_minutes,
            start_minute: demand.start_minute,
            num_slots: demand.num_slots(),
            quotas,
        }
    }

    /// Slot containing an absolute minute, if within the plan horizon.
    pub fn slot_of_minute(&self, minute: u64) -> Option<usize> {
        if minute < self.start_minute {
            return None;
        }
        let s = ((minute - self.start_minute) / self.slot_minutes as u64) as usize;
        (s < self.num_slots).then_some(s)
    }

    /// Total planned calls for a `(config, slot)`.
    pub fn total(&self, cfg: ConfigId, slot: usize) -> u32 {
        self.quotas
            .get(&(cfg, slot))
            .map(|v| v.iter().map(|&(_, n)| n).sum())
            .unwrap_or(0)
    }
}

/// What happened when a call's config froze.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum FreezeDecision {
    /// Initial DC agreed with the plan (or had quota): no migration.
    Stay(DcId),
    /// Plan required a different DC: the call migrates.
    Migrate {
        /// Initial DC.
        from: DcId,
        /// Plan-mandated DC.
        to: DcId,
    },
    /// Config was not in the plan (unanticipated config, §5.4(b) last ¶):
    /// the call stays at the closest DC.
    Unplanned(DcId),
    /// Planned quotas for this (config, slot) were exhausted everywhere:
    /// the call stays put and is served from headroom.
    Overflow(DcId),
}

impl FreezeDecision {
    /// The DC the call is hosted at after the decision.
    pub fn final_dc(self) -> DcId {
        match self {
            FreezeDecision::Stay(d)
            | FreezeDecision::Unplanned(d)
            | FreezeDecision::Overflow(d) => d,
            FreezeDecision::Migrate { to, .. } => to,
        }
    }

    /// Did the call migrate?
    pub fn migrated(self) -> bool {
        matches!(self, FreezeDecision::Migrate { .. })
    }
}

/// Aggregate selector statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SelectorStats {
    /// Calls started.
    pub calls: u64,
    /// Calls migrated at config freeze (§6.4 metric).
    pub migrations: u64,
    /// Calls with a config absent from the plan.
    pub unplanned: u64,
    /// Calls whose planned quotas were exhausted.
    pub overflow: u64,
}

impl SelectorStats {
    /// Migration rate over all started calls.
    pub fn migration_rate(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.migrations as f64 / self.calls as f64
        }
    }
}

/// The real-time selector state machine.
pub struct RealtimeSelector<'a> {
    latmap: &'a LatencyMap,
    quotas: PlannedQuotas,
    remaining: HashMap<(ConfigId, usize), Vec<(DcId, u32)>>,
    active: HashMap<u64, DcId>,
    closest: Vec<Option<DcId>>,
    stats: SelectorStats,
}

impl<'a> RealtimeSelector<'a> {
    /// Build a selector for one planning horizon.
    pub fn new(latmap: &'a LatencyMap, quotas: PlannedQuotas) -> RealtimeSelector<'a> {
        let closest = (0..latmap.num_countries())
            .map(|c| latmap.closest_dc(CountryId(c as u16)))
            .collect();
        let remaining = quotas.quotas.clone();
        RealtimeSelector {
            latmap,
            quotas,
            remaining,
            active: HashMap::new(),
            closest,
            stats: SelectorStats::default(),
        }
    }

    /// First participant joined: assign the DC closest to them (§5.4(a)).
    ///
    /// # Panics
    ///
    /// Panics if `first_joiner` has no reachable DC in the latency map —
    /// such countries can never host a call and must be filtered upstream.
    pub fn call_start(&mut self, call_id: u64, first_joiner: CountryId) -> DcId {
        let m = crate::metrics::realtime_metrics();
        let _t = m.selection_ns.start_timer();
        let dc = self.closest[first_joiner.index()].expect("country has a reachable DC");
        self.stats.calls += 1;
        m.assignments.inc();
        self.active.insert(call_id, dc);
        dc
    }

    /// The call's config froze (A minutes in): tally against the plan and
    /// decide whether to migrate (§5.4(b)(c)).
    ///
    /// # Panics
    ///
    /// Panics if `call_id` was never passed to [`call_start`] (or has
    /// already ended) — freezing an unknown call is a protocol violation.
    ///
    /// [`call_start`]: RealtimeSelector::call_start
    pub fn config_frozen(
        &mut self,
        call_id: u64,
        cfg: ConfigId,
        call_start_minute: u64,
    ) -> FreezeDecision {
        let m = crate::metrics::realtime_metrics();
        let _t = m.selection_ns.start_timer();
        m.freezes.inc();
        let current = *self.active.get(&call_id).expect("unknown call id");
        let Some(slot) = self.quotas.slot_of_minute(call_start_minute) else {
            self.stats.unplanned += 1;
            m.unplanned.inc();
            return FreezeDecision::Unplanned(current);
        };
        let Some(rem) = self.remaining.get_mut(&(cfg, slot)) else {
            self.stats.unplanned += 1;
            m.unplanned.inc();
            return FreezeDecision::Unplanned(current);
        };
        // current DC still has quota → debit and stay
        if let Some(entry) = rem.iter_mut().find(|(dc, n)| *dc == current && *n > 0) {
            entry.1 -= 1;
            return FreezeDecision::Stay(current);
        }
        // otherwise migrate to the planned DC with the most remaining quota
        if let Some(entry) = rem
            .iter_mut()
            .filter(|(_, n)| *n > 0)
            .max_by_key(|(_, n)| *n)
        {
            entry.1 -= 1;
            let to = entry.0;
            self.active.insert(call_id, to);
            self.stats.migrations += 1;
            m.migrations.inc();
            return FreezeDecision::Migrate { from: current, to };
        }
        self.stats.overflow += 1;
        m.overflow.inc();
        FreezeDecision::Overflow(current)
    }

    /// The call ended; release its bookkeeping.
    pub fn call_end(&mut self, call_id: u64) {
        self.active.remove(&call_id);
    }

    /// DC currently hosting a call.
    pub fn current_dc(&self, call_id: u64) -> Option<DcId> {
        self.active.get(&call_id).copied()
    }

    /// Statistics so far.
    pub fn stats(&self) -> &SelectorStats {
        &self.stats
    }

    /// The latency map in use.
    pub fn latmap(&self) -> &LatencyMap {
        self.latmap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_workload::{CallConfig, ConfigCatalog, MediaType};

    /// 2 countries × 2 DCs; country 0 → DC 0, country 1 → DC 1.
    fn latmap() -> LatencyMap {
        LatencyMap::from_matrix(vec![
            vec![Some(5.0), Some(50.0)],
            vec![Some(50.0), Some(5.0)],
        ])
    }

    fn catalog() -> (ConfigCatalog, ConfigId) {
        let mut cat = ConfigCatalog::new();
        let id = cat.intern(CallConfig::new(vec![(CountryId(0), 2)], MediaType::Audio));
        (cat, id)
    }

    fn quotas_for(cfg: ConfigId, fracs: Vec<(DcId, f64)>, demand_count: f64) -> PlannedQuotas {
        let mut shares = AllocationShares::new(1);
        shares.set(cfg, 0, fracs);
        let mut demand = DemandMatrix::zero(cfg.index() + 1, 1, 30, 0);
        demand.set(cfg, 0, demand_count);
        PlannedQuotas::from_plan(&shares, &demand)
    }

    #[test]
    fn largest_remainder_preserves_total() {
        let (_, cfg) = catalog();
        let q = quotas_for(
            cfg,
            vec![(DcId(0), 0.8), (DcId(1), 0.1), (DcId(0), 0.0)],
            100.0,
        );
        // 0.9 placed fraction: totals round to 90
        assert_eq!(q.total(cfg, 0), 90);
        let q = quotas_for(cfg, vec![(DcId(0), 1.0 / 3.0), (DcId(1), 2.0 / 3.0)], 10.0);
        assert_eq!(q.total(cfg, 0), 10);
    }

    #[test]
    fn stay_when_quota_available() {
        let lm = latmap();
        let (_, cfg) = catalog();
        let q = quotas_for(cfg, vec![(DcId(0), 1.0)], 2.0);
        let mut sel = RealtimeSelector::new(&lm, q);
        let dc = sel.call_start(1, CountryId(0));
        assert_eq!(dc, DcId(0));
        let d = sel.config_frozen(1, cfg, 0);
        assert_eq!(d, FreezeDecision::Stay(DcId(0)));
        assert_eq!(sel.stats().migrations, 0);
    }

    #[test]
    fn migrate_when_plan_disagrees() {
        let lm = latmap();
        let (_, cfg) = catalog();
        // plan puts everything on DC1 but the first joiner is closest to DC0
        let q = quotas_for(cfg, vec![(DcId(1), 1.0)], 5.0);
        let mut sel = RealtimeSelector::new(&lm, q);
        sel.call_start(7, CountryId(0));
        let d = sel.config_frozen(7, cfg, 10);
        assert_eq!(
            d,
            FreezeDecision::Migrate {
                from: DcId(0),
                to: DcId(1)
            }
        );
        assert!(d.migrated());
        assert_eq!(sel.current_dc(7), Some(DcId(1)));
        assert_eq!(sel.stats().migrations, 1);
    }

    #[test]
    fn quota_exhaustion_forces_migration_of_later_calls() {
        let lm = latmap();
        let (_, cfg) = catalog();
        // plan: 2 calls at DC0, 1 at DC1
        let q = quotas_for(cfg, vec![(DcId(0), 2.0 / 3.0), (DcId(1), 1.0 / 3.0)], 3.0);
        let mut sel = RealtimeSelector::new(&lm, q);
        for id in 0..3u64 {
            sel.call_start(id, CountryId(0));
        }
        assert_eq!(sel.config_frozen(0, cfg, 0), FreezeDecision::Stay(DcId(0)));
        assert_eq!(sel.config_frozen(1, cfg, 0), FreezeDecision::Stay(DcId(0)));
        // third call: DC0 exhausted → migrate to DC1
        assert!(sel.config_frozen(2, cfg, 0).migrated());
        // a fourth call overflows
        sel.call_start(3, CountryId(0));
        assert!(matches!(
            sel.config_frozen(3, cfg, 0),
            FreezeDecision::Overflow(_)
        ));
        assert_eq!(sel.stats().overflow, 1);
        assert!((sel.stats().migration_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn unplanned_config_stays_closest() {
        let lm = latmap();
        let (_, cfg) = catalog();
        let q = quotas_for(cfg, vec![(DcId(0), 1.0)], 1.0);
        let mut sel = RealtimeSelector::new(&lm, q);
        sel.call_start(1, CountryId(1));
        // a config id the plan never saw
        let other = ConfigId(42);
        let d = sel.config_frozen(1, other, 0);
        assert!(matches!(d, FreezeDecision::Unplanned(_)));
        assert_eq!(d.final_dc(), DcId(1));
        sel.call_end(1);
        assert_eq!(sel.current_dc(1), None);
    }
}
