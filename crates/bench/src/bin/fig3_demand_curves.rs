//! Fig. 3: per-country core demand over one day (UTC), normalized to the
//! maximum peak — showing the time-shifted peaks Switchboard exploits.
//! The paper plots Japan, Hong Kong and India with peaks at roughly
//! 0:00, 2:00 and 5:30 UTC.

use sb_bench::common::sparkline;
use sb_workload::{Generator, UniverseParams, WorkloadParams};

fn main() {
    let topo = sb_net::presets::apac();
    let params = WorkloadParams {
        universe: UniverseParams {
            num_configs: 1_000,
            ..Default::default()
        },
        daily_calls: 20_000.0,
        slot_minutes: 30,
        ..Default::default()
    };
    let generator = Generator::new(&topo, params);
    // day 2 = a Wednesday
    let demand = generator.expected_demand(2, 1);
    let by_country = demand.country_core_demand(&generator.universe().catalog, &topo);

    let global_max = by_country
        .iter()
        .flat_map(|v| v.iter())
        .cloned()
        .fold(f64::MIN, f64::max);

    println!("== Fig. 3: normalized core demand per country over one day (UTC) ==\n");
    println!("slot width 30 min, 48 slots, normalized to the max peak\n");
    for name in ["JP", "HK", "IN"] {
        let c = topo.country_by_name(name);
        let series = &by_country[c.index()];
        let peak_slot = series
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap();
        let peak_hh = peak_slot / 2;
        let peak_mm = (peak_slot % 2) * 30;
        let peak_norm = series[peak_slot] / global_max;
        println!(
            "{name:>3}  {}  peak {:.2} at {:02}:{:02} UTC",
            sparkline(series),
            peak_norm,
            peak_hh,
            peak_mm
        );
    }
    println!(
        "\npaper: peaks form at ~00:00 (JP), ~02:00 (HK) and ~05:30 (IN) UTC —\n\
         the UTC offsets (+9, +8, +5.5) shift identical local work-hour curves."
    );

    // machine-readable series
    println!("\nslot_utc\tJP\tHK\tIN");
    let (jp, hk, iin) = (
        topo.country_by_name("JP").index(),
        topo.country_by_name("HK").index(),
        topo.country_by_name("IN").index(),
    );
    for s in 0..demand.num_slots() {
        println!(
            "{:02}:{:02}\t{:.3}\t{:.3}\t{:.3}",
            s / 2,
            (s % 2) * 30,
            by_country[jp][s] / global_max,
            by_country[hk][s] / global_max,
            by_country[iin][s] / global_max
        );
    }
}
