//! Failure drills: inject a DC or link failure into a replay window and
//! verify the provisioned backup capacity actually absorbs the failover
//! (§2.1 requirement 2, §5.3 failure model).

use sb_core::{LatencyMap, ScenarioData};
use sb_net::{FailureScenario, ProvisionedCapacity, Topology};
use sb_workload::{CallRecordsDb, ConfigCatalog};

/// Outcome of one failure drill.
#[derive(Clone, Debug)]
pub struct DrillReport {
    /// Scenario injected.
    pub scenario: FailureScenario,
    /// Calls active on failed resources that were successfully re-homed.
    pub rehomed: u64,
    /// Calls that could not be re-homed (no reachable DC) — should be 0 on
    /// a well-provisioned topology.
    pub stranded: u64,
    /// Peak usage during the failure window (all calls on surviving DCs).
    pub peaks: ProvisionedCapacity,
    /// Minutes × resources where usage exceeded the provisioned capacity.
    pub violations: u64,
    /// Mean ACL during the failure window (after failover).
    pub mean_acl_ms: f64,
}

/// Simulate the steady state *during* a failure: every call in `db` that
/// overlaps the drill is placed at its latency-optimal surviving DC (which is
/// what the §4.2 backup plan provides capacity for), then usage is compared
/// against `capacity`.
pub fn drill(
    topo: &Topology,
    catalog: &ConfigCatalog,
    db: &CallRecordsDb,
    scenario: FailureScenario,
    capacity: &ProvisionedCapacity,
) -> DrillReport {
    let sd = ScenarioData::compute(topo, scenario);
    let sd0 = ScenarioData::compute(topo, FailureScenario::None);
    drill_with(topo, catalog, db, &sd, &sd0.latmap, capacity)
}

fn drill_with(
    topo: &Topology,
    catalog: &ConfigCatalog,
    db: &CallRecordsDb,
    sd: &ScenarioData,
    latmap0: &LatencyMap,
    capacity: &ProvisionedCapacity,
) -> DrillReport {
    let records = db.records();
    let mut rehomed = 0u64;
    let mut stranded = 0u64;
    let mut acl_sum = 0.0;
    let mut acl_n = 0u64;

    if records.is_empty() {
        return DrillReport {
            scenario: sd.scenario,
            rehomed: 0,
            stranded: 0,
            peaks: ProvisionedCapacity::zero(topo),
            violations: 0,
            mean_acl_ms: 0.0,
        };
    }
    let t0 = records.iter().map(|r| r.start_minute).min().unwrap();
    let t1 = records.iter().map(|r| r.end_minute()).max().unwrap();
    let horizon = (t1 - t0 + 1) as usize;
    let mut core_delta = vec![vec![0.0f64; topo.dcs.len()]; horizon + 1];
    let mut link_delta = vec![vec![0.0f64; topo.links.len()]; horizon + 1];

    for r in records {
        let cfg = catalog.config(r.config);
        // where would this call sit in healthy operation?
        let healthy = latmap0.acl_min_dc(cfg).map(|(dc, _)| dc);
        // failover target: latency-optimal surviving DC
        match sd.latmap.acl_min_dc(cfg) {
            Some((dc, acl)) => {
                if healthy != Some(dc) {
                    rehomed += 1;
                }
                acl_sum += acl;
                acl_n += 1;
                let (a, b) = (
                    (r.start_minute - t0) as usize,
                    (r.end_minute() - t0) as usize,
                );
                core_delta[a][dc.index()] += cfg.compute_load();
                core_delta[b][dc.index()] -= cfg.compute_load();
                let nl = cfg.leg_network_load();
                for &(country, n) in cfg.participants() {
                    if let Some(route) = sd.routing.route(country, dc) {
                        for &l in &route.links {
                            link_delta[a][l.index()] += n as f64 * nl;
                            link_delta[b][l.index()] -= n as f64 * nl;
                        }
                    }
                }
            }
            None => stranded += 1,
        }
    }

    let mut peaks = ProvisionedCapacity::zero(topo);
    let mut violations = 0u64;
    let mut cur_cores = vec![0.0f64; topo.dcs.len()];
    let mut cur_links = vec![0.0f64; topo.links.len()];
    for m in 0..horizon {
        for (c, d) in cur_cores.iter_mut().zip(&core_delta[m]) {
            *c += d;
        }
        for (c, d) in cur_links.iter_mut().zip(&link_delta[m]) {
            *c += d;
        }
        for (p, &u) in peaks.cores.iter_mut().zip(&cur_cores) {
            *p = p.max(u);
        }
        for (p, &u) in peaks.gbps.iter_mut().zip(&cur_links) {
            *p = p.max(u);
        }
        for (i, &u) in cur_cores.iter().enumerate() {
            if u > capacity.cores[i] + 1e-9 {
                violations += 1;
            }
        }
        for (i, &u) in cur_links.iter().enumerate() {
            if u > capacity.gbps[i] + 1e-9 {
                violations += 1;
            }
        }
    }

    DrillReport {
        scenario: sd.scenario,
        rehomed,
        stranded,
        peaks,
        violations,
        mean_acl_ms: if acl_n > 0 {
            acl_sum / acl_n as f64
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_workload::{CallConfig, CallRecord, MediaType};

    fn db() -> (Topology, ConfigCatalog, CallRecordsDb) {
        let topo = sb_net::presets::toy_three_dc();
        let jp = topo.country_by_name("JP");
        let mut cat = ConfigCatalog::new();
        let id = cat.intern(CallConfig::new(vec![(jp, 2)], MediaType::Audio));
        let mut db = CallRecordsDb::new(cat.clone());
        for i in 0..20 {
            db.push(CallRecord {
                id: i,
                config: id,
                start_minute: i,
                duration_min: 30,
                first_joiner: jp,
                join_offsets_s: vec![0, 30],
            });
        }
        (topo, cat, db)
    }

    #[test]
    fn dc_failure_rehomes_everything() {
        let (topo, cat, db) = db();
        let tokyo = topo.dc_by_name("Tokyo");
        let generous = ProvisionedCapacity {
            cores: vec![1e6; topo.dcs.len()],
            gbps: vec![1e6; topo.links.len()],
        };
        let report = drill(&topo, &cat, &db, FailureScenario::DcDown(tokyo), &generous);
        assert_eq!(report.stranded, 0);
        assert_eq!(report.rehomed, 20); // all JP calls lived in Tokyo
        assert_eq!(report.violations, 0);
        assert_eq!(report.peaks.cores[tokyo.index()], 0.0);
        assert!(report.mean_acl_ms > 0.0);
    }

    #[test]
    fn no_failure_drill_rehomes_nothing() {
        let (topo, cat, db) = db();
        let generous = ProvisionedCapacity {
            cores: vec![1e6; topo.dcs.len()],
            gbps: vec![1e6; topo.links.len()],
        };
        let report = drill(&topo, &cat, &db, FailureScenario::None, &generous);
        assert_eq!(report.rehomed, 0);
        assert_eq!(report.stranded, 0);
    }

    #[test]
    fn undersized_capacity_violates() {
        let (topo, cat, db) = db();
        let tokyo = topo.dc_by_name("Tokyo");
        let tiny = ProvisionedCapacity {
            cores: vec![0.01; topo.dcs.len()],
            gbps: vec![1e6; topo.links.len()],
        };
        let report = drill(&topo, &cat, &db, FailureScenario::DcDown(tokyo), &tiny);
        assert!(report.violations > 0);
    }
}
