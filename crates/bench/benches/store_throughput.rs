//! Sharded call-state store: single-op costs and multi-threaded event
//! replay throughput (the §6.6 substrate).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sb_store::{measure_throughput, CallEvent, CallStateStore, LatencyHistogram, MediaFlag};

fn events(calls: u64) -> Vec<CallEvent> {
    let mut ev = Vec::new();
    for c in 0..calls {
        ev.push(CallEvent::Start {
            call: c,
            country: (c % 9) as u16,
            dc: (c % 4) as u16,
        });
        for _ in 0..5 {
            ev.push(CallEvent::Join {
                call: c,
                country: ((c + 1) % 9) as u16,
            });
        }
        ev.push(CallEvent::Media {
            call: c,
            media: MediaFlag::Video,
        });
        ev.push(CallEvent::Freeze { call: c });
        ev.push(CallEvent::End { call: c });
    }
    ev
}

fn bench_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("call_state_store");
    group.bench_function("single_event_apply", |b| {
        let store = CallStateStore::new(64);
        let mut hist = LatencyHistogram::new();
        let mut id = 0u64;
        b.iter(|| {
            id += 1;
            store.apply(
                CallEvent::Start {
                    call: id,
                    country: 1,
                    dc: 0,
                },
                &mut hist,
            );
            store.apply(
                CallEvent::Join {
                    call: id,
                    country: 2,
                },
                &mut hist,
            );
            store.apply(CallEvent::End { call: id }, &mut hist);
        })
    });
    let ev = events(2_000);
    for &threads in &[1usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("replay_16k_events", threads),
            &ev,
            |b, ev| {
                b.iter(|| {
                    let store = CallStateStore::new(256);
                    measure_throughput(&store, ev, threads).events
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
