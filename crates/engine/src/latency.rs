//! Fine-grained latency histogram for selector operations.
//!
//! The store's `LatencyHistogram` uses one bucket per power of two — fine
//! for millisecond-scale Redis writes, but a selector op takes tens to
//! hundreds of nanoseconds and a p999 read off log2 buckets can be off by
//! 2×. This histogram is log-linear (HDR-style): every power of two is
//! split into 32 linear sub-buckets, bounding the relative quantile error
//! at ~3% across the full `u64` nanosecond range.

use std::time::Duration;

const SUB_BITS: u32 = 5;
const SUB: usize = 1 << SUB_BITS;
// max index is (58 + 1) * SUB + (SUB - 1) for ns = u64::MAX
const BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB;

/// Log-linear histogram of operation latencies (nanosecond samples).
#[derive(Clone, Debug)]
pub struct FineHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum_ns: u128,
    max_ns: u64,
    min_ns: u64,
}

impl Default for FineHistogram {
    fn default() -> Self {
        Self::new()
    }
}

fn index_of(ns: u64) -> usize {
    if ns < SUB as u64 {
        return ns as usize;
    }
    let top = 63 - ns.leading_zeros();
    let shift = top - SUB_BITS;
    let sub = ((ns >> shift) & (SUB as u64 - 1)) as usize;
    (shift as usize + 1) * SUB + sub
}

/// Upper edge (inclusive) of bucket `idx`, in nanoseconds.
fn upper_edge(idx: usize) -> u64 {
    if idx < SUB {
        return idx as u64;
    }
    let shift = (idx / SUB - 1) as u32;
    let sub = (idx % SUB) as u64;
    ((SUB as u64 + sub) << shift) + ((1u64 << shift) - 1)
}

impl FineHistogram {
    /// Empty histogram covering 1 ns … `u64::MAX` ns.
    pub fn new() -> FineHistogram {
        FineHistogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
            min_ns: u64::MAX,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, d: Duration) {
        let ns = d.as_nanos().min(u64::MAX as u128) as u64;
        self.buckets[index_of(ns)] += 1;
        self.count += 1;
        self.sum_ns += ns as u128;
        self.max_ns = self.max_ns.max(ns);
        self.min_ns = self.min_ns.min(ns);
    }

    /// Merge another histogram (per-worker → engine aggregation).
    pub fn merge(&mut self, other: &FineHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
        self.min_ns = self.min_ns.min(other.min_ns);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency.
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos((self.sum_ns / self.count as u128) as u64)
    }

    /// Maximum observed latency.
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_ns)
    }

    /// Minimum observed latency (zero when empty).
    pub fn min(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            Duration::from_nanos(self.min_ns)
        }
    }

    /// Quantile `q` in `[0, 1]`: the upper edge of the bucket containing the
    /// `ceil(q·count)`-th sample, clamped to the observed max.
    pub fn quantile(&self, q: f64) -> Duration {
        assert!((0.0..=1.0).contains(&q));
        if self.count == 0 {
            return Duration::ZERO;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Duration::from_nanos(upper_edge(i).min(self.max_ns));
            }
        }
        self.max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_region_is_exact() {
        for ns in 0..SUB as u64 {
            assert_eq!(index_of(ns), ns as usize);
            assert_eq!(upper_edge(ns as usize), ns);
        }
    }

    #[test]
    fn buckets_are_contiguous_and_monotone() {
        let mut prev = None;
        for ns in [
            31u64,
            32,
            33,
            63,
            64,
            65,
            100,
            1_000,
            1_023,
            1_024,
            65_535,
            1 << 40,
        ] {
            let idx = index_of(ns);
            assert!(idx < BUCKETS);
            assert!(upper_edge(idx) >= ns, "edge({idx}) < {ns}");
            if let Some(p) = prev {
                assert!(idx >= p);
            }
            prev = Some(idx);
        }
        assert_eq!(index_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn relative_error_is_bounded() {
        // upper edge overestimates a sample by at most one sub-bucket width
        for ns in [100u64, 999, 12_345, 1_000_000, 123_456_789] {
            let edge = upper_edge(index_of(ns));
            assert!(edge >= ns);
            assert!((edge - ns) as f64 / ns as f64 <= 1.0 / SUB as f64 + 1e-9);
        }
    }

    #[test]
    fn quantiles_resolve_finely() {
        let mut h = FineHistogram::new();
        // 1000 samples at 100ns, 9 at 1µs, 1 at 1ms
        for _ in 0..1000 {
            h.record(Duration::from_nanos(100));
        }
        for _ in 0..9 {
            h.record(Duration::from_micros(1));
        }
        h.record(Duration::from_millis(1));
        assert_eq!(h.count(), 1010);
        let p50 = h.quantile(0.5).as_nanos() as f64;
        assert!((95.0..=110.0).contains(&p50), "{p50}");
        let p999 = h.quantile(0.999).as_nanos() as f64;
        assert!((900.0..=1100.0).contains(&p999), "{p999}");
        assert_eq!(h.quantile(1.0), Duration::from_millis(1));
    }

    #[test]
    fn merge_combines() {
        let mut a = FineHistogram::new();
        let mut b = FineHistogram::new();
        a.record(Duration::from_nanos(10));
        b.record(Duration::from_nanos(30));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), Duration::from_nanos(20));
        assert_eq!(a.min(), Duration::from_nanos(10));
        assert_eq!(a.max(), Duration::from_nanos(30));
    }
}
