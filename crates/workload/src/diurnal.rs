//! Diurnal / weekly activity model: conferencing demand follows local work
//! hours, which is what creates the time-shifted peaks across time zones that
//! Switchboard exploits (Fig. 3).

/// Minutes per day.
pub const MINUTES_PER_DAY: u64 = 24 * 60;

/// Day-of-week for an absolute day index; day 0 is a Monday.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum DayOfWeek {
    /// Monday.
    Mon,
    /// Tuesday.
    Tue,
    /// Wednesday.
    Wed,
    /// Thursday.
    Thu,
    /// Friday.
    Fri,
    /// Saturday.
    Sat,
    /// Sunday.
    Sun,
}

impl DayOfWeek {
    /// From an absolute day index (day 0 = Monday).
    pub fn from_day(day: i64) -> DayOfWeek {
        match day.rem_euclid(7) {
            0 => DayOfWeek::Mon,
            1 => DayOfWeek::Tue,
            2 => DayOfWeek::Wed,
            3 => DayOfWeek::Thu,
            4 => DayOfWeek::Fri,
            5 => DayOfWeek::Sat,
            _ => DayOfWeek::Sun,
        }
    }

    /// Weekly demand multiplier: business days full, weekends quiet.
    pub fn factor(self) -> f64 {
        match self {
            DayOfWeek::Mon => 0.97,
            DayOfWeek::Tue => 1.02,
            DayOfWeek::Wed => 1.03,
            DayOfWeek::Thu => 1.0,
            DayOfWeek::Fri => 0.9,
            DayOfWeek::Sat => 0.14,
            DayOfWeek::Sun => 0.11,
        }
    }
}

fn gaussian(x: f64, mu: f64, sigma: f64) -> f64 {
    (-((x - mu) / sigma).powi(2) / 2.0).exp()
}

/// Within-day activity at local hour `h ∈ [0, 24)`: a business-hours bimodal
/// curve (morning peak ≈ 9:30, afternoon peak ≈ 14:00) over a small
/// out-of-hours floor. Peak value is ≈ 1.0.
pub fn local_activity(h: f64) -> f64 {
    let h = h.rem_euclid(24.0);
    let morning = gaussian(h, 9.5, 1.3);
    let afternoon = 0.62 * gaussian(h, 14.0, 1.9);
    let evening = 0.08 * gaussian(h, 19.5, 1.8);
    0.02 + morning + afternoon + evening
}

/// Full activity multiplier for a country at an absolute UTC minute:
/// converts to local time via `utc_offset_hours`, then applies the local
/// time-of-day curve and the local day-of-week factor.
pub fn activity_at(utc_minute: u64, utc_offset_hours: f64) -> f64 {
    let local_min = utc_minute as f64 + utc_offset_hours * 60.0;
    let local_day = (local_min / MINUTES_PER_DAY as f64).floor() as i64;
    let local_hour = (local_min - local_day as f64 * MINUTES_PER_DAY as f64) / 60.0;
    local_activity(local_hour) * DayOfWeek::from_day(local_day).factor()
}

/// UTC hour (fractional) at which the given offset's local activity peaks —
/// useful for Fig. 3-style assertions.
pub fn peak_utc_hour(utc_offset_hours: f64) -> f64 {
    // local peak is at the maximum of `local_activity`
    let mut best = (0.0, f64::MIN);
    for i in 0..(24 * 60) {
        let h = i as f64 / 60.0;
        let a = local_activity(h);
        if a > best.1 {
            best = (h, a);
        }
    }
    (best.0 - utc_offset_hours).rem_euclid(24.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn day_of_week_cycles() {
        assert_eq!(DayOfWeek::from_day(0), DayOfWeek::Mon);
        assert_eq!(DayOfWeek::from_day(5), DayOfWeek::Sat);
        assert_eq!(DayOfWeek::from_day(7), DayOfWeek::Mon);
        assert_eq!(DayOfWeek::from_day(-1), DayOfWeek::Sun);
    }

    #[test]
    fn business_hours_dominate_nights() {
        assert!(local_activity(10.0) > 10.0 * local_activity(3.0));
        assert!(local_activity(14.0) > 5.0 * local_activity(22.0));
    }

    #[test]
    fn peak_near_mid_morning() {
        let mut best = (0.0, f64::MIN);
        for i in 0..(24 * 60) {
            let h = i as f64 / 60.0;
            let a = local_activity(h);
            if a > best.1 {
                best = (h, a);
            }
        }
        assert!((9.0..10.5).contains(&best.0), "peak at {}", best.0);
    }

    #[test]
    fn timezone_shift_moves_utc_peak() {
        // Japan (+9) peaks ~0:30 UTC; India (+5.5) ~4:00 UTC — shifted by 3.5h
        let jp = peak_utc_hour(9.0);
        let ind = peak_utc_hour(5.5);
        assert!((jp..jp + 4.0).contains(&ind), "jp {jp} in {ind}");
        assert!(((ind - jp) - 3.5).abs() < 0.2);
    }

    #[test]
    fn weekend_suppression_in_activity_at() {
        // day 2 (Wed) vs day 5 (Sat) at local 10:00, offset 0
        let wed = activity_at(2 * MINUTES_PER_DAY + 10 * 60, 0.0);
        let sat = activity_at(5 * MINUTES_PER_DAY + 10 * 60, 0.0);
        assert!(wed > 5.0 * sat);
    }

    #[test]
    fn offset_crosses_day_boundary_correctly() {
        // UTC Friday 23:00 is Saturday 08:00 in a +9 zone: weekend factor
        let fri_23_utc = 4 * MINUTES_PER_DAY + 23 * 60;
        let a = activity_at(fri_23_utc, 9.0);
        let same_local_hour_weekday = activity_at(2 * MINUTES_PER_DAY + 8 * 60, 0.0);
        assert!(a < 0.3 * same_local_hour_weekday);
    }
}
