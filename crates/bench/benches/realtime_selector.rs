//! Latency of the real-time MP selector's critical-path operations —
//! `call_start` (first-joiner assignment) and `config_frozen` (plan tally /
//! migration decision). These run on every call the service admits, so they
//! must stay microseconds-cheap.

use criterion::{criterion_group, criterion_main, Criterion};
use sb_core::{AllocationShares, LatencyMap, PlanArtifact, PlannedQuotas, RealtimeSelector};
use sb_net::{CountryId, DcId};
use sb_workload::{ConfigId, DemandMatrix};

fn quotas(num_configs: usize, slots: usize) -> (LatencyMap, PlannedQuotas) {
    let latmap =
        LatencyMap::from_matrix(vec![vec![Some(5.0), Some(40.0), Some(60.0), Some(80.0)]; 9]);
    let mut shares = AllocationShares::new(slots);
    let mut demand = DemandMatrix::zero(num_configs, slots, 30, 0);
    for cfg in 0..num_configs {
        for s in 0..slots {
            demand.set(ConfigId(cfg as u32), s, 50.0);
            shares.set(
                ConfigId(cfg as u32),
                s,
                vec![(DcId(0), 0.6), (DcId(1), 0.3), (DcId(2), 0.1)],
            );
        }
    }
    (latmap, PlannedQuotas::from_plan(&shares, &demand))
}

fn bench_selector(c: &mut Criterion) {
    let mut group = c.benchmark_group("realtime_selector");
    group.bench_function("call_start+freeze+end", |b| {
        let (latmap, q) = quotas(200, 48);
        let sel = RealtimeSelector::from_artifact(&latmap, &PlanArtifact::seed(q.clone()));
        let mut id = 0u64;
        b.iter(|| {
            id += 1;
            let cfg = ConfigId((id % 200) as u32);
            sel.call_start(id, CountryId((id % 9) as u16));
            let d = sel.config_frozen(id, cfg, (id * 7) % (48 * 30));
            sel.call_end(id);
            d
        })
    });
    group.finish();
}

criterion_group!(benches, bench_selector);
criterion_main!(benches);
