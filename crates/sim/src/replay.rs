//! Trace replay: drive the real-time MP selector (§5.4) with a call-record
//! trace and measure what the paper's evaluation measures — per-call mean
//! ACL, per-DC core peaks, per-link Gbps peaks, migration rate, and capacity
//! violations.
//!
//! Two drivers share the same accounting:
//!
//! * [`replay`] — the serial oracle: one thread applies every event in trace
//!   order. Simple enough to audit, and the reference the concurrent engine
//!   is differential-tested against.
//! * [`replay_concurrent`] — partitions whole call lifecycles across worker
//!   threads (each holding a [`sb_core::SelectorShard`]) by the quota pool
//!   their freeze will debit, and lets every worker walk its events in trace
//!   order with *no barriers* except at plan-swap minutes. Produces
//!   *identical* aggregate results:
//!
//!   - a call's start, freeze, and end all ride with the call, so one worker
//!     drives them in trace order (starts and ends touch no shared selector
//!     state beyond the sharded call map, keyed by distinct ids);
//!   - a freeze decision depends only on the call's own state, the (fixed
//!     between barriers) topology/plan validity, and its `(config, slot)`
//!     quota pool — and all lifecycles debiting one pool map to one worker
//!     (via [`sb_core::RealtimeSelector::quota_pool_token`]), so each pool's
//!     freeze sequence runs in trace order; distinct pools never interact;
//!   - plan swaps rebuild the pool table, so they stay barriers: the drive
//!     joins all workers before an install and re-partitions after it;
//!   - every statistic is a count (order-insensitive sum), and the float
//!     outputs (peaks, ACL, overshoot) are computed *after* the drive by
//!     `account`, which walks placements in record order — the identical
//!     code path for both drivers, hence byte-identical floats.

use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use sb_core::{LatencyMap, PlanArtifact, RealtimeSelector, SelectorStats};
use sb_net::{DcId, ProvisionedCapacity, RoutingTable, Topology};
use sb_obs::{Counter, Histogram};
use sb_pack::{CostModel, FleetPacker, FleetSpec, GrowthModel, PackStats, PackerConfig, ServerId};
use sb_workload::joins::CONFIG_FREEZE_SECONDS;
use sb_workload::{CallRecord, CallRecordsDb, ConfigCatalog};

struct ReplayMetrics {
    runs: Counter,
    calls: Counter,
    violations: Counter,
    wall_ns: Histogram,
    drive_ns: Histogram,
}

fn replay_metrics() -> &'static ReplayMetrics {
    static METRICS: OnceLock<ReplayMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = sb_obs::global();
        ReplayMetrics {
            runs: reg.counter("replay.runs"),
            calls: reg.counter("replay.calls"),
            violations: reg.counter("replay.capacity_violations"),
            wall_ns: reg.histogram("replay.wall_ns"),
            drive_ns: reg.histogram("replay.drive_ns"),
        }
    })
}

/// A scheduled mid-replay plan hot-swap: `artifact` is installed into the
/// selector just before the first event at or after `at_minute`.
///
/// Swaps are barriers in both drivers: the serial drive installs between
/// two consecutive events, and the concurrent drive joins every worker
/// before the swap minute — so no selector operation ever races an install
/// and the serial-oracle stats equality holds across swaps.
#[derive(Clone, Debug)]
pub struct PlanSwap {
    /// First trace minute the new plan applies to.
    pub at_minute: u64,
    /// The plan to install.
    pub artifact: Arc<PlanArtifact>,
}

/// Two-level placement add-on for a replay: when set, every accounted call
/// is additionally packed onto a server inside its hosting DC by a shared
/// deterministic pack pass (see [`ReplayStats::pack`]).
#[derive(Debug)]
pub struct PackSetup {
    /// Per-DC server fleet (must cover every DC of the replayed topology).
    pub spec: FleetSpec,
    /// Packer policy and tuning.
    pub packer: PackerConfig,
    /// Per-call cost as a function of participant count.
    pub cost: CostModel,
    /// Optional growth predictor; `None` reserves exactly the actual cost.
    pub growth: Option<GrowthModel>,
    /// Scheduled server deaths `(minute, server)`, applied before any
    /// same-minute placement ops.
    pub server_deaths: Vec<(u64, ServerId)>,
}

/// The order-insensitive aggregate of the pack pass — integer throughout,
/// so the differential harness compares it bitwise like everything else.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PackReplayStats {
    /// Packer op counters summed over DCs.
    pub stats: PackStats,
    /// Peak observed occupancy per server, flattened in `(dc, index)` order.
    pub per_server_peak_mcpu: Vec<u32>,
    /// Initial placements per server, flattened in `(dc, index)` order.
    pub per_server_placed: Vec<u64>,
    /// Hard-invariant violations observed at end of pass (always 0: the
    /// packer never overcommits actual cost).
    pub violations: u64,
}

/// Replay configuration.
#[derive(Clone, Debug)]
pub struct ReplayConfig {
    /// Minutes into the call at which the config freezes (A; 5 in the paper).
    pub freeze_minutes: u64,
    /// Capacity to check usage against (violations are counted per minute).
    pub capacity: Option<ProvisionedCapacity>,
    /// Mid-replay plan hot-swaps (installed in `at_minute` order).
    pub swaps: Vec<PlanSwap>,
    /// Optional intra-DC packing leg (shared across clones of the config).
    pub pack: Option<Arc<PackSetup>>,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            freeze_minutes: (CONFIG_FREEZE_SECONDS / 60) as u64,
            capacity: None,
            swaps: Vec::new(),
            pack: None,
        }
    }
}

/// Wall-clock breakdown of one replay run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReplayTiming {
    /// Driving the selector (the part the concurrent engine parallelizes).
    pub drive: Duration,
    /// Post-drive usage integration (always serial).
    pub account: Duration,
}

/// The order-insensitive aggregate of a replay run: every field must come
/// out identical whether the trace was driven serially or across N worker
/// threads. The differential tests compare this with `==` — including the
/// floats, which both drivers compute via the same record-order accounting
/// pass.
#[derive(Clone, Debug, PartialEq)]
pub struct ReplayStats {
    /// Number of calls replayed.
    pub calls: u64,
    /// Selector statistics (migrations etc.).
    pub selector: SelectorStats,
    /// Completed freeze tallies per DC (index = DC id).
    pub per_dc_tallies: Vec<u64>,
    /// Mean of per-call ACLs at the final hosting DC.
    pub mean_acl_ms: f64,
    /// Observed per-DC core peaks.
    pub peak_cores: Vec<f64>,
    /// Observed per-link Gbps peaks.
    pub peak_gbps: Vec<f64>,
    /// Minutes × resources where usage exceeded the given capacity.
    pub capacity_violations: u64,
    /// Worst relative overshoot across all violations.
    pub worst_overshoot: f64,
    /// Intra-DC packing aggregate (present iff [`ReplayConfig::pack`] was
    /// set), including per-server tallies.
    pub pack: Option<PackReplayStats>,
}

/// Replay results.
#[derive(Clone, Debug)]
pub struct ReplayReport {
    /// Mean of per-call ACLs at the final hosting DC.
    pub mean_acl_ms: f64,
    /// Observed peaks (per-minute accounting).
    pub peaks: ProvisionedCapacity,
    /// Selector statistics (migrations etc.).
    pub selector: SelectorStats,
    /// Completed freeze tallies per DC (index = DC id).
    pub per_dc_tallies: Vec<u64>,
    /// Minutes × resources where usage exceeded the given capacity.
    pub capacity_violations: u64,
    /// Worst relative overshoot across all violations.
    pub worst_overshoot: f64,
    /// Number of calls replayed.
    pub calls: u64,
    /// Intra-DC packing aggregate (present iff [`ReplayConfig::pack`] was
    /// set).
    pub pack: Option<PackReplayStats>,
    /// Wall-clock breakdown (drive vs accounting).
    pub timing: ReplayTiming,
}

impl ReplayReport {
    /// The comparable aggregate of this run (everything except wall-clock).
    pub fn stats(&self) -> ReplayStats {
        ReplayStats {
            calls: self.calls,
            selector: self.selector.clone(),
            per_dc_tallies: self.per_dc_tallies.clone(),
            mean_acl_ms: self.mean_acl_ms,
            peak_cores: self.peaks.cores.clone(),
            peak_gbps: self.peaks.gbps.clone(),
            capacity_violations: self.capacity_violations,
            worst_overshoot: self.worst_overshoot,
            pack: self.pack.clone(),
        }
    }
}

/// Event kinds, ordered so same-minute events sort start < freeze < end.
pub const EV_START: u8 = 0;
/// Freeze event kind.
pub const EV_FREEZE: u8 = 1;
/// End event kind.
pub const EV_END: u8 = 2;

/// Build the `(minute, kind, record)` event list for a trace, sorted by
/// `(minute, kind)` with the stable record order breaking ties — the
/// canonical serial order both replay drivers are defined against.
///
/// Public so external load generators (the `engine_load` bench drives
/// `sb-engine` with exactly this schedule) stay bitwise-comparable with the
/// serial replay oracle.
pub fn build_events(records: &[CallRecord], freeze_minutes: u64) -> Vec<(u64, u8, usize)> {
    let mut events: Vec<(u64, u8, usize)> = Vec::with_capacity(records.len() * 3);
    for (i, r) in records.iter().enumerate() {
        let freeze = r.start_minute + freeze_minutes.min(r.duration_min as u64);
        events.push((r.start_minute, EV_START, i));
        events.push((freeze, EV_FREEZE, i));
        events.push((r.end_minute(), EV_END, i));
    }
    events.sort_by_key(|&(t, k, _)| (t, k));
    events
}

/// Final hosting decision for one replayed call: where it sat before its
/// config froze, and where it finished.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Placement {
    pub(crate) initial: DcId,
    pub(crate) final_dc: DcId,
}

/// Integrate per-record placements into usage, peaks, violations, and mean
/// ACL. Record-index order, independent of which driver produced the
/// placements — this is what makes the float outputs byte-identical across
/// serial and concurrent drives.
#[allow(clippy::too_many_arguments)]
pub(crate) fn account(
    topo: &Topology,
    routing: &RoutingTable,
    latmap: &LatencyMap,
    catalog: &ConfigCatalog,
    records: &[CallRecord],
    placements: &[Option<Placement>],
    cfg: &ReplayConfig,
    t0: u64,
    horizon: usize,
) -> (ProvisionedCapacity, u64, f64, f64) {
    let mut core_delta = vec![vec![0.0f64; topo.dcs.len()]; horizon + 1];
    let mut link_delta = vec![vec![0.0f64; topo.links.len()]; horizon + 1];
    let mut acl_sum = 0.0;
    let mut acl_n = 0u64;
    for (r, p) in records.iter().zip(placements) {
        let Some(p) = p else {
            continue; // stranded before freezing: never consumed resources
        };
        let c = catalog.config(r.config);
        let freeze = r.start_minute + cfg.freeze_minutes.min(r.duration_min as u64);
        let mut add = |dc: DcId, from: u64, to: u64| {
            if to <= from {
                return;
            }
            let (a, b) = ((from - t0) as usize, (to - t0) as usize);
            core_delta[a][dc.index()] += c.compute_load();
            core_delta[b][dc.index()] -= c.compute_load();
            let nl = c.leg_network_load();
            for &(country, n) in c.participants() {
                if let Some(route) = routing.route(country, dc) {
                    let w = n as f64 * nl;
                    for &l in &route.links {
                        link_delta[a][l.index()] += w;
                        link_delta[b][l.index()] -= w;
                    }
                }
            }
        };
        add(p.initial, r.start_minute, freeze);
        add(p.final_dc, freeze, r.end_minute());
        if let Some(a) = latmap.acl(c, p.final_dc) {
            acl_sum += a;
            acl_n += 1;
        }
    }

    let mut peaks = ProvisionedCapacity::zero(topo);
    let mut violations = 0u64;
    let mut worst = 0.0f64;
    let mut cur_cores = vec![0.0f64; topo.dcs.len()];
    let mut cur_links = vec![0.0f64; topo.links.len()];
    for m in 0..horizon {
        for (c, d) in cur_cores.iter_mut().zip(&core_delta[m]) {
            *c += d;
        }
        for (c, d) in cur_links.iter_mut().zip(&link_delta[m]) {
            *c += d;
        }
        for (p, &u) in peaks.cores.iter_mut().zip(&cur_cores) {
            *p = p.max(u);
        }
        for (p, &u) in peaks.gbps.iter_mut().zip(&cur_links) {
            *p = p.max(u);
        }
        if let Some(cap) = &cfg.capacity {
            for (i, &u) in cur_cores.iter().enumerate() {
                if u > cap.cores[i] + 1e-9 {
                    violations += 1;
                    worst = worst.max((u - cap.cores[i]) / cap.cores[i].max(1e-9));
                }
            }
            for (i, &u) in cur_links.iter().enumerate() {
                if u > cap.gbps[i] + 1e-9 {
                    violations += 1;
                    worst = worst.max((u - cap.gbps[i]) / cap.gbps[i].max(1e-9));
                }
            }
        }
    }
    let mean_acl = if acl_n > 0 {
        acl_sum / acl_n as f64
    } else {
        0.0
    };
    (peaks, violations, worst, mean_acl)
}

// Pack-pass op kinds, ordered so same-minute ops apply as
// kill < place < grow < freeze < remove.
const PK_KILL: u8 = 0;
const PK_PLACE: u8 = 1;
const PK_GROW: u8 = 2;
const PK_FREEZE: u8 = 3;
const PK_REMOVE: u8 = 4;

/// The shared intra-DC packing pass: walk every accounted call's lifecycle
/// (place at start, grow per late joiner, freeze + DC move, remove at end,
/// plus scheduled server deaths) against a fresh [`FleetPacker`], in a
/// total deterministic order.
///
/// Like `account`, this runs *after* the drive, over the final placements,
/// on one thread — the identical code path for the serial oracle and every
/// concurrent drive, which is what makes [`PackReplayStats`] bitwise
/// comparable across drivers. Calls without a placement (stranded before
/// freezing) are skipped, matching the accounting semantics.
pub(crate) fn pack_pass(
    records: &[CallRecord],
    placements: &[Option<Placement>],
    cfg: &ReplayConfig,
    setup: &PackSetup,
) -> PackReplayStats {
    let packer = FleetPacker::new(setup.spec.clone(), setup.packer);
    // (minute, kind, record index, seq) — seq orders multiple joins of one
    // record inside one minute
    let mut ops: Vec<(u64, u8, usize, u32)> = Vec::with_capacity(records.len() * 4);
    for (i, (r, p)) in records.iter().zip(placements).enumerate() {
        if p.is_none() {
            continue;
        }
        let freeze = r.start_minute + cfg.freeze_minutes.min(r.duration_min as u64);
        ops.push((r.start_minute, PK_PLACE, i, 0));
        for (seq, &off) in r.join_offsets_s.iter().enumerate().skip(1) {
            let minute = (r.start_minute + (off / 60) as u64).min(r.end_minute());
            ops.push((minute, PK_GROW, i, seq as u32));
        }
        ops.push((freeze, PK_FREEZE, i, 0));
        ops.push((r.end_minute(), PK_REMOVE, i, 0));
    }
    for (k, &(minute, _)) in setup.server_deaths.iter().enumerate() {
        ops.push((minute, PK_KILL, usize::MAX, k as u32));
    }
    ops.sort_unstable_by_key(|&(t, kind, i, seq)| (t, kind, i, seq));

    // per-record pack state: current DC, charged participants, and the
    // per-minute growth history feeding the predictor
    let mut cur_dc: Vec<DcId> = placements
        .iter()
        .map(|p| p.map_or(DcId(0), |p| p.initial))
        .collect();
    let mut participants = vec![1u32; records.len()];
    let mut hist: Vec<Vec<bool>> = vec![Vec::new(); records.len()];
    let reserve = |config, participants: u32, hist: &[bool]| match &setup.growth {
        Some(g) => g.reserve_mcpu_for(&setup.cost, config, participants, hist),
        None => setup.cost.cost_mcpu(participants),
    };
    for &(minute, kind, i, seq) in &ops {
        if kind == PK_KILL {
            packer.kill_server(setup.server_deaths[seq as usize].1);
            continue;
        }
        let r = &records[i];
        let id = r.id;
        match kind {
            PK_PLACE => {
                packer.place(
                    cur_dc[i],
                    id,
                    1,
                    setup.cost.cost_mcpu(1),
                    reserve(r.config, 1, &[]),
                );
            }
            PK_GROW => {
                let rel = (minute - r.start_minute) as usize;
                if hist[i].len() <= rel {
                    hist[i].resize(rel + 1, false);
                }
                hist[i][rel] = true;
                participants[i] += 1;
                let cost = setup.cost.cost_mcpu(participants[i]);
                packer.grow(
                    cur_dc[i],
                    id,
                    participants[i],
                    cost,
                    reserve(r.config, participants[i], &hist[i]),
                );
            }
            PK_FREEZE => {
                packer.freeze(cur_dc[i], id);
                let p = placements[i].unwrap();
                if p.final_dc != p.initial {
                    packer.move_dc(p.initial, p.final_dc, id);
                }
                cur_dc[i] = p.final_dc;
            }
            _ => {
                packer.remove(cur_dc[i], id);
            }
        }
    }
    let violations = packer.capacity_violations();
    let _ = packer.utilization(); // publish the gauge
    PackReplayStats {
        stats: packer.stats(),
        per_server_peak_mcpu: packer.per_server_peak_mcpu(),
        per_server_placed: packer.per_server_placed(),
        violations,
    }
}

/// Drive every event in trace order on the calling thread (the oracle).
/// `swaps` must be sorted by `at_minute`; each is installed just before the
/// first event at or after its minute.
fn drive_serial(
    selector: &RealtimeSelector,
    records: &[CallRecord],
    events: &[(u64, u8, usize)],
    swaps: &[PlanSwap],
) -> Vec<Option<Placement>> {
    let mut placements: Vec<Option<Placement>> = vec![None; records.len()];
    let mut swap_at = 0usize;
    for &(t, kind, i) in events {
        while swap_at < swaps.len() && swaps[swap_at].at_minute <= t {
            selector.install_plan(&swaps[swap_at].artifact);
            swap_at += 1;
        }
        let r = &records[i];
        match kind {
            EV_START => {
                selector.call_start(r.id, r.first_joiner);
            }
            EV_FREEZE => {
                // a stranded call never started tracking — skip accounting
                let Some(initial) = selector.current_dc(r.id) else {
                    continue;
                };
                let decision = selector.config_frozen(r.id, r.config, r.start_minute);
                let Some(final_dc) = decision.final_dc() else {
                    continue;
                };
                placements[i] = Some(Placement { initial, final_dc });
            }
            _ => selector.call_end(r.id),
        }
    }
    // swaps scheduled past the last event still install (final plan state
    // must match the concurrent drive)
    for s in &swaps[swap_at..] {
        selector.install_plan(&s.artifact);
    }
    placements
}

/// Worker owning a record's whole lifecycle: the quota pool its freeze will
/// debit under the current plan, or (for pool-less lifecycles, whose freeze
/// resolves `Unplanned` without touching quota) the call id. Either way the
/// key is fixed for the whole record, so one worker drives its start →
/// freeze → end in trace order.
pub(crate) fn lifecycle_worker(
    selector: &RealtimeSelector,
    r: &CallRecord,
    threads: usize,
) -> usize {
    match selector.quota_pool_token(r.config, r.start_minute) {
        Some(token) => token as usize % threads,
        None => r.id as usize % threads,
    }
}

/// Drive the event timeline across `threads` workers with no phase or
/// window barriers: record lifecycles are partitioned by
/// [`lifecycle_worker`] and every worker walks its own event subsequence in
/// trace order. The only joins are at plan-swap minutes (the pool table is
/// rebuilt there, so lifecycles re-partition against the new epoch). See
/// the module docs for why this reproduces the serial drive exactly.
fn drive_concurrent(
    selector: &RealtimeSelector,
    records: &[CallRecord],
    events: &[(u64, u8, usize)],
    threads: usize,
    swaps: &[PlanSwap],
) -> Vec<Option<Placement>> {
    let threads = threads.max(1);
    let mut placements: Vec<Option<Placement>> = vec![None; records.len()];
    let mut swap_at = 0usize;
    let mut at = 0usize;
    while at < events.len() {
        // install swaps due before the next event — matching where the
        // serial drive installs them
        while swap_at < swaps.len() && swaps[swap_at].at_minute <= events[at].0 {
            selector.install_plan(&swaps[swap_at].artifact);
            swap_at += 1;
        }
        // segment = all events before the next pending swap minute
        let mut end = at;
        while end < events.len()
            && (swap_at >= swaps.len() || events[end].0 < swaps[swap_at].at_minute)
        {
            end += 1;
        }

        let mut lists: Vec<Vec<(u8, usize)>> = vec![Vec::new(); threads];
        for &(_, kind, i) in &events[at..end] {
            lists[lifecycle_worker(selector, &records[i], threads)].push((kind, i));
        }
        at = end;

        let results: Vec<Vec<(usize, Placement)>> = std::thread::scope(|s| {
            let handles: Vec<_> = lists
                .iter()
                .filter(|work| !work.is_empty())
                .map(|work| {
                    let mut shard = selector.shard();
                    s.spawn(move || {
                        let mut out = Vec::new();
                        for &(kind, i) in work {
                            let r = &records[i];
                            match kind {
                                EV_START => {
                                    shard.call_start(r.id, r.first_joiner);
                                }
                                EV_FREEZE => {
                                    // a stranded call never started tracking
                                    let Some(initial) = shard.current_dc(r.id) else {
                                        continue;
                                    };
                                    let decision =
                                        shard.config_frozen(r.id, r.config, r.start_minute);
                                    if let Some(final_dc) = decision.final_dc() {
                                        out.push((i, Placement { initial, final_dc }));
                                    }
                                }
                                _ => shard.call_end(r.id),
                            }
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_default())
                .collect()
        });
        for (i, p) in results.into_iter().flatten() {
            placements[i] = Some(p);
        }
    }
    for s in &swaps[swap_at..] {
        selector.install_plan(&s.artifact);
    }
    placements
}

#[allow(clippy::too_many_arguments)]
fn replay_impl(
    topo: &Topology,
    routing: &RoutingTable,
    latmap: &LatencyMap,
    catalog: &ConfigCatalog,
    db: &CallRecordsDb,
    selector: &RealtimeSelector,
    cfg: &ReplayConfig,
    threads: Option<usize>,
) -> ReplayReport {
    let m = replay_metrics();
    m.runs.inc();
    let _t = m.wall_ns.start_timer();
    let records = db.records();
    if records.is_empty() {
        return ReplayReport {
            mean_acl_ms: 0.0,
            peaks: ProvisionedCapacity::zero(topo),
            selector: selector.stats(),
            per_dc_tallies: selector.per_dc_tallies(),
            capacity_violations: 0,
            worst_overshoot: 0.0,
            calls: 0,
            pack: cfg.pack.as_ref().map(|s| pack_pass(&[], &[], cfg, s)),
            timing: ReplayTiming::default(),
        };
    }
    let t0 = records.iter().map(|r| r.start_minute).min().unwrap();
    let t1 = records.iter().map(|r| r.end_minute()).max().unwrap();
    let horizon = (t1 - t0 + 1) as usize;

    let events = build_events(records, cfg.freeze_minutes);
    let mut swaps = cfg.swaps.clone();
    swaps.sort_by_key(|s| s.at_minute);
    let drive_started = Instant::now();
    let placements = match threads {
        None => drive_serial(selector, records, &events, &swaps),
        Some(n) => drive_concurrent(selector, records, &events, n, &swaps),
    };
    let drive = drive_started.elapsed();
    m.drive_ns.record_duration(drive);

    let account_started = Instant::now();
    let (peaks, violations, worst, mean_acl) = account(
        topo,
        routing,
        latmap,
        catalog,
        records,
        &placements,
        cfg,
        t0,
        horizon,
    );
    let pack = cfg
        .pack
        .as_ref()
        .map(|s| pack_pass(records, &placements, cfg, s));
    let timing = ReplayTiming {
        drive,
        account: account_started.elapsed(),
    };

    m.calls.add(records.len() as u64);
    m.violations.add(violations);
    ReplayReport {
        mean_acl_ms: mean_acl,
        peaks,
        selector: selector.stats(),
        per_dc_tallies: selector.per_dc_tallies(),
        capacity_violations: violations,
        worst_overshoot: worst,
        calls: records.len() as u64,
        pack,
        timing,
    }
}

/// Replay `db` through `selector`, serially, in trace order — the
/// correctness oracle for [`replay_concurrent`].
///
/// Usage accounting is per minute: a call contributes its compute load to its
/// current DC and its leg traffic to the routed links from call start to call
/// end; the first `freeze_minutes` are accounted at the initial DC, the rest
/// at the post-freeze DC.
pub fn replay(
    topo: &Topology,
    routing: &RoutingTable,
    latmap: &LatencyMap,
    catalog: &ConfigCatalog,
    db: &CallRecordsDb,
    selector: &RealtimeSelector,
    cfg: &ReplayConfig,
) -> ReplayReport {
    replay_impl(topo, routing, latmap, catalog, db, selector, cfg, None)
}

/// Replay `db` through `selector` across `threads` worker threads. Produces
/// the same [`ReplayStats`] as [`replay`] on the same trace and a fresh
/// selector — byte-identical, floats included (see the module docs for the
/// argument); only wall-clock differs.
#[allow(clippy::too_many_arguments)]
pub fn replay_concurrent(
    topo: &Topology,
    routing: &RoutingTable,
    latmap: &LatencyMap,
    catalog: &ConfigCatalog,
    db: &CallRecordsDb,
    selector: &RealtimeSelector,
    cfg: &ReplayConfig,
    threads: usize,
) -> ReplayReport {
    replay_impl(
        topo,
        routing,
        latmap,
        catalog,
        db,
        selector,
        cfg,
        Some(threads),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_core::{AllocationShares, PlannedQuotas};
    use sb_net::FailureScenario;
    use sb_workload::{CallConfig, CallRecord, ConfigCatalog, DemandMatrix, MediaType};

    fn world() -> (
        Topology,
        RoutingTable,
        LatencyMap,
        ConfigCatalog,
        sb_workload::ConfigId,
    ) {
        let topo = sb_net::presets::toy_three_dc();
        let rt = RoutingTable::compute(&topo, FailureScenario::None);
        let lm = LatencyMap::from_routing(&topo, &rt);
        let mut cat = ConfigCatalog::new();
        let jp = topo.country_by_name("JP");
        let id = cat.intern(CallConfig::new(vec![(jp, 2)], MediaType::Audio));
        (topo, rt, lm, cat, id)
    }

    fn record(
        id: u64,
        cfg: sb_workload::ConfigId,
        start: u64,
        dur: u16,
        c: sb_net::CountryId,
    ) -> CallRecord {
        CallRecord {
            id,
            config: cfg,
            start_minute: start,
            duration_min: dur,
            first_joiner: c,
            join_offsets_s: vec![0, 60],
        }
    }

    #[test]
    fn no_migration_when_plan_matches_closest() {
        let (topo, rt, lm, cat, id) = world();
        let jp = topo.country_by_name("JP");
        let tokyo = topo.dc_by_name("Tokyo");
        let mut db = CallRecordsDb::new(cat.clone());
        for i in 0..10 {
            db.push(record(i, id, i, 30, jp));
        }
        let mut shares = AllocationShares::new(2);
        shares.set(id, 0, vec![(tokyo, 1.0)]);
        shares.set(id, 1, vec![(tokyo, 1.0)]);
        let mut demand = DemandMatrix::zero(1, 2, 30, 0);
        demand.set(id, 0, 30.0);
        demand.set(id, 1, 30.0);
        let quotas = PlannedQuotas::from_plan(&shares, &demand);
        let sel = RealtimeSelector::from_artifact(&lm, &PlanArtifact::seed(quotas));
        let report = replay(&topo, &rt, &lm, &cat, &db, &sel, &ReplayConfig::default());
        assert_eq!(report.calls, 10);
        assert_eq!(report.selector.migrations, 0);
        assert_eq!(report.selector.unplanned, 0);
        assert_eq!(report.per_dc_tallies[tokyo.index()], 10);
        // all compute lands at Tokyo
        assert!(report.peaks.cores[tokyo.index()] > 0.0);
        let others: f64 = report
            .peaks
            .cores
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != tokyo.index())
            .map(|(_, v)| v)
            .sum();
        assert_eq!(others, 0.0);
        let expected_acl = lm.acl(cat.config(id), tokyo).unwrap();
        assert!((report.mean_acl_ms - expected_acl).abs() < 1e-9);
    }

    #[test]
    fn plan_on_remote_dc_forces_migrations() {
        let (topo, rt, lm, cat, id) = world();
        let jp = topo.country_by_name("JP");
        let pune = topo.dc_by_name("Pune");
        let mut db = CallRecordsDb::new(cat.clone());
        for i in 0..10 {
            db.push(record(i, id, 0, 30, jp));
        }
        let mut shares = AllocationShares::new(1);
        shares.set(id, 0, vec![(pune, 1.0)]);
        let mut demand = DemandMatrix::zero(1, 1, 30, 0);
        demand.set(id, 0, 10.0);
        let quotas = PlannedQuotas::from_plan(&shares, &demand);
        let sel = RealtimeSelector::from_artifact(&lm, &PlanArtifact::seed(quotas));
        let report = replay(&topo, &rt, &lm, &cat, &db, &sel, &ReplayConfig::default());
        assert_eq!(report.selector.migrations, 10);
        assert!((report.selector.migration_rate() - 1.0).abs() < 1e-12);
        // compute appears at both the initial (pre-freeze) and final DCs
        let tokyo = topo.dc_by_name("Tokyo");
        assert!(report.peaks.cores[tokyo.index()] > 0.0);
        assert!(report.peaks.cores[pune.index()] > 0.0);
    }

    #[test]
    fn peak_accounting_counts_concurrency() {
        let (topo, rt, lm, cat, id) = world();
        let jp = topo.country_by_name("JP");
        let tokyo = topo.dc_by_name("Tokyo");
        let mut db = CallRecordsDb::new(cat.clone());
        // 5 concurrent calls, then 5 disjoint calls
        for i in 0..5 {
            db.push(record(i, id, 0, 30, jp));
        }
        for i in 0..5 {
            db.push(record(100 + i, id, 100 + 40 * i, 30, jp));
        }
        let mut shares = AllocationShares::new(10);
        let mut demand = DemandMatrix::zero(1, 10, 30, 0);
        for s in 0..10 {
            shares.set(id, s, vec![(tokyo, 1.0)]);
            demand.set(id, s, 10.0);
        }
        let quotas = PlannedQuotas::from_plan(&shares, &demand);
        let sel = RealtimeSelector::from_artifact(&lm, &PlanArtifact::seed(quotas));
        let report = replay(&topo, &rt, &lm, &cat, &db, &sel, &ReplayConfig::default());
        let cl = cat.config(id).compute_load();
        assert!((report.peaks.cores[tokyo.index()] - 5.0 * cl).abs() < 1e-9);
    }

    #[test]
    fn violations_detected_against_tight_capacity() {
        let (topo, rt, lm, cat, id) = world();
        let jp = topo.country_by_name("JP");
        let tokyo = topo.dc_by_name("Tokyo");
        let mut db = CallRecordsDb::new(cat.clone());
        for i in 0..4 {
            db.push(record(i, id, 0, 20, jp));
        }
        let mut shares = AllocationShares::new(1);
        shares.set(id, 0, vec![(tokyo, 1.0)]);
        let mut demand = DemandMatrix::zero(1, 1, 30, 0);
        demand.set(id, 0, 4.0);
        let quotas = PlannedQuotas::from_plan(&shares, &demand);
        let sel = RealtimeSelector::from_artifact(&lm, &PlanArtifact::seed(quotas));
        let mut cap = ProvisionedCapacity::zero(&topo);
        cap.cores = vec![0.01; topo.dcs.len()];
        cap.gbps = vec![1e9; topo.links.len()];
        let cfg = ReplayConfig {
            capacity: Some(cap),
            ..Default::default()
        };
        let report = replay(&topo, &rt, &lm, &cat, &db, &sel, &cfg);
        assert!(report.capacity_violations > 0);
        assert!(report.worst_overshoot > 0.0);
    }

    #[test]
    fn empty_trace() {
        let (topo, rt, lm, cat, id) = world();
        let db = CallRecordsDb::new(cat.clone());
        let quotas =
            PlannedQuotas::from_plan(&AllocationShares::new(1), &DemandMatrix::zero(1, 1, 30, 0));
        let _ = id;
        let sel = RealtimeSelector::from_artifact(&lm, &PlanArtifact::seed(quotas));
        let report = replay(&topo, &rt, &lm, &cat, &db, &sel, &ReplayConfig::default());
        assert_eq!(report.calls, 0);
        assert_eq!(report.mean_acl_ms, 0.0);
    }

    /// The in-module smoke version of the differential property; the full
    /// seeded-workload differential lives in `tests/replay_differential.rs`.
    #[test]
    fn concurrent_drive_matches_serial_on_contended_pools() {
        let (topo, rt, lm, cat, id) = world();
        let jp = topo.country_by_name("JP");
        let tokyo = topo.dc_by_name("Tokyo");
        let pune = topo.dc_by_name("Pune");
        let mut db = CallRecordsDb::new(cat.clone());
        // quota forces the pool to run dry mid-trace → decisions depend on
        // freeze order within the pool, the hard case for the phased drive
        for i in 0..40 {
            db.push(record(i, id, i % 7, 30, jp));
        }
        let mut shares = AllocationShares::new(2);
        let mut demand = DemandMatrix::zero(1, 2, 30, 0);
        shares.set(id, 0, vec![(tokyo, 0.4), (pune, 0.6)]);
        demand.set(id, 0, 25.0);
        let quotas = PlannedQuotas::from_plan(&shares, &demand);
        let serial = {
            let sel = RealtimeSelector::from_artifact(&lm, &PlanArtifact::seed(quotas.clone()));
            replay(&topo, &rt, &lm, &cat, &db, &sel, &ReplayConfig::default())
        };
        for threads in [1, 4] {
            let sel = RealtimeSelector::from_artifact(&lm, &PlanArtifact::seed(quotas.clone()));
            let conc = replay_concurrent(
                &topo,
                &rt,
                &lm,
                &cat,
                &db,
                &sel,
                &ReplayConfig::default(),
                threads,
            );
            assert_eq!(serial.stats(), conc.stats(), "threads={threads}");
        }
        // sanity: the workload actually exercises pool contention
        assert!(serial.selector.migrations > 0 || serial.selector.overflow > 0);
    }
}
