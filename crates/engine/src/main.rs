//! `sb-engine` — the Switchboard selector as a long-running service.
//!
//! Boots an [`sb_engine::Engine`] over a preset topology and a synthetic
//! day-one plan, then serves a line-oriented text protocol on stdin/stdout
//! (or a TCP listener with `--listen`). One command per line; every command
//! gets exactly one reply line (`stats` replies with a block ending in a
//! blank line). Commands:
//!
//! ```text
//! admit <id> <country>          place a new call (country name or index)
//! join <id> <country>           record a participant join
//! media <id> audio|video|screen record a media change
//! freeze <id> <config> <minute> freeze the config, tally against the plan
//! end <id>                      end the call
//! install <path>                hot-swap a plan artifact (.tsv or .ndjson)
//! drain                         stop admitting; in-flight calls finish
//! stats                         counter + latency snapshot
//! ping                          liveness probe
//! quit                          exit
//! ```
//!
//! Usage: `sb-engine [--topology apac|toy] [--configs N] [--slot-minutes M]
//! [--store-shards N] [--store-rtt-us U] [--listen ADDR:PORT]`

use std::io::{BufRead, BufReader, Write};
use std::time::Duration;

use sb_core::{
    AllocationShares, FreezeDecision, LatencyMap, PlanArtifact, PlannedQuotas, SelectorOutcome,
    SelectorRung,
};
use sb_engine::{Admission, Command, Engine, EngineConfig, MAX_LINE_BYTES};
use sb_net::{FailureScenario, RoutingTable, Topology};
use sb_workload::{ConfigId, Generator, UniverseParams, WorkloadParams};

struct Opts {
    topology: String,
    configs: usize,
    slot_minutes: u32,
    store_shards: usize,
    store_rtt: Duration,
    listen: Option<String>,
}

/// Parse a numeric flag value or exit(2) with a message — never panics.
fn flag_num<T: std::str::FromStr>(name: &str, value: &str) -> T {
    value.parse().unwrap_or_else(|_| {
        eprintln!("{name}: {value:?} is not a valid value");
        std::process::exit(2);
    })
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        topology: "apac".to_string(),
        configs: 300,
        slot_minutes: 120,
        store_shards: 64,
        store_rtt: Duration::ZERO,
        listen: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut take = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} requires a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--topology" => opts.topology = take("--topology"),
            "--configs" => opts.configs = flag_num("--configs", &take("--configs")),
            "--slot-minutes" => {
                opts.slot_minutes = flag_num("--slot-minutes", &take("--slot-minutes"))
            }
            "--store-shards" => {
                opts.store_shards = flag_num("--store-shards", &take("--store-shards"))
            }
            "--store-rtt-us" => {
                opts.store_rtt =
                    Duration::from_micros(flag_num("--store-rtt-us", &take("--store-rtt-us")))
            }
            "--listen" => opts.listen = Some(take("--listen")),
            "--help" | "-h" => {
                eprintln!(
                    "usage: sb-engine [--topology apac|toy] [--configs N] \
                     [--slot-minutes M] [--store-shards N] [--store-rtt-us U] \
                     [--listen ADDR:PORT]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    opts
}

/// A synthetic day-one plan spreading every generated config across all DCs
/// — the same construction the replay benches use, so the service boots
/// without an LP solve. Plans produced by the full pipeline hot-swap in via
/// `install`.
fn seed_plan(topo: &Topology, generator: &Generator) -> PlanArtifact {
    let expected = generator.expected_demand(2, 1);
    let selected = expected.top_configs_covering(0.97);
    let planned = expected.filtered(&selected).scaled(1.3);
    let slots = planned.num_slots();
    let mut shares = AllocationShares::new(slots);
    let n = topo.dcs.len() as f64;
    let spread: Vec<_> = topo.dc_ids().map(|d| (d, 1.0 / n)).collect();
    for &cfg in &selected {
        for s in 0..slots {
            shares.set(cfg, s, spread.clone());
        }
    }
    PlanArtifact::seed(PlannedQuotas::from_plan(&shares, &planned))
}

fn rung_name(rung: SelectorRung) -> &'static str {
    match rung {
        SelectorRung::Plan => "plan",
        SelectorRung::Locality => "locality",
        SelectorRung::AnyReachable => "any-reachable",
    }
}

struct Service {
    topo: Topology,
    engine: Engine,
}

impl Service {
    fn country(&self, token: &str) -> Result<sb_net::CountryId, String> {
        if let Ok(idx) = token.parse::<u16>() {
            return Ok(sb_net::CountryId(idx));
        }
        self.topo
            .countries
            .iter()
            .find(|c| c.name == token)
            .map(|c| c.id)
            .ok_or_else(|| format!("unknown country {token}"))
    }

    /// Handle one parsed command; returns the reply, or `None` to quit.
    fn handle(&self, worker: &mut sb_engine::EngineWorker<'_>, cmd: Command) -> Option<String> {
        let reply = match cmd {
            Command::Empty => String::new(),
            Command::Ping => "ok pong".to_string(),
            Command::Quit => return None,
            Command::Admit { id, country } => match self.country(&country) {
                Ok(c) => match worker.admit(id, c) {
                    Admission::Draining => "err draining".to_string(),
                    Admission::Shed { reason } => format!("err shed {reason}"),
                    Admission::Granted(SelectorOutcome::Stranded) => {
                        format!("ok admit {id} stranded")
                    }
                    Admission::Granted(SelectorOutcome::Placed { dc, rung }) => {
                        format!(
                            "ok admit {id} dc={} rung={}",
                            self.topo.dcs[dc.index()].name,
                            rung_name(rung)
                        )
                    }
                },
                Err(e) => format!("err {e}"),
            },
            Command::Join { id, country } => match self.country(&country) {
                Ok(c) => {
                    worker.join(id, c);
                    format!("ok join {id}")
                }
                Err(e) => format!("err {e}"),
            },
            Command::Media { id, media } => {
                worker.set_media(id, media);
                format!("ok media {id}")
            }
            Command::Freeze { id, config, minute } => {
                let dc_name = |d: sb_net::DcId| self.topo.dcs[d.index()].name.clone();
                match worker.freeze(id, ConfigId(config), minute) {
                    FreezeDecision::Stay(d) => {
                        format!("ok freeze {id} stay dc={}", dc_name(d))
                    }
                    FreezeDecision::Migrate { from, to } => format!(
                        "ok freeze {id} migrate from={} to={}",
                        dc_name(from),
                        dc_name(to)
                    ),
                    FreezeDecision::Unplanned(d) => {
                        format!("ok freeze {id} unplanned dc={}", dc_name(d))
                    }
                    FreezeDecision::Overflow(d) => {
                        format!("ok freeze {id} overflow dc={}", dc_name(d))
                    }
                    FreezeDecision::AlreadyFrozen(d) => {
                        format!("ok freeze {id} already-frozen dc={}", dc_name(d))
                    }
                    FreezeDecision::UnknownCall => {
                        format!("err freeze {id} unknown-call")
                    }
                }
            }
            Command::End { id } => {
                worker.end(id);
                format!("ok end {id}")
            }
            Command::Install { path } => match std::fs::read_to_string(&path) {
                Ok(text) => {
                    let parsed = if path.ends_with(".ndjson") {
                        PlanArtifact::from_ndjson(&text)
                    } else {
                        PlanArtifact::from_tsv(&text)
                    };
                    match parsed {
                        Ok(artifact) => {
                            let swap = self.engine.install_plan(&artifact);
                            worker.refresh();
                            format!(
                                "ok install epoch={} pools={} carried={} quota={}",
                                swap.to_epoch, swap.pools, swap.carried_consumed, swap.quota_after
                            )
                        }
                        Err(e) => format!("err plan parse: {e:?}"),
                    }
                }
                Err(e) => format!("err read {path}: {e}"),
            },
            Command::Drain => {
                self.engine.begin_drain();
                format!("ok drain active={}", self.engine.stats().active_calls)
            }
            Command::Stats => {
                worker.flush();
                let st = self.engine.stats();
                let ops = self.engine.op_latency();
                let mut out = String::new();
                out.push_str("ok stats\n");
                out.push_str(&format!(
                    "  admitted={} rejected_draining={} ended={} active={}\n",
                    st.admitted, st.rejected_draining, st.ended, st.active_calls
                ));
                out.push_str(&format!(
                    "  freezes={} migrations={} unplanned={} overflow={}\n",
                    st.selector.freezes,
                    st.selector.migrations,
                    st.selector.unplanned,
                    st.selector.overflow
                ));
                out.push_str(&format!(
                    "  shed_queue={} shed_latency={} shed_store={} store_retries={} \
                     store_write_failures={} journal_failures={}\n",
                    st.shed_queue_depth,
                    st.shed_latency,
                    st.shed_store,
                    st.store_retries,
                    st.store_write_failures,
                    st.journal_failures
                ));
                out.push_str(&format!(
                    "  plan_epoch={} plans_installed={} draining={} store_writes={}\n",
                    self.engine.plan_epoch(),
                    st.plans_installed,
                    self.engine.draining(),
                    st.store_writes
                ));
                out.push_str(&format!(
                    "  op_latency count={} p50={:?} p99={:?} p999={:?} max={:?}\n",
                    ops.count(),
                    ops.quantile(0.5),
                    ops.quantile(0.99),
                    ops.quantile(0.999),
                    ops.max()
                ));
                out
            }
        };
        Some(reply)
    }

    fn serve<R: BufRead, W: Write>(&self, mut input: R, mut output: W) -> std::io::Result<()> {
        let mut worker = self.engine.worker();
        let mut buf = Vec::new();
        loop {
            buf.clear();
            if input.read_until(b'\n', &mut buf)? == 0 {
                break;
            }
            while buf.last().is_some_and(|&b| b == b'\n' || b == b'\r') {
                buf.pop();
            }
            // A malformed, truncated, oversized, or non-UTF-8 line gets a
            // typed reply on the wire; the connection stays open.
            let reply = match Command::parse_bytes(&buf, MAX_LINE_BYTES) {
                Ok(cmd) => match self.handle(&mut worker, cmd) {
                    Some(reply) => reply,
                    None => {
                        writeln!(output, "ok bye")?;
                        break;
                    }
                },
                Err(e) => format!("err protocol: {e}"),
            };
            writeln!(output, "{reply}")?;
            output.flush()?;
        }
        Ok(())
    }
}

fn main() {
    let opts = parse_opts();
    let topo = match opts.topology.as_str() {
        "apac" => sb_net::presets::apac(),
        "toy" => sb_net::presets::toy_three_dc(),
        other => {
            eprintln!("unknown topology {other} (expected apac|toy)");
            std::process::exit(2);
        }
    };
    let params = WorkloadParams {
        universe: UniverseParams {
            num_configs: opts.configs,
            ..Default::default()
        },
        slot_minutes: opts.slot_minutes,
        ..Default::default()
    };
    let generator = Generator::new(&topo, params);
    let artifact = seed_plan(&topo, &generator);
    let routing = RoutingTable::compute(&topo, FailureScenario::None);
    let latmap = LatencyMap::from_routing(&topo, &routing);
    let engine = Engine::new(
        &latmap,
        &artifact,
        &EngineConfig {
            store_shards: opts.store_shards,
            store_rtt: opts.store_rtt,
            ..EngineConfig::default()
        },
    );
    eprintln!(
        "sb-engine ready: topology={} dcs={} plan_pools={} quota={}",
        opts.topology,
        topo.dcs.len(),
        artifact.quotas.iter().count(),
        artifact.quotas.total_quota(),
    );
    let service = Service { topo, engine };

    match &opts.listen {
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            if let Err(e) = service.serve(stdin.lock(), stdout.lock()) {
                eprintln!("sb-engine: stdin/stdout service loop errored: {e}");
                std::process::exit(1);
            }
        }
        Some(addr) => {
            let listener = match std::net::TcpListener::bind(addr) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("sb-engine: cannot bind {addr}: {e}");
                    std::process::exit(1);
                }
            };
            eprintln!("sb-engine listening on {addr}");
            for conn in listener.incoming() {
                let conn = match conn {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("sb-engine: accept failed: {e}");
                        continue;
                    }
                };
                let peer = conn.peer_addr().map(|a| a.to_string()).unwrap_or_default();
                eprintln!("sb-engine: connection from {peer}");
                let reader = match conn.try_clone() {
                    Ok(c) => BufReader::new(c),
                    Err(e) => {
                        eprintln!("sb-engine: cannot clone socket for {peer}: {e}");
                        continue;
                    }
                };
                if let Err(e) = service.serve(reader, conn) {
                    eprintln!("sb-engine: connection {peer} errored: {e}");
                }
                if service.engine.drained() {
                    eprintln!("sb-engine: drained — shutting down");
                    break;
                }
            }
        }
    }
}
