//! Crash-recovery drills: drive a trace through a **journaled**
//! [`sb_engine::Engine`], kill it at scheduled operation indices, recover
//! from the write-ahead journal, and finish the trace — asserting (in the
//! drill benches and tests) that the final [`ReplayStats`] are
//! bitwise-identical to the serial no-crash oracle ([`crate::replay::replay`]).
//!
//! The harness is deliberately serial: the point is durability, not
//! parallelism. It maintains the *expected* WAL record stream alongside the
//! live engine (reconstructing each journaled decision from the engine's
//! returned outcome), so after every crash it can check the durable journal
//! prefix record-for-record against what was supposed to be written. A
//! journal that silently lost a mid-stream record (an injected
//! [`JournalFault::Drop`], a dying volume) surfaces as a typed
//! [`CrashDrillError::LogMismatch`] — never as silently divergent state.
//!
//! Recovery realignment works on durable-record counts: every processed
//! event remembers how many journal records existed after it. When a crash
//! discards the group-commit tail, the harness pops exactly the events whose
//! records did not survive and re-drives them through the recovered engine.
//! Because the recovered selector state is bitwise-identical to the state
//! the dead engine had at the durable prefix, the redriven operations make
//! the same decisions the lost ones did — which is what makes the final
//! stats match the no-crash oracle.
//!
//! Fault vocabulary ([`ServiceFault`]):
//!
//! * [`ServiceFault::CrashAtOp`] — kill the engine just before trace
//!   operation N; recover from the journal and resume.
//! * [`ServiceFault::JournalStall`] — appends sleep (slow disk) for a window
//!   of operations; durability is preserved, only latency suffers.
//! * [`ServiceFault::JournalDrop`] — appends fail (dead volume) for a
//!   window; the engine keeps serving (availability over durability) and a
//!   *later* crash surfaces the gap typed: recovery refuses with
//!   [`sb_engine::RecoveryError::Inconsistent`] when a surviving record
//!   references dropped state, or the harness's prefix check reports
//!   [`CrashDrillError::LogMismatch`]. If no crash follows, the run
//!   completes correctly — state lives in the selector, the journal is
//!   only consulted at recovery.
//! * [`ServiceFault::WorkerDeath`] — a concurrent-driver fault (an engine
//!   worker dies mid-segment and the coordinator takes over its remaining
//!   ops); honored by [`crate::chaos::ReplayDriver`], a no-op in this
//!   serial harness.
//! * [`ServiceFault::ServerDeath`] — one media server dies (requires
//!   packing, [`sb_engine::EngineConfig::pack`]): the engine drains its
//!   calls onto surviving in-DC servers first and only spills down the
//!   PR-2 degradation ladder. The death's WAL records (death + per-call
//!   re-pack decisions) are synced eagerly, so a later crash can never
//!   split the sequence — realignment stays op-granular even though a
//!   death journals many records.

use std::path::Path;
use std::time::Duration;

use sb_core::{LatencyMap, PlanArtifact};
use sb_engine::wal;
use sb_engine::{
    Admission, Engine, EngineConfig, EngineStats, RecoveryError, ServerDeathReport, WalRecord,
};
use sb_net::{DcId, FailureScenario, RoutingTable, Topology};
use sb_pack::{PackStats, ServerId};
use sb_store::{Journal, JournalConfig, JournalError, JournalFault};
use sb_workload::{CallRecordsDb, ConfigCatalog};

use crate::replay::{
    account, build_events, pack_pass, Placement, ReplayConfig, ReplayStats, EV_START,
};

/// One injected service-layer fault, scheduled over the trace's canonical
/// serial operation index (0-based; swaps and skipped freezes do not count).
#[derive(Clone, Copy, Debug)]
pub enum ServiceFault {
    /// Engine worker `worker` dies after driving `after_ops` of its
    /// operations; the coordinator serially drives the rest of its segment
    /// list. Concurrent-driver ([`crate::chaos::ReplayDriver`]) fault;
    /// ignored by the serial crash drill.
    WorkerDeath {
        /// Worker index (modulo the driver's thread count).
        worker: usize,
        /// Cumulative operations this worker completes before dying.
        after_ops: u64,
    },
    /// Journal appends stall for `stall` each, for `ops` operations
    /// starting at `at_op`.
    JournalStall {
        /// First affected operation index.
        at_op: u64,
        /// Number of operations affected.
        ops: u64,
        /// Per-append stall.
        stall: Duration,
    },
    /// Journal appends are dropped (fail typed) for `ops` operations
    /// starting at `at_op`.
    JournalDrop {
        /// First affected operation index.
        at_op: u64,
        /// Number of operations affected.
        ops: u64,
    },
    /// Kill the engine just before operation `at_op`, discarding the
    /// journal's unsynced group-commit tail, then recover and resume.
    CrashAtOp {
        /// Operation index the crash lands on.
        at_op: u64,
    },
    /// Kill one media server just before operation `at_op` (see
    /// [`Engine::kill_server`]). Requires the engine config to enable
    /// packing; a silent no-op otherwise.
    ServerDeath {
        /// DC index of the dying server.
        dc: u16,
        /// Server index within the DC.
        server: u16,
        /// Operation index the death lands on.
        at_op: u64,
    },
}

/// Crash-drill configuration: the replay schedule, the journal's group
/// commit, the engine knobs, and the fault schedule.
#[derive(Clone, Debug, Default)]
pub struct CrashDrillConfig {
    /// Trace schedule (freeze minutes, capacity check, plan hot-swaps) —
    /// the same config the no-crash oracle runs with.
    pub replay: ReplayConfig,
    /// Journal group-commit knobs. A large `sync_every` widens the
    /// crash-loss window the drill must recover across.
    pub journal: JournalConfig,
    /// Engine knobs. Overload watermarks should stay disabled for
    /// oracle-equality drills: a shed admission is a call the oracle placed.
    pub engine: EngineConfig,
    /// Injected faults.
    pub faults: Vec<ServiceFault>,
}

impl CrashDrillConfig {
    /// Drill config with default replay/journal/engine knobs and `faults`.
    pub fn with_faults(faults: Vec<ServiceFault>) -> CrashDrillConfig {
        CrashDrillConfig {
            faults,
            ..CrashDrillConfig::default()
        }
    }
}

/// Why a crash drill could not complete. Every variant is typed — the drill
/// never panics on an injected fault and never silently diverges.
#[derive(Clone, Debug, PartialEq)]
pub enum CrashDrillError {
    /// Creating or booting the journaled engine failed.
    Boot(JournalError),
    /// A post-crash recovery failed (scan error, corrupt record, …).
    Recovery(RecoveryError),
    /// The durable journal disagrees with the operations the harness drove:
    /// record `index` does not match (or the journal holds records that
    /// were never driven). The signature of a dropped mid-stream append.
    LogMismatch {
        /// 0-based journal record index of the first divergence.
        index: u64,
    },
}

impl std::fmt::Display for CrashDrillError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CrashDrillError::Boot(e) => write!(f, "journaled engine boot failed: {e}"),
            CrashDrillError::Recovery(e) => write!(f, "crash recovery failed: {e}"),
            CrashDrillError::LogMismatch { index } => {
                write!(
                    f,
                    "durable journal diverges from driven history at record {index}"
                )
            }
        }
    }
}

impl std::error::Error for CrashDrillError {}

/// What a completed crash drill produced.
#[derive(Clone, Debug)]
pub struct CrashOutcome {
    /// The replay aggregate — compare with `==` against the serial
    /// no-crash oracle's [`crate::replay::ReplayReport::stats`].
    pub stats: ReplayStats,
    /// Crashes injected and recovered from.
    pub crashes: u64,
    /// Operations re-driven because their journal records died with the
    /// group-commit tail.
    pub redriven_ops: u64,
    /// Unsynced records discarded across all crashes.
    pub journal_lost_records: u64,
    /// Final engine counters (shed/retry/journal-failure visibility).
    pub engine_stats: EngineStats,
    /// Per-death drain reports, in firing order (empty without
    /// [`ServiceFault::ServerDeath`] faults).
    pub death_reports: Vec<ServerDeathReport>,
    /// The engine's live fleet-packing counters (`None` when the engine
    /// ran without packing). Unlike [`ReplayStats::pack`] — the shared
    /// post-drive pack-pass oracle — these reflect the engine's actual
    /// online decisions, server deaths included.
    pub pack_stats: Option<PackStats>,
    /// Capacity violations in the engine's final fleet state (always 0:
    /// the packer never overcommits actual cost).
    pub pack_violations: u64,
}

/// What one processed step contributed to the journal: which trace event or
/// plan swap it was, and how many records the journal was *expected* to
/// hold afterwards — the realignment key after a crash.
#[derive(Clone, Copy, Debug)]
enum Step {
    Event(usize),
    Swap(usize),
    Death(usize),
}

/// The journal fault that applies to operation `op` (later windows win).
fn fault_at(windows: &[(u64, u64, JournalFault)], op: u64) -> JournalFault {
    windows
        .iter()
        .rev()
        .find(|&&(start, end, _)| op >= start && op < end)
        .map(|&(_, _, f)| f)
        .unwrap_or(JournalFault::None)
}

/// Drive `db` through a journaled engine under `cfg.faults`, crashing and
/// recovering as scheduled, and return the final aggregate.
///
/// The journal lives at `journal_path` (truncated on entry). On success the
/// returned [`CrashOutcome::stats`] is bitwise-comparable (`==`, floats
/// included) with the serial no-crash oracle over the same trace, config,
/// and a fresh selector — the property the `crash_recovery_drill` bench
/// asserts across seeded workloads × randomized kill points.
#[allow(clippy::too_many_arguments)]
pub fn drive_with_crashes(
    topo: &Topology,
    catalog: &ConfigCatalog,
    db: &CallRecordsDb,
    artifact: &PlanArtifact,
    cfg: &CrashDrillConfig,
    journal_path: &Path,
) -> Result<CrashOutcome, CrashDrillError> {
    let routing = RoutingTable::compute(topo, FailureScenario::None);
    let latmap = LatencyMap::from_routing(topo, &routing);
    let records = db.records();
    let events = build_events(records, cfg.replay.freeze_minutes);
    let mut swaps = cfg.replay.swaps.clone();
    swaps.sort_by_key(|s| s.at_minute);

    // fault schedule over the canonical serial op index
    let mut windows: Vec<(u64, u64, JournalFault)> = Vec::new();
    let mut crash_ops: Vec<u64> = Vec::new();
    let mut deaths: Vec<(u64, ServerId)> = Vec::new();
    for f in &cfg.faults {
        match *f {
            ServiceFault::JournalStall { at_op, ops, stall } => {
                windows.push((at_op, at_op.saturating_add(ops), JournalFault::Stall(stall)));
            }
            ServiceFault::JournalDrop { at_op, ops } => {
                windows.push((at_op, at_op.saturating_add(ops), JournalFault::Drop));
            }
            ServiceFault::CrashAtOp { at_op } => crash_ops.push(at_op),
            ServiceFault::ServerDeath { dc, server, at_op } => deaths.push((
                at_op,
                ServerId {
                    dc: DcId(dc),
                    index: server,
                },
            )),
            ServiceFault::WorkerDeath { .. } => {} // concurrent-driver fault
        }
    }
    crash_ops.sort_unstable();
    crash_ops.dedup();
    deaths.sort_by_key(|&(at, _)| at);

    let _ = std::fs::remove_file(journal_path);
    let journal = Journal::create(journal_path, cfg.journal).map_err(CrashDrillError::Boot)?;
    let mut engine = Engine::with_journal(&latmap, artifact, &cfg.engine, journal)
        .map_err(CrashDrillError::Boot)?;

    // the record stream the journal is *supposed* to hold, and per-step
    // expected-record counts for post-crash realignment
    let mut expected: Vec<WalRecord> = vec![WalRecord::PlanInstall {
        ndjson: artifact.to_ndjson(),
    }];
    let mut history: Vec<(Step, u64)> = Vec::new();
    let mut placements: Vec<Option<Placement>> = vec![None; records.len()];

    let mut cursor = 0usize; // next event
    let mut swap_at = 0usize; // next plan swap
    let mut op_count = 0u64; // cumulative ops driven (redrives included)
    let mut next_crash = 0usize;
    let mut next_death = 0usize;
    let mut crashes = 0u64;
    let mut redriven_ops = 0u64;
    let mut lost_records = 0u64;
    let mut death_reports: Vec<ServerDeathReport> = Vec::new();

    loop {
        let mut crash_now = false;
        {
            let mut w = engine.worker();
            let mut last_fault = JournalFault::None;
            while cursor < events.len() || swap_at < swaps.len() {
                // plan swaps due before the next event install first (they
                // journal + sync eagerly, so they never die in a crash)
                let next_minute = events.get(cursor).map(|&(t, _, _)| t);
                if swap_at < swaps.len()
                    && next_minute.is_none_or(|t| swaps[swap_at].at_minute <= t)
                {
                    let art = &swaps[swap_at].artifact;
                    let _ = engine.install_plan(art);
                    w.refresh();
                    expected.push(WalRecord::PlanInstall {
                        ndjson: art.to_ndjson(),
                    });
                    history.push((Step::Swap(swap_at), expected.len() as u64));
                    swap_at += 1;
                    continue;
                }
                // server deaths due at this op fire before it, like crashes;
                // their records sync eagerly so a crash never splits them
                while next_death < deaths.len() && deaths[next_death].0 <= op_count {
                    let (_, server) = deaths[next_death];
                    let rep = engine.kill_server(server);
                    engine.sync_journal();
                    expected.extend(rep.records.iter().cloned());
                    history.push((Step::Death(next_death), expected.len() as u64));
                    death_reports.push(rep);
                    next_death += 1;
                }
                if next_crash < crash_ops.len() && crash_ops[next_crash] <= op_count {
                    next_crash += 1;
                    crash_now = true;
                    break;
                }
                let fault = fault_at(&windows, op_count);
                if fault != last_fault {
                    if let Some(j) = engine.journal() {
                        j.set_fault(fault);
                    }
                    last_fault = fault;
                }
                let (_, kind, i) = events[cursor];
                let r = &records[i];
                match kind {
                    EV_START => {
                        if let Admission::Granted(outcome) = w.admit(r.id, r.first_joiner) {
                            let (dc, rung) = wal::encode_outcome(outcome);
                            let server = engine.server_of(r.id).map_or(wal::NO_SERVER, |s| s.index);
                            expected.push(WalRecord::Admit {
                                call: r.id,
                                country: r.first_joiner.0,
                                dc,
                                rung,
                                server,
                            });
                        }
                    }
                    crate::replay::EV_FREEZE => {
                        // stranded before freezing: the oracle skips too
                        if let Some(initial) = w.current_dc(r.id) {
                            let decision = w.freeze(r.id, r.config, r.start_minute);
                            let (kind, from, to) = wal::encode_freeze(decision);
                            let to_server =
                                engine.server_of(r.id).map_or(wal::NO_SERVER, |s| s.index);
                            expected.push(WalRecord::Freeze {
                                call: r.id,
                                config: r.config.0,
                                start_minute: r.start_minute,
                                stale: !engine.plan_valid(),
                                kind,
                                from,
                                to,
                                to_server,
                            });
                            placements[i] = decision
                                .final_dc()
                                .map(|final_dc| Placement { initial, final_dc });
                        }
                    }
                    _ => {
                        w.end(r.id);
                        expected.push(WalRecord::End { call: r.id });
                    }
                }
                history.push((Step::Event(cursor), expected.len() as u64));
                cursor += 1;
                op_count += 1;
            }
        }
        if !crash_now {
            break;
        }

        // kill: discard the unsynced group-commit tail, drop the engine,
        // recover from the durable journal, realign, resume
        crashes += 1;
        if let Some(j) = engine.journal() {
            lost_records += j.crash();
        }
        drop(engine);
        let (recovered, report) = Engine::recover(&latmap, &cfg.engine, cfg.journal, journal_path)
            .map_err(CrashDrillError::Recovery)?;
        engine = recovered;

        // the durable prefix must match the driven history record-for-record
        if report.ops.len() > expected.len() {
            return Err(CrashDrillError::LogMismatch {
                index: expected.len() as u64,
            });
        }
        for (i, rec) in report.ops.iter().enumerate() {
            if &expected[i] != rec {
                return Err(CrashDrillError::LogMismatch { index: i as u64 });
            }
        }
        expected.truncate(report.ops.len());

        // pop every step whose journal record died with the tail; redrive
        // them (the recovered state is exactly the state the dead engine
        // had at the durable prefix, so redriven decisions are identical)
        while history
            .last()
            .is_some_and(|&(_, after)| after > report.records)
        {
            let (step, _) = history.pop().unwrap_or((Step::Event(0), 0));
            match step {
                Step::Event(idx) => {
                    cursor = cursor.min(idx);
                    redriven_ops += 1;
                }
                Step::Swap(s) => swap_at = swap_at.min(s),
                // unreachable in practice — death records sync eagerly —
                // but popping one re-fires it identically if it ever dies
                Step::Death(k) => {
                    next_death = next_death.min(k);
                    death_reports.truncate(k);
                }
            }
        }
        let durable_base = history.last().map_or(1, |&(_, after)| after);
        if durable_base != report.records {
            return Err(CrashDrillError::LogMismatch {
                index: report.records,
            });
        }
    }

    engine.sync_journal();
    let t0 = records.iter().map(|r| r.start_minute).min().unwrap_or(0);
    let t1 = records.iter().map(|r| r.end_minute()).max().unwrap_or(0);
    let horizon = if records.is_empty() {
        0
    } else {
        (t1 - t0 + 1) as usize
    };
    let (peaks, violations, worst, mean_acl) = account(
        topo,
        &routing,
        &latmap,
        catalog,
        records,
        &placements,
        &cfg.replay,
        t0,
        horizon,
    );
    let pack = cfg
        .replay
        .pack
        .as_ref()
        .map(|s| pack_pass(records, &placements, &cfg.replay, s));
    Ok(CrashOutcome {
        stats: ReplayStats {
            calls: records.len() as u64,
            selector: engine.selector_stats(),
            per_dc_tallies: engine.per_dc_tallies(),
            mean_acl_ms: mean_acl,
            peak_cores: peaks.cores,
            peak_gbps: peaks.gbps,
            capacity_violations: violations,
            worst_overshoot: worst,
            pack,
        },
        crashes,
        redriven_ops,
        journal_lost_records: lost_records,
        pack_stats: engine.pack_stats(),
        pack_violations: engine.packer().map_or(0, |p| p.capacity_violations()),
        engine_stats: engine.stats(),
        death_reports,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::replay;
    use sb_core::{AllocationShares, PlannedQuotas, RealtimeSelector};
    use sb_net::DcId;
    use sb_workload::{CallConfig, CallRecord, ConfigId, DemandMatrix, MediaType};

    fn world() -> (Topology, ConfigCatalog, ConfigId) {
        let topo = sb_net::presets::toy_three_dc();
        let jp = topo.country_by_name("JP");
        let mut cat = ConfigCatalog::new();
        let id = cat.intern(CallConfig::new(vec![(jp, 2)], MediaType::Audio));
        (topo, cat, id)
    }

    fn record(id: u64, cfg: ConfigId, start: u64, dur: u16, c: sb_net::CountryId) -> CallRecord {
        CallRecord {
            id,
            config: cfg,
            start_minute: start,
            duration_min: dur,
            first_joiner: c,
            join_offsets_s: vec![0, 60],
        }
    }

    fn all_at(cfg: ConfigId, dc: DcId, slots: usize, per_slot: f64) -> PlannedQuotas {
        let mut shares = AllocationShares::new(slots);
        let mut demand = DemandMatrix::zero(cfg.index() + 1, slots, 30, 0);
        for s in 0..slots {
            shares.set(cfg, s, vec![(dc, 1.0)]);
            demand.set(cfg, s, per_slot);
        }
        PlannedQuotas::from_plan(&shares, &demand)
    }

    fn temp_journal(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sb-crash-drill-{tag}-{}.wal", std::process::id()));
        p
    }

    fn oracle_stats(
        topo: &Topology,
        cat: &ConfigCatalog,
        db: &CallRecordsDb,
        artifact: &PlanArtifact,
        cfg: &ReplayConfig,
    ) -> ReplayStats {
        let routing = RoutingTable::compute(topo, FailureScenario::None);
        let latmap = LatencyMap::from_routing(topo, &routing);
        let selector = RealtimeSelector::from_artifact(&latmap, artifact);
        replay(topo, &routing, &latmap, cat, db, &selector, cfg).stats()
    }

    #[test]
    fn crashes_recover_to_the_no_crash_oracle() {
        let (topo, cat, id) = world();
        let jp = topo.country_by_name("JP");
        let tokyo = topo.dc_by_name("Tokyo");
        let mut db = CallRecordsDb::new(cat.clone());
        for i in 0..40 {
            db.push(record(i, id, i, 30, jp));
        }
        let artifact = PlanArtifact::seed(all_at(id, tokyo, 3, 40.0));
        let mut cfg = CrashDrillConfig::with_faults(vec![
            ServiceFault::CrashAtOp { at_op: 17 },
            ServiceFault::CrashAtOp { at_op: 55 },
        ]);
        // group commit never fires on its own: every crash loses its whole
        // un-synced tail, so the drill must redrive across both crashes
        cfg.journal = JournalConfig {
            group_commit: Duration::from_secs(3600),
            sync_every: usize::MAX,
        };
        let path = temp_journal("oracle");
        let out =
            drive_with_crashes(&topo, &cat, &db, &artifact, &cfg, &path).expect("drill completes");
        let _ = std::fs::remove_file(&path);
        assert_eq!(out.crashes, 2);
        assert_eq!(
            out.stats,
            oracle_stats(&topo, &cat, &db, &artifact, &cfg.replay)
        );
        // default group commit (sync_every 64) means the first crash loses
        // its whole tail — the drill really exercised redrive
        assert!(out.redriven_ops > 0, "{}", out.redriven_ops);
        assert_eq!(out.journal_lost_records, out.redriven_ops);
    }

    #[test]
    fn server_deaths_rehome_in_dc_and_recover_through_crashes() {
        let (topo, cat, id) = world();
        let jp = topo.country_by_name("JP");
        let tokyo = topo.dc_by_name("Tokyo");
        let mut db = CallRecordsDb::new(cat.clone());
        for i in 0..40 {
            db.push(record(i, id, i, 15, jp));
        }
        let artifact = PlanArtifact::seed(all_at(id, tokyo, 3, 40.0));
        // two of Tokyo's three servers die mid-trace, then the engine
        // crashes: the drill must drain every call in-DC (no ladder spills,
        // no strands), recover the death records from the journal, and
        // still land on the no-crash oracle
        let mut cfg = CrashDrillConfig::with_faults(vec![
            ServiceFault::ServerDeath {
                dc: tokyo.index() as u16,
                server: 0,
                at_op: 20,
            },
            ServiceFault::ServerDeath {
                dc: tokyo.index() as u16,
                server: 1,
                at_op: 50,
            },
            ServiceFault::CrashAtOp { at_op: 70 },
        ]);
        let mut spec = sb_pack::FleetSpec::empty(topo.dcs.len());
        for d in 0..topo.dcs.len() {
            for _ in 0..3 {
                spec.push_server(DcId(d as u16), 16_000);
            }
        }
        cfg.engine.pack = Some(sb_engine::EnginePackConfig {
            spec,
            packer: sb_pack::PackerConfig::default(),
            cost: sb_pack::CostModel::default(),
            growth: Some(sb_pack::GrowthModel::flat(2)),
        });
        let path = temp_journal("server-death");
        let out =
            drive_with_crashes(&topo, &cat, &db, &artifact, &cfg, &path).expect("drill completes");
        let _ = std::fs::remove_file(&path);

        assert_eq!(out.crashes, 1);
        assert_eq!(out.death_reports.len(), 2);
        for (i, rep) in out.death_reports.iter().enumerate() {
            assert!(!rep.already_dead, "death {i} must hit a live server");
            assert_eq!(rep.stranded, 0, "death {i} stranded calls");
            assert_eq!(rep.spilled_rehomed, 0, "death {i} escalated to the ladder");
        }
        assert!(
            out.death_reports.iter().any(|r| r.rehomed > 0),
            "at least one death must actually drain calls"
        );
        // the final engine recovered from the crash, and recovery restores
        // *state*, not stats — so the death counters live in the reports
        // above, while the recovered fleet must still satisfy the hard
        // invariants (dead servers empty, live servers within capacity)
        assert!(out.pack_stats.is_some(), "packing was enabled");
        assert_eq!(out.pack_violations, 0, "hard capacity invariant");
        // with every drain absorbed in-DC, selector-level stats are
        // untouched by the deaths: the oracle equality still holds
        assert_eq!(
            out.stats,
            oracle_stats(&topo, &cat, &db, &artifact, &cfg.replay)
        );
    }

    #[test]
    fn journal_stall_is_only_latency() {
        let (topo, cat, id) = world();
        let jp = topo.country_by_name("JP");
        let tokyo = topo.dc_by_name("Tokyo");
        let mut db = CallRecordsDb::new(cat.clone());
        for i in 0..20 {
            db.push(record(i, id, i, 20, jp));
        }
        let artifact = PlanArtifact::seed(all_at(id, tokyo, 2, 20.0));
        let cfg = CrashDrillConfig::with_faults(vec![
            ServiceFault::JournalStall {
                at_op: 5,
                ops: 5,
                stall: Duration::from_micros(200),
            },
            ServiceFault::CrashAtOp { at_op: 30 },
        ]);
        let path = temp_journal("stall");
        let out = drive_with_crashes(&topo, &cat, &db, &artifact, &cfg, &path)
            .expect("stalls never lose durability");
        let _ = std::fs::remove_file(&path);
        assert_eq!(out.crashes, 1);
        assert_eq!(
            out.stats,
            oracle_stats(&topo, &cat, &db, &artifact, &cfg.replay)
        );
    }

    #[test]
    fn dropped_appends_surface_as_typed_log_mismatch() {
        let (topo, cat, id) = world();
        let jp = topo.country_by_name("JP");
        let tokyo = topo.dc_by_name("Tokyo");
        let mut db = CallRecordsDb::new(cat.clone());
        for i in 0..20 {
            db.push(record(i, id, i, 20, jp));
        }
        let artifact = PlanArtifact::seed(all_at(id, tokyo, 2, 20.0));
        let mut cfg = CrashDrillConfig::with_faults(vec![
            ServiceFault::JournalDrop { at_op: 6, ops: 4 },
            ServiceFault::CrashAtOp { at_op: 25 },
        ]);
        // sync every append: the records *after* the drop window are
        // durable, so the crash sees a mid-stream gap — a typed mismatch
        cfg.journal = JournalConfig {
            sync_every: 1,
            ..JournalConfig::default()
        };
        let path = temp_journal("drop");
        let res = drive_with_crashes(&topo, &cat, &db, &artifact, &cfg, &path);
        let _ = std::fs::remove_file(&path);
        // the gap surfaces typed: either recovery itself refuses (a record
        // references state whose admit was dropped) or the harness's
        // prefix check catches the divergence
        match res {
            Err(CrashDrillError::LogMismatch { .. })
            | Err(CrashDrillError::Recovery(RecoveryError::Inconsistent { .. })) => {}
            other => panic!("expected a typed divergence error, got {other:?}"),
        }
    }
}
