//! Property tests for the real-time selector: under arbitrary single-failure
//! topologies, arbitrary event orders (including unknown call ids), and
//! missing or stale plans, the selector must never panic and every placement
//! query must resolve to a typed outcome — `Placed` at an up DC, or
//! `Stranded` exactly when no DC is up.

use proptest::prelude::*;
use sb_core::{
    FreezeDecision, LatencyMap, PlanArtifact, PlannedQuotas, RealtimeSelector, SelectorOutcome,
};
use sb_net::{FailureScenario, GeoPoint, Node, RoutingTable, Topology, TopologyBuilder};
use sb_workload::{CallConfig, ConfigCatalog, ConfigId, DemandMatrix, MediaType};

/// A small random topology: DCs on a ring, countries with random uplinks.
fn random_topology(n_dcs: usize, n_countries: usize, uplinks: &[Vec<usize>]) -> Topology {
    let mut b = TopologyBuilder::new();
    let r = b.region("R");
    let mut dcs = Vec::new();
    for i in 0..n_dcs {
        let p = GeoPoint::new(5.0 + i as f64 * 4.0, 90.0 + i as f64 * 6.0);
        dcs.push(b.datacenter(format!("dc{i}"), r, p, 100.0));
    }
    for i in 0..n_dcs {
        let j = (i + 1) % n_dcs;
        if i != j {
            b.link_with_latency(Node::Dc(dcs[i]), Node::Dc(dcs[j]), 2.0 + i as f64, 10.0);
        }
    }
    for (c, ups) in uplinks.iter().enumerate().take(n_countries) {
        let p = GeoPoint::new(-5.0 - c as f64 * 3.0, 70.0 + c as f64 * 5.0);
        let cid = b.country(format!("c{c}"), r, p, 1.0 + c as f64, 1.0);
        let mut connected: std::collections::HashSet<usize> =
            ups.iter().map(|&u| u % n_dcs).collect();
        connected.insert(c % n_dcs);
        for u in connected {
            b.link_with_latency(Node::Edge(cid), Node::Dc(dcs[u]), 3.0 + u as f64, 5.0);
        }
    }
    b.build()
}

/// One driver step against the selector.
#[derive(Clone, Debug)]
enum Op {
    Start { id: u64, country: usize },
    Freeze { id: u64 },
    End { id: u64 },
    Rehome { id: u64 },
    PlanValid(bool),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..8, 0usize..4).prop_map(|(id, country)| Op::Start { id, country }),
        (0u64..8).prop_map(|id| Op::Freeze { id }),
        (0u64..8).prop_map(|id| Op::End { id }),
        (0u64..8).prop_map(|id| Op::Rehome { id }),
        (0u8..2).prop_map(|b| Op::PlanValid(b == 1)),
    ]
}

fn world_strategy() -> impl Strategy<Value = (Topology, FailureScenario, bool, Vec<Op>)> {
    (
        1usize..4,
        1usize..4,
        proptest::collection::vec(proptest::collection::vec(0usize..4, 1..3), 1..4),
        0usize..64,
        0u8..2,
        proptest::collection::vec(op_strategy(), 1..50),
    )
        .prop_map(|(n_dcs, n_countries, uplinks, fault, with_plan, ops)| {
            let n_countries = n_countries.min(uplinks.len());
            let topo = random_topology(n_dcs, n_countries, &uplinks);
            // fault index picks among None + every DC + every link
            let mut scenarios = FailureScenario::enumerate(&topo);
            let sc = scenarios.remove(fault % scenarios.len());
            (topo, sc, with_plan == 1, ops)
        })
}

/// Quotas for a one-config catalog: either a real plan that spreads the
/// config over every DC, or an empty (missing) plan.
fn make_quotas(topo: &Topology, cfg: ConfigId, with_plan: bool) -> PlannedQuotas {
    let slots = 2;
    let mut shares = sb_core::AllocationShares::new(slots);
    let mut demand = DemandMatrix::zero(cfg.index() + 1, slots, 30, 0);
    if with_plan {
        let n = topo.dcs.len() as f64;
        for s in 0..slots {
            shares.set(
                cfg,
                s,
                topo.dc_ids().map(|d| (d, 1.0 / n)).collect::<Vec<_>>(),
            );
            demand.set(cfg, s, 12.0);
        }
    }
    PlannedQuotas::from_plan(&shares, &demand)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The selector never panics and always resolves to a typed outcome:
    /// `Placed` at an up DC, `Stranded` exactly when every DC is down.
    #[test]
    fn selector_total_under_single_failures((topo, sc, with_plan, ops) in world_strategy()) {
        let mut catalog = ConfigCatalog::new();
        let c0 = topo.country_ids().next().unwrap();
        let cfg = catalog.intern(CallConfig::new(vec![(c0, 2)], MediaType::Audio));

        let routing = RoutingTable::compute(&topo, sc);
        let latmap = LatencyMap::from_routing(&topo, &routing);
        let dc_up: Vec<bool> = topo.dc_ids().map(|d| sc.dc_up(d)).collect();
        let any_up = dc_up.iter().any(|&u| u);

        let quotas = make_quotas(&topo, cfg, with_plan);
        let selector = RealtimeSelector::from_artifact(&latmap, &PlanArtifact::seed(quotas));
        selector.update_topology(&latmap, &dc_up);

        let mut started = 0u64;
        for op in ops {
            match op {
                Op::Start { id, country } => {
                    let c = topo.country_ids().nth(country % topo.countries.len()).unwrap();
                    started += 1;
                    match selector.call_start(id, c) {
                        SelectorOutcome::Placed { dc, .. } => {
                            prop_assert!(dc_up[dc.index()], "placed at a down DC");
                        }
                        SelectorOutcome::Stranded => {
                            prop_assert!(!any_up, "stranded while a DC was up");
                        }
                    }
                }
                Op::Freeze { id } => {
                    match selector.config_frozen(id, cfg, 0) {
                        FreezeDecision::Stay(dc)
                        | FreezeDecision::Migrate { to: dc, .. } => {
                            prop_assert!(dc_up[dc.index()], "froze onto a down DC");
                        }
                        // Unplanned/Overflow/AlreadyFrozen keep the current
                        // DC; UnknownCall is the typed no-op for ids never
                        // started
                        FreezeDecision::Unplanned(_)
                        | FreezeDecision::Overflow(_)
                        | FreezeDecision::AlreadyFrozen(_)
                        | FreezeDecision::UnknownCall => {}
                    }
                }
                Op::End { id } => {
                    selector.call_end(id);
                    prop_assert!(selector.current_dc(id).is_none());
                }
                Op::Rehome { id } => {
                    let known = selector.current_dc(id).is_some();
                    match selector.rehome_call(id) {
                        SelectorOutcome::Placed { dc, .. } => {
                            prop_assert!(dc_up[dc.index()], "re-homed to a down DC");
                            prop_assert!(known, "placed an unknown id");
                        }
                        SelectorOutcome::Stranded => {
                            if known {
                                prop_assert!(!any_up, "stranded while a DC was up");
                            }
                            prop_assert!(selector.current_dc(id).is_none());
                        }
                    }
                }
                Op::PlanValid(v) => selector.set_plan_valid(v),
            }
            prop_assert!(selector.active_calls() as u64 <= started);
        }
        prop_assert_eq!(selector.stats().calls, started);
    }
}
