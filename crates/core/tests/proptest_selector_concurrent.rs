//! Property tests for the sharded selector under real thread interleavings:
//! per-thread operation sequences run through [`SelectorShard`] handles on
//! scoped threads, all hammering the same striped quota pools and atomic
//! tallies. Each thread owns a disjoint call-id range, so the *per-call*
//! event order is deterministic even though the cross-thread interleaving is
//! not — which makes the aggregate counters exactly predictable:
//!
//! * no tally is ever lost: `sum(per_dc_tallies) == stats.freezes`, and
//!   `freezes` equals the locally-simulated expectation;
//! * no migration is double-counted: a duplicate freeze returns
//!   `AlreadyFrozen` without a second debit, so quota conservation holds —
//!   `initial - remaining == (freezes - unplanned - overflow) + rehomed_plan`;
//! * `call_end`/`config_frozen`/`rehome_call` on unknown ids stay *counted*
//!   no-ops under contention (`unknown_*` match the expectation exactly).

use proptest::prelude::*;
use sb_core::{LatencyMap, PlanArtifact, PlannedQuotas, RealtimeSelector};
use sb_net::{FailureScenario, RoutingTable};
use sb_workload::{CallConfig, ConfigCatalog, ConfigId, DemandMatrix, MediaType};

/// One operation against the selector; `id` is an offset into the owning
/// thread's private call-id range.
#[derive(Clone, Copy, Debug)]
enum Op {
    Start { id: u8, country: u8 },
    Freeze { id: u8 },
    Rehome { id: u8 },
    End { id: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..6, 0u8..4).prop_map(|(id, country)| Op::Start { id, country }),
        (0u8..6).prop_map(|id| Op::Freeze { id }),
        (0u8..6).prop_map(|id| Op::Rehome { id }),
        (0u8..6).prop_map(|id| Op::End { id }),
    ]
}

fn threads_strategy() -> impl Strategy<Value = Vec<Vec<Op>>> {
    proptest::collection::vec(proptest::collection::vec(op_strategy(), 1..40), 2..5)
}

/// What one thread's sequence must contribute to the aggregate counters,
/// derived by simulating its private ids (start always places — the test
/// topology is fully healthy — and rehome never strands).
#[derive(Default)]
struct Expected {
    calls: u64,
    freezes: u64,
    duplicate_freezes: u64,
    unknown_freezes: u64,
    unknown_rehomes: u64,
    unknown_ends: u64,
    live: u64,
}

fn expect_thread(ops: &[Op]) -> Expected {
    let mut e = Expected::default();
    // per-id state: None = unknown, Some(frozen?)
    let mut state = [None::<bool>; 6];
    for op in ops {
        match *op {
            Op::Start { id, .. } => {
                e.calls += 1;
                // a re-start overwrites the entry, resetting the freeze claim
                state[id as usize] = Some(false);
            }
            Op::Freeze { id } => match &mut state[id as usize] {
                None => e.unknown_freezes += 1,
                Some(frozen @ false) => {
                    e.freezes += 1;
                    *frozen = true;
                }
                Some(true) => e.duplicate_freezes += 1,
            },
            Op::Rehome { id } => {
                if state[id as usize].is_none() {
                    e.unknown_rehomes += 1;
                }
            }
            Op::End { id } => {
                if state[id as usize].take().is_none() {
                    e.unknown_ends += 1;
                }
            }
        }
    }
    e.live = state.iter().filter(|s| s.is_some()).count() as u64;
    e
}

/// A healthy three-DC world with one planned config and a deliberately tiny
/// quota, so concurrent freezes race the same pool into overflow.
fn selector(per_slot: f64) -> (sb_net::Topology, ConfigId, RealtimeSelector) {
    let topo = sb_net::presets::toy_three_dc();
    let mut catalog = ConfigCatalog::new();
    let jp = topo.country_by_name("JP");
    let cfg = catalog.intern(CallConfig::new(vec![(jp, 2)], MediaType::Audio));
    let routing = RoutingTable::compute(&topo, FailureScenario::None);
    let latmap = LatencyMap::from_routing(&topo, &routing);
    let slots = 2;
    let mut shares = sb_core::AllocationShares::new(slots);
    let mut demand = DemandMatrix::zero(cfg.index() + 1, slots, 30, 0);
    let n = topo.dcs.len() as f64;
    for s in 0..slots {
        shares.set(
            cfg,
            s,
            topo.dc_ids().map(|d| (d, 1.0 / n)).collect::<Vec<_>>(),
        );
        demand.set(cfg, s, per_slot);
    }
    let quotas = PlannedQuotas::from_plan(&shares, &demand);
    (
        topo,
        cfg,
        RealtimeSelector::from_artifact(&latmap, &PlanArtifact::seed(quotas)),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary cross-thread interleavings never lose or double-count.
    #[test]
    fn concurrent_interleavings_conserve_every_counter(
        thread_ops in threads_strategy(),
        per_slot in 1.0f64..20.0,
    ) {
        let (topo, cfg, sel) = selector(per_slot);
        let countries: Vec<_> = topo.country_ids().collect();

        std::thread::scope(|s| {
            for (t, ops) in thread_ops.iter().enumerate() {
                let mut shard = sel.shard();
                let countries = &countries;
                s.spawn(move || {
                    let base = 1_000 * (t as u64 + 1);
                    for op in ops {
                        match *op {
                            Op::Start { id, country } => {
                                let c = countries[country as usize % countries.len()];
                                shard.call_start(base + id as u64, c);
                            }
                            Op::Freeze { id } => {
                                // start_minute 0 → slot 0: every freeze races
                                // the same quota pool
                                shard.config_frozen(base + id as u64, cfg, 0);
                            }
                            Op::Rehome { id } => {
                                shard.rehome_call(base + id as u64);
                            }
                            Op::End { id } => {
                                shard.call_end(base + id as u64);
                            }
                        }
                    }
                });
            }
        });

        let mut want = Expected::default();
        for ops in &thread_ops {
            let e = expect_thread(ops);
            want.calls += e.calls;
            want.freezes += e.freezes;
            want.duplicate_freezes += e.duplicate_freezes;
            want.unknown_freezes += e.unknown_freezes;
            want.unknown_rehomes += e.unknown_rehomes;
            want.unknown_ends += e.unknown_ends;
            want.live += e.live;
        }

        let st = sel.stats();
        prop_assert_eq!(st.calls, want.calls);
        prop_assert_eq!(st.stranded, 0, "healthy topology never strands");

        // no tally lost: the atomics agree with the merged shard stats, and
        // both agree with the per-thread simulation
        prop_assert_eq!(st.freezes, want.freezes);
        let tallies = sel.per_dc_tallies();
        prop_assert_eq!(tallies.iter().sum::<u64>(), st.freezes);

        // no migration double-counted: dup freezes are typed no-ops and the
        // pool debits reconcile exactly with the counted outcomes
        prop_assert_eq!(st.duplicate_freezes, want.duplicate_freezes);
        prop_assert!(st.migrations <= st.freezes);
        prop_assert_eq!(
            sel.quota_initial_total() - sel.quota_remaining_total(),
            (st.freezes - st.unplanned - st.overflow) + st.rehomed_plan
        );
        prop_assert_eq!(st.unplanned, 0, "plan stays valid throughout");

        // unknown-id ops stay counted no-ops under contention
        prop_assert_eq!(st.unknown_freezes, want.unknown_freezes);
        prop_assert_eq!(st.unknown_rehomes, want.unknown_rehomes);
        prop_assert_eq!(st.unknown_ends, want.unknown_ends);

        prop_assert_eq!(sel.active_calls() as u64, want.live);
    }
}
