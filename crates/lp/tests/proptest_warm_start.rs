//! Property tests for warm-started solves: re-solving a patched problem from
//! the previous optimal basis must agree with a cold solve — in objective and
//! in feasibility — no matter how stale the basis is, and an outright
//! corrupted basis must silently fall back to a cold start.
//!
//! The generated models follow the provisioning-LP shape that warm starts
//! target in production: per-slot demand-completeness equalities, share
//! variables with demand upper bounds, and capacity variables tying shares
//! down through `≤` rows. The patch mirrors a failure-scenario sweep: demands
//! move, and one site's shares get pinned to zero.

use proptest::prelude::*;
use sb_lp::{Basis, LpProblem, PatchOutcome, PreparedProblem, RevisedSimplex, Var, VarStatus};

/// A miniature provisioning sweep: `slots × sites` share variables, one
/// capacity variable per site.
#[derive(Debug, Clone)]
struct SweepLp {
    slots: usize,
    sites: usize,
    /// Per-slot demand for the base (warm-basis) problem.
    demand0: Vec<u8>,
    /// Per-slot demand after the patch.
    demand1: Vec<u8>,
    /// Per-site capacity cost.
    cap_cost: Vec<u8>,
    /// Per-(slot, site) share cost (the ACL epsilon term).
    share_cost: Vec<u8>,
    /// Site pinned to zero by the patch (a "failed DC"), if any.
    fail_site: Option<usize>,
}

fn sweep_lp() -> impl Strategy<Value = SweepLp> {
    (1usize..4, 2usize..4).prop_flat_map(|(slots, sites)| {
        let demand0 = proptest::collection::vec(1u8..9, slots);
        let demand1 = proptest::collection::vec(1u8..9, slots);
        let cap_cost = proptest::collection::vec(1u8..9, sites);
        let share_cost = proptest::collection::vec(0u8..3, slots * sites);
        let fail_site = proptest::option::of(0usize..sites);
        (demand0, demand1, cap_cost, share_cost, fail_site).prop_map(
            move |(demand0, demand1, cap_cost, share_cost, fail_site)| SweepLp {
                slots,
                sites,
                demand0,
                demand1,
                cap_cost,
                share_cost,
                fail_site,
            },
        )
    })
}

struct Built {
    lp: LpProblem,
    shares: Vec<Var>,
    /// Completeness row index per slot.
    complete_rows: Vec<usize>,
}

/// Build the base problem (demands `demand0`, nothing pinned).
fn build(r: &SweepLp) -> Built {
    let mut lp = LpProblem::new();
    let caps: Vec<Var> = (0..r.sites)
        .map(|x| lp.add_nonneg(format!("C{x}"), r.cap_cost[x] as f64))
        .collect();
    let mut shares = Vec::new();
    for t in 0..r.slots {
        for x in 0..r.sites {
            shares.push(lp.add_var(
                format!("s{t}_{x}"),
                0.01 * r.share_cost[t * r.sites + x] as f64,
                0.0,
                r.demand0[t] as f64,
            ));
        }
    }
    let mut complete_rows = Vec::new();
    for t in 0..r.slots {
        let coeffs = (0..r.sites)
            .map(|x| (shares[t * r.sites + x], 1.0))
            .collect();
        complete_rows.push(lp.add_eq(coeffs, r.demand0[t] as f64));
        for x in 0..r.sites {
            lp.add_le(vec![(shares[t * r.sites + x], 1.0), (caps[x], -1.0)], 0.0);
        }
    }
    Built {
        lp,
        shares,
        complete_rows,
    }
}

/// Apply the scenario patch in place: new demands, one site pinned.
fn patch(b: &mut Built, r: &SweepLp) {
    for t in 0..r.slots {
        b.lp.set_rhs(b.complete_rows[t], r.demand1[t] as f64);
        for x in 0..r.sites {
            let v = b.shares[t * r.sites + x];
            let pinned = r.fail_site == Some(x);
            b.lp.set_var_upper(v, if pinned { 0.0 } else { r.demand1[t] as f64 });
        }
    }
}

fn solve_pair(r: &SweepLp, mangle: Option<fn(&mut Basis)>) -> (f64, f64, bool, LpProblem) {
    let mut b = build(r);
    let mut prep = PreparedProblem::new(&b.lp);
    let solver = RevisedSimplex::new();
    let base = solver
        .solve_prepared(&b.lp, &prep, None)
        .expect("base problem is feasible by construction");
    let mut basis = base.basis().expect("revised solve exports a basis").clone();
    if let Some(m) = mangle {
        m(&mut basis);
    }
    patch(&mut b, r);
    assert_eq!(
        prep.refresh(&b.lp),
        PatchOutcome::Patched,
        "demand/pin patches are layout-stable"
    );
    let warm = solver
        .solve_prepared(&b.lp, &prep, Some(&basis))
        .expect("patched problem stays feasible (capacity is purchasable)");
    let cold = solver
        .solve_prepared(&b.lp, &prep, None)
        .expect("patched problem stays feasible (capacity is purchasable)");
    (
        warm.objective(),
        cold.objective(),
        warm.stats().warm_started,
        {
            let violation_w = b.lp.max_violation(warm.values());
            let violation_c = b.lp.max_violation(cold.values());
            assert!(
                violation_w < 1e-7,
                "warm solution infeasible: {violation_w}"
            );
            assert!(
                violation_c < 1e-7,
                "cold solution infeasible: {violation_c}"
            );
            b.lp
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Warm and cold solves of the patched problem agree on the optimum, and
    /// both report feasible points — even when the patch pinned variables the
    /// warm basis holds at positive values (the dual-restoration path).
    #[test]
    fn warm_agrees_with_cold_after_patch(r in sweep_lp()) {
        let (warm_obj, cold_obj, _, _) = solve_pair(&r, None);
        let scale = 1.0 + cold_obj.abs();
        prop_assert!((warm_obj - cold_obj).abs() < 1e-6 * scale,
            "warm={warm_obj} cold={cold_obj}");
    }

    /// A corrupted warm basis (duplicate basic column — structurally
    /// singular) must downgrade to a cold start and still reach the optimum.
    #[test]
    fn corrupted_basis_falls_back(r in sweep_lp()) {
        fn corrupt(b: &mut Basis) {
            if b.basic.len() >= 2 {
                b.basic[0] = b.basic[1];
            }
        }
        let (warm_obj, cold_obj, warm_started, _) = solve_pair(&r, Some(corrupt));
        prop_assert!(!warm_started, "a singular basis must not warm-start");
        let scale = 1.0 + cold_obj.abs();
        prop_assert!((warm_obj - cold_obj).abs() < 1e-6 * scale);
    }

    /// A basis with every status flipped to AtUpper (maximally stale
    /// nonbasic information) is still either repaired or rejected — never
    /// allowed to produce a wrong optimum.
    #[test]
    fn stale_statuses_never_corrupt_the_optimum(r in sweep_lp()) {
        fn stale(b: &mut Basis) {
            for st in &mut b.status {
                if *st == VarStatus::AtLower {
                    *st = VarStatus::AtUpper;
                }
            }
        }
        let (warm_obj, cold_obj, _, _) = solve_pair(&r, Some(stale));
        let scale = 1.0 + cold_obj.abs();
        prop_assert!((warm_obj - cold_obj).abs() < 1e-6 * scale,
            "warm={warm_obj} cold={cold_obj}");
    }
}
