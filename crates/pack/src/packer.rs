//! The intra-DC call packer: best-fit and growth-aware server scoring,
//! re-pack-on-growth with hysteresis, frozen-call eviction, server death
//! drains, and the restore-mode operations recovery uses to rebuild packing
//! state from a WAL without re-running any placement decision.
//!
//! # Determinism contract
//!
//! Every decision in this module is a pure function of the packer's current
//! integer state and the op's integer arguments: costs are millicores
//! (`u32`), scores are integer leftovers, and every tie breaks toward the
//! lowest server index or lowest call id. Given the same op sequence the
//! packer reproduces the same placements and [`PackStats`] bit for bit —
//! the property the serial-oracle differential harness checks.
//!
//! # Hard vs soft state
//!
//! `used` (actual cost) is hard: no op ever leaves a live server with
//! `used > capacity`. `reserved` (predicted cost) is soft: reservations
//! guide scoring and proactive moves but may overshoot capacity freely.

use std::collections::BTreeMap;

use parking_lot::Mutex;
use sb_net::DcId;

use crate::fleet::{FleetSpec, ServerId, NO_SERVER};

/// Server-scoring policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PackPolicy {
    /// Classic best-fit on **actual** cost: tightest feasible server wins.
    BestFit,
    /// Tetris-style growth-aware score: among servers that fit the actual
    /// cost, prefer the tightest fit on **reserved** (predicted) cost; if
    /// every server is predicted-overcommitted, pick the one with the most
    /// predicted headroom. Pairs with proactive re-packs under hysteresis.
    GrowthAware,
}

/// Packer tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackerConfig {
    /// Scoring policy.
    pub policy: PackPolicy,
    /// A growth-aware proactive move fires only once a server's reserved
    /// total exceeds capacity by more than this margin — the hysteresis
    /// band that stops a call from ping-ponging between two near-full
    /// servers on every join.
    pub hysteresis_mcpu: u32,
    /// Max unfrozen victims evicted to make room for one frozen call's
    /// growth before the growth is rejected instead.
    pub max_evictions: usize,
}

impl Default for PackerConfig {
    fn default() -> Self {
        Self {
            policy: PackPolicy::GrowthAware,
            hysteresis_mcpu: 512,
            max_evictions: 4,
        }
    }
}

/// Integer op counters, summed across DCs. Bitwise-comparable between
/// serial and concurrent drivers (all fields are exact counts).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PackStats {
    /// Successful initial placements.
    pub placed: u64,
    /// Placements (initial or after a DC move) that found no feasible server.
    pub placement_failures: u64,
    /// Growth ops processed.
    pub grow_events: u64,
    /// Growth ops refused because no server could absorb the new cost.
    pub grow_rejections: u64,
    /// Forced moves: the grown call no longer fit its server.
    pub repacks: u64,
    /// Proactive growth-aware moves off predicted-overcommitted servers.
    pub proactive_repacks: u64,
    /// Unfrozen calls evicted to make room for a frozen call's growth.
    pub evictions: u64,
    /// Calls moved between DCs (selector migrations at freeze).
    pub dc_moves: u64,
    /// Calls removed at end-of-call.
    pub removed: u64,
    /// Servers killed.
    pub server_deaths: u64,
    /// Calls re-homed inside the DC after their server died.
    pub death_rehomes: u64,
    /// Calls that found no in-DC server after a death (escalated to the
    /// caller's degradation ladder).
    pub death_spills: u64,
}

impl PackStats {
    fn add(&mut self, o: &PackStats) {
        self.placed += o.placed;
        self.placement_failures += o.placement_failures;
        self.grow_events += o.grow_events;
        self.grow_rejections += o.grow_rejections;
        self.repacks += o.repacks;
        self.proactive_repacks += o.proactive_repacks;
        self.evictions += o.evictions;
        self.dc_moves += o.dc_moves;
        self.removed += o.removed;
        self.server_deaths += o.server_deaths;
        self.death_rehomes += o.death_rehomes;
        self.death_spills += o.death_spills;
    }

    /// Total intra-DC migrations (forced + proactive + evictions).
    pub fn intra_dc_migrations(&self) -> u64 {
        self.repacks + self.proactive_repacks + self.evictions
    }
}

/// How a [`FleetPacker::grow`] call resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrowKind {
    /// The call grew in place.
    Stayed,
    /// The call moved to another server in the DC.
    Moved {
        /// Server index the call left.
        from: u16,
        /// Server index the call now occupies.
        to: u16,
        /// `true` for a hysteresis-gated growth-aware move (the call still
        /// fit, but its server was predicted-overcommitted); `false` for a
        /// forced move (the call no longer fit).
        proactive: bool,
    },
    /// The call was frozen; unfrozen victims were evicted to make room and
    /// the call grew in place.
    Evicted {
        /// Number of victims moved off the call's server.
        victims: u16,
    },
    /// No server could absorb the growth: the call keeps its previous cost
    /// and the caller should refuse the join.
    Rejected,
    /// The call is not tracked by this DC's packer.
    Unknown,
}

/// Result of a growth op: the resolution plus the resulting
/// `(call, server, cost)` of every call whose placement or cost changed
/// (the grown call itself and any evicted victims) — exactly what a WAL
/// needs to journal to make the op replayable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrowOutcome {
    /// Resolution.
    pub kind: GrowKind,
    /// Resulting `(call, server index, cost_mcpu)` per touched call.
    pub changed: Vec<(u64, u16, u32)>,
}

/// A call that could not be re-homed inside its DC after a server death.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpilledCall {
    /// Call id.
    pub call: u64,
    /// Participant count at spill time.
    pub participants: u32,
    /// Actual cost at spill time.
    pub cost_mcpu: u32,
    /// Reserved cost at spill time.
    pub reserve_mcpu: u32,
    /// Whether the call had already frozen.
    pub frozen: bool,
}

/// Result of killing one server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KillResult {
    /// The server was already dead; nothing was done or counted.
    pub already_dead: bool,
    /// The server hosted no calls (the death is still counted).
    pub was_empty: bool,
    /// Calls re-homed inside the DC: `(call, new server index, cost)`.
    pub rehomed: Vec<(u64, u16, u32)>,
    /// Calls the DC could not absorb; the caller owns their fate.
    pub spilled: Vec<SpilledCall>,
}

/// Everything the packer knows about one tracked call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallInfo {
    /// Hosting server.
    pub server: ServerId,
    /// Charged participant count.
    pub participants: u32,
    /// Actual cost.
    pub cost_mcpu: u32,
    /// Reserved (predicted) cost.
    pub reserve_mcpu: u32,
    /// Whether the call's config has frozen.
    pub frozen: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CallSlot {
    server: u16,
    participants: u32,
    cost: u32,
    reserve: u32,
    frozen: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Srv {
    cap: u32,
    used: u32,
    reserved: u32,
    live: bool,
    peak_used: u32,
    placed: u64,
}

/// One server's occupancy snapshot in a [`PackStateExport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerExport {
    /// Capacity in millicores.
    pub capacity_mcpu: u32,
    /// Actual occupancy in millicores.
    pub used_mcpu: u32,
    /// Reserved occupancy in millicores.
    pub reserved_mcpu: u32,
    /// Liveness.
    pub live: bool,
}

/// One call's slot in a [`PackStateExport`]:
/// `(id, server, participants, cost, reserve, frozen)`.
pub type CallExport = (u64, u16, u32, u32, u32, bool);

/// Deterministic packing-state snapshot: the recovery equality witness.
///
/// Excludes runtime counters (stats, peaks) on purpose — those are
/// observability, not state, and are not journaled.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PackStateExport {
    /// Per-DC, per-server occupancy in `(dc, index)` order.
    pub servers: Vec<Vec<ServerExport>>,
    /// Per-DC call slots sorted by call id.
    pub calls: Vec<Vec<CallExport>>,
}

struct DcPacker {
    cfg: PackerConfig,
    servers: Vec<Srv>,
    calls: BTreeMap<u64, CallSlot>,
    stats: PackStats,
}

impl DcPacker {
    fn new(capacities: &[u32], cfg: PackerConfig) -> Self {
        Self {
            cfg,
            servers: capacities
                .iter()
                .map(|&cap| Srv {
                    cap,
                    used: 0,
                    reserved: 0,
                    live: true,
                    peak_used: 0,
                    placed: 0,
                })
                .collect(),
            calls: BTreeMap::new(),
            stats: PackStats::default(),
        }
    }

    /// Feasible set: live servers (minus `exclude`) where the actual cost
    /// fits. `preferred_only` additionally requires the reservation to fit.
    fn fit(
        &self,
        cost: u32,
        reserve: u32,
        exclude: Option<u16>,
        preferred_only: bool,
    ) -> Option<u16> {
        let feasible = |i: usize, s: &Srv| {
            s.live && Some(i as u16) != exclude && s.used.saturating_add(cost) <= s.cap
        };
        match self.cfg.policy {
            PackPolicy::BestFit if !preferred_only => self
                .servers
                .iter()
                .enumerate()
                .filter(|&(i, s)| feasible(i, s))
                .min_by_key(|&(i, s)| (s.cap - s.used - cost, i))
                .map(|(i, _)| i as u16),
            _ => {
                // growth-aware (and the preferred-only probe, which only
                // makes sense growth-aware): tightest reserved fit first
                let preferred = self
                    .servers
                    .iter()
                    .enumerate()
                    .filter(|&(i, s)| feasible(i, s) && s.reserved.saturating_add(reserve) <= s.cap)
                    .min_by_key(|&(i, s)| (s.cap - s.reserved - reserve, i))
                    .map(|(i, _)| i as u16);
                if preferred.is_some() || preferred_only {
                    return preferred;
                }
                // every feasible server is predicted-overcommitted: take
                // the one with the most predicted headroom
                self.servers
                    .iter()
                    .enumerate()
                    .filter(|&(i, s)| feasible(i, s))
                    .max_by_key(|&(i, s)| (s.cap.saturating_sub(s.reserved), usize::MAX - i))
                    .map(|(i, _)| i as u16)
            }
        }
    }

    fn attach(&mut self, call: u64, slot: CallSlot) {
        let s = &mut self.servers[slot.server as usize];
        s.used += slot.cost;
        s.reserved = s.reserved.saturating_add(slot.reserve);
        s.peak_used = s.peak_used.max(s.used);
        let prev = self.calls.insert(call, slot);
        debug_assert!(prev.is_none(), "call {call} attached twice");
    }

    fn detach(&mut self, call: u64) -> Option<CallSlot> {
        let slot = self.calls.remove(&call)?;
        let s = &mut self.servers[slot.server as usize];
        s.used -= slot.cost;
        s.reserved = s.reserved.saturating_sub(slot.reserve);
        Some(slot)
    }

    fn place(&mut self, call: u64, participants: u32, cost: u32, reserve: u32) -> Option<u16> {
        assert!(
            !self.calls.contains_key(&call),
            "call {call} already placed in this DC"
        );
        let reserve = reserve.max(cost);
        match self.fit(cost, reserve, None, false) {
            Some(i) => {
                self.attach(
                    call,
                    CallSlot {
                        server: i,
                        participants,
                        cost,
                        reserve,
                        frozen: false,
                    },
                );
                self.servers[i as usize].placed += 1;
                self.stats.placed += 1;
                Some(i)
            }
            None => {
                self.stats.placement_failures += 1;
                None
            }
        }
    }

    fn grow(&mut self, call: u64, participants: u32, cost: u32, reserve: u32) -> GrowOutcome {
        let Some(&slot) = self.calls.get(&call) else {
            return GrowOutcome {
                kind: GrowKind::Unknown,
                changed: Vec::new(),
            };
        };
        self.stats.grow_events += 1;
        let reserve = reserve.max(cost);
        let from = slot.server;
        let fi = from as usize;
        let next = CallSlot {
            server: from,
            participants,
            cost,
            reserve,
            frozen: slot.frozen,
        };
        let fits_in_place = self.servers[fi].live
            && (self.servers[fi].used - slot.cost).saturating_add(cost) <= self.servers[fi].cap;
        if fits_in_place {
            self.detach(call);
            self.attach(call, next);
            // proactive re-pack: growth-aware, unfrozen, and the server's
            // reservations overshoot capacity past the hysteresis band
            if self.cfg.policy == PackPolicy::GrowthAware && !slot.frozen {
                let s = &self.servers[fi];
                if s.reserved > s.cap.saturating_add(self.cfg.hysteresis_mcpu) {
                    if let Some(to) = self.fit(cost, reserve, Some(from), true) {
                        self.detach(call);
                        self.attach(call, CallSlot { server: to, ..next });
                        self.stats.proactive_repacks += 1;
                        return GrowOutcome {
                            kind: GrowKind::Moved {
                                from,
                                to,
                                proactive: true,
                            },
                            changed: vec![(call, to, cost)],
                        };
                    }
                }
            }
            return GrowOutcome {
                kind: GrowKind::Stayed,
                changed: vec![(call, from, cost)],
            };
        }
        if !slot.frozen {
            // forced move: the grown call no longer fits where it is
            return match self.fit(cost, reserve, Some(from), false) {
                Some(to) => {
                    self.detach(call);
                    self.attach(call, CallSlot { server: to, ..next });
                    self.stats.repacks += 1;
                    GrowOutcome {
                        kind: GrowKind::Moved {
                            from,
                            to,
                            proactive: false,
                        },
                        changed: vec![(call, to, cost)],
                    }
                }
                None => {
                    self.stats.grow_rejections += 1;
                    GrowOutcome {
                        kind: GrowKind::Rejected,
                        changed: Vec::new(),
                    }
                }
            };
        }
        // frozen call outgrew its server: evict unfrozen victims (largest
        // first, id as tie-break) until the growth fits or we give up.
        // Victims that already moved stay moved — each move was legal.
        let mut changed = Vec::new();
        let mut victims = 0u16;
        loop {
            let s = &self.servers[fi];
            if s.live && (s.used - slot.cost).saturating_add(cost) <= s.cap {
                self.detach(call);
                self.attach(call, next);
                self.stats.evictions += victims as u64;
                changed.push((call, from, cost));
                return GrowOutcome {
                    kind: GrowKind::Evicted { victims },
                    changed,
                };
            }
            if victims as usize >= self.cfg.max_evictions {
                break;
            }
            let mut candidates: Vec<(u32, u64)> = self
                .calls
                .iter()
                .filter(|&(&id, c)| id != call && c.server == from && !c.frozen)
                .map(|(&id, c)| (c.cost, id))
                .collect();
            candidates.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
            let Some((victim, to)) = candidates.iter().find_map(|&(_, id)| {
                let c = self.calls[&id];
                self.fit(c.cost, c.reserve, Some(from), false)
                    .map(|to| (id, to))
            }) else {
                break;
            };
            let v = self.detach(victim).unwrap();
            self.attach(victim, CallSlot { server: to, ..v });
            changed.push((victim, to, v.cost));
            victims += 1;
        }
        self.stats.evictions += victims as u64;
        self.stats.grow_rejections += 1;
        GrowOutcome {
            kind: GrowKind::Rejected,
            changed,
        }
    }

    fn freeze(&mut self, call: u64) -> bool {
        match self.calls.get_mut(&call) {
            Some(slot) => {
                slot.frozen = true;
                true
            }
            None => false,
        }
    }

    fn remove(&mut self, call: u64) -> Option<u16> {
        let slot = self.detach(call)?;
        self.stats.removed += 1;
        Some(slot.server)
    }

    fn kill(&mut self, server: u16) -> KillResult {
        let i = server as usize;
        if !self.servers[i].live {
            return KillResult {
                already_dead: true,
                was_empty: true,
                rehomed: Vec::new(),
                spilled: Vec::new(),
            };
        }
        self.servers[i].live = false;
        self.stats.server_deaths += 1;
        // BTreeMap iteration → calls drain in ascending id order
        let on_server: Vec<u64> = self
            .calls
            .iter()
            .filter(|&(_, c)| c.server == server)
            .map(|(&id, _)| id)
            .collect();
        let was_empty = on_server.is_empty();
        let mut rehomed = Vec::new();
        let mut spilled = Vec::new();
        for id in on_server {
            let c = self.detach(id).unwrap();
            match self.fit(c.cost, c.reserve, None, false) {
                Some(to) => {
                    self.attach(id, CallSlot { server: to, ..c });
                    self.stats.death_rehomes += 1;
                    rehomed.push((id, to, c.cost));
                }
                None => {
                    self.stats.death_spills += 1;
                    spilled.push(SpilledCall {
                        call: id,
                        participants: c.participants,
                        cost_mcpu: c.cost,
                        reserve_mcpu: c.reserve,
                        frozen: c.frozen,
                    });
                }
            }
        }
        KillResult {
            already_dead: false,
            was_empty,
            rehomed,
            spilled,
        }
    }

    /// Restore-mode absolute set: no scoring, no stats, no peak tracking.
    fn restore_set(
        &mut self,
        call: u64,
        server: u16,
        participants: u32,
        cost: u32,
        reserve: u32,
        frozen: bool,
    ) {
        if let Some(slot) = self.calls.remove(&call) {
            let s = &mut self.servers[slot.server as usize];
            s.used -= slot.cost;
            s.reserved = s.reserved.saturating_sub(slot.reserve);
        }
        if server == NO_SERVER {
            return;
        }
        let s = &mut self.servers[server as usize];
        s.used += cost;
        s.reserved = s.reserved.saturating_add(reserve);
        self.calls.insert(
            call,
            CallSlot {
                server,
                participants,
                cost,
                reserve,
                frozen,
            },
        );
    }

    fn export(&self) -> (Vec<ServerExport>, Vec<CallExport>) {
        let servers = self
            .servers
            .iter()
            .map(|s| ServerExport {
                capacity_mcpu: s.cap,
                used_mcpu: s.used,
                reserved_mcpu: s.reserved,
                live: s.live,
            })
            .collect();
        let calls = self
            .calls
            .iter()
            .map(|(&id, c)| (id, c.server, c.participants, c.cost, c.reserve, c.frozen))
            .collect();
        (servers, calls)
    }

    /// Hard-invariant audit: live servers within capacity, dead servers
    /// hosting nothing, tallies consistent with the call map.
    fn violations(&self) -> u64 {
        let mut used = vec![0u32; self.servers.len()];
        for c in self.calls.values() {
            used[c.server as usize] += c.cost;
        }
        let mut v = 0;
        for (i, s) in self.servers.iter().enumerate() {
            debug_assert_eq!(s.used, used[i], "used tally drift on server {i}");
            if s.live && s.used > s.cap {
                v += 1;
            }
            if !s.live && s.used > 0 {
                v += 1;
            }
        }
        v
    }
}

/// Metrics handles registered once against the global `sb-obs` registry.
struct PackMetrics {
    placed: sb_obs::Counter,
    placement_failures: sb_obs::Counter,
    migrations: sb_obs::Counter,
    grow_rejections: sb_obs::Counter,
    dc_moves: sb_obs::Counter,
    server_deaths: sb_obs::Counter,
    death_spills: sb_obs::Counter,
    violations: sb_obs::Counter,
    utilization_pct: sb_obs::Gauge,
}

fn pack_metrics() -> &'static PackMetrics {
    static METRICS: std::sync::OnceLock<PackMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = sb_obs::global();
        PackMetrics {
            placed: reg.counter("pack.placed"),
            placement_failures: reg.counter("pack.placement_failures"),
            migrations: reg.counter("pack.intra_dc_migrations"),
            grow_rejections: reg.counter("pack.grow_rejections"),
            dc_moves: reg.counter("pack.dc_moves"),
            server_deaths: reg.counter("pack.server_deaths"),
            death_spills: reg.counter("pack.death_spills"),
            violations: reg.counter("pack.capacity_violations"),
            utilization_pct: reg.gauge("pack.utilization_pct"),
        }
    })
}

/// Outcome of [`FleetPacker::move_dc`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MoveDcOutcome {
    /// The call now occupies this server in the destination DC.
    Moved(ServerId),
    /// The destination DC had no feasible server; the call is no longer
    /// packed anywhere (the DC-level selector still tracks it).
    Unpacked,
    /// The call was not packed in the source DC.
    Unknown,
}

/// Thread-safe fleet-wide packer: one [`Mutex`]-guarded per-DC packer per
/// data center, so ops on different DCs never contend and ops inside one
/// DC serialize — the same sharding discipline the selector uses.
pub struct FleetPacker {
    spec: FleetSpec,
    dcs: Vec<Mutex<DcPacker>>,
}

impl FleetPacker {
    /// Build a packer over `spec` with every server live and empty.
    pub fn new(spec: FleetSpec, cfg: PackerConfig) -> Self {
        let dcs = (0..spec.num_dcs())
            .map(|d| Mutex::new(DcPacker::new(spec.capacities(DcId(d as u16)), cfg)))
            .collect();
        Self { spec, dcs }
    }

    /// The static fleet description.
    pub fn spec(&self) -> &FleetSpec {
        &self.spec
    }

    /// Place a new call in `dc`. Returns the chosen server, or `None` if no
    /// live server fits (the call stays DC-placed but unpacked).
    pub fn place(
        &self,
        dc: DcId,
        call: u64,
        participants: u32,
        cost_mcpu: u32,
        reserve_mcpu: u32,
    ) -> Option<ServerId> {
        let m = pack_metrics();
        match self.dcs[dc.0 as usize]
            .lock()
            .place(call, participants, cost_mcpu, reserve_mcpu)
        {
            Some(i) => {
                m.placed.inc();
                Some(ServerId { dc, index: i })
            }
            None => {
                m.placement_failures.inc();
                None
            }
        }
    }

    /// Apply participant growth to a packed call.
    pub fn grow(
        &self,
        dc: DcId,
        call: u64,
        participants: u32,
        cost_mcpu: u32,
        reserve_mcpu: u32,
    ) -> GrowOutcome {
        let out = self.dcs[dc.0 as usize]
            .lock()
            .grow(call, participants, cost_mcpu, reserve_mcpu);
        let m = pack_metrics();
        match out.kind {
            GrowKind::Moved { .. } => m.migrations.inc(),
            GrowKind::Evicted { victims } => m.migrations.add(victims as u64),
            GrowKind::Rejected => m.grow_rejections.inc(),
            GrowKind::Stayed | GrowKind::Unknown => {}
        }
        out
    }

    /// Mark a packed call's config frozen (it can no longer be moved by
    /// growth re-packs). Returns `false` for untracked calls.
    pub fn freeze(&self, dc: DcId, call: u64) -> bool {
        self.dcs[dc.0 as usize].lock().freeze(call)
    }

    /// Remove a call at end-of-call. Returns the server it occupied.
    pub fn remove(&self, dc: DcId, call: u64) -> Option<ServerId> {
        self.dcs[dc.0 as usize]
            .lock()
            .remove(call)
            .map(|i| ServerId { dc, index: i })
    }

    /// Move a call between DCs (a selector freeze-time migration),
    /// preserving its frozen flag and charged size.
    pub fn move_dc(&self, from: DcId, to: DcId, call: u64) -> MoveDcOutcome {
        let Some(slot) = self.dcs[from.0 as usize].lock().detach(call) else {
            return MoveDcOutcome::Unknown;
        };
        let m = pack_metrics();
        m.dc_moves.inc();
        let mut dst = self.dcs[to.0 as usize].lock();
        dst.stats.dc_moves += 1;
        match dst.fit(slot.cost, slot.reserve, None, false) {
            Some(i) => {
                dst.attach(call, CallSlot { server: i, ..slot });
                MoveDcOutcome::Moved(ServerId { dc: to, index: i })
            }
            None => {
                dst.stats.placement_failures += 1;
                m.placement_failures.inc();
                MoveDcOutcome::Unpacked
            }
        }
    }

    /// Kill one server: drain its calls onto surviving in-DC servers,
    /// spilling whatever does not fit back to the caller.
    pub fn kill_server(&self, server: ServerId) -> KillResult {
        let r = self.dcs[server.dc.0 as usize].lock().kill(server.index);
        if !r.already_dead {
            let m = pack_metrics();
            m.server_deaths.inc();
            m.migrations.add(r.rehomed.len() as u64);
            m.death_spills.add(r.spilled.len() as u64);
        }
        r
    }

    /// The server currently hosting `call` in `dc`, if packed.
    pub fn server_of(&self, dc: DcId, call: u64) -> Option<ServerId> {
        self.dcs[dc.0 as usize]
            .lock()
            .calls
            .get(&call)
            .map(|c| ServerId {
                dc,
                index: c.server,
            })
    }

    /// Full slot info for `call` in `dc`, if packed.
    pub fn call_info(&self, dc: DcId, call: u64) -> Option<CallInfo> {
        self.dcs[dc.0 as usize]
            .lock()
            .calls
            .get(&call)
            .map(|c| CallInfo {
                server: ServerId {
                    dc,
                    index: c.server,
                },
                participants: c.participants,
                cost_mcpu: c.cost,
                reserve_mcpu: c.reserve,
                frozen: c.frozen,
            })
    }

    /// Op counters summed across DCs.
    pub fn stats(&self) -> PackStats {
        let mut total = PackStats::default();
        for dc in &self.dcs {
            total.add(&dc.lock().stats);
        }
        total
    }

    /// Deterministic occupancy snapshot (recovery equality witness).
    pub fn export_state(&self) -> PackStateExport {
        let mut out = PackStateExport::default();
        for dc in &self.dcs {
            let (servers, calls) = dc.lock().export();
            out.servers.push(servers);
            out.calls.push(calls);
        }
        out
    }

    /// Peak observed `used` per server, flattened in `(dc, index)` order.
    pub fn per_server_peak_mcpu(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.spec.num_servers());
        for dc in &self.dcs {
            out.extend(dc.lock().servers.iter().map(|s| s.peak_used));
        }
        out
    }

    /// Total initial placements per server, flattened in `(dc, index)` order.
    pub fn per_server_placed(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.spec.num_servers());
        for dc in &self.dcs {
            out.extend(dc.lock().servers.iter().map(|s| s.placed));
        }
        out
    }

    /// Count of hard-invariant violations (live server over capacity, or a
    /// dead server still hosting load). Always 0 unless restore-mode ops
    /// were fed an inconsistent journal. Also published as
    /// `pack.capacity_violations`.
    pub fn capacity_violations(&self) -> u64 {
        let v: u64 = self.dcs.iter().map(|d| d.lock().violations()).sum();
        pack_metrics().violations.add(v);
        v
    }

    /// Fleet-wide utilization: total used over total live capacity, in
    /// `[0, 1]`. Also published as the `pack.utilization_pct` gauge.
    pub fn utilization(&self) -> f64 {
        let mut used = 0u64;
        let mut cap = 0u64;
        for dc in &self.dcs {
            for s in dc.lock().servers.iter() {
                if s.live {
                    used += s.used as u64;
                    cap += s.cap as u64;
                }
            }
        }
        let u = if cap == 0 {
            0.0
        } else {
            used as f64 / cap as f64
        };
        pack_metrics().utilization_pct.set(u * 100.0);
        u
    }

    /// Restore-mode absolute placement (recovery only): force `call` onto
    /// `server` with the given charge, updating tallies but no stats, no
    /// peaks, and no scoring. `server == NO_SERVER` clears the slot.
    #[allow(clippy::too_many_arguments)]
    pub fn restore_set(
        &self,
        dc: DcId,
        call: u64,
        server: u16,
        participants: u32,
        cost_mcpu: u32,
        reserve_mcpu: u32,
        frozen: bool,
    ) {
        self.dcs[dc.0 as usize].lock().restore_set(
            call,
            server,
            participants,
            cost_mcpu,
            reserve_mcpu,
            frozen,
        );
    }

    /// Restore-mode removal (recovery only): drop `call`'s slot without
    /// touching stats.
    pub fn restore_remove(&self, dc: DcId, call: u64) {
        self.dcs[dc.0 as usize]
            .lock()
            .restore_set(call, NO_SERVER, 0, 0, 0, false);
    }

    /// Restore-mode server death (recovery only): mark the server dead and
    /// leave its calls in place — the journal's subsequent pack records
    /// carry where each call went.
    pub fn restore_kill(&self, server: ServerId) {
        self.dcs[server.dc.0 as usize].lock().servers[server.index as usize].live = false;
    }
}

impl std::fmt::Debug for FleetPacker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetPacker")
            .field("spec", &self.spec)
            .field("stats", &self.stats())
            .finish()
    }
}

/// Offline best-fit-decreasing bin packing of `costs_mcpu` onto
/// `capacities_mcpu`: returns how many servers end up non-empty, a static
/// lower-bound baseline for the online packers in the efficiency bench.
/// Items that fit nowhere are skipped (and reported in the second tuple
/// element).
pub fn best_fit_decreasing(capacities_mcpu: &[u32], costs_mcpu: &[u32]) -> (usize, usize) {
    let mut items: Vec<u32> = costs_mcpu.to_vec();
    items.sort_unstable_by(|a, b| b.cmp(a));
    let mut free: Vec<u32> = capacities_mcpu.to_vec();
    let mut touched = vec![false; free.len()];
    let mut dropped = 0;
    for item in items {
        let best = free
            .iter()
            .enumerate()
            .filter(|&(_, &f)| f >= item)
            .min_by_key(|&(i, &f)| (f - item, i))
            .map(|(i, _)| i);
        match best {
            Some(i) => {
                free[i] -= item;
                touched[i] = true;
            }
            None => dropped += 1,
        }
    }
    (touched.iter().filter(|&&t| t).count(), dropped)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packer(caps: &[u32], policy: PackPolicy) -> FleetPacker {
        let mut spec = FleetSpec::empty(1);
        for &c in caps {
            spec.push_server(DcId(0), c);
        }
        FleetPacker::new(
            spec,
            PackerConfig {
                policy,
                ..PackerConfig::default()
            },
        )
    }

    const D0: DcId = DcId(0);

    #[test]
    fn best_fit_picks_tightest_server() {
        let p = packer(&[1_000, 400, 600], PackPolicy::BestFit);
        // cost 350 fits all; tightest is the 400
        let s = p.place(D0, 1, 1, 350, 350).unwrap();
        assert_eq!(s.index, 1);
        // next 350: server 1 has 50 left (no fit); 600 is tighter than 1000
        let s = p.place(D0, 2, 1, 350, 350).unwrap();
        assert_eq!(s.index, 2);
    }

    #[test]
    fn growth_aware_prefers_reserved_fit() {
        let p = packer(&[1_000, 1_000], PackPolicy::GrowthAware);
        // call 1: cost 200, reserve 900 → server 0
        assert_eq!(p.place(D0, 1, 1, 200, 900).unwrap().index, 0);
        // call 2: cost 200, reserve 900: server 0 fits the cost but its
        // reservations (900+900) overshoot; server 1 is the preferred fit
        assert_eq!(p.place(D0, 2, 1, 200, 900).unwrap().index, 1);
        // call 3: no server has reserved headroom → fall back to the most
        // predicted headroom (both equal at 100 → still deterministic)
        let s = p.place(D0, 3, 1, 200, 900).unwrap();
        assert_eq!(s.index, 0);
    }

    #[test]
    fn place_fails_when_nothing_fits() {
        let p = packer(&[500], PackPolicy::BestFit);
        assert!(p.place(D0, 1, 1, 501, 501).is_none());
        assert_eq!(p.stats().placement_failures, 1);
        assert_eq!(p.stats().placed, 0);
    }

    #[test]
    fn grow_in_place_then_forced_move() {
        let p = packer(&[1_000, 2_000], PackPolicy::BestFit);
        assert_eq!(p.place(D0, 1, 1, 800, 800).unwrap().index, 0);
        // grows to 950: still fits server 0
        assert!(matches!(p.grow(D0, 1, 2, 950, 950).kind, GrowKind::Stayed));
        // grows to 1_100: must move to server 1
        let out = p.grow(D0, 1, 3, 1_100, 1_100);
        assert_eq!(
            out.kind,
            GrowKind::Moved {
                from: 0,
                to: 1,
                proactive: false
            }
        );
        assert_eq!(out.changed, vec![(1, 1, 1_100)]);
        assert_eq!(p.stats().repacks, 1);
        assert_eq!(p.server_of(D0, 1).unwrap().index, 1);
    }

    #[test]
    fn grow_rejected_when_nothing_fits_keeps_old_cost() {
        let p = packer(&[1_000], PackPolicy::BestFit);
        p.place(D0, 1, 1, 800, 800).unwrap();
        let out = p.grow(D0, 1, 2, 1_200, 1_200);
        assert_eq!(out.kind, GrowKind::Rejected);
        assert_eq!(p.call_info(D0, 1).unwrap().cost_mcpu, 800);
        assert_eq!(p.stats().grow_rejections, 1);
    }

    #[test]
    fn frozen_growth_evicts_unfrozen_victims() {
        let p = packer(&[1_000, 1_000], PackPolicy::BestFit);
        p.place(D0, 1, 1, 600, 600).unwrap(); // server 0
        p.place(D0, 2, 1, 300, 300).unwrap(); // server 0 (tight fit: 400 left → best fit picks 0)
        assert_eq!(p.server_of(D0, 2).unwrap().index, 0);
        p.freeze(D0, 1);
        // frozen call 1 grows to 900: victim 2 must be evicted to server 1
        let out = p.grow(D0, 1, 2, 900, 900);
        assert_eq!(out.kind, GrowKind::Evicted { victims: 1 });
        assert_eq!(p.server_of(D0, 2).unwrap().index, 1);
        assert_eq!(p.server_of(D0, 1).unwrap().index, 0);
        assert_eq!(p.stats().evictions, 1);
    }

    #[test]
    fn frozen_growth_never_moves_the_frozen_call() {
        let p = packer(&[1_000, 5_000], PackPolicy::BestFit);
        p.place(D0, 1, 1, 900, 900).unwrap(); // server 0
        p.freeze(D0, 1);
        // 1_200 can never fit server 0, and frozen calls don't move
        let out = p.grow(D0, 1, 2, 1_200, 1_200);
        assert_eq!(out.kind, GrowKind::Rejected);
        assert_eq!(p.server_of(D0, 1).unwrap().index, 0);
    }

    #[test]
    fn proactive_repack_respects_hysteresis() {
        let mut spec = FleetSpec::empty(1);
        spec.push_server(D0, 1_000);
        spec.push_server(D0, 1_000);
        spec.push_server(D0, 2_000);
        let p = FleetPacker::new(
            spec,
            PackerConfig {
                policy: PackPolicy::GrowthAware,
                hysteresis_mcpu: 300,
                max_evictions: 4,
            },
        );
        p.place(D0, 1, 1, 300, 700).unwrap(); // s0 (tightest reserved fit)
        p.place(D0, 2, 1, 300, 700).unwrap(); // s1
        p.place(D0, 3, 1, 100, 200).unwrap(); // s0 (leftover 100 beats s2's 1800)
        assert_eq!(p.server_of(D0, 3).unwrap().index, 0);
        // call 3 grows: s0 reserved 700-200+500 = 1_200, within
        // cap + hysteresis (1_300) → stays put
        assert!(matches!(p.grow(D0, 3, 2, 200, 500).kind, GrowKind::Stayed));
        // grows again: s0 reserved 1_200-500+700 = 1_400 > 1_300 → the
        // hysteresis band is breached; s2 has reserved headroom → move
        let out = p.grow(D0, 3, 3, 300, 700);
        assert_eq!(
            out.kind,
            GrowKind::Moved {
                from: 0,
                to: 2,
                proactive: true
            }
        );
        assert_eq!(p.stats().proactive_repacks, 1);
        assert_eq!(p.stats().repacks, 0);
    }

    #[test]
    fn kill_server_rehomes_in_dc_and_spills_rest() {
        let p = packer(&[1_000, 500], PackPolicy::BestFit);
        // best fit: 400 → server 1 (100 left beats 600 left)
        p.place(D0, 1, 1, 400, 400).unwrap();
        assert_eq!(p.server_of(D0, 1).unwrap().index, 1);
        p.place(D0, 2, 1, 450, 450).unwrap(); // only server 0 fits
        p.place(D0, 3, 1, 500, 500).unwrap(); // server 0 again (550 free)
        let r = p.kill_server(ServerId { dc: D0, index: 0 });
        assert!(!r.already_dead && !r.was_empty);
        // drain in id order: server 1 has 100 free → calls 2 and 3 spill
        assert!(r.rehomed.is_empty());
        assert_eq!(
            r.spilled.iter().map(|s| s.call).collect::<Vec<_>>(),
            vec![2, 3]
        );
        assert_eq!(p.stats().server_deaths, 1);
        assert_eq!(p.stats().death_spills, 2);
        assert_eq!(p.capacity_violations(), 0);
        // dead server takes no new placements
        let s = p.place(D0, 4, 1, 100, 100).unwrap();
        assert_eq!(s.index, 1);
    }

    #[test]
    fn kill_empty_server_is_counted_noop() {
        let p = packer(&[1_000, 1_000], PackPolicy::BestFit);
        p.place(D0, 1, 1, 100, 100).unwrap();
        let r = p.kill_server(ServerId { dc: D0, index: 1 });
        assert!(!r.already_dead);
        assert!(r.was_empty);
        assert!(r.rehomed.is_empty() && r.spilled.is_empty());
        assert_eq!(p.stats().server_deaths, 1);
        // killing it again is a pure no-op
        let r = p.kill_server(ServerId { dc: D0, index: 1 });
        assert!(r.already_dead);
        assert_eq!(p.stats().server_deaths, 1);
    }

    #[test]
    fn move_dc_preserves_frozen_flag() {
        let mut spec = FleetSpec::empty(2);
        spec.push_server(DcId(0), 1_000);
        spec.push_server(DcId(1), 1_000);
        let p = FleetPacker::new(spec, PackerConfig::default());
        p.place(DcId(0), 1, 2, 500, 500).unwrap();
        p.freeze(DcId(0), 1);
        let out = p.move_dc(DcId(0), DcId(1), 1);
        assert!(matches!(out, MoveDcOutcome::Moved(s) if s.dc == DcId(1)));
        let info = p.call_info(DcId(1), 1).unwrap();
        assert!(info.frozen);
        assert_eq!(info.cost_mcpu, 500);
        assert_eq!(p.stats().dc_moves, 1);
        assert!(p.server_of(DcId(0), 1).is_none());
    }

    #[test]
    fn restore_round_trip_matches_live_state() {
        let p = packer(&[1_000, 800], PackPolicy::GrowthAware);
        p.place(D0, 1, 1, 300, 600).unwrap();
        p.place(D0, 2, 1, 400, 500).unwrap();
        p.freeze(D0, 2);
        p.grow(D0, 1, 2, 500, 700);
        let live = p.export_state();

        let q = packer(&[1_000, 800], PackPolicy::GrowthAware);
        for (dc, calls) in live.calls.iter().enumerate() {
            for &(id, server, participants, cost, reserve, frozen) in calls {
                q.restore_set(
                    DcId(dc as u16),
                    id,
                    server,
                    participants,
                    cost,
                    reserve,
                    frozen,
                );
            }
        }
        assert_eq!(q.export_state(), live);
        assert_eq!(q.capacity_violations(), 0);
    }

    #[test]
    fn stats_and_tallies_accumulate() {
        let p = packer(&[1_000], PackPolicy::BestFit);
        p.place(D0, 1, 1, 300, 300).unwrap();
        p.place(D0, 2, 1, 300, 300).unwrap();
        p.remove(D0, 1);
        p.place(D0, 3, 1, 300, 300).unwrap();
        let s = p.stats();
        assert_eq!(s.placed, 3);
        assert_eq!(s.removed, 1);
        assert_eq!(p.per_server_placed(), vec![3]);
        assert_eq!(p.per_server_peak_mcpu(), vec![600]);
        assert!(p.utilization() > 0.0);
    }

    #[test]
    fn best_fit_decreasing_baseline() {
        // items 6,5,4,3 onto caps 10,10,10 → BFD: 6+4, 5+3 → 2 servers
        let (servers, dropped) = best_fit_decreasing(&[10, 10, 10], &[4, 6, 3, 5]);
        assert_eq!((servers, dropped), (2, 0));
        let (_, dropped) = best_fit_decreasing(&[4], &[5, 3]);
        assert_eq!(dropped, 1);
    }
}
