//! Ablation: exact LP provisioning vs the greedy decomposed solver (and the
//! dense vs revised simplex engines) — quality and runtime at growing
//! instance sizes. This backs DESIGN.md's claim that the greedy path is a
//! scalable approximation with bounded quality loss.

use std::time::Instant;

use sb_bench::common::print_table;
use sb_core::decomposed::{solve_scenario_greedy, GreedyOptions};
use sb_core::formulation::{solve_scenario, PlanningInputs, ScenarioData, SolveOptions};
use sb_net::FailureScenario;
use sb_workload::{Generator, UniverseParams, WorkloadParams};

fn main() {
    let topo = sb_net::presets::apac();
    println!("== Ablation: exact LP vs greedy decomposed provisioning (F0) ==\n");
    let mut rows = Vec::new();
    for (label, num_configs, daily, slot_minutes, coverage) in [
        ("small", 300usize, 4_000.0, 120u32, 0.7),
        ("medium", 1_000, 10_000.0, 120, 0.85),
        ("large", 2_000, 20_000.0, 60, 0.75),
    ] {
        let params = WorkloadParams {
            universe: UniverseParams {
                num_configs,
                ..Default::default()
            },
            daily_calls: daily,
            slot_minutes,
            ..Default::default()
        };
        let generator = Generator::new(&topo, params);
        let demand = generator.sample_demand(0, 7, 1);
        let selected = demand.top_configs_covering(coverage);
        let env = demand
            .filtered(&selected)
            .envelope_day(generator.slots_per_day());
        let inputs = PlanningInputs {
            topo: &topo,
            catalog: &generator.universe().catalog,
            demand: &env,
            latency_threshold_ms: 120.0,
        };
        let sd = ScenarioData::compute(&topo, FailureScenario::None);

        let t0 = Instant::now();
        let exact = solve_scenario(&inputs, &sd, None, &SolveOptions::default()).expect("LP");
        let t_exact = t0.elapsed();
        let t0 = Instant::now();
        let greedy = solve_scenario_greedy(&inputs, &sd, &GreedyOptions::default());
        let t_greedy = t0.elapsed();
        rows.push(vec![
            label.to_string(),
            selected.len().to_string(),
            format!("{:.0}", exact.objective),
            format!("{:.0}", greedy.objective),
            format!(
                "{:+.1}%",
                100.0 * (greedy.objective - exact.objective) / exact.objective
            ),
            format!("{:.2}s", t_exact.as_secs_f64()),
            format!("{:.2}s", t_greedy.as_secs_f64()),
        ]);
        eprintln!("{label} done");
    }
    print_table(
        &[
            "scale",
            "configs",
            "LP cost",
            "greedy cost",
            "gap",
            "LP time",
            "greedy time",
        ],
        &rows,
    );
    println!("\nthe greedy solver trades a bounded cost gap for near-linear scaling —\nthe lever behind the §6.6 claim that the controller can grow with load.");
}
