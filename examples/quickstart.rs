//! Quickstart: provision a conferencing service end to end.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the paper's APAC topology, synthesizes a Teams-like workload,
//! provisions compute + WAN jointly with failure backup, computes the daily
//! latency-optimal allocation plan, and prints what was bought and why.

use switchboard::core::formulation::{ScenarioData, SolveOptions};
use switchboard::core::usage::mean_acl;
use switchboard::prelude::*;

fn main() {
    // 1. The provider topology: 4 APAC DCs, 9 countries, WAN links with
    //    per-Gbps prices and per-core DC prices.
    let topo = switchboard::net::presets::apac();
    println!(
        "topology: {} DCs, {} countries, {} links",
        topo.dcs.len(),
        topo.countries.len(),
        topo.links.len()
    );

    // 2. A synthetic workload standing in for the Teams call records.
    let params = WorkloadParams {
        universe: UniverseParams {
            num_configs: 300,
            ..Default::default()
        },
        daily_calls: 4_000.0,
        slot_minutes: 120,
        ..Default::default()
    };
    let generator = Generator::new(&topo, params);
    let demand = generator.sample_demand(0, 7, 1);
    // §5.2: keep the head configs covering most calls, inflate as a cushion
    let selected = demand.top_configs_covering(0.8);
    let head = demand.filtered(&selected).scaled(1.1);
    let envelope = head.envelope_day(generator.slots_per_day());
    println!(
        "workload: {:.0} calls/week, planning {} head configs on a {}-slot envelope day",
        demand.total_calls(),
        selected.len(),
        envelope.num_slots()
    );

    // 3. Provision: one LP per failure scenario, max across scenarios.
    let inputs = PlanningInputs::new(&topo, &generator.universe().catalog, &envelope);
    let plan = provision(&inputs, &ProvisionerParams::default()).expect("provisioning");
    println!("\nprovisioned capacity (serving + backup):");
    for (dc, cores) in topo.dcs.iter().zip(&plan.capacity.cores) {
        println!(
            "  {:>10}: {:>7.1} cores (serving {:>7.1})",
            dc.name,
            cores,
            plan.serving.cores[dc.id.index()]
        );
    }
    println!(
        "  WAN: {:.2} Gbps across inter-country links; total cost ${:.0}",
        plan.capacity.total_wan_gbps(&topo),
        plan.cost
    );

    // 4. The daily allocation plan: latency-optimal placement within the
    //    provisioned capacity (Eq. 10).
    let sd0 = ScenarioData::compute(&topo, FailureScenario::None);
    let shares = allocation_plan(&inputs, &sd0, &plan.capacity, &SolveOptions::default())
        .expect("allocation plan");
    let acl = mean_acl(
        &sd0.latmap,
        &generator.universe().catalog,
        &envelope,
        &shares,
    );
    println!("\nallocation plan: expected mean ACL {acl:.1} ms (threshold 120 ms)");

    // 5. Every single-DC failure is survivable within the plan.
    for (sc, cap) in &plan.scenarios {
        if let FailureScenario::DcDown(dc) = sc {
            assert!(plan.capacity.covers(cap, 1e-6));
            println!(
                "  {} down → requirement {:.0} cores, covered ✓",
                topo.dcs[dc.index()].name,
                cap.total_cores()
            );
        }
    }
}
