//! Table 1: relative compute load (CL), network load (NL) and NL/CL ratio
//! per media type, normalized to audio. The paper reports bands (audio 1×/1×,
//! screen-share 1–2× / 10–20× / 10–15×, video 2–4× / 30–40× / 15–20×); this
//! reproduction pins concrete values inside those bands.

use sb_bench::common::print_table;
use sb_workload::MediaType;

fn main() {
    println!("== Table 1: relative per-participant loads by media type ==\n");
    let a_cl = MediaType::Audio.compute_load();
    let a_nl = MediaType::Audio.network_load();
    let rows: Vec<Vec<String>> = MediaType::all()
        .into_iter()
        .map(|m| {
            let cl = m.compute_load() / a_cl;
            let nl = m.network_load() / a_nl;
            vec![
                m.label().to_string(),
                format!("{cl:.1}x"),
                format!("{nl:.1}x"),
                format!("{:.1}x", nl / cl),
                format!("{:.3}", m.compute_load()),
                format!("{:.4}", m.network_load()),
            ]
        })
        .collect();
    print_table(
        &["media", "CL", "NL", "NL/CL", "cores/part", "Gbps/leg"],
        &rows,
    );
    println!(
        "\npaper bands: audio 1x/1x/1x, screen-share 1-2x/10-20x/10-15x, video 2-4x/30-40x/15-20x"
    );
}
