//! Property tests for journal-replay idempotency (crash-safety §: a torn or
//! duplicated journal tail must never cause silent divergence).
//!
//! For arbitrary op sequences driven through a journaled engine:
//!
//! * a **duplicated tail frame** is detected as a typed
//!   [`sb_store::JournalReadError::SeqMismatch`] — never replayed twice;
//! * a **torn tail** (truncate at any byte offset) recovers to a valid
//!   prefix, and recovering the same journal twice is bitwise-deterministic;
//! * a **flipped byte** anywhere in the file yields a typed error or a
//!   clean prefix of the original record stream — never divergent state.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use sb_core::{AllocationShares, LatencyMap, PlanArtifact, PlannedQuotas};
use sb_engine::{Engine, EngineConfig, RecoveryError, WalRecord};
use sb_net::{CountryId, FailureScenario, RoutingTable};
use sb_store::{Journal, JournalConfig, JournalReadError, MediaFlag};
use sb_workload::{ConfigId, DemandMatrix};

/// One lifecycle op; ids collide on purpose (unknown-call paths included).
#[derive(Clone, Debug)]
enum Op {
    Admit { id: u64, country: u16 },
    Join { id: u64, country: u16 },
    Media { id: u64, media: u8 },
    Freeze { id: u64, minute: u64 },
    End { id: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..16, 0u16..3).prop_map(|(id, country)| Op::Admit { id, country }),
        (0u64..16, 0u16..3).prop_map(|(id, country)| Op::Join { id, country }),
        (0u64..16, 0u8..3).prop_map(|(id, media)| Op::Media { id, media }),
        (0u64..16, 0u64..240).prop_map(|(id, minute)| Op::Freeze { id, minute }),
        (0u64..16).prop_map(|id| Op::End { id }),
    ]
}

fn world() -> (LatencyMap, PlanArtifact) {
    let topo = sb_net::presets::toy_three_dc();
    let routing = RoutingTable::compute(&topo, FailureScenario::None);
    let latmap = LatencyMap::from_routing(&topo, &routing);
    let slots = 4;
    let mut shares = AllocationShares::new(slots);
    let mut demand = DemandMatrix::zero(1, slots, 60, 0);
    let tokyo = topo.dc_by_name("Tokyo");
    for s in 0..slots {
        shares.set(ConfigId(0), s, vec![(tokyo, 1.0)]);
        demand.set(ConfigId(0), s, 12.0);
    }
    (
        latmap,
        PlanArtifact::seed(PlannedQuotas::from_plan(&shares, &demand)),
    )
}

static CASE: AtomicU64 = AtomicU64::new(0);

fn temp_path(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "sb-proptest-{tag}-{}-{}.wal",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_file(&p);
    p
}

fn media_of(code: u8) -> MediaFlag {
    match code {
        1 => MediaFlag::ScreenShare,
        2 => MediaFlag::Video,
        _ => MediaFlag::Audio,
    }
}

/// Drive `ops` through a journaled engine (every record synced) and return
/// the journal path.
fn run_journaled(latmap: &LatencyMap, artifact: &PlanArtifact, ops: &[Op], tag: &str) -> PathBuf {
    let path = temp_path(tag);
    let jcfg = JournalConfig {
        sync_every: 1,
        ..JournalConfig::default()
    };
    let journal = Journal::create(&path, jcfg).expect("create journal");
    let engine = Engine::with_journal(latmap, artifact, &EngineConfig::default(), journal)
        .expect("boot journaled engine");
    let mut w = engine.worker();
    for op in ops {
        match *op {
            Op::Admit { id, country } => {
                let _ = w.admit(id, CountryId(country));
            }
            Op::Join { id, country } => w.join(id, CountryId(country)),
            Op::Media { id, media } => w.set_media(id, media_of(media)),
            Op::Freeze { id, minute } => {
                let _ = w.freeze(id, ConfigId(0), minute);
            }
            Op::End { id } => w.end(id),
        }
    }
    drop(w);
    engine.sync_journal();
    path
}

/// Read the raw framed bytes of the last record (for duplication).
fn last_frame(path: &PathBuf) -> Option<Vec<u8>> {
    let bytes = std::fs::read(path).expect("read journal file");
    let mut at = 8usize; // skip magic
    let mut last: Option<(usize, usize)> = None;
    while at + 4 <= bytes.len() {
        let len =
            u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]]) as usize;
        let end = at + 8 + len;
        if end > bytes.len() {
            break;
        }
        last = Some((at, end));
        at = end;
    }
    last.map(|(s, e)| bytes[s..e].to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Duplicating the final frame (a crashed writer re-emitting its last
    /// record) is detected as a typed sequence error, never replayed twice.
    #[test]
    fn duplicated_tail_record_is_a_typed_error(
        ops in proptest::collection::vec(op_strategy(), 1..40)
    ) {
        let (latmap, artifact) = world();
        let path = run_journaled(&latmap, &artifact, &ops, "dup");
        let frame = last_frame(&path).expect("at least the boot plan record");
        let mut bytes = std::fs::read(&path).expect("read journal");
        bytes.extend_from_slice(&frame);
        std::fs::write(&path, &bytes).expect("write duplicated tail");
        let res = Engine::recover(
            &latmap, &EngineConfig::default(), JournalConfig::default(), &path,
        );
        match res {
            Err(RecoveryError::Journal(JournalReadError::SeqMismatch { .. })) => {}
            other => {
                let _ = std::fs::remove_file(&path);
                panic!("expected SeqMismatch, got {:?}", other.map(|(_, r)| r.records));
            }
        }
        let _ = std::fs::remove_file(&path);
    }

    /// Truncating the journal at any byte offset (torn tail) recovers to a
    /// clean prefix, and recovery is deterministic: recovering twice gives
    /// bitwise-identical engine state.
    #[test]
    fn torn_tail_recovers_to_a_deterministic_prefix(
        ops in proptest::collection::vec(op_strategy(), 1..40),
        cut in 0usize..200,
    ) {
        let (latmap, artifact) = world();
        let path = run_journaled(&latmap, &artifact, &ops, "torn");
        let bytes = std::fs::read(&path).expect("read journal");
        let full_records = Journal::scan(&path).expect("scan full journal").records;
        // keep at least the magic + the boot-plan frame so recovery can boot
        let boot_end = 8 + 8 + u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]) as usize;
        let keep = bytes.len().saturating_sub(cut).max(boot_end);
        std::fs::write(&path, &bytes[..keep]).expect("write torn journal");

        let jcfg = JournalConfig::default();
        let (engine_a, report_a) =
            Engine::recover(&latmap, &EngineConfig::default(), jcfg, &path)
                .expect("torn tail must recover");
        prop_assert!(report_a.records as usize <= full_records.len());
        // the recovered ops are a strict prefix of the original stream
        for (i, rec) in report_a.ops.iter().enumerate() {
            let orig = WalRecord::decode(&full_records[i]).expect("original record decodes");
            prop_assert_eq!(rec.clone(), orig);
        }
        let state_a = engine_a.export_selector_state();
        let stats_a = engine_a.stats();
        drop(engine_a);

        let (engine_b, report_b) =
            Engine::recover(&latmap, &EngineConfig::default(), jcfg, &path)
                .expect("second recovery must also succeed");
        prop_assert_eq!(report_b.records, report_a.records);
        prop_assert_eq!(report_b.torn_tail_bytes, 0); // first pass truncated it
        prop_assert_eq!(engine_b.export_selector_state(), state_a);
        prop_assert_eq!(engine_b.stats(), stats_a);
        let _ = std::fs::remove_file(&path);
    }

    /// Flipping any single byte yields a typed error or a clean prefix of
    /// the original record stream — never silently divergent state.
    #[test]
    fn byte_flip_is_detected_or_truncates_cleanly(
        ops in proptest::collection::vec(op_strategy(), 1..30),
        flip_at in 0usize..4096,
        flip_bit in 0u8..8,
    ) {
        let (latmap, artifact) = world();
        let path = run_journaled(&latmap, &artifact, &ops, "flip");
        let full_records = Journal::scan(&path).expect("scan full journal").records;
        let mut bytes = std::fs::read(&path).expect("read journal");
        let at = flip_at % bytes.len();
        bytes[at] ^= 1 << flip_bit;
        std::fs::write(&path, &bytes).expect("write flipped journal");

        match Engine::recover(
            &latmap, &EngineConfig::default(), JournalConfig::default(), &path,
        ) {
            Err(_) => {} // typed error: detected
            Ok((engine, report)) => {
                // accepted: every surviving record must match the original
                // stream record-for-record (prefix property)
                prop_assert!(report.records as usize <= full_records.len());
                for (i, rec) in report.ops.iter().enumerate() {
                    let orig = WalRecord::decode(&full_records[i])
                        .expect("original record decodes");
                    prop_assert_eq!(rec.clone(), orig);
                }
                drop(engine);
            }
        }
        let _ = std::fs::remove_file(&path);
    }
}
