//! WAN topology: regions, datacenters, countries (edge sites), and links.
//!
//! Node model: every country has one *edge site* — the aggregation point where
//! its participants enter the provider network — plus the datacenters that can
//! host MP servers. Links connect edge sites to DCs and DCs to each other.
//! Edge sites never transit traffic (only originate/terminate), matching how
//! conferencing traffic actually flows: participant → edge → WAN → MP server.

use crate::geo::{hop_latency_ms, GeoPoint};

/// Region identifier (e.g. APAC, EMEA, Americas).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct RegionId(pub u16);

/// Datacenter identifier; indexes [`Topology::dcs`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct DcId(pub u16);

/// Country identifier; indexes [`Topology::countries`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct CountryId(pub u16);

/// Link identifier; indexes [`Topology::links`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct LinkId(pub u32);

impl DcId {
    /// Index form.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}
impl CountryId {
    /// Index form.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}
impl LinkId {
    /// Index form.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}
impl RegionId {
    /// Index form.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Endpoint of a link.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Node {
    /// A datacenter.
    Dc(DcId),
    /// A country edge site.
    Edge(CountryId),
}

/// A named region.
#[derive(Clone, Debug)]
pub struct Region {
    /// Identifier.
    pub id: RegionId,
    /// Human-readable name.
    pub name: String,
}

/// A datacenter that can host MP servers.
#[derive(Clone, Debug)]
pub struct Datacenter {
    /// Identifier.
    pub id: DcId,
    /// Human-readable name.
    pub name: String,
    /// Region this DC belongs to.
    pub region: RegionId,
    /// Location used to derive link latencies.
    pub location: GeoPoint,
    /// Cost of one provisioned core for the planning horizon (arbitrary $
    /// units; only relative values matter — results are normalized to RR).
    pub core_cost: f64,
}

/// A country: the location granularity for call participants (§5.1).
#[derive(Clone, Debug)]
pub struct Country {
    /// Identifier.
    pub id: CountryId,
    /// ISO-like short name.
    pub name: String,
    /// Region this country belongs to.
    pub region: RegionId,
    /// Location of its edge aggregation site.
    pub location: GeoPoint,
    /// UTC offset in hours (drives the diurnal demand shift).
    pub utc_offset_hours: f64,
    /// Relative user population weight (drives demand volume).
    pub weight: f64,
}

/// A WAN link.
#[derive(Clone, Debug)]
pub struct Link {
    /// Identifier.
    pub id: LinkId,
    /// One endpoint.
    pub a: Node,
    /// Other endpoint.
    pub b: Node,
    /// One-way latency in milliseconds.
    pub latency_ms: f64,
    /// Cost of one provisioned Gbps for the planning horizon (arbitrary $
    /// units).
    pub cost_per_gbps: f64,
    /// Whether the link crosses a country border (only inter-country links are
    /// charged in the paper's "Total WAN capacity" metric, §6.1).
    pub inter_country: bool,
}

/// The full provider topology.
#[derive(Clone, Debug, Default)]
pub struct Topology {
    /// Regions.
    pub regions: Vec<Region>,
    /// Datacenters.
    pub dcs: Vec<Datacenter>,
    /// Countries / edge sites.
    pub countries: Vec<Country>,
    /// Links.
    pub links: Vec<Link>,
    /// Adjacency: for each node, `(link, neighbour)` pairs. Indexed by
    /// [`Topology::node_index`].
    adjacency: Vec<Vec<(LinkId, Node)>>,
}

impl Topology {
    /// Dense node index: DCs first, then edge sites.
    pub fn node_index(&self, n: Node) -> usize {
        match n {
            Node::Dc(d) => d.index(),
            Node::Edge(c) => self.dcs.len() + c.index(),
        }
    }

    /// Total node count (DCs + edge sites).
    pub fn num_nodes(&self) -> usize {
        self.dcs.len() + self.countries.len()
    }

    /// Links incident to `n`.
    pub fn neighbours(&self, n: Node) -> &[(LinkId, Node)] {
        &self.adjacency[self.node_index(n)]
    }

    /// All DCs in `region`.
    pub fn dcs_in_region(&self, region: RegionId) -> impl Iterator<Item = &Datacenter> {
        self.dcs.iter().filter(move |d| d.region == region)
    }

    /// Iterate over DC ids.
    pub fn dc_ids(&self) -> impl Iterator<Item = DcId> {
        (0..self.dcs.len() as u16).map(DcId)
    }

    /// Iterate over country ids.
    pub fn country_ids(&self) -> impl Iterator<Item = CountryId> {
        (0..self.countries.len() as u16).map(CountryId)
    }

    /// Iterate over link ids.
    pub fn link_ids(&self) -> impl Iterator<Item = LinkId> {
        (0..self.links.len() as u32).map(LinkId)
    }

    /// Look up a DC by name (panics if missing; intended for presets/tests).
    pub fn dc_by_name(&self, name: &str) -> DcId {
        self.dcs
            .iter()
            .find(|d| d.name == name)
            .unwrap_or_else(|| panic!("no datacenter named {name}"))
            .id
    }

    /// Look up a country by name (panics if missing; intended for
    /// presets/tests).
    pub fn country_by_name(&self, name: &str) -> CountryId {
        self.countries
            .iter()
            .find(|c| c.name == name)
            .unwrap_or_else(|| panic!("no country named {name}"))
            .id
    }
}

/// Incremental [`Topology`] construction with automatic latency derivation
/// and validation.
#[derive(Default)]
pub struct TopologyBuilder {
    topo: Topology,
}

impl TopologyBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a region.
    pub fn region(&mut self, name: impl Into<String>) -> RegionId {
        let id = RegionId(self.topo.regions.len() as u16);
        self.topo.regions.push(Region {
            id,
            name: name.into(),
        });
        id
    }

    /// Add a datacenter.
    pub fn datacenter(
        &mut self,
        name: impl Into<String>,
        region: RegionId,
        location: GeoPoint,
        core_cost: f64,
    ) -> DcId {
        assert!(core_cost > 0.0, "core cost must be positive");
        let id = DcId(self.topo.dcs.len() as u16);
        self.topo.dcs.push(Datacenter {
            id,
            name: name.into(),
            region,
            location,
            core_cost,
        });
        id
    }

    /// Add a country / edge site.
    pub fn country(
        &mut self,
        name: impl Into<String>,
        region: RegionId,
        location: GeoPoint,
        utc_offset_hours: f64,
        weight: f64,
    ) -> CountryId {
        assert!(weight > 0.0, "country weight must be positive");
        let id = CountryId(self.topo.countries.len() as u16);
        self.topo.countries.push(Country {
            id,
            name: name.into(),
            region,
            location,
            utc_offset_hours,
            weight,
        });
        id
    }

    fn location(&self, n: Node) -> GeoPoint {
        match n {
            Node::Dc(d) => self.topo.dcs[d.index()].location,
            Node::Edge(c) => self.topo.countries[c.index()].location,
        }
    }

    /// Add a link with latency derived from endpoint geography.
    pub fn link(&mut self, a: Node, b: Node, cost_per_gbps: f64) -> LinkId {
        let latency = hop_latency_ms(self.location(a), self.location(b));
        self.link_with_latency(a, b, latency, cost_per_gbps)
    }

    /// Add a link with an explicit latency.
    pub fn link_with_latency(
        &mut self,
        a: Node,
        b: Node,
        latency_ms: f64,
        cost_per_gbps: f64,
    ) -> LinkId {
        assert!(a != b, "self-links are not allowed");
        assert!(latency_ms >= 0.0 && cost_per_gbps >= 0.0);
        let inter_country = self.crosses_country_border(a, b);
        let id = LinkId(self.topo.links.len() as u32);
        self.topo.links.push(Link {
            id,
            a,
            b,
            latency_ms,
            cost_per_gbps,
            inter_country,
        });
        id
    }

    /// Heuristic: a link is inter-country when its endpoints are not
    /// co-located within the same country footprint. DC–DC links are always
    /// inter-country unless the DCs are within ~300 km; edge–DC links are
    /// intra-country when the DC sits within ~700 km of the edge site.
    fn crosses_country_border(&self, a: Node, b: Node) -> bool {
        use crate::geo::haversine_km;
        let d = haversine_km(self.location(a), self.location(b));
        match (a, b) {
            (Node::Dc(_), Node::Dc(_)) => d > 300.0,
            _ => d > 700.0,
        }
    }

    /// Finalize: builds adjacency and validates the graph (no duplicate links,
    /// every country connected to at least one DC, every DC reachable).
    pub fn build(mut self) -> Topology {
        let n = self.topo.num_nodes();
        let mut adjacency = vec![Vec::new(); n];
        for link in &self.topo.links {
            let ia = self.topo.node_index(link.a);
            let ib = self.topo.node_index(link.b);
            adjacency[ia].push((link.id, link.b));
            adjacency[ib].push((link.id, link.a));
        }
        self.topo.adjacency = adjacency;

        // validation: every edge site has a link; undirected reachability over
        // the full graph
        for c in &self.topo.countries {
            assert!(
                !self.topo.neighbours(Node::Edge(c.id)).is_empty(),
                "country {} has no uplink",
                c.name
            );
        }
        if n > 0 {
            let mut seen = vec![false; n];
            let mut stack = vec![0usize];
            seen[0] = true;
            while let Some(i) = stack.pop() {
                for &(_, nb) in &self.topo.adjacency[i] {
                    let j = self.topo.node_index(nb);
                    if !seen[j] {
                        seen[j] = true;
                        stack.push(j);
                    }
                }
            }
            assert!(seen.iter().all(|&s| s), "topology is not connected");
        }
        self.topo
    }
}

/// A failure scenario for provisioning and drills (§5.3 failure model:
/// at most one DC *or* one WAN link down at a time).
#[derive(Copy, Clone, PartialEq, Debug, Default)]
pub enum FailureScenario {
    /// No failure (`F₀`).
    #[default]
    None,
    /// An entire DC is down; all its links are unusable too.
    DcDown(DcId),
    /// A single WAN link is down.
    LinkDown(LinkId),
}

impl FailureScenario {
    /// Is `dc` usable under this scenario?
    pub fn dc_up(&self, dc: DcId) -> bool {
        !matches!(self, FailureScenario::DcDown(d) if *d == dc)
    }

    /// Is `link` usable under this scenario (given the topology, since a DC
    /// failure takes its links down with it)?
    pub fn link_up(&self, topo: &Topology, link: LinkId) -> bool {
        match *self {
            FailureScenario::None => true,
            FailureScenario::LinkDown(l) => l != link,
            FailureScenario::DcDown(d) => {
                let l = &topo.links[link.index()];
                l.a != Node::Dc(d) && l.b != Node::Dc(d)
            }
        }
    }

    /// Enumerate `F₀`, every DC failure and every link failure for `topo`.
    pub fn enumerate(topo: &Topology) -> Vec<FailureScenario> {
        let mut v = vec![FailureScenario::None];
        v.extend(topo.dc_ids().map(FailureScenario::DcDown));
        v.extend(topo.link_ids().map(FailureScenario::LinkDown));
        v
    }
}

/// An arbitrary set of simultaneously-failed DCs and links.
///
/// [`FailureScenario`] encodes the §5.3 provisioning assumption (at most one
/// DC *or* one WAN link down); the chaos engine needs to overlap faults — a
/// link flap during a DC outage, say — so routing and reachability queries
/// accept this generalized mask instead. A DC being down implicitly takes all
/// of its incident links down, mirroring `FailureScenario::DcDown`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FailureMask {
    dc_down: Vec<bool>,
    link_down: Vec<bool>,
}

impl FailureMask {
    /// Everything up.
    pub fn healthy(topo: &Topology) -> FailureMask {
        FailureMask {
            dc_down: vec![false; topo.dcs.len()],
            link_down: vec![false; topo.links.len()],
        }
    }

    /// The mask equivalent to a single `scenario`.
    pub fn from_scenario(topo: &Topology, scenario: FailureScenario) -> FailureMask {
        let mut m = FailureMask::healthy(topo);
        match scenario {
            FailureScenario::None => {}
            FailureScenario::DcDown(d) => m.set_dc(d, true),
            FailureScenario::LinkDown(l) => m.set_link(l, true),
        }
        m
    }

    /// Mark `dc` down (or back up).
    pub fn set_dc(&mut self, dc: DcId, down: bool) {
        self.dc_down[dc.index()] = down;
    }

    /// Mark `link` down (or back up).
    pub fn set_link(&mut self, link: LinkId, down: bool) {
        self.link_down[link.index()] = down;
    }

    /// Is `dc` usable?
    pub fn dc_up(&self, dc: DcId) -> bool {
        !self.dc_down[dc.index()]
    }

    /// Is `link` usable? A link is down if itself failed or either DC
    /// endpoint failed.
    pub fn link_up(&self, topo: &Topology, link: LinkId) -> bool {
        if self.link_down[link.index()] {
            return false;
        }
        let l = &topo.links[link.index()];
        for end in [l.a, l.b] {
            if let Node::Dc(d) = end {
                if self.dc_down[d.index()] {
                    return false;
                }
            }
        }
        true
    }

    /// True when no DC and no link is failed.
    pub fn is_healthy(&self) -> bool {
        !self.dc_down.iter().any(|&d| d) && !self.link_down.iter().any(|&l| l)
    }

    /// DCs currently marked down.
    pub fn down_dcs(&self) -> impl Iterator<Item = DcId> + '_ {
        self.dc_down
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d)
            .map(|(i, _)| DcId(i as u16))
    }

    /// Links currently marked down (not counting links implied down by a DC
    /// failure).
    pub fn down_links(&self) -> impl Iterator<Item = LinkId> + '_ {
        self.link_down
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l)
            .map(|(i, _)| LinkId(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::GeoPoint;

    fn tiny() -> Topology {
        let mut b = TopologyBuilder::new();
        let r = b.region("APAC");
        let d1 = b.datacenter("Tokyo", r, GeoPoint::new(35.7, 139.7), 1.0);
        let d2 = b.datacenter("Singapore", r, GeoPoint::new(1.35, 103.8), 1.2);
        let jp = b.country("JP", r, GeoPoint::new(36.0, 138.0), 9.0, 1.0);
        b.link(Node::Dc(d1), Node::Dc(d2), 2.0);
        b.link(Node::Edge(jp), Node::Dc(d1), 1.0);
        b.link(Node::Edge(jp), Node::Dc(d2), 1.5);
        b.build()
    }

    #[test]
    fn build_and_lookup() {
        let t = tiny();
        assert_eq!(t.dcs.len(), 2);
        assert_eq!(t.countries.len(), 1);
        assert_eq!(t.links.len(), 3);
        assert_eq!(t.dc_by_name("Tokyo"), DcId(0));
        assert_eq!(t.country_by_name("JP"), CountryId(0));
        assert_eq!(t.neighbours(Node::Edge(CountryId(0))).len(), 2);
        assert_eq!(t.neighbours(Node::Dc(DcId(0))).len(), 2);
    }

    #[test]
    fn latency_autoderivation_monotone_in_distance() {
        let t = tiny();
        // JP→Tokyo is much shorter than JP→Singapore
        let l_near = t.links[1].latency_ms;
        let l_far = t.links[2].latency_ms;
        assert!(l_near < l_far);
    }

    #[test]
    fn inter_country_flag() {
        let t = tiny();
        assert!(t.links[0].inter_country); // Tokyo–Singapore
        assert!(!t.links[1].inter_country); // JP edge–Tokyo
        assert!(t.links[2].inter_country); // JP edge–Singapore
    }

    #[test]
    #[should_panic(expected = "no uplink")]
    fn dangling_country_rejected() {
        let mut b = TopologyBuilder::new();
        let r = b.region("APAC");
        let d1 = b.datacenter("Tokyo", r, GeoPoint::new(35.7, 139.7), 1.0);
        let d2 = b.datacenter("Osaka", r, GeoPoint::new(34.7, 135.5), 1.0);
        b.country("JP", r, GeoPoint::new(36.0, 138.0), 9.0, 1.0);
        b.link(Node::Dc(d1), Node::Dc(d2), 1.0);
        b.build();
    }

    #[test]
    #[should_panic(expected = "not connected")]
    fn disconnected_rejected() {
        let mut b = TopologyBuilder::new();
        let r = b.region("APAC");
        let d1 = b.datacenter("Tokyo", r, GeoPoint::new(35.7, 139.7), 1.0);
        b.datacenter("Island", r, GeoPoint::new(0.0, 0.0), 1.0);
        let jp = b.country("JP", r, GeoPoint::new(36.0, 138.0), 9.0, 1.0);
        b.link(Node::Edge(jp), Node::Dc(d1), 1.0);
        b.build();
    }

    #[test]
    fn failure_mask_composes_overlapping_faults() {
        let t = tiny();
        let mut m = FailureMask::healthy(&t);
        assert!(m.is_healthy());
        assert_eq!(m, FailureMask::from_scenario(&t, FailureScenario::None));
        // a DC outage overlapping a link failure — inexpressible as a
        // FailureScenario
        m.set_dc(DcId(0), true);
        m.set_link(LinkId(2), true);
        assert!(!m.dc_up(DcId(0)));
        assert!(m.dc_up(DcId(1)));
        assert!(!m.link_up(&t, LinkId(0))); // implied down: touches Tokyo
        assert!(!m.link_up(&t, LinkId(1))); // implied down: touches Tokyo
        assert!(!m.link_up(&t, LinkId(2))); // explicitly down
        assert_eq!(m.down_dcs().collect::<Vec<_>>(), vec![DcId(0)]);
        assert_eq!(m.down_links().collect::<Vec<_>>(), vec![LinkId(2)]);
        // recovery clears the fault
        m.set_dc(DcId(0), false);
        m.set_link(LinkId(2), false);
        assert!(m.is_healthy());
        assert!(m.link_up(&t, LinkId(1)));
    }

    #[test]
    fn mask_matches_scenario_semantics() {
        let t = tiny();
        for scenario in FailureScenario::enumerate(&t) {
            let m = FailureMask::from_scenario(&t, scenario);
            for dc in t.dc_ids() {
                assert_eq!(m.dc_up(dc), scenario.dc_up(dc));
            }
            for l in t.link_ids() {
                assert_eq!(m.link_up(&t, l), scenario.link_up(&t, l));
            }
        }
    }

    #[test]
    fn failure_scenarios() {
        let t = tiny();
        let scenarios = FailureScenario::enumerate(&t);
        assert_eq!(scenarios.len(), 1 + 2 + 3);
        let f = FailureScenario::DcDown(DcId(0));
        assert!(!f.dc_up(DcId(0)));
        assert!(f.dc_up(DcId(1)));
        // Tokyo's links are down with it
        assert!(!f.link_up(&t, LinkId(0)));
        assert!(!f.link_up(&t, LinkId(1)));
        assert!(f.link_up(&t, LinkId(2)));
        let f = FailureScenario::LinkDown(LinkId(2));
        assert!(f.dc_up(DcId(0)));
        assert!(!f.link_up(&t, LinkId(2)));
        assert!(f.link_up(&t, LinkId(0)));
    }
}
