//! Property tests for the planner: on random demand instances over the toy
//! topology, provisioning must place all demand, cover its own usage, and
//! respect dominance relations (more freedom ⇒ no worse cost; backup ⇒ at
//! least serving).

use proptest::prelude::*;
use sb_core::formulation::{solve_scenario, PlanningInputs, ScenarioData, SolveOptions};
use sb_core::provision::{provision, ProvisionerParams};
use sb_core::usage::{compute_usage, placed_fraction};
use sb_net::FailureScenario;
use sb_workload::{CallConfig, ConfigCatalog, DemandMatrix, MediaType};

#[derive(Debug, Clone)]
struct Instance {
    /// per config: (country index 0..3, participants, media tag)
    configs: Vec<(usize, u16, u8)>,
    /// demand per (config, slot)
    demand: Vec<Vec<u16>>,
}

fn instance_strategy() -> impl Strategy<Value = Instance> {
    (1usize..5, 1usize..5).prop_flat_map(|(n_cfg, n_slots)| {
        let configs = proptest::collection::vec((0usize..3, 1u16..6, 0u8..3), n_cfg);
        let demand = proptest::collection::vec(proptest::collection::vec(0u16..80, n_slots), n_cfg);
        (configs, demand).prop_map(|(configs, demand)| Instance { configs, demand })
    })
}

fn build(inst: &Instance) -> (sb_net::Topology, ConfigCatalog, DemandMatrix) {
    let topo = sb_net::presets::toy_three_dc();
    let countries = [
        topo.country_by_name("JP"),
        topo.country_by_name("HK"),
        topo.country_by_name("IN"),
    ];
    let mut catalog = ConfigCatalog::new();
    let slots = inst.demand[0].len();
    let mut demand = DemandMatrix::zero(inst.configs.len(), slots, 30, 0);
    for (i, &(country, parts, media)) in inst.configs.iter().enumerate() {
        let media = match media {
            0 => MediaType::Audio,
            1 => MediaType::ScreenShare,
            _ => MediaType::Video,
        };
        let cfg = CallConfig::new(vec![(countries[country], parts)], media);
        let id = catalog.intern(cfg);
        for (s, &d) in inst.demand[i].iter().enumerate() {
            demand.add(id, s, d as f64);
        }
    }
    (topo, catalog, demand)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The F0 LP places all demand and its capacity covers the implied usage.
    #[test]
    fn f0_solution_is_complete_and_covered(inst in instance_strategy()) {
        let (topo, catalog, demand) = build(&inst);
        if demand.total_calls() == 0.0 {
            return Ok(());
        }
        let inputs = PlanningInputs {
            topo: &topo,
            catalog: &catalog,
            demand: &demand,
            latency_threshold_ms: 120.0,
        };
        let sd = ScenarioData::compute(&topo, FailureScenario::None);
        let sol = solve_scenario(&inputs, &sd, None, &SolveOptions::default()).unwrap();
        prop_assert!((placed_fraction(&demand, &sol.shares) - 1.0).abs() < 1e-6);
        let usage = compute_usage(&topo, &sd.routing, &catalog, &demand, &sol.shares);
        prop_assert!(usage.fits_within(&sol.capacity, 1e-5));
        // fractions per (config, slot) are a distribution
        for (cfg, slot, fr) in sol.shares.iter() {
            if demand.get(cfg, slot) > 0.0 {
                let total: f64 = fr.iter().map(|&(_, f)| f).sum();
                prop_assert!((total - 1.0).abs() < 1e-6, "shares sum {total}");
                prop_assert!(fr.iter().all(|&(_, f)| (0.0..=1.0 + 1e-9).contains(&f)));
            }
        }
    }

    /// Loosening the latency threshold can only lower the optimal cost, and
    /// backup capacity dominates serving capacity.
    #[test]
    fn monotonicity_properties(inst in instance_strategy()) {
        let (topo, catalog, demand) = build(&inst);
        if demand.total_calls() == 0.0 {
            return Ok(());
        }
        let tight = PlanningInputs {
            topo: &topo,
            catalog: &catalog,
            demand: &demand,
            latency_threshold_ms: 20.0,
        };
        let loose = PlanningInputs { latency_threshold_ms: 200.0, ..tight };
        let sd = ScenarioData::compute(&topo, FailureScenario::None);
        let opts = SolveOptions::default();
        let sol_tight = solve_scenario(&tight, &sd, None, &opts).unwrap();
        let sol_loose = solve_scenario(&loose, &sd, None, &opts).unwrap();
        prop_assert!(
            sol_loose.objective <= sol_tight.objective * (1.0 + 1e-6) + 1e-6,
            "loose {} > tight {}",
            sol_loose.objective,
            sol_tight.objective
        );

        let no_backup =
            provision(&loose, &ProvisionerParams { with_backup: false, ..Default::default() })
                .unwrap();
        let with_backup = provision(&loose, &ProvisionerParams::default()).unwrap();
        prop_assert!(with_backup.capacity.covers(&with_backup.serving, 1e-6));
        prop_assert!(with_backup.cost >= no_backup.cost - 1e-6);
        for (sc, req) in &with_backup.scenarios {
            prop_assert!(
                with_backup.capacity.covers(req, 1e-6),
                "scenario {sc:?} uncovered"
            );
        }
    }

    /// Scaling demand scales the serving requirement (LP homogeneity).
    #[test]
    fn demand_scaling_is_homogeneous(inst in instance_strategy()) {
        let (topo, catalog, demand) = build(&inst);
        if demand.total_calls() == 0.0 {
            return Ok(());
        }
        let scaled = demand.scaled(3.0);
        let inputs = PlanningInputs {
            topo: &topo,
            catalog: &catalog,
            demand: &demand,
            latency_threshold_ms: 120.0,
        };
        let inputs_scaled = PlanningInputs { demand: &scaled, ..inputs };
        let sd = ScenarioData::compute(&topo, FailureScenario::None);
        let opts = SolveOptions::default();
        let a = solve_scenario(&inputs, &sd, None, &opts).unwrap();
        let b = solve_scenario(&inputs_scaled, &sd, None, &opts).unwrap();
        prop_assert!(
            (b.objective - 3.0 * a.objective).abs() < 1e-4 * (1.0 + a.objective),
            "3x demand: {} vs 3×{}",
            b.objective,
            a.objective
        );
    }
}
