//! Distribution sampling helpers built on plain `rand` (Poisson, Zipf,
//! normal/lognormal, exponential) — implemented here so the workspace does not
//! need `rand_distr`.

use rand::Rng;

/// Sample a Poisson(λ) count.
///
/// Knuth's product method for small λ, normal approximation (rounded,
/// clamped at 0) for large λ — the standard trade-off.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    assert!(
        lambda >= 0.0 && lambda.is_finite(),
        "lambda must be finite and >= 0"
    );
    if lambda == 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let limit = (-lambda).exp();
        let mut product: f64 = rng.gen();
        let mut count = 0u64;
        while product > limit {
            product *= rng.gen::<f64>();
            count += 1;
        }
        count
    } else {
        let v = lambda + lambda.sqrt() * standard_normal(rng);
        v.round().max(0.0) as u64
    }
}

/// Standard normal sample via Box–Muller.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // avoid ln(0)
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Normal sample with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    assert!(std_dev >= 0.0);
    mean + std_dev * standard_normal(rng)
}

/// Lognormal sample: `exp(N(mu, sigma))`.
pub fn lognormal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Exponential sample with the given rate (mean `1/rate`).
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate > 0.0);
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / rate
}

/// Zipf distribution over ranks `0..n` with exponent `s`: weight of rank `r`
/// is `(r+1)^(−s)`. Sampling is O(log n) via a precomputed CDF.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Precompute for `n` ranks with exponent `s > 0`.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0 && s > 0.0);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += ((r + 1) as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when there are no ranks (never: `new` requires n > 0).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Normalized probability of rank `r`.
    pub fn weight(&self, r: usize) -> f64 {
        if r == 0 {
            self.cdf[0]
        } else {
            self.cdf[r] - self.cdf[r - 1]
        }
    }

    /// Sample a rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|p| p.total_cmp(&u)) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// Sample an index proportional to `weights` (need not be normalized).
pub fn weighted_index<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weights must not all be zero");
    let mut u = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        if u < w {
            return i;
        }
        u -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn poisson_mean_small_lambda() {
        let mut r = rng();
        let n = 20_000;
        let total: u64 = (0..n).map(|_| poisson(&mut r, 3.5)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 3.5).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn poisson_mean_large_lambda() {
        let mut r = rng();
        let n = 20_000;
        let total: u64 = (0..n).map(|_| poisson(&mut r, 250.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 250.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn poisson_zero() {
        let mut r = rng();
        assert_eq!(poisson(&mut r, 0.0), 0);
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut r, 10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = rng();
        let n = 50_000;
        let mean = (0..n).map(|_| exponential(&mut r, 0.5)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn zipf_weights_normalized_and_decreasing() {
        let z = Zipf::new(100, 1.5);
        let sum: f64 = (0..100).map(|r| z.weight(r)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        for r in 1..100 {
            assert!(z.weight(r) <= z.weight(r - 1));
        }
    }

    #[test]
    fn zipf_sampling_matches_weights() {
        let z = Zipf::new(50, 1.2);
        let mut r = rng();
        let n = 100_000;
        let mut counts = vec![0u64; 50];
        for _ in 0..n {
            counts[z.sample(&mut r)] += 1;
        }
        // head rank frequency ≈ weight
        let freq0 = counts[0] as f64 / n as f64;
        assert!((freq0 - z.weight(0)).abs() < 0.01);
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = rng();
        let w = [1.0, 0.0, 3.0];
        let n = 30_000;
        let mut counts = [0u64; 3];
        for _ in 0..n {
            counts[weighted_index(&mut r, &w)] += 1;
        }
        assert_eq!(counts[1], 0);
        let frac2 = counts[2] as f64 / n as f64;
        assert!((frac2 - 0.75).abs() < 0.02);
    }
}
