//! Production engine: revised simplex with implicit variable bounds.
//!
//! Differences from the dense tableau engine:
//!
//! * upper bounds `0 ≤ x ≤ u` are handled natively (bound flips instead of
//!   extra rows), which matters for the provisioning LPs where most
//!   allocation-share variables carry a demand upper bound;
//! * the basis is represented by a [`Factorization`] backend — sparse LU
//!   with product-form eta updates by default, an explicit dense `B⁻¹` as
//!   the differential oracle — refactorized periodically and whenever the
//!   backend's fill/accuracy triggers fire;
//! * the constraint matrix stays column-sparse (CSC), so pricing costs
//!   `O(solve + nnz)` per iteration rather than `O(m·n)`.
//!
//! Anti-cycling: Dantzig pricing normally, switching to Bland's rule after a
//! run of degenerate pivots; this guarantees termination.

use crate::factor::{make_factor, FactorKind, Factorization};
use crate::metrics::lp_metrics;
use crate::problem::{
    Basis, LpError, LpProblem, Solution, SolveRung, SolveStats, Solver, VarStatus,
};
use crate::ratio::{harris_ratio, RatioCandidate, RatioChoice};
use crate::sparse::CsrView;
use crate::standard::{PreparedProblem, StandardForm};
use std::time::{Duration, Instant};

/// A ratio-test pivot below this fraction of the entering column's largest
/// `|w_i|` is not trusted until the basis has been refactorized (see `step`).
/// The value mirrors the `1e-7` tiny-pivot refactorization latch in
/// `factor.rs`: both mark the point where a pivot stops carrying trustworthy
/// information.
const PIVOT_STABILITY_REL: f64 = 1e-7;

/// Column-selection strategy for the entering variable.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Pricing {
    /// Scan every column, pick the most negative reduced cost. Simple and
    /// steep, but each iteration costs a full `O(n)` sweep.
    Dantzig,
    /// Candidate-list partial pricing: a full sweep harvests the
    /// `list_size` most attractive columns, then subsequent iterations price
    /// only that short list (dropping entries that turn unfavorable) until
    /// it runs dry or `full_sweep_every` iterations have passed, whichever
    /// comes first. Optimality is only ever declared by a *full* sweep, so
    /// the strategy trades per-iteration cost for (possibly) more
    /// iterations — never correctness.
    Partial {
        /// Candidate columns kept per full sweep.
        list_size: usize,
        /// Force a full sweep after this many candidate-list iterations
        /// (keeps the list from going stale on degenerate stretches).
        full_sweep_every: u64,
    },
    /// Devex pricing (Forrest–Goldfarb): columns are scored by
    /// `d_j² / γ_j`, where the reference weight `γ_j` approximates the
    /// steepest-edge norm `‖B⁻¹A_j‖²` and is maintained cheaply from each
    /// pivot row. Layered on the same candidate-list machinery as
    /// [`Pricing::Partial`], so each iteration still prices a short list;
    /// the devex score just picks *better* columns, which on the
    /// provisioning LPs cuts the pivot count well below Dantzig's.
    Devex {
        /// Candidate columns kept per full sweep.
        list_size: usize,
        /// Force a full sweep after this many candidate-list iterations.
        full_sweep_every: u64,
    },
}

impl Pricing {
    /// Partial pricing with the default list size (64) and sweep period
    /// (64) — a good fit for the provisioning LPs (thousands of columns,
    /// few hundred pivots).
    pub fn partial() -> Pricing {
        Pricing::Partial {
            list_size: 64,
            full_sweep_every: 64,
        }
    }

    /// Devex pricing with the default candidate-list parameters.
    pub fn devex() -> Pricing {
        Pricing::Devex {
            list_size: 64,
            full_sweep_every: 64,
        }
    }
}

/// Revised simplex with bounded variables.
#[derive(Clone, Debug)]
pub struct RevisedSimplex {
    /// Hard iteration cap across both phases (`0` = automatic).
    pub max_iterations: u64,
    /// Wall-clock budget across both phases (`None` = unlimited). Exceeding
    /// it aborts the solve with [`LpError::TimeLimit`]; checked every few
    /// iterations so the overhead is negligible.
    pub time_budget: Option<Duration>,
    /// Reduced-cost / pivot tolerance.
    pub eps: f64,
    /// Primal feasibility tolerance used for the phase-1 decision and for
    /// accepting a warm-started basis.
    pub feas_eps: f64,
    /// Refactorize (recompute the basis factorization from scratch) at least
    /// every this many pivots; the sparse backend additionally refactorizes
    /// when its own fill/accuracy triggers fire.
    pub refactor_every: u64,
    /// Entering-column selection strategy.
    pub pricing: Pricing,
    /// Basis-factorization backend.
    pub factorization: FactorKind,
}

impl Default for RevisedSimplex {
    fn default() -> Self {
        RevisedSimplex {
            max_iterations: 0,
            time_budget: None,
            eps: 1e-9,
            feas_eps: 1e-7,
            refactor_every: 2_000,
            pricing: Pricing::Dantzig,
            factorization: FactorKind::default(),
        }
    }
}

impl RevisedSimplex {
    /// Engine with default tolerances.
    pub fn new() -> Self {
        Self::default()
    }

    /// Same engine with a wall-clock budget.
    pub fn with_time_budget(budget: Duration) -> Self {
        RevisedSimplex {
            time_budget: Some(budget),
            ..Self::default()
        }
    }

    /// Same engine with candidate-list partial pricing (default parameters).
    pub fn with_partial_pricing() -> Self {
        RevisedSimplex {
            pricing: Pricing::partial(),
            ..Self::default()
        }
    }

    /// Same engine with devex pricing (default parameters).
    pub fn with_devex_pricing() -> Self {
        RevisedSimplex {
            pricing: Pricing::devex(),
            ..Self::default()
        }
    }

    /// Same engine with an explicit factorization backend.
    pub fn with_factorization(kind: FactorKind) -> Self {
        RevisedSimplex {
            factorization: kind,
            ..Self::default()
        }
    }
}

#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum VStat {
    Basic(u32),
    Lower,
    Upper,
}

struct Engine<'a> {
    sf: &'a StandardForm,
    /// Effective upper bound per column (artificials pinned to 0 in phase 2).
    upper: Vec<f64>,
    /// Current objective coefficients (phase 1 or phase 2).
    cost: Vec<f64>,
    status: Vec<VStat>,
    basis: Vec<usize>,
    /// Basis factorization backend (sparse LU or dense inverse).
    factor: Box<dyn Factorization>,
    /// Values of basic variables, `xb[i]` belongs to column `basis[i]`.
    xb: Vec<f64>,
    m: usize,
    eps: f64,
    iterations: u64,
    pivots_since_refactor: u64,
    refactor_every: u64,
    refactorizations: u64,
    pricing: Pricing,
    /// Candidate columns harvested by the last full pricing sweep (partial
    /// pricing only).
    cand: Vec<usize>,
    /// Candidate-list iterations since the last full sweep.
    iters_since_full_sweep: u64,
    pricing_scans: u64,
    pricing_cols_scanned: u64,
    full_pricing_sweeps: u64,
    /// Basis updates applied since the last refactorization (summed across
    /// the whole solve for stats).
    eta_updates: u64,
    /// Devex reference weights `γ_j` (1.0 outside devex pricing).
    devex_w: Vec<f64>,
    /// Times the devex reference framework was reset to all-ones.
    devex_resets: u64,
    /// Row-major view of the constraint matrix, built on first devex pivot.
    csr: Option<CsrView>,
    /// Scratch: pivot-row alphas per column (devex), zeroed between pivots.
    alpha_buf: Vec<f64>,
    /// Scratch: columns touched in `alpha_buf`.
    touched_buf: Vec<usize>,
    /// Scratch: btran of the pivot row (devex).
    rho_buf: Vec<f64>,
}

enum StepOutcome {
    Optimal,
    Unbounded,
    Moved,
    /// The selected pivot is too small relative to its column to trust under
    /// the accumulated eta updates — refactorize and redo the iteration.
    NeedsRefactor,
}

/// Why an injected warm basis could not be used.
enum WarmReject {
    /// Wrong shape for this standard form, duplicate basic column, or a
    /// numerically singular basis matrix.
    Singular,
    /// The basis factorized fine but the implied point violates bounds
    /// beyond tolerance.
    Infeasible,
}

impl<'a> Engine<'a> {
    fn new(
        sf: &'a StandardForm,
        eps: f64,
        refactor_every: u64,
        pricing: Pricing,
        factorization: FactorKind,
    ) -> Engine<'a> {
        let m = sf.m;
        let mut status = vec![VStat::Lower; sf.n];
        for (i, &b) in sf.basis0.iter().enumerate() {
            status[b] = VStat::Basic(i as u32);
        }
        // `basis0` is one unit column per row, so B = I exactly: the backend
        // starts at its identity state without a factorization pass.
        Engine {
            sf,
            upper: sf.upper.clone(),
            cost: vec![0.0; sf.n],
            status,
            basis: sf.basis0.clone(),
            factor: make_factor(factorization, m),
            xb: sf.b.clone(),
            m,
            eps,
            iterations: 0,
            pivots_since_refactor: 0,
            refactor_every,
            refactorizations: 0,
            pricing,
            cand: Vec::new(),
            iters_since_full_sweep: 0,
            pricing_scans: 0,
            pricing_cols_scanned: 0,
            full_pricing_sweeps: 0,
            eta_updates: 0,
            devex_w: vec![1.0; sf.n],
            devex_resets: 0,
            csr: None,
            alpha_buf: Vec::new(),
            touched_buf: Vec::new(),
            rho_buf: Vec::new(),
        }
    }

    /// Build an engine positioned at `warm` with artificials already pinned,
    /// ready for phase 2. Rejects bases that don't match the standard form,
    /// fail to factorize, or imply a primal-infeasible point.
    #[allow(clippy::too_many_arguments)]
    fn from_basis(
        sf: &'a StandardForm,
        eps: f64,
        feas_eps: f64,
        refactor_every: u64,
        pricing: Pricing,
        factorization: FactorKind,
        warm: &Basis,
    ) -> Result<Engine<'a>, WarmReject> {
        if warm.basic.len() != sf.m || warm.status.len() != sf.n {
            return Err(WarmReject::Singular);
        }
        let mut eng = Engine::new(sf, eps, refactor_every, pricing, factorization);
        // Pin artificials before positioning: a warm basis comes from a
        // finished solve, so any artificial it still carries must stay at 0.
        for j in sf.first_artificial..sf.n {
            eng.upper[j] = 0.0;
        }
        let mut status = vec![VStat::Lower; sf.n];
        for (i, &j) in warm.basic.iter().enumerate() {
            if j >= sf.n || matches!(status[j], VStat::Basic(_)) {
                return Err(WarmReject::Singular);
            }
            status[j] = VStat::Basic(i as u32);
        }
        for (j, st) in status.iter_mut().enumerate() {
            if matches!(st, VStat::Basic(_)) {
                continue;
            }
            // `AtUpper` only survives where the (current) bound is finite
            // and positive — a patched bound may have turned
            // finite↔infinite since the basis was exported, and on a pinned
            // column (upper 0) the two bounds coincide.
            *st = match warm.status[j] {
                VarStatus::AtUpper if eng.upper[j].is_finite() && eng.upper[j] > 0.0 => {
                    VStat::Upper
                }
                _ => VStat::Lower,
            };
        }
        eng.status = status;
        eng.basis = warm.basic.clone();
        if eng.refactorize_repair().is_err() {
            return Err(WarmReject::Singular);
        }
        // Phase-2 costs: the dual ratio test below prices against the real
        // objective (the caller re-assigns the same values before phase 2).
        eng.cost.copy_from_slice(&sf.cost);
        // Primal feasibility of the implied point, row-relative tolerance. A
        // patched problem (new bounds / rhs) usually pushes the old optimal
        // point slightly out of bounds — repair with dual-simplex pivots
        // before giving up on the basis.
        if !eng.primal_feasible(feas_eps) && !eng.dual_restore(feas_eps) {
            return Err(WarmReject::Infeasible);
        }
        Ok(eng)
    }

    /// Does the current basic point satisfy all bounds within `feas_eps`
    /// (row-relative)?
    fn primal_feasible(&self, feas_eps: f64) -> bool {
        (0..self.m).all(|i| {
            let x = self.xb[i];
            let tol = feas_eps * (1.0 + self.sf.b[i].abs());
            if x < -tol {
                return false;
            }
            let ub = self.upper[self.basis[i]];
            !ub.is_finite() || x <= ub + tol
        })
    }

    /// Dual-simplex feasibility restoration. Starting from a factorized
    /// basis whose implied point violates bounds (the typical fate of a warm
    /// basis after a scenario patch pins columns or moves the rhs), pivot
    /// each violated basic variable out to its nearest bound, selecting the
    /// entering column by the bounded-variable dual ratio test so the basis
    /// stays close to dual feasibility.
    ///
    /// This is purely a restoration pass: it never declares optimality (the
    /// primal phase 2 that follows has the full pricing-based test), so any
    /// failure — iteration cap, no sign-eligible entering column, singular
    /// refactorization — just returns `false` and the caller falls back to a
    /// cold two-phase solve. Pivots performed here are counted as phase-1
    /// iterations: they are the warm path's "get feasible" work.
    fn dual_restore(&mut self, feas_eps: f64) -> bool {
        let m = self.m;
        let cap = 2 * (m as u64) + 100;
        let start = self.iterations;
        loop {
            // leaving row: the most-violated basic variable
            let mut leave_row = usize::MAX;
            let mut worst = 0.0f64;
            let mut above = false;
            for i in 0..m {
                let x = self.xb[i];
                let tol = feas_eps * (1.0 + self.sf.b[i].abs());
                if x < -tol {
                    if -x > worst {
                        worst = -x;
                        leave_row = i;
                        above = false;
                    }
                } else {
                    let ub = self.upper[self.basis[i]];
                    if ub.is_finite() && x > ub + tol && x - ub > worst {
                        worst = x - ub;
                        leave_row = i;
                        above = true;
                    }
                }
            }
            if leave_row == usize::MAX {
                if std::env::var_os("SB_LP_RESTORE_DEBUG").is_some() {
                    eprintln!("restore ok after {} pivots", self.iterations - start);
                }
                return true; // primal feasible — basis usable for phase 2
            }
            if self.iterations - start >= cap {
                if std::env::var_os("SB_LP_RESTORE_DEBUG").is_some() {
                    eprintln!("restore cap hit ({cap}), worst viol {worst:.3e}");
                }
                return false;
            }
            if (self.pivots_since_refactor >= self.refactor_every || self.factor.wants_refactor())
                && self.refactorize().is_err()
            {
                if std::env::var_os("SB_LP_RESTORE_DEBUG").is_some() {
                    eprintln!("restore refactor singular");
                }
                return false;
            }
            // α_j = (B⁻¹ A_j)[leave_row]: one row of B⁻¹ (a btran of a unit
            // vector) dotted with each sparse column, O(nnz) total.
            let mut brow = vec![0.0f64; m];
            self.factor.btran_unit(leave_row, &mut brow);
            let y = self.duals();
            let mut enter = usize::MAX;
            let mut best_ratio = f64::INFINITY;
            let mut best_alpha = 0.0f64;
            for j in 0..self.sf.n {
                let st = self.status[j];
                if matches!(st, VStat::Basic(_)) {
                    continue;
                }
                if self.upper[j] <= self.eps {
                    continue; // fixed column (pinned artificial or u = 0)
                }
                let mut alpha = 0.0;
                for (r, v) in self.sf.cols.iter_col(j) {
                    alpha += brow[r] * v;
                }
                if alpha.abs() <= 1e-9 {
                    continue;
                }
                // The entering move (up from lower / down from upper) must
                // push the leaving variable toward its violated bound.
                let at_upper = st == VStat::Upper;
                let eligible = if above {
                    (alpha > 0.0) != at_upper
                } else {
                    (alpha < 0.0) != at_upper
                };
                if !eligible {
                    continue;
                }
                let ratio = self.reduced_cost(j, &y).abs() / alpha.abs();
                if ratio < best_ratio - 1e-12
                    || (ratio < best_ratio + 1e-12 && alpha.abs() > best_alpha.abs())
                {
                    best_ratio = ratio;
                    best_alpha = alpha;
                    enter = j;
                }
            }
            if enter == usize::MAX {
                if std::env::var_os("SB_LP_RESTORE_DEBUG").is_some() {
                    eprintln!(
                        "restore no-enter after {} pivots, worst viol {worst:.3e}",
                        self.iterations - start
                    );
                }
                return false; // no eligible pivot — give up, solve cold
            }
            // Pivot: the leaving variable exits exactly at its violated
            // bound; the entering variable absorbs the difference (possibly
            // overshooting its own bound, which a later round then repairs).
            let leaving = self.basis[leave_row];
            let target = if above { self.upper[leaving] } else { 0.0 };
            let delta = (self.xb[leave_row] - target) / best_alpha;
            let w = self.ftran(enter);
            for i in 0..m {
                if i != leave_row {
                    self.xb[i] -= delta * w[i];
                }
            }
            // A fixed column (pinned artificial, u = 0) leaves "above" at a
            // bound where lower == upper: mark it Lower so phase-2 pricing
            // treats it as fixed.
            self.status[leaving] = if above && self.upper[leaving] > self.eps {
                VStat::Upper
            } else {
                VStat::Lower
            };
            let enter_from = if self.status[enter] == VStat::Upper {
                self.upper[enter]
            } else {
                0.0
            };
            self.xb[leave_row] = enter_from + delta;
            self.basis[leave_row] = enter;
            self.status[enter] = VStat::Basic(leave_row as u32);
            self.apply_update(leave_row, &w);
            self.iterations += 1;
        }
    }

    /// Snapshot the current basis for reuse by a warm-started solve.
    fn export_basis(&self) -> Basis {
        Basis {
            basic: self.basis.clone(),
            status: self
                .status
                .iter()
                .map(|st| match st {
                    VStat::Basic(_) => VarStatus::Basic,
                    VStat::Lower => VarStatus::AtLower,
                    VStat::Upper => VarStatus::AtUpper,
                })
                .collect(),
        }
    }

    /// `y = c_Bᵀ B⁻¹`
    fn duals(&self) -> Vec<f64> {
        let m = self.m;
        let mut cb = vec![0.0f64; m];
        for (i, c) in cb.iter_mut().enumerate() {
            *c = self.cost[self.basis[i]];
        }
        let mut y = vec![0.0f64; m];
        self.factor.btran_dense(&cb, &mut y);
        y
    }

    fn reduced_cost(&self, j: usize, y: &[f64]) -> f64 {
        let mut d = self.cost[j];
        for (r, v) in self.sf.cols.iter_col(j) {
            d -= y[r] * v;
        }
        d
    }

    /// `w = B⁻¹ A_j`
    fn ftran(&self, j: usize) -> Vec<f64> {
        let mut w = vec![0.0f64; self.m];
        let (rows, vals) = self.sf.cols.col(j);
        self.factor.ftran_sparse(rows, vals, &mut w);
        w
    }

    fn current_objective(&self) -> f64 {
        let mut obj = 0.0;
        for (i, &b) in self.basis.iter().enumerate() {
            obj += self.cost[b] * self.xb[i];
        }
        for j in 0..self.sf.n {
            if self.status[j] == VStat::Upper {
                obj += self.cost[j] * self.upper[j];
            }
        }
        obj
    }

    /// Recompute the basis factorization and `xb` from scratch (numerical
    /// hygiene). Commits only on success — a singular basis leaves the
    /// previous factorization in place.
    fn refactorize(&mut self) -> Result<(), LpError> {
        self.factor.refactorize(&self.sf.cols, &self.basis)?;
        self.recompute_xb();
        self.pivots_since_refactor = 0;
        self.refactorizations += 1;
        Ok(())
    }

    /// Like [`refactorize`](Self::refactorize), but instead of failing on a
    /// rank-deficient basis it *repairs* it: a basis column that turns out
    /// linearly dependent (the typical fate of a warm basis after a patch
    /// rewrote matrix coefficients) is kicked out and replaced by the unit
    /// column — slack or artificial — of a row the basis no longer covers.
    /// The repaired point may violate bounds (an artificial forced in is
    /// pinned at 0); callers follow up with [`dual_restore`](Self::dual_restore).
    fn refactorize_repair(&mut self) -> Result<usize, LpError> {
        let old_basis = self.basis.clone();
        let replacements = {
            let Engine {
                factor,
                basis,
                status,
                sf,
                ..
            } = self;
            let mut may_use = |col: usize| !matches!(status[col], VStat::Basic(_));
            factor.refactorize_repair(&sf.cols, basis, &sf.basis0, &mut may_use)?
        };
        let repaired = replacements.len();
        for (pos, unit) in replacements {
            self.status[old_basis[pos]] = VStat::Lower;
            self.status[unit] = VStat::Basic(pos as u32);
        }
        self.recompute_xb();
        self.pivots_since_refactor = 0;
        self.refactorizations += 1;
        Ok(repaired)
    }

    /// `xb = B⁻¹ (b − Σ_{j at upper} A_j u_j)`
    fn recompute_xb(&mut self) {
        let mut rhs = self.sf.b.clone();
        for j in 0..self.sf.n {
            if self.status[j] == VStat::Upper {
                let u = self.upper[j];
                if u != 0.0 {
                    for (r, v) in self.sf.cols.iter_col(j) {
                        rhs[r] -= v * u;
                    }
                }
            }
        }
        let mut xb = vec![0.0f64; self.m];
        self.factor.ftran_dense(&rhs, &mut xb);
        self.xb = xb;
    }

    /// Favorability of nonbasic column `j`: `Some((|d|, σ))` when moving it
    /// improves the objective (σ = +1 up from lower, −1 down from upper).
    fn favorability(&self, j: usize, y: &[f64]) -> Option<(f64, f64)> {
        match self.status[j] {
            VStat::Basic(_) => None,
            VStat::Lower => {
                if self.upper[j] <= self.eps {
                    return None; // fixed column (artificial after phase 1, or u = 0)
                }
                let d = self.reduced_cost(j, y);
                (d < -self.eps).then_some((-d, 1.0))
            }
            VStat::Upper => {
                let d = self.reduced_cost(j, y);
                (d > self.eps).then_some((d, -1.0))
            }
        }
    }

    /// Pricing score of a favorable column: `|d|` under Dantzig/partial,
    /// `d²/γ_j` under devex.
    fn score_of(&self, j: usize, d_abs: f64) -> f64 {
        match self.pricing {
            Pricing::Devex { .. } => d_abs * d_abs / self.devex_w[j],
            _ => d_abs,
        }
    }

    /// Full pricing sweep over every column. Under partial/devex pricing it
    /// also repopulates the candidate list with the `collect` best-scored
    /// columns. Returns the entering column and its direction.
    fn price_full(&mut self, y: &[f64], bland: bool, collect: usize) -> Option<(usize, f64)> {
        self.full_pricing_sweeps += 1;
        self.iters_since_full_sweep = 0;
        self.cand.clear();
        let mut enter = usize::MAX;
        let mut enter_sigma = 1.0f64;
        let mut best = 0.0f64;
        // (score, j) pairs of favorable columns, kept only when collecting.
        let mut favorable: Vec<(f64, usize)> = Vec::new();
        for j in 0..self.sf.n {
            self.pricing_cols_scanned += 1;
            let Some((d_abs, sigma)) = self.favorability(j, y) else {
                continue;
            };
            if bland {
                // Bland: first favorable column by index.
                return Some((j, sigma));
            }
            let score = self.score_of(j, d_abs);
            if collect > 0 {
                favorable.push((score, j));
            }
            if score > best {
                best = score;
                enter = j;
                enter_sigma = sigma;
            }
        }
        if collect > 0 && !favorable.is_empty() {
            favorable.sort_unstable_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
            favorable.truncate(collect);
            self.cand.extend(favorable.iter().map(|&(_, j)| j));
        }
        (enter != usize::MAX).then_some((enter, enter_sigma))
    }

    /// Select the entering column. Dantzig (and Bland) always sweep every
    /// column; partial pricing prices the candidate list and falls back to a
    /// full sweep when the list runs dry, goes stale, or fails to produce a
    /// favorable column — so `None` (optimality) is only ever declared by a
    /// full sweep.
    fn price(&mut self, y: &[f64], bland: bool) -> Option<(usize, f64)> {
        self.pricing_scans += 1;
        let (list_size, full_sweep_every) = match self.pricing {
            Pricing::Partial {
                list_size,
                full_sweep_every,
            }
            | Pricing::Devex {
                list_size,
                full_sweep_every,
            } if !bland => (list_size, full_sweep_every),
            _ => return self.price_full(y, bland, 0),
        };
        if self.cand.is_empty() || self.iters_since_full_sweep >= full_sweep_every {
            return self.price_full(y, bland, list_size);
        }
        let mut keep: Vec<usize> = Vec::with_capacity(self.cand.len());
        let mut enter = usize::MAX;
        let mut enter_sigma = 1.0f64;
        let mut best = 0.0f64;
        for idx in 0..self.cand.len() {
            let j = self.cand[idx];
            self.pricing_cols_scanned += 1;
            if let Some((d_abs, sigma)) = self.favorability(j, y) {
                keep.push(j);
                let score = self.score_of(j, d_abs);
                if score > best {
                    best = score;
                    enter = j;
                    enter_sigma = sigma;
                }
            }
        }
        self.cand = keep;
        if enter == usize::MAX {
            return self.price_full(y, bland, list_size);
        }
        self.iters_since_full_sweep += 1;
        Some((enter, enter_sigma))
    }

    /// One simplex step. `bland` selects Bland's rule.
    fn step(&mut self, bland: bool) -> StepOutcome {
        let y = self.duals();
        let Some((enter, enter_sigma)) = self.price(&y, bland) else {
            return StepOutcome::Optimal;
        };

        // --- ratio test (shared two-pass Harris implementation) -------------
        let w = self.ftran(enter);
        let sigma = enter_sigma;
        let winf = w.iter().fold(0.0f64, |acc, v| acc.max(v.abs()));
        // entering var moves by t >= 0 in direction sigma; basic values
        // change by −t·σ·w.
        let bound_flip_t = if self.upper[enter].is_finite() {
            self.upper[enter] // bound-to-bound distance (lower is 0)
        } else {
            f64::INFINITY
        };
        let mut cands: Vec<RatioCandidate> = Vec::new();
        for i in 0..self.m {
            let wi = sigma * w[i];
            let bi = self.basis[i];
            if wi > self.eps {
                cands.push(RatioCandidate {
                    row: i,
                    limit: self.xb[i].max(0.0) / wi,
                    pivot_abs: w[i].abs(),
                    basis_col: bi,
                    to_upper: false,
                });
            } else if wi < -self.eps {
                let ub = self.upper[bi];
                if ub.is_finite() {
                    cands.push(RatioCandidate {
                        row: i,
                        limit: (ub - self.xb[i]).max(0.0) / (-wi),
                        pivot_abs: w[i].abs(),
                        basis_col: bi,
                        to_upper: true,
                    });
                }
            }
        }
        let (leave_row, leave_to_upper, t) =
            match harris_ratio(&cands, bound_flip_t, self.eps, bland) {
                RatioChoice::Unbounded => return StepOutcome::Unbounded,
                RatioChoice::BoundFlip(t) => {
                    // bound flip: entering var runs to its other bound
                    let t = t.max(0.0);
                    for i in 0..self.m {
                        self.xb[i] -= t * sigma * w[i];
                    }
                    self.status[enter] = if sigma > 0.0 {
                        VStat::Upper
                    } else {
                        VStat::Lower
                    };
                    return StepOutcome::Moved;
                }
                RatioChoice::Leave { row, to_upper, t } => {
                    // Pivot-stability guard: an entry that clears the absolute
                    // eps but is tiny relative to the column's largest
                    // magnitude may be rounding noise from the eta chain (true
                    // coefficient exactly zero) — pivoting on it on a
                    // degenerate row would make the next basis exactly
                    // singular. Rather than second-guess the candidate (a real
                    // small pivot may hold the binding limit, and dropping it
                    // would overshoot its bound), distrust the *factorization*:
                    // refactorize and redo the iteration. A fresh factor
                    // reproduces true zeros below eps, so noise rows stop
                    // being candidates; a pivot still small under a fresh
                    // factor is genuine and is accepted (which also bounds the
                    // retry to a single refactorization).
                    if self.pivots_since_refactor > 0
                        && w[row].abs() < self.eps.max(PIVOT_STABILITY_REL * winf)
                    {
                        return StepOutcome::NeedsRefactor;
                    }
                    (row, to_upper, t)
                }
            };

        // devex reference weights read the pre-pivot basis; update them
        // before any state changes
        if matches!(self.pricing, Pricing::Devex { .. }) {
            self.devex_update(enter, leave_row, &w);
        }

        // basis change
        for i in 0..self.m {
            if i != leave_row {
                self.xb[i] -= t * sigma * w[i];
                if self.xb[i] < 0.0 && self.xb[i] > -1e-9 {
                    self.xb[i] = 0.0;
                }
            }
        }
        let leaving = self.basis[leave_row];
        self.status[leaving] = if leave_to_upper {
            VStat::Upper
        } else {
            VStat::Lower
        };
        // entering variable's new value
        let enter_val = if sigma > 0.0 {
            t
        } else {
            self.upper[enter] - t
        };
        self.xb[leave_row] = enter_val;
        self.basis[leave_row] = enter;
        self.status[enter] = VStat::Basic(leave_row as u32);
        self.apply_update(leave_row, &w);
        StepOutcome::Moved
    }

    /// Absorb one basis change into the factorization (the column at
    /// `leave_row` was swapped for one whose ftran image is `w`).
    fn apply_update(&mut self, leave_row: usize, w: &[f64]) {
        self.factor.update(leave_row, w);
        self.pivots_since_refactor += 1;
        self.eta_updates += 1;
    }

    /// Forrest–Goldfarb devex weight update for the pivot (enter `q`, leave
    /// row `r`). Must run against the *pre-pivot* basis: with
    /// `ρ = B⁻ᵀe_r` and `α_rj = ρᵀA_j`, every nonbasic `j` gets
    /// `γ_j := max(γ_j, α_rj² · γ_q / α_rq²)`; the leaving variable inherits
    /// `max(γ_q / α_rq², 1)`. When any weight blows past 1e10 the reference
    /// framework is reset to all-ones (counted in `devex_resets`).
    fn devex_update(&mut self, enter: usize, leave_row: usize, w: &[f64]) {
        let alpha_rq = w[leave_row];
        if alpha_rq.abs() <= self.eps {
            return;
        }
        if self.csr.is_none() {
            self.csr = Some(self.sf.cols.to_csr());
        }
        self.rho_buf.resize(self.m, 0.0);
        self.alpha_buf.resize(self.sf.n, 0.0);
        self.factor.btran_unit(leave_row, &mut self.rho_buf);
        // α_rj accumulated column-wise over the nonzero rows of ρ
        let csr = self.csr.as_ref().expect("csr built above");
        for (r, &rv) in self.rho_buf.iter().enumerate() {
            if rv == 0.0 {
                continue;
            }
            let (cols, vals) = csr.row(r);
            for (&j, &v) in cols.iter().zip(vals) {
                let j = j as usize;
                if self.alpha_buf[j] == 0.0 {
                    self.touched_buf.push(j);
                }
                self.alpha_buf[j] += rv * v;
            }
        }
        let ratio_base = self.devex_w[enter] / (alpha_rq * alpha_rq);
        let mut blown = false;
        for idx in 0..self.touched_buf.len() {
            let j = self.touched_buf[idx];
            let a = self.alpha_buf[j];
            self.alpha_buf[j] = 0.0;
            if j == enter || matches!(self.status[j], VStat::Basic(_)) {
                continue;
            }
            let cand = a * a * ratio_base;
            if cand > self.devex_w[j] {
                self.devex_w[j] = cand;
            }
            if self.devex_w[j] > 1e10 {
                blown = true;
            }
        }
        self.touched_buf.clear();
        // the leaving variable joins the nonbasic set with the pivot-row
        // weight; the entering one is basic (weight reset for its next exit)
        let leaving = self.basis[leave_row];
        self.devex_w[leaving] = ratio_base.max(1.0);
        self.devex_w[enter] = 1.0;
        if blown {
            for g in self.devex_w.iter_mut() {
                *g = 1.0;
            }
            self.devex_resets += 1;
        }
    }

    fn run_phase(&mut self, max_iter: u64, deadline: Option<Instant>) -> Result<(), LpError> {
        let mut stalled: u64 = 0;
        let stall_limit = 4 * (self.m as u64 + self.sf.n as u64) + 64;
        let mut last_obj = self.current_objective();
        let trace = std::env::var_os("SB_LP_PHASE_DEBUG").is_some();
        let trace_start = Instant::now();
        loop {
            if trace && self.iterations.is_multiple_of(1000) {
                eprintln!(
                    "phase trace: iter {} obj {:.6e} etas {} refacs {} factor_nnz {} elapsed {:.1}s",
                    self.iterations,
                    last_obj,
                    self.eta_updates,
                    self.refactorizations,
                    self.factor.nnz(),
                    trace_start.elapsed().as_secs_f64()
                );
            }
            if self.iterations >= max_iter {
                return Err(LpError::IterationLimit);
            }
            // amortize the clock read over a batch of pivots
            if self.iterations.is_multiple_of(32) {
                if let Some(dl) = deadline {
                    if Instant::now() >= dl {
                        return Err(LpError::TimeLimit);
                    }
                }
            }
            if self.pivots_since_refactor >= self.refactor_every || self.factor.wants_refactor() {
                self.refactorize()?;
            }
            let bland = stalled > stall_limit;
            match self.step(bland) {
                StepOutcome::Optimal => return Ok(()),
                StepOutcome::Unbounded => return Err(LpError::Unbounded),
                StepOutcome::NeedsRefactor => {
                    // No pivot was applied; a fresh factor either clears the
                    // suspect entry (noise) or certifies it (accepted next
                    // pass), so this cannot loop.
                    self.refactorize()?;
                    continue;
                }
                StepOutcome::Moved => {}
            }
            self.iterations += 1;
            let obj = self.current_objective();
            if last_obj - obj > self.eps * (1.0 + last_obj.abs()) {
                stalled = 0;
            } else {
                stalled += 1;
            }
            last_obj = obj;
        }
    }

    /// Full standard-form assignment.
    fn extract(&self) -> Vec<f64> {
        let mut x = vec![0.0f64; self.sf.n];
        for j in 0..self.sf.n {
            match self.status[j] {
                VStat::Basic(i) => x[j] = self.xb[i as usize].max(0.0),
                VStat::Lower => x[j] = 0.0,
                VStat::Upper => x[j] = self.upper[j],
            }
        }
        x
    }
}

impl RevisedSimplex {
    /// Solve `lp`, optionally warm-starting from `warm` (a basis exported by
    /// a previous [`Solution::basis`] on a layout-identical problem). An
    /// unusable warm basis (wrong shape, singular, or primal-infeasible
    /// beyond `feas_eps`) silently falls back to a cold two-phase solve.
    pub fn solve_with_basis(
        &self,
        lp: &LpProblem,
        warm: Option<&Basis>,
    ) -> Result<Solution, LpError> {
        if lp.num_vars() == 0 {
            return Err(LpError::BadModel("no variables".into()));
        }
        let sf = StandardForm::build(lp);
        self.solve_standard(lp, &sf, warm)
    }

    /// Like [`solve_with_basis`](Self::solve_with_basis) but reuses a cached
    /// `LpProblem → StandardForm` conversion (see [`PreparedProblem`]).
    pub fn solve_prepared(
        &self,
        lp: &LpProblem,
        prep: &PreparedProblem,
        warm: Option<&Basis>,
    ) -> Result<Solution, LpError> {
        if lp.num_vars() == 0 {
            return Err(LpError::BadModel("no variables".into()));
        }
        self.solve_standard(lp, &prep.sf, warm)
    }

    fn solve_standard(
        &self,
        lp: &LpProblem,
        sf: &StandardForm,
        warm: Option<&Basis>,
    ) -> Result<Solution, LpError> {
        let wall_start = Instant::now();
        let deadline = self.time_budget.map(|b| wall_start + b);
        let max_iter = if self.max_iterations > 0 {
            self.max_iterations
        } else {
            50_000 + 40 * (sf.m as u64 + sf.n as u64)
        };

        // ---- warm start: try to skip phase 1 entirely -----------------------
        let mut warm_started = false;
        let mut eng = match warm {
            Some(basis) => {
                match Engine::from_basis(
                    sf,
                    self.eps,
                    self.feas_eps,
                    self.refactor_every,
                    self.pricing,
                    self.factorization,
                    basis,
                ) {
                    Ok(eng) => {
                        warm_started = true;
                        lp_metrics().record_warm_accepted();
                        eng
                    }
                    Err(reject) => {
                        if std::env::var_os("SB_LP_RESTORE_DEBUG").is_some() {
                            eprintln!(
                                "warm reject: {}",
                                if matches!(reject, WarmReject::Singular) {
                                    "singular"
                                } else {
                                    "infeasible"
                                }
                            );
                        }
                        lp_metrics().record_warm_rejected(matches!(reject, WarmReject::Singular));
                        Engine::new(
                            sf,
                            self.eps,
                            self.refactor_every,
                            self.pricing,
                            self.factorization,
                        )
                    }
                }
            }
            None => Engine::new(
                sf,
                self.eps,
                self.refactor_every,
                self.pricing,
                self.factorization,
            ),
        };

        // ---- phase 1 (cold starts only) -------------------------------------
        if !warm_started && sf.first_artificial < sf.n {
            // The phase-1 objective reshapes reduced costs on nearly every
            // pivot, so a candidate list harvested by one sweep is stale by
            // the next — measured on the provisioning LPs, partial pricing
            // more than tripled phase-1 iterations. Phase 1 therefore always
            // prices with full Dantzig sweeps; the requested strategy is
            // restored for phase 2.
            eng.pricing = Pricing::Dantzig;
            for j in sf.first_artificial..sf.n {
                eng.cost[j] = 1.0;
            }
            // Per-artificial feasibility test: an artificial's column is a
            // unit vector on its original row, so a basic artificial at value
            // v means that row is violated by v. Compare v against the row's
            // own scale — an aggregate Σb-scaled test would let a huge-RHS
            // row mask a real violation on a small-RHS row.
            let residual_violation = |eng: &Engine<'_>| -> bool {
                (0..sf.m).any(|i| {
                    let j = eng.basis[i];
                    j >= sf.first_artificial && {
                        let row = sf.cols.col(j).0[0] as usize;
                        eng.xb[i] > self.feas_eps * (1.0 + sf.b[row].abs())
                    }
                })
            };
            // Numerical drift can make phase 1 stop early with artificials
            // still carrying value; refactorize (exact recompute of B⁻¹ and
            // x_B) and resume before declaring the model infeasible.
            let mut attempts = 0;
            loop {
                match eng.run_phase(max_iter, deadline) {
                    Ok(()) => {}
                    Err(LpError::Unbounded) => {
                        return Err(LpError::BadModel(
                            "phase-1 objective unbounded (internal error)".into(),
                        ))
                    }
                    Err(e) => return Err(e),
                }
                if !residual_violation(&eng) {
                    break;
                }
                if attempts >= 2 || eng.refactorize().is_err() {
                    return Err(LpError::Infeasible);
                }
                if !residual_violation(&eng) {
                    break;
                }
                attempts += 1;
            }
            // pin artificials to zero; reset costs
            for j in sf.first_artificial..sf.n {
                eng.upper[j] = 0.0;
                eng.cost[j] = 0.0;
                if eng.status[j] == VStat::Upper {
                    eng.status[j] = VStat::Lower;
                }
            }
        }

        // ---- phase 2 --------------------------------------------------------
        let phase1_iterations = eng.iterations;
        eng.pricing = self.pricing;
        for (j, &c) in sf.cost.iter().enumerate() {
            eng.cost[j] = c;
        }
        // Phase-2 costs invalidate any phase-1 candidate list.
        eng.cand.clear();
        eng.run_phase(max_iter, deadline)?;

        // Drift guard: the incrementally-updated B⁻¹ accumulates error, so
        // the point `run_phase` stopped at can be subtly wrong in two ways —
        // a basic variable's *exact* value (recomputed below) may sit outside
        // its bounds, or a favorable reduced cost may have been masked by
        // noise. Either would silently corrupt the extracted solution (the
        // clamp in `extract` turns an out-of-bounds basic into an `Ax = b`
        // violation). Refactorize to exact values, repair any bound
        // violations with dual-simplex pivots, and re-price; repeat until a
        // clean round. A (rare) singular refactorization means the
        // incrementally-maintained inverse is still the best state we have —
        // keep it; `refactorize` only commits on success.
        let mut clean = false;
        for _ in 0..6 {
            if eng.refactorize().is_err() {
                break;
            }
            let mut progressed = false;
            if !eng.primal_feasible(self.feas_eps) {
                if !eng.dual_restore(self.feas_eps) {
                    return Err(LpError::BadModel(
                        "numerical: primal feasibility lost and not restorable".into(),
                    ));
                }
                progressed = true;
            }
            eng.cand.clear();
            let before = eng.iterations;
            eng.run_phase(max_iter, deadline)?;
            if eng.iterations != before {
                progressed = true;
            }
            if !progressed {
                clean = true;
                break;
            }
        }
        if !clean && !eng.primal_feasible(self.feas_eps) {
            return Err(LpError::BadModel(
                "numerical: drift guard failed to converge".into(),
            ));
        }
        let x = eng.extract();
        let values = sf.recover(&x);
        let objective = lp.objective_at(&values);
        let duals = Some(sf.recover_duals(&eng.duals()));
        let basis = eng.export_basis();
        let stats = SolveStats {
            phase1_iterations,
            phase2_iterations: eng.iterations - phase1_iterations,
            refactorizations: eng.refactorizations,
            wall: wall_start.elapsed(),
            warm_started,
            // Proxy for avoided phase-1 work: every row whose cold start
            // would begin on an artificial column needs at least one phase-1
            // pivot to drive it out.
            phase1_iterations_saved: if warm_started {
                sf.basis0
                    .iter()
                    .filter(|&&j| j >= sf.first_artificial)
                    .count() as u64
            } else {
                0
            },
            pricing_scans: eng.pricing_scans,
            pricing_cols_scanned: eng.pricing_cols_scanned,
            full_pricing_sweeps: eng.full_pricing_sweeps,
            rung: if warm_started {
                SolveRung::WarmPrimary
            } else {
                SolveRung::ColdPrimary
            },
            basis_nnz: eng.factor.nnz() as u64,
            fill_ratio: {
                let input_nnz: usize = eng.basis.iter().map(|&j| sf.cols.col_nnz(j)).sum();
                eng.factor.nnz() as f64 / input_nnz.max(1) as f64
            },
            eta_updates: eng.eta_updates,
            devex_resets: eng.devex_resets,
        };
        lp_metrics().record_solve(&stats);
        Ok(Solution {
            values,
            objective,
            duals,
            iterations: eng.iterations,
            stats,
            basis: Some(basis),
        })
    }
}

impl Solver for RevisedSimplex {
    fn solve(&self, lp: &LpProblem) -> Result<Solution, LpError> {
        self.solve_with_basis(lp, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseSimplex;
    use crate::problem::LpProblem;

    fn solve(lp: &LpProblem) -> Result<Solution, LpError> {
        RevisedSimplex::new().solve(lp)
    }

    #[test]
    fn classic_two_var() {
        let mut lp = LpProblem::new();
        let x = lp.add_nonneg("x", -3.0);
        let y = lp.add_nonneg("y", -5.0);
        lp.add_le(vec![(x, 1.0)], 4.0);
        lp.add_le(vec![(y, 2.0)], 12.0);
        lp.add_le(vec![(x, 3.0), (y, 2.0)], 18.0);
        let s = solve(&lp).unwrap();
        assert!((s.objective() + 36.0).abs() < 1e-8);
    }

    #[test]
    fn bound_flip_path() {
        // min -x - y with x <= 1, y <= 1 as *bounds* and x + y <= 1.5 as a row
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", -1.0, 0.0, 1.0);
        let y = lp.add_var("y", -1.0, 0.0, 1.0);
        lp.add_le(vec![(x, 1.0), (y, 1.0)], 1.5);
        let s = solve(&lp).unwrap();
        assert!((s.objective() + 1.5).abs() < 1e-8);
        assert!(lp.max_violation(s.values()) < 1e-9);
    }

    #[test]
    fn infeasible() {
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", 1.0, 0.0, 1.0);
        lp.add_ge(vec![(x, 1.0)], 2.0);
        assert_eq!(solve(&lp).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded() {
        let mut lp = LpProblem::new();
        let x = lp.add_nonneg("x", -1.0);
        let y = lp.add_nonneg("y", 0.0);
        lp.add_ge(vec![(x, 1.0), (y, -1.0)], 0.0);
        assert_eq!(solve(&lp).unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn equality_with_bounds() {
        // min 2a + b  s.t. a + b = 5, a <= 2
        let mut lp = LpProblem::new();
        let a = lp.add_var("a", 2.0, 0.0, 2.0);
        let b = lp.add_nonneg("b", 1.0);
        lp.add_eq(vec![(a, 1.0), (b, 1.0)], 5.0);
        let s = solve(&lp).unwrap();
        assert!((s.objective() - 5.0).abs() < 1e-8);
        assert!((s.value(a) - 0.0).abs() < 1e-8);
    }

    #[test]
    fn agrees_with_dense_on_mixed_model() {
        let mut lp = LpProblem::new();
        let a = lp.add_var("a", 3.0, 0.0, 10.0);
        let b = lp.add_var("b", 1.0, 0.5, 10.0);
        let c = lp.add_var("c", 2.0, 0.0, 4.0);
        let d = lp.add_var("d", -1.0, 0.0, 2.0);
        lp.add_ge(vec![(a, 1.0), (b, 1.0)], 6.0);
        lp.add_ge(vec![(b, 1.0), (c, 1.0)], 8.0);
        lp.add_le(vec![(a, 1.0), (c, 2.0), (d, 1.0)], 14.0);
        lp.add_eq(vec![(d, 1.0), (a, 0.5)], 2.0);
        let s1 = solve(&lp).unwrap();
        let s2 = DenseSimplex::new().solve(&lp).unwrap();
        assert!((s1.objective() - s2.objective()).abs() < 1e-7);
        assert!(lp.max_violation(s1.values()) < 1e-7);
    }

    #[test]
    fn duals_reconstruct_objective_for_tight_lp() {
        // A pure ≤ model with optimum away from bounds: strong duality gives
        // obj = yᵀb.
        let mut lp = LpProblem::new();
        let x = lp.add_nonneg("x", -3.0);
        let y = lp.add_nonneg("y", -5.0);
        lp.add_le(vec![(x, 1.0)], 4.0);
        lp.add_le(vec![(y, 2.0)], 12.0);
        lp.add_le(vec![(x, 3.0), (y, 2.0)], 18.0);
        let s = solve(&lp).unwrap();
        let yb: f64 = (0..3)
            .map(|i| s.dual(i).unwrap() * [4.0, 12.0, 18.0][i])
            .sum();
        assert!((yb - s.objective()).abs() < 1e-7);
    }

    #[test]
    fn degenerate_terminates() {
        let mut lp = LpProblem::new();
        let x1 = lp.add_nonneg("x1", -0.75);
        let x2 = lp.add_nonneg("x2", 150.0);
        let x3 = lp.add_nonneg("x3", -0.02);
        let x4 = lp.add_nonneg("x4", 6.0);
        lp.add_le(vec![(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)], 0.0);
        lp.add_le(vec![(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)], 0.0);
        lp.add_le(vec![(x3, 1.0)], 1.0);
        let s = solve(&lp).unwrap();
        assert!((s.objective() + 0.05).abs() < 1e-8);
    }

    #[test]
    fn moderately_sized_transport_problem() {
        // 12 sources × 15 sinks transportation LP with known optimum
        // (verified against the dense engine).
        let ns = 12;
        let nd = 15;
        let mut lp = LpProblem::new();
        let mut xs = Vec::new();
        for i in 0..ns {
            for j in 0..nd {
                let cost = ((i * 7 + j * 13) % 10 + 1) as f64;
                xs.push(lp.add_nonneg(format!("x{i}_{j}"), cost));
            }
        }
        let supply = 10.0;
        let demand = supply * ns as f64 / nd as f64;
        for i in 0..ns {
            let coeffs = (0..nd).map(|j| (xs[i * nd + j], 1.0)).collect();
            lp.add_eq(coeffs, supply);
        }
        for j in 0..nd {
            let coeffs = (0..ns).map(|i| (xs[i * nd + j], 1.0)).collect();
            lp.add_eq(coeffs, demand);
        }
        let s1 = solve(&lp).unwrap();
        let s2 = DenseSimplex::new().solve(&lp).unwrap();
        assert!((s1.objective() - s2.objective()).abs() < 1e-6 * (1.0 + s2.objective().abs()));
        assert!(lp.max_violation(s1.values()) < 1e-6);
    }

    #[test]
    fn peak_minimization_structure() {
        // miniature of the provisioning LP: two slots, two sites, one config;
        // min peak subject to demand split per slot
        let mut lp = LpProblem::new();
        let p1 = lp.add_nonneg("peak1", 1.0);
        let p2 = lp.add_nonneg("peak2", 1.0);
        // slot 0 demand 10, slot 1 demand 10, shares s_tx
        let mut s = Vec::new();
        for t in 0..2 {
            for x in 0..2 {
                s.push(lp.add_var(format!("s{t}{x}"), 0.0, 0.0, 10.0));
            }
        }
        for t in 0..2 {
            lp.add_eq(vec![(s[t * 2], 1.0), (s[t * 2 + 1], 1.0)], 10.0);
            lp.add_le(vec![(s[t * 2], 1.0), (p1, -1.0)], 0.0);
            lp.add_le(vec![(s[t * 2 + 1], 1.0), (p2, -1.0)], 0.0);
        }
        let sol = solve(&lp).unwrap();
        // optimal: split 5/5 each slot → total peak 10
        assert!((sol.objective() - 10.0).abs() < 1e-7);
    }

    #[test]
    fn fixed_variable_is_respected() {
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", -5.0, 2.0, 2.0); // fixed at 2
        let y = lp.add_var("y", 1.0, 0.0, f64::INFINITY);
        lp.add_ge(vec![(x, 1.0), (y, 1.0)], 3.0);
        let s = solve(&lp).unwrap();
        assert!((s.value(x) - 2.0).abs() < 1e-9);
        assert!((s.value(y) - 1.0).abs() < 1e-8);
    }

    fn transport_lp(ns: usize, nd: usize) -> LpProblem {
        let mut lp = LpProblem::new();
        let mut xs = Vec::new();
        for i in 0..ns {
            for j in 0..nd {
                let cost = ((i * 7 + j * 13) % 10 + 1) as f64;
                xs.push(lp.add_nonneg(format!("x{i}_{j}"), cost));
            }
        }
        let supply = 10.0;
        let demand = supply * ns as f64 / nd as f64;
        for i in 0..ns {
            lp.add_eq((0..nd).map(|j| (xs[i * nd + j], 1.0)).collect(), supply);
        }
        for j in 0..nd {
            lp.add_eq((0..ns).map(|i| (xs[i * nd + j], 1.0)).collect(), demand);
        }
        lp
    }

    #[test]
    fn warm_restart_on_same_problem_skips_phase1() {
        let lp = transport_lp(8, 9);
        let cold = solve(&lp).unwrap();
        assert!(!cold.stats().warm_started);
        assert!(cold.stats().phase1_iterations > 0);
        let warm = RevisedSimplex::new()
            .solve_with_basis(&lp, cold.basis())
            .unwrap();
        assert!(warm.stats().warm_started);
        assert_eq!(warm.stats().phase1_iterations, 0);
        // re-solving at the optimum should take (near) zero pivots
        assert!(warm.iterations() <= 2, "iterations = {}", warm.iterations());
        assert!((warm.objective() - cold.objective()).abs() < 1e-7);
        assert!(warm.stats().phase1_iterations_saved > 0);
    }

    #[test]
    fn warm_start_after_rhs_patch_agrees_with_cold() {
        let mut lp = transport_lp(6, 5);
        let mut prep = crate::standard::PreparedProblem::new(&lp);
        let base = RevisedSimplex::new()
            .solve_prepared(&lp, &prep, None)
            .unwrap();
        // perturb one equality rhs pair (keep the transport balance intact)
        lp.set_rhs(0, 12.0);
        lp.set_rhs(6, 14.0); // first demand row: 12 + 5*10 - 4*12 = 14
        lp.set_rhs(7, 12.0);
        assert_eq!(
            prep.refresh(&lp),
            crate::standard::PatchOutcome::Patched,
            "rhs-only change must not change the layout"
        );
        let warm = RevisedSimplex::new()
            .solve_prepared(&lp, &prep, base.basis())
            .unwrap();
        let cold = solve(&lp).unwrap();
        assert!(warm.stats().warm_started);
        assert!((warm.objective() - cold.objective()).abs() < 1e-6);
        assert!(lp.max_violation(warm.values()) < 1e-6);
        assert!(warm.iterations() < cold.iterations());
    }

    #[test]
    fn garbage_basis_falls_back_to_cold_solve() {
        let lp = transport_lp(5, 6);
        let cold = solve(&lp).unwrap();
        // a basis from a structurally different problem: wrong shape
        let other = solve(&transport_lp(3, 4)).unwrap();
        let s = RevisedSimplex::new()
            .solve_with_basis(&lp, other.basis())
            .unwrap();
        assert!(!s.stats().warm_started);
        assert!((s.objective() - cold.objective()).abs() < 1e-7);
    }

    #[test]
    fn partial_pricing_agrees_with_dantzig() {
        for (ns, nd) in [(8, 9), (12, 15), (4, 17)] {
            let lp = transport_lp(ns, nd);
            let dantzig = solve(&lp).unwrap();
            let partial = RevisedSimplex::with_partial_pricing().solve(&lp).unwrap();
            assert!(
                (dantzig.objective() - partial.objective()).abs()
                    < 1e-6 * (1.0 + dantzig.objective().abs())
            );
            assert!(lp.max_violation(partial.values()) < 1e-6);
            // the whole point: fewer reduced costs evaluated
            assert!(
                partial.stats().pricing_cols_scanned < dantzig.stats().pricing_cols_scanned,
                "partial {} vs dantzig {}",
                partial.stats().pricing_cols_scanned,
                dantzig.stats().pricing_cols_scanned
            );
        }
    }

    #[test]
    fn tiny_candidate_list_still_reaches_optimum() {
        let lp = transport_lp(10, 11);
        let solver = RevisedSimplex {
            pricing: Pricing::Partial {
                list_size: 2,
                full_sweep_every: 3,
            },
            ..RevisedSimplex::default()
        };
        let s = solver.solve(&lp).unwrap();
        let reference = solve(&lp).unwrap();
        assert!((s.objective() - reference.objective()).abs() < 1e-6);
    }
}
