//! Failure-resilience integration: the backup capacity bought by the
//! scenario sweep must actually absorb every single-DC and single-link
//! failure (§2.1 requirement 2, §5.3 failure model).

use switchboard::core::{provision, PlanningInputs, ProvisionerParams};
use switchboard::net::FailureScenario;
use switchboard::sim::drill;
use switchboard::workload::{Generator, UniverseParams, WorkloadParams};

#[test]
fn every_single_failure_is_absorbed() {
    let topo = switchboard::net::presets::apac();
    let params = WorkloadParams {
        universe: UniverseParams {
            num_configs: 90,
            seed: 33,
            ..Default::default()
        },
        daily_calls: 1_000.0,
        slot_minutes: 240,
        seed: 33,
        ..Default::default()
    };
    let generator = Generator::new(&topo, params);
    let demand = generator.sample_demand(0, 7, 2);
    let selected = demand.top_configs_covering(0.9);
    let envelope = demand
        .filtered(&selected)
        .scaled(1.2)
        .envelope_day(generator.slots_per_day());
    let inputs = PlanningInputs {
        topo: &topo,
        catalog: &generator.universe().catalog,
        demand: &envelope,
        latency_threshold_ms: 120.0,
    };
    let plan = provision(&inputs, &ProvisionerParams::default()).expect("provisioning");

    // plan invariant: final capacity covers every scenario's requirement
    for (sc, req) in &plan.scenarios {
        assert!(
            plan.capacity.covers(req, 1e-6),
            "scenario {sc:?} not covered by the final capacity"
        );
    }
    // backup costs something, but less than doubling
    let serving_cost = plan.serving.cost(&topo);
    assert!(plan.cost > serving_cost);
    assert!(
        plan.cost < 2.5 * serving_cost,
        "backup overhead implausible"
    );

    // drills: inject every failure against a sampled trace; nobody may be
    // stranded, and re-homed calls stay within the latency universe
    let db = generator.sample_records(2, 1, 5);
    for sc in FailureScenario::enumerate(&topo) {
        let report = drill(
            &topo,
            &generator.universe().catalog,
            &db,
            sc,
            &plan.capacity,
        );
        assert_eq!(report.stranded, 0, "{sc:?} stranded calls");
        if let FailureScenario::DcDown(_) = sc {
            assert!(report.rehomed > 0 || report.mean_acl_ms > 0.0);
        }
    }
}

#[test]
fn serving_only_plan_fails_drills_that_backup_absorbs() {
    // sanity check that the drill actually detects under-provisioning:
    // a serving-only plan should violate capacity under some DC failure
    let topo = switchboard::net::presets::apac();
    let params = WorkloadParams {
        universe: UniverseParams {
            num_configs: 90,
            seed: 34,
            ..Default::default()
        },
        daily_calls: 1_000.0,
        slot_minutes: 240,
        seed: 34,
        ..Default::default()
    };
    let generator = Generator::new(&topo, params);
    let demand = generator.sample_demand(0, 7, 2);
    let selected = demand.top_configs_covering(0.9);
    let envelope = demand
        .filtered(&selected)
        .envelope_day(generator.slots_per_day());
    let inputs = PlanningInputs {
        topo: &topo,
        catalog: &generator.universe().catalog,
        demand: &envelope,
        latency_threshold_ms: 120.0,
    };
    let serving_only = provision(
        &inputs,
        &ProvisionerParams {
            with_backup: false,
            ..Default::default()
        },
    )
    .expect("provisioning");
    let with_backup = provision(&inputs, &ProvisionerParams::default()).expect("provisioning");
    let db = generator.sample_records(2, 1, 6);
    let mut serving_violations = 0u64;
    let mut backup_violations = 0u64;
    for dc in topo.dc_ids() {
        let sc = FailureScenario::DcDown(dc);
        serving_violations += drill(
            &topo,
            &generator.universe().catalog,
            &db,
            sc,
            &serving_only.capacity,
        )
        .violations;
        backup_violations += drill(
            &topo,
            &generator.universe().catalog,
            &db,
            sc,
            &with_backup.capacity,
        )
        .violations;
    }
    assert!(
        serving_violations > backup_violations,
        "backup capacity should strictly reduce drill violations \
         (serving-only {serving_violations} vs backup {backup_violations})"
    );
}
