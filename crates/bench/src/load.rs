//! Open-loop load generator for the `sb-engine` service layer.
//!
//! "Open loop" here means the offered schedule is fixed up front from a
//! sampled trace — workers never wait on downstream completion before
//! issuing the next op, so selector latency shows up in the engine's
//! [`sb_engine::FineHistogram`] instead of silently throttling load.
//!
//! The schedule is built with [`sb_sim::replay::build_events`] — the exact
//! `(minute, kind, record)` order the serial replay oracle is defined
//! against — so a drive through [`sb_engine::Engine`]'s admission path is
//! bitwise-comparable (selector stats and per-DC tallies) with
//! [`sb_sim::replay()`] over the same trace:
//!
//! * START → [`sb_engine::EngineWorker::admit`];
//! * FREEZE → [`sb_engine::EngineWorker::freeze`], skipped when the call is
//!   not live (the oracle's `current_dc` gate);
//! * END → [`sb_engine::EngineWorker::end`].
//!
//! The concurrent drive pins each call's whole lifecycle to one worker,
//! keyed by the quota pool its freeze debits ([`sb_engine::Engine::pool_token`]),
//! mirroring `sb-sim`'s lifecycle partitioning argument: per-pool freeze
//! order and per-call event order are preserved, everything else commutes.

use std::time::{Duration, Instant};

use sb_engine::{Engine, EngineWorker};
use sb_sim::replay::{build_events, EV_FREEZE, EV_START};
use sb_workload::CallRecord;

/// A fixed open-loop schedule over a trace: the canonical replay event
/// order, reusable across drive variants.
pub struct LoadSchedule {
    events: Vec<(u64, u8, usize)>,
}

impl LoadSchedule {
    /// Build the schedule for `records` with the replay freeze offset.
    pub fn new(records: &[CallRecord], freeze_minutes: u64) -> LoadSchedule {
        LoadSchedule {
            events: build_events(records, freeze_minutes),
        }
    }

    /// Number of scheduled events (an upper bound on selector ops; freezes
    /// of dead calls are skipped at drive time).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the trace was empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Wall time and op count of one drive.
#[derive(Clone, Copy, Debug)]
pub struct DriveOutcome {
    /// Drive wall time (includes the final worker flush).
    pub wall: Duration,
    /// Selector ops actually issued (admits + freezes + ends).
    pub ops: u64,
}

impl DriveOutcome {
    /// Selector ops per second.
    pub fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.wall.as_secs_f64()
    }
}

fn drive_list(worker: &mut EngineWorker<'_>, records: &[CallRecord], list: &[(u8, usize)]) -> u64 {
    let mut ops = 0u64;
    for &(kind, i) in list {
        let r = &records[i];
        match kind {
            EV_START => {
                worker.admit(r.id, r.first_joiner);
                ops += 1;
            }
            EV_FREEZE => {
                if worker.current_dc(r.id).is_some() {
                    worker.freeze(r.id, r.config, r.start_minute);
                    ops += 1;
                }
            }
            _ => {
                worker.end(r.id);
                ops += 1;
            }
        }
    }
    ops
}

/// Drive the whole schedule through one worker, in canonical order — the
/// engine-path equivalent of the serial replay oracle.
pub fn drive_serial(engine: &Engine, records: &[CallRecord], sched: &LoadSchedule) -> DriveOutcome {
    let mut kinds: Vec<(u8, usize)> = Vec::with_capacity(sched.events.len());
    for &(_, kind, i) in &sched.events {
        kinds.push((kind, i));
    }
    let mut worker = engine.worker();
    let t0 = Instant::now();
    let ops = drive_list(&mut worker, records, &kinds);
    worker.flush();
    DriveOutcome {
        wall: t0.elapsed(),
        ops,
    }
}

/// Drive the schedule across `threads` workers, each owning whole call
/// lifecycles partitioned by quota pool (unplanned calls by id). Produces
/// selector stats and per-DC tallies identical to [`drive_serial`].
pub fn drive_concurrent(
    engine: &Engine,
    records: &[CallRecord],
    sched: &LoadSchedule,
    threads: usize,
) -> DriveOutcome {
    let threads = threads.max(1);
    let mut lists: Vec<Vec<(u8, usize)>> = vec![Vec::new(); threads];
    for &(_, kind, i) in &sched.events {
        let r = &records[i];
        let w = match engine.pool_token(r.config, r.start_minute) {
            Some(t) => t as usize % threads,
            None => r.id as usize % threads,
        };
        lists[w].push((kind, i));
    }
    let t0 = Instant::now();
    let ops: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = lists
            .iter()
            .filter(|list| !list.is_empty())
            .map(|list| {
                s.spawn(move || {
                    let mut worker = engine.worker();
                    let ops = drive_list(&mut worker, records, list);
                    worker.flush();
                    ops
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap_or(0)).sum()
    });
    DriveOutcome {
        wall: t0.elapsed(),
        ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_core::{AllocationShares, LatencyMap, PlanArtifact, PlannedQuotas};
    use sb_engine::EngineConfig;
    use sb_net::{FailureScenario, RoutingTable};
    use sb_sim::{replay, ReplayConfig};
    use sb_workload::{Generator, UniverseParams, WorkloadParams};

    #[test]
    fn engine_drive_matches_serial_replay_oracle() {
        let topo = sb_net::presets::apac();
        let params = WorkloadParams {
            universe: UniverseParams {
                num_configs: 60,
                ..Default::default()
            },
            daily_calls: 400.0,
            slot_minutes: 120,
            ..Default::default()
        };
        let generator = Generator::new(&topo, params);
        let expected = generator.expected_demand(2, 1);
        let selected = expected.top_configs_covering(0.9);
        let planned = expected.filtered(&selected).scaled(1.1);
        let db = generator.sample_records(2, 1, 7);

        let slots = planned.num_slots();
        let mut shares = AllocationShares::new(slots);
        let n = topo.dcs.len() as f64;
        let spread: Vec<_> = topo.dc_ids().map(|d| (d, 1.0 / n)).collect();
        for &cfg in &selected {
            for s in 0..slots {
                shares.set(cfg, s, spread.clone());
            }
        }
        let quotas = PlannedQuotas::from_plan(&shares, &planned);
        let artifact = PlanArtifact::seed(quotas);
        let routing = RoutingTable::compute(&topo, FailureScenario::None);
        let latmap = LatencyMap::from_routing(&topo, &routing);

        let rcfg = ReplayConfig::default();
        let oracle_sel = sb_core::RealtimeSelector::from_artifact(&latmap, &artifact);
        let oracle = replay(
            &topo,
            &routing,
            &latmap,
            &generator.universe().catalog,
            &db,
            &oracle_sel,
            &rcfg,
        );

        let sched = LoadSchedule::new(db.records(), rcfg.freeze_minutes);
        assert!(!sched.is_empty());
        for threads in [0usize, 1, 3] {
            let engine = Engine::new(&latmap, &artifact, &EngineConfig::default());
            let out = if threads == 0 {
                drive_serial(&engine, db.records(), &sched)
            } else {
                drive_concurrent(&engine, db.records(), &sched, threads)
            };
            assert!(out.ops > 0 && out.ops <= sched.len() as u64);
            assert_eq!(
                engine.selector_stats(),
                oracle.stats().selector,
                "engine drive (threads={threads}) diverged from the serial replay oracle"
            );
            assert_eq!(engine.per_dc_tallies(), oracle.stats().per_dc_tallies);
            // every admitted call also ended: the store drained itself
            assert_eq!(engine.store().active_calls(), 0);
            assert!(engine.op_latency().count() >= out.ops);
        }
    }
}
