//! Plan-lifecycle harness: warm incremental re-planning plus mid-replay
//! hot-swap (§6.3's refresh loop end to end).
//!
//! Three stages on a seeded APAC day:
//!
//! 1. **Initial plan** — `SlotPlanner::plan_initial` solves every slot of
//!    the per-slot allocation LP cold and seeds the per-slot basis cache.
//! 2. **Re-plan sweep** — for each victim DC, `replan_from` re-solves only
//!    the remaining slots of the day warm-started from the cached bases; a
//!    second planner with warm starts disabled re-runs the same sweep so
//!    the wall times compare end to end. The per-slot warm-start hit rate
//!    must clear 50 % (in practice it is ~100 %: every slot has a basis).
//! 3. **Chaos drill** — a trace replay with a mid-day DC outage plus a
//!    stale-plan onset; a `Replanner` with a configurable re-plan latency
//!    rebuilds the tail of the plan and hot-swaps it into the live
//!    selector. The stale window must close at the install (no
//!    `plan_stale` freezes in any post-install window), nothing may
//!    strand, and the concurrent engine must match the serial oracle
//!    bit for bit across the swap.
//!
//! Usage: `replan_loop [--smoke] [--json <path>] [--metrics <path>]`
//!
//! `--smoke` shrinks the workload for CI. Machine-readable numbers go to
//! `BENCH_replan.json` (see README); the table goes to stdout.

use std::sync::Arc;
use std::time::Instant;

use sb_bench::common::{build_eval, dump_metrics, metrics_path_from_args, print_table, EvalScale};
use sb_core::formulation::{PlanningInputs, ScenarioData, SolveOptions};
use sb_core::{PlanArtifact, PlanDelta, ReplanReport, SlotPlanner};
use sb_net::{DcId, FailureScenario, ProvisionedCapacity};
use sb_sim::{ChaosConfig, FaultEvent, FaultTimeline, ReplanRequest, Replanner, ReplayDriver};
use sb_workload::Generator;

/// Re-plan latency the drill models (minutes between trigger and install).
const REPLAN_LATENCY_MIN: u64 = 15;

struct SweepOutcome {
    wall_s: f64,
    warm_hits: usize,
    solved: usize,
    iterations: u64,
}

/// Run the victim sweep: one `replan_from` per victim, all from the initial
/// artifact, re-solving slots `from_slot..`.
fn sweep(
    planner: &mut SlotPlanner<'_>,
    initial: &PlanArtifact,
    from_slot: usize,
    victims: &[(DcId, ScenarioData)],
) -> (SweepOutcome, Vec<ReplanReport>) {
    let mut out = SweepOutcome {
        wall_s: 0.0,
        warm_hits: 0,
        solved: 0,
        iterations: 0,
    };
    let mut reports = Vec::new();
    for (dc, sd) in victims {
        let t0 = Instant::now();
        let report = planner
            .replan_from(initial, from_slot, sd, None)
            .unwrap_or_else(|e| panic!("re-plan under DcDown({dc:?}) failed: {e}"));
        out.wall_s += t0.elapsed().as_secs_f64();
        out.warm_hits += report.warm_hits();
        out.solved += report.solved_slots();
        out.iterations += report.artifact.provenance.total_iterations;
        reports.push(report);
    }
    (out, reports)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let metrics_path = metrics_path_from_args();
    let json_path = {
        let mut args = std::env::args().skip(1);
        let mut path = String::from("BENCH_replan.json");
        while let Some(a) = args.next() {
            if a == "--json" {
                path = args.next().unwrap_or_else(|| {
                    eprintln!("--json requires a path argument");
                    std::process::exit(2);
                });
            } else if let Some(p) = a.strip_prefix("--json=") {
                path = p.to_string();
            }
        }
        path
    };

    let scale = if smoke {
        EvalScale {
            num_configs: 80,
            daily_calls: 1_200.0,
            days: 2,
            ..EvalScale::quick()
        }
    } else {
        EvalScale::quick()
    };
    let num_victims = if smoke { 2 } else { 4 };
    eprintln!(
        "building workload: {} configs, {:.0} calls/day, {}-min slots …",
        scale.num_configs, scale.daily_calls, scale.slot_minutes
    );
    let data = build_eval(&scale);
    let generator = Generator::new(&data.topo, data.workload.clone());

    // plan one concrete day (the day the drill replays), not the envelope
    let day = 1;
    let demand = generator
        .expected_demand(day, 1)
        .filtered(&data.selected)
        .scaled(1.0 / data.coverage_achieved.max(1e-9));
    let inputs = PlanningInputs {
        topo: &data.topo,
        catalog: &data.catalog,
        demand: &demand,
        latency_threshold_ms: 120.0,
    };
    let opts = SolveOptions::default();

    // victims: the first DCs of the topology; the drill uses the first
    let victims: Vec<(DcId, ScenarioData)> = data
        .topo
        .dcs
        .iter()
        .take(num_victims)
        .map(|dc| {
            (
                dc.id,
                ScenarioData::compute(&data.topo, FailureScenario::DcDown(dc.id)),
            )
        })
        .collect();
    let sd0 = ScenarioData::compute(&data.topo, FailureScenario::None);

    // fixed capacity every plan must fit: union of the healthy + victim
    // solves with 25% headroom, so every re-plan stays feasible
    eprintln!(
        "provisioning fixed capacity over {} scenarios …",
        victims.len() + 1
    );
    let mut capacity = ProvisionedCapacity::zero(&data.topo);
    let base = sb_core::solve_scenario(&inputs, &sd0, None, &opts).expect("healthy solve");
    capacity.max_with(&base.capacity);
    for (_, sd) in &victims {
        let sol = sb_core::solve_scenario(&inputs, sd, None, &opts).expect("victim solve");
        capacity.max_with(&sol.capacity);
    }
    for c in capacity.cores.iter_mut() {
        *c *= 1.25;
    }
    for g in capacity.gbps.iter_mut() {
        *g *= 1.25;
    }

    let all_sds: Vec<ScenarioData> = std::iter::once(sd0.clone())
        .chain(victims.iter().map(|(_, sd)| sd.clone()))
        .collect();

    // stage 1: initial plan, all slots cold
    let mut planner = SlotPlanner::new(&inputs, &all_sds, &capacity, &opts);
    let t0 = Instant::now();
    let initial = planner.plan_initial(&sd0).expect("initial plan");
    let initial_wall = t0.elapsed().as_secs_f64();
    let num_slots = demand.num_slots();
    let from_slot = num_slots / 2;
    eprintln!(
        "initial plan: {} slots ({} solved) in {:.3}s",
        num_slots,
        initial.solved_slots(),
        initial_wall
    );

    // stage 2: warm vs cold re-plan sweep over the victim scenarios
    let (warm, warm_reports) = sweep(&mut planner, &initial.artifact, from_slot, &victims);
    let cold_opts = SolveOptions {
        warm_start: false,
        ..SolveOptions::default()
    };
    let mut cold_planner = SlotPlanner::new(&inputs, &all_sds, &capacity, &cold_opts);
    cold_planner.plan_initial(&sd0).expect("cold initial plan");
    let (cold, _) = sweep(&mut cold_planner, &initial.artifact, from_slot, &victims);
    let hit_rate = if warm.solved > 0 {
        warm.warm_hits as f64 / warm.solved as f64
    } else {
        0.0
    };
    let speedup = cold.wall_s / warm.wall_s.max(1e-12);
    let delta_migrations: u64 = warm_reports
        .iter()
        .map(|r| PlanDelta::between(&initial.artifact, &r.artifact).implied_migrations())
        .sum();

    // stage 3: chaos drill — DC-down + stale plan, re-plan hot-swapped in
    let db = generator.sample_records(day, 1, scale.seed);
    let trace_t0 = db
        .records()
        .iter()
        .map(|r| r.start_minute)
        .min()
        .expect("non-empty trace");
    let victim = victims[0].0;
    let fault_at = trace_t0 + 240;
    let timeline = FaultTimeline::new()
        .with(FaultEvent::DcDown {
            dc: victim,
            at: fault_at,
            recover_at: None,
        })
        .with(FaultEvent::PlanStale {
            from: fault_at,
            until: None,
        });
    let chaos_cfg = ChaosConfig {
        window_minutes: 120,
        ..ChaosConfig::default()
    };
    let quotas = initial.artifact.quotas.clone();

    // without a replanner the plan stays stale to the end of the trace
    let bare = ReplayDriver::new(&data.topo, &data.catalog, &db, quotas.clone())
        .config(chaos_cfg.clone())
        .faults(timeline.clone())
        .run();

    // with one: re-plan the remaining slots under the outage, install after
    // the modeled latency; record the artifacts so the concurrent run can
    // replay the exact same installs
    let victim_sd = &victims[0].1;
    let mut installed: Vec<Arc<PlanArtifact>> = Vec::new();
    let prev_art = initial.artifact.clone();
    let mut build = |req: &ReplanRequest| {
        let from = req.from_slot.unwrap_or(0);
        let report = planner.replan_from(&prev_art, from, victim_sd, None).ok()?;
        let art = Arc::new(Arc::unwrap_or_clone(report.artifact).with_epoch(req.epoch));
        installed.push(art.clone());
        Some(art)
    };
    let mut rp = Replanner::new(REPLAN_LATENCY_MIN, &mut build);
    let replanned = ReplayDriver::new(&data.topo, &data.catalog, &db, quotas.clone())
        .config(chaos_cfg.clone())
        .faults(timeline.clone())
        .replanner(&mut rp)
        .run();
    drop(rp);
    assert!(
        replanned.plan_installs >= 1,
        "the DC-down trigger must install a re-plan"
    );
    assert_eq!(replanned.stranded, 0, "no call may strand in the drill");
    let install_minute = fault_at + REPLAN_LATENCY_MIN;
    let post_install_stale: u64 = replanned
        .windows
        .iter()
        .filter(|w| w.start_minute >= install_minute)
        .map(|w| w.plan_stale_freezes)
        .sum();
    assert_eq!(
        post_install_stale, 0,
        "plan_stale freezes must stop accruing once the re-plan lands"
    );
    assert!(
        replanned.selector.plan_stale <= bare.selector.plan_stale,
        "the re-plan cannot widen the stale window"
    );

    // serial-oracle check across the swap: replay the recorded installs
    for threads in [1usize, 8] {
        let mut i = 0usize;
        let arts = installed.clone();
        let mut replay_build = move |_req: &ReplanRequest| {
            let a = arts.get(i).cloned();
            i += 1;
            a
        };
        let mut rp = Replanner::new(REPLAN_LATENCY_MIN, &mut replay_build);
        let conc = ReplayDriver::new(&data.topo, &data.catalog, &db, quotas.clone())
            .config(chaos_cfg.clone())
            .faults(timeline.clone())
            .threads(threads)
            .replanner(&mut rp)
            .run();
        assert_eq!(
            replanned.stats(),
            conc.stats(),
            "concurrent drill diverged from serial across the swap, threads={threads}"
        );
    }

    println!("== replan_loop: plan lifecycle (re-plan + hot-swap) ==\n");
    println!(
        "APAC, {} slots/day, {} active victims, re-plan from slot {}, latency {} min\n",
        num_slots,
        victims.len(),
        from_slot,
        REPLAN_LATENCY_MIN
    );
    let rows = vec![
        vec![
            "initial (cold)".to_string(),
            format!("{:.3}", initial_wall),
            initial.solved_slots().to_string(),
            "-".to_string(),
            "-".to_string(),
        ],
        vec![
            "replan warm".to_string(),
            format!("{:.3}", warm.wall_s),
            warm.solved.to_string(),
            format!("{}/{}", warm.warm_hits, warm.solved),
            format!("{:.2}x", speedup),
        ],
        vec![
            "replan cold".to_string(),
            format!("{:.3}", cold.wall_s),
            cold.solved.to_string(),
            "0".to_string(),
            "1.00x".to_string(),
        ],
    ];
    print_table(&["stage", "wall(s)", "slots", "warm", "speedup"], &rows);
    println!(
        "\ndrill: {} installs at minute {}, stale freezes {} -> {} \
         (post-install {}), stranded {}, delta migrations {}",
        replanned.plan_installs,
        install_minute,
        bare.selector.plan_stale,
        replanned.selector.plan_stale,
        post_install_stale,
        replanned.stranded,
        delta_migrations,
    );
    println!(
        "warm-start hit rate {:.0}% over {} re-solved slots; serial == concurrent across the swap",
        hit_rate * 100.0,
        warm.solved
    );
    assert!(
        hit_rate > 0.5,
        "per-slot warm-start hit rate {hit_rate:.2} must clear 50%"
    );

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"replan_loop\",\n");
    out.push_str("  \"topology\": \"apac\",\n");
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str(&format!("  \"slots\": {num_slots},\n"));
    out.push_str(&format!("  \"from_slot\": {from_slot},\n"));
    out.push_str(&format!("  \"victims\": {},\n", victims.len()));
    out.push_str(&format!(
        "  \"replan_latency_min\": {REPLAN_LATENCY_MIN},\n"
    ));
    out.push_str(&format!("  \"initial_wall_s\": {initial_wall:.6},\n"));
    out.push_str(&format!(
        "  \"warm\": {{\"wall_s\": {:.6}, \"warm_hits\": {}, \"solved\": {}, \
         \"hit_rate\": {:.4}, \"iterations\": {}}},\n",
        warm.wall_s, warm.warm_hits, warm.solved, hit_rate, warm.iterations
    ));
    out.push_str(&format!(
        "  \"cold\": {{\"wall_s\": {:.6}, \"solved\": {}, \"iterations\": {}}},\n",
        cold.wall_s, cold.solved, cold.iterations
    ));
    out.push_str(&format!("  \"speedup_warm_vs_cold\": {speedup:.4},\n"));
    out.push_str(&format!("  \"delta_migrations\": {delta_migrations},\n"));
    out.push_str(&format!(
        "  \"drill\": {{\"plan_installs\": {}, \"install_minute\": {}, \
         \"stale_freezes_bare\": {}, \"stale_freezes_replanned\": {}, \
         \"post_install_stale_freezes\": {}, \"stranded\": {}, \
         \"forced_migrations\": {}, \"serial_equals_concurrent\": true}}\n",
        replanned.plan_installs,
        install_minute,
        bare.selector.plan_stale,
        replanned.selector.plan_stale,
        post_install_stale,
        replanned.stranded,
        replanned.forced_migrations
    ));
    out.push_str("}\n");
    match std::fs::write(&json_path, out) {
        Ok(()) => eprintln!("wrote {json_path}"),
        Err(e) => {
            eprintln!("failed to write {json_path}: {e}");
            std::process::exit(1);
        }
    }
    if let Some(path) = metrics_path {
        dump_metrics(&path);
    }
}
