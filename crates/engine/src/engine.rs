//! The service-shaped orchestration layer over the `sb-core` selector.
//!
//! `sb-core` owns the placement *primitives* (closest-DC assignment, quota
//! debits, the degradation ladder); this module owns everything a
//! long-running service wraps around them: admission control, the call
//! lifecycle persisted through the `sb-store` call-state store, plan
//! hot-swap, and graceful drain. Keeping the two apart is deliberate — see
//! DESIGN.md §Layering for the separation-of-concerns lesson this encodes.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use sb_core::{
    FreezeDecision, LatencyMap, PlanArtifact, PlanSwapStats, RealtimeSelector, SelectorOutcome,
    SelectorStats,
};
use sb_net::CountryId;
use sb_store::{CallEvent, CallStateStore, LatencyHistogram, MediaFlag};
use sb_workload::ConfigId;

use crate::latency::FineHistogram;

/// Engine construction knobs.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Shard count of the call-state store.
    pub store_shards: usize,
    /// Simulated per-write store round trip (§6.6; zero = in-process map).
    pub store_rtt: Duration,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            store_shards: 64,
            store_rtt: Duration::ZERO,
        }
    }
}

/// Outcome of an admission request.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum Admission {
    /// The call was admitted and placed (the outcome says where and via
    /// which rung). A placement of `None` means every DC was unreachable —
    /// admitted but stranded, mirroring the selector's ladder.
    Granted(SelectorOutcome),
    /// The engine is draining: no new calls.
    Draining,
}

impl Admission {
    /// The assigned DC, if any.
    pub fn dc(self) -> Option<sb_net::DcId> {
        match self {
            Admission::Granted(o) => o.dc(),
            Admission::Draining => None,
        }
    }
}

/// Aggregate engine counters (one consistent snapshot).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EngineStats {
    /// Selector-side statistics (assignments, freezes, migrations, …).
    pub selector: SelectorStats,
    /// Calls admitted (placed or stranded — the selector saw them).
    pub admitted: u64,
    /// Admissions rejected because the engine was draining.
    pub rejected_draining: u64,
    /// Calls ended.
    pub ended: u64,
    /// Plans hot-swapped in over the engine's lifetime.
    pub plans_installed: u64,
    /// Currently live calls (selector view).
    pub active_calls: usize,
    /// Call-state writes persisted to the store.
    pub store_writes: u64,
}

/// A long-running selector service: admission, call lifecycle via the
/// sharded call-state store, plan hot-swap, graceful drain.
///
/// All methods take `&self`; workers drive a per-thread [`EngineWorker`]
/// (from [`Engine::worker`]) so stats and latency samples batch locally and
/// merge on flush/drop.
pub struct Engine {
    selector: RealtimeSelector,
    store: CallStateStore,
    draining: AtomicBool,
    admitted: AtomicU64,
    rejected_draining: AtomicU64,
    ended: AtomicU64,
    plans_installed: AtomicU64,
    op_latency: Mutex<FineHistogram>,
    store_latency: Mutex<LatencyHistogram>,
}

impl Engine {
    /// Boot the engine from a topology view and an initial plan artifact.
    pub fn new(latmap: &LatencyMap, artifact: &PlanArtifact, cfg: &EngineConfig) -> Engine {
        Engine {
            selector: RealtimeSelector::from_artifact(latmap, artifact),
            store: CallStateStore::with_simulated_rtt(cfg.store_shards, cfg.store_rtt),
            draining: AtomicBool::new(false),
            admitted: AtomicU64::new(0),
            rejected_draining: AtomicU64::new(0),
            ended: AtomicU64::new(0),
            plans_installed: AtomicU64::new(0),
            op_latency: Mutex::new(FineHistogram::new()),
            store_latency: Mutex::new(LatencyHistogram::new()),
        }
    }

    /// A worker handle batching selector stats and latency samples locally.
    pub fn worker(&self) -> EngineWorker<'_> {
        EngineWorker {
            engine: self,
            shard: self.selector.shard(),
            ops: FineHistogram::new(),
            store_hist: LatencyHistogram::new(),
        }
    }

    /// Hot-swap a new plan into the selector (carrying consumed quota over,
    /// see [`RealtimeSelector::install_plan`]).
    pub fn install_plan(&self, artifact: &PlanArtifact) -> PlanSwapStats {
        let swap = self.selector.install_plan(artifact);
        self.plans_installed.fetch_add(1, Ordering::Relaxed);
        swap
    }

    /// Push a fresh topology view (latency map + per-DC health).
    pub fn update_topology(&self, latmap: &LatencyMap, dc_up: &[bool]) {
        self.selector.update_topology(latmap, dc_up);
    }

    /// Stop admitting new calls; in-flight calls keep running to completion.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// Is the engine refusing new admissions?
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Drained = draining and no live calls remain.
    pub fn drained(&self) -> bool {
        self.draining() && self.selector.active_calls() == 0
    }

    /// Block until drained or `timeout` elapses; returns whether the drain
    /// completed. (Callers must keep feeding `end` events — the engine never
    /// hangs up calls itself.)
    pub fn wait_drained(&self, timeout: Duration) -> bool {
        let t0 = Instant::now();
        while !self.drained() {
            if t0.elapsed() >= timeout {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        true
    }

    /// Installed plan epoch.
    pub fn plan_epoch(&self) -> u64 {
        self.selector.plan_epoch()
    }

    /// Opaque token identifying the quota pool a `(config, start-minute)`
    /// freeze will debit, for partitioning work across workers (same token →
    /// same pool). `None` when the freeze would be unplanned.
    pub fn pool_token(&self, config: ConfigId, start_minute: u64) -> Option<u64> {
        self.selector.quota_pool_token(config, start_minute)
    }

    /// Selector-side statistics (includes deltas from flushed workers only).
    pub fn selector_stats(&self) -> SelectorStats {
        self.selector.stats()
    }

    /// Per-DC frozen-call tallies.
    pub fn per_dc_tallies(&self) -> Vec<u64> {
        self.selector.per_dc_tallies()
    }

    /// One consistent counter snapshot.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            selector: self.selector.stats(),
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected_draining: self.rejected_draining.load(Ordering::Relaxed),
            ended: self.ended.load(Ordering::Relaxed),
            plans_installed: self.plans_installed.load(Ordering::Relaxed),
            active_calls: self.selector.active_calls(),
            store_writes: self.store_latency.lock().count(),
        }
    }

    /// Selector-op latency distribution merged from flushed workers.
    pub fn op_latency(&self) -> FineHistogram {
        self.op_latency.lock().clone()
    }

    /// Store write-latency distribution merged from flushed workers.
    pub fn store_latency(&self) -> LatencyHistogram {
        self.store_latency.lock().clone()
    }

    /// The call-state store (shared, cheap to clone).
    pub fn store(&self) -> &CallStateStore {
        &self.store
    }
}

/// Per-thread engine handle: wraps a [`sb_core::SelectorShard`] plus local
/// latency histograms; everything merges back into the [`Engine`] on
/// [`flush`](EngineWorker::flush) or drop.
pub struct EngineWorker<'a> {
    engine: &'a Engine,
    shard: sb_core::SelectorShard<'a>,
    ops: FineHistogram,
    store_hist: LatencyHistogram,
}

impl EngineWorker<'_> {
    /// Admit a new call: place it via the selector's ladder and persist the
    /// `Start` record. Rejected outright while the engine drains.
    pub fn admit(&mut self, call: u64, first_joiner: CountryId) -> Admission {
        if self.engine.draining.load(Ordering::Relaxed) {
            self.engine
                .rejected_draining
                .fetch_add(1, Ordering::Relaxed);
            return Admission::Draining;
        }
        let t = Instant::now();
        let outcome = self.shard.call_start(call, first_joiner);
        self.ops.record(t.elapsed());
        self.engine.admitted.fetch_add(1, Ordering::Relaxed);
        if let Some(dc) = outcome.dc() {
            self.engine.store.apply(
                CallEvent::Start {
                    call,
                    country: first_joiner.0,
                    dc: dc.index() as u16,
                },
                &mut self.store_hist,
            );
        }
        Admission::Granted(outcome)
    }

    /// A participant joined an admitted call.
    pub fn join(&mut self, call: u64, country: CountryId) {
        self.engine.store.apply(
            CallEvent::Join {
                call,
                country: country.0,
            },
            &mut self.store_hist,
        );
    }

    /// The call's media classification changed.
    pub fn set_media(&mut self, call: u64, media: MediaFlag) {
        self.engine
            .store
            .apply(CallEvent::Media { call, media }, &mut self.store_hist);
    }

    /// The call's config froze (A minutes in): tally it against the plan,
    /// migrating if the plan disagrees with the initial placement, and
    /// persist the freeze.
    pub fn freeze(&mut self, call: u64, config: ConfigId, start_minute: u64) -> FreezeDecision {
        let t = Instant::now();
        let decision = self.shard.config_frozen(call, config, start_minute);
        self.ops.record(t.elapsed());
        if !matches!(decision, FreezeDecision::UnknownCall) {
            self.engine
                .store
                .apply(CallEvent::Freeze { call }, &mut self.store_hist);
        }
        decision
    }

    /// The call ended: release selector state and delete the store record.
    pub fn end(&mut self, call: u64) {
        let t = Instant::now();
        self.shard.call_end(call);
        self.ops.record(t.elapsed());
        self.engine
            .store
            .apply(CallEvent::End { call }, &mut self.store_hist);
        self.engine.ended.fetch_add(1, Ordering::Relaxed);
    }

    /// Current DC hosting `call`, if live.
    pub fn current_dc(&self, call: u64) -> Option<sb_net::DcId> {
        self.shard.current_dc(call)
    }

    /// Re-read the engine's topology + plan snapshots (after
    /// [`Engine::install_plan`] / [`Engine::update_topology`]).
    pub fn refresh(&mut self) {
        self.shard.refresh_topology();
    }

    /// Merge local stats and latency samples into the engine.
    pub fn flush(&mut self) {
        self.shard.flush();
        self.engine.op_latency.lock().merge(&self.ops);
        self.ops = FineHistogram::new();
        self.engine.store_latency.lock().merge(&self.store_hist);
        self.store_hist = LatencyHistogram::new();
    }
}

impl Drop for EngineWorker<'_> {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_core::{AllocationShares, PlannedQuotas};
    use sb_net::{FailureScenario, RoutingTable};
    use sb_workload::DemandMatrix;

    fn world() -> (sb_net::Topology, LatencyMap, PlanArtifact, ConfigId) {
        let topo = sb_net::presets::toy_three_dc();
        let routing = RoutingTable::compute(&topo, FailureScenario::None);
        let latmap = LatencyMap::from_routing(&topo, &routing);
        let cfg = ConfigId(0);
        let tokyo = topo.dc_by_name("Tokyo");
        let slots = 4;
        let mut shares = AllocationShares::new(slots);
        let mut demand = DemandMatrix::zero(1, slots, 30, 0);
        for s in 0..slots {
            shares.set(cfg, s, vec![(tokyo, 1.0)]);
            demand.set(cfg, s, 10.0);
        }
        let quotas = PlannedQuotas::from_plan(&shares, &demand);
        (topo, latmap, PlanArtifact::seed(quotas), cfg)
    }

    #[test]
    fn lifecycle_persists_through_store() {
        let (topo, latmap, artifact, cfg) = world();
        let engine = Engine::new(&latmap, &artifact, &EngineConfig::default());
        let jp = topo.country_by_name("JP");
        let mut w = engine.worker();
        let adm = w.admit(7, jp);
        let dc = adm.dc().expect("healthy topology places the call");
        assert_eq!(
            engine.store().get(7).map(|st| st.dc),
            Some(dc.index() as u16)
        );
        w.join(7, jp);
        w.set_media(7, MediaFlag::Video);
        let d = w.freeze(7, cfg, 0);
        assert!(!matches!(d, FreezeDecision::UnknownCall));
        assert!(engine.store().get(7).unwrap().frozen);
        w.end(7);
        assert!(engine.store().get(7).is_none());
        drop(w);
        let stats = engine.stats();
        assert_eq!(stats.admitted, 1);
        assert_eq!(stats.ended, 1);
        assert_eq!(stats.active_calls, 0);
        assert_eq!(stats.selector.calls, 1);
        assert_eq!(stats.selector.freezes, 1);
        assert_eq!(stats.store_writes, 5);
        assert_eq!(engine.op_latency().count(), 3);
    }

    #[test]
    fn drain_rejects_new_calls_but_finishes_old_ones() {
        let (topo, latmap, artifact, _) = world();
        let engine = Engine::new(&latmap, &artifact, &EngineConfig::default());
        let jp = topo.country_by_name("JP");
        let mut w = engine.worker();
        assert!(matches!(w.admit(1, jp), Admission::Granted(_)));
        engine.begin_drain();
        assert_eq!(w.admit(2, jp), Admission::Draining);
        assert!(!engine.drained(), "call 1 is still live");
        assert!(!engine.wait_drained(Duration::from_millis(5)));
        w.end(1);
        assert!(engine.drained());
        assert!(engine.wait_drained(Duration::from_millis(5)));
        drop(w);
        let stats = engine.stats();
        assert_eq!(stats.admitted, 1);
        assert_eq!(stats.rejected_draining, 1);
        // the rejected call never reached the selector or the store
        assert_eq!(stats.selector.calls, 1);
        assert!(engine.store().get(2).is_none());
    }

    #[test]
    fn plan_hot_swap_changes_freeze_decisions() {
        let (topo, latmap, artifact, cfg) = world();
        let engine = Engine::new(&latmap, &artifact, &EngineConfig::default());
        let jp = topo.country_by_name("JP");
        let pune = topo.dc_by_name("Pune");

        // epoch 0 plan pins quota at Tokyo (closest): freezes stay
        let mut w = engine.worker();
        assert!(w.admit(1, jp).dc().is_some());
        assert!(matches!(w.freeze(1, cfg, 0), FreezeDecision::Stay(_)));

        // hot-swap a plan that moves all quota to Pune
        let slots = 4;
        let mut shares = AllocationShares::new(slots);
        let mut demand = DemandMatrix::zero(1, slots, 30, 0);
        for s in 0..slots {
            shares.set(cfg, s, vec![(pune, 1.0)]);
            demand.set(cfg, s, 10.0);
        }
        let quotas = PlannedQuotas::from_plan(&shares, &demand);
        let v2 = PlanArtifact::seed(quotas).with_epoch(1);
        engine.install_plan(&v2);
        assert_eq!(engine.plan_epoch(), 1);
        w.refresh();

        assert!(w.admit(2, jp).dc().is_some());
        match w.freeze(2, cfg, 0) {
            FreezeDecision::Migrate { to, .. } => assert_eq!(to, pune),
            other => panic!("expected a migration to Pune, got {other:?}"),
        }
        drop(w);
        assert_eq!(engine.stats().plans_installed, 1);
    }

    #[test]
    fn pool_token_matches_selector_partitioning() {
        let (_topo, latmap, artifact, cfg) = world();
        let engine = Engine::new(&latmap, &artifact, &EngineConfig::default());
        // same slot → same pool; different slot → different pool
        assert_eq!(engine.pool_token(cfg, 0), engine.pool_token(cfg, 29));
        assert_ne!(engine.pool_token(cfg, 0), engine.pool_token(cfg, 30));
        // unknown config → unplanned → no token
        assert_eq!(engine.pool_token(ConfigId(99), 0), None);
    }
}
