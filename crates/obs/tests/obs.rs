//! Behavioural tests for the observability layer: correctness under
//! concurrent writers, timer monotonicity, disabled-mode no-ops, and the
//! report formats.

use sb_obs::{MetricsRegistry, Value};
use std::time::Duration;

#[test]
fn counter_correct_under_concurrent_writers() {
    let reg = MetricsRegistry::new();
    let c = reg.counter("ops");
    const THREADS: usize = 8;
    const PER: u64 = 25_000;
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let c = c.clone();
            s.spawn(move || {
                for _ in 0..PER {
                    c.inc();
                }
            });
        }
    });
    assert_eq!(c.get(), THREADS as u64 * PER);
    // a later lookup of the same name sees the same cell
    assert_eq!(reg.counter("ops").get(), THREADS as u64 * PER);
}

#[test]
fn histogram_correct_under_concurrent_writers() {
    let reg = MetricsRegistry::new();
    let h = reg.histogram("lat");
    const THREADS: u64 = 4;
    const PER: u64 = 10_000;
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let h = h.clone();
            s.spawn(move || {
                // values 1..=PER, identical per thread
                for i in 0..PER {
                    h.record(i + 1);
                }
            });
        }
    });
    assert_eq!(h.count(), THREADS * PER);
    assert_eq!(h.sum(), THREADS * (PER * (PER + 1) / 2));
    assert_eq!(h.min(), Some(1));
    assert_eq!(h.max(), Some(PER));
    let mean = h.mean();
    assert!((mean - (PER + 1) as f64 / 2.0).abs() < 1e-9, "mean {mean}");
    // quantiles are bucket upper bounds: within 2x of the true value
    let p50 = h.quantile(0.5);
    assert!((PER / 2..=PER).contains(&p50), "p50 {p50}");
    assert!(h.quantile(1.0) == PER);
}

#[test]
fn gauge_last_write_wins() {
    let reg = MetricsRegistry::new();
    let g = reg.gauge("load");
    g.set(0.25);
    g.set(1.75);
    assert_eq!(g.get(), 1.75);
}

#[test]
fn scoped_timer_is_monotone_and_counts() {
    let reg = MetricsRegistry::new();
    let h = reg.histogram("wall_ns");
    {
        let _t = h.start_timer();
        std::thread::sleep(Duration::from_millis(2));
    }
    let short = h.max().unwrap();
    assert_eq!(h.count(), 1);
    assert!(short >= 2_000_000, "timer under-reported: {short}ns < 2ms");
    {
        let t = h.start_timer();
        std::thread::sleep(Duration::from_millis(8));
        let el = t.stop().expect("enabled timer returns elapsed");
        assert!(el >= Duration::from_millis(8));
    }
    assert_eq!(h.count(), 2);
    // a strictly longer wait records a strictly larger sample
    assert!(h.max().unwrap() > short);
}

#[test]
fn disabled_registry_records_nothing() {
    let reg = MetricsRegistry::with_enabled(false);
    let c = reg.counter("c");
    let g = reg.gauge("g");
    let h = reg.histogram("h");
    let t = reg.table("t", &["a"]);
    c.inc();
    c.add(10);
    g.set(3.5);
    h.record(7);
    assert!(
        h.start_timer().stop().is_none(),
        "disabled timer must be inert"
    );
    t.push(vec![Value::from(1u64)]);
    assert_eq!(c.get(), 0);
    assert_eq!(g.get(), 0.0);
    assert_eq!(h.count(), 0);
    assert!(t.is_empty());

    // flipping the shared flag re-activates already-handed-out handles
    reg.set_enabled(true);
    c.inc();
    h.record(7);
    t.push(vec![Value::from(2u64)]);
    assert_eq!(c.get(), 1);
    assert_eq!(h.count(), 1);
    assert_eq!(t.len(), 1);

    // and disabling again freezes them
    reg.set_enabled(false);
    c.inc();
    assert_eq!(c.get(), 1);
}

#[test]
fn reset_clears_values_but_keeps_names() {
    let reg = MetricsRegistry::new();
    let c = reg.counter("c");
    c.add(5);
    reg.histogram("h").record(9);
    let t = reg.table("t", &["x"]);
    t.push(vec![Value::from(1u64)]);
    reg.reset();
    assert_eq!(c.get(), 0, "counter handles observe the reset");
    assert_eq!(reg.histogram("h").count(), 0);
    assert!(reg.table("t", &["x"]).is_empty());
}

#[test]
fn tsv_report_contains_all_sections() {
    let reg = MetricsRegistry::new();
    reg.counter("lp.solves").add(3);
    reg.gauge("load").set(0.5);
    reg.histogram("wall").record(100);
    let t = reg.table("scenarios", &["scenario", "iters", "wall_ns"]);
    t.push(vec![
        Value::from("none"),
        Value::from(12u64),
        Value::from(34u64),
    ]);
    t.push(vec![
        Value::from("dc:1"),
        Value::from(9u64),
        Value::from(21u64),
    ]);
    let s = reg.render_tsv();
    assert!(s.contains("# counters"), "{s}");
    assert!(s.contains("lp.solves\t3"), "{s}");
    assert!(s.contains("# gauges"), "{s}");
    assert!(s.contains("load\t0.5"), "{s}");
    assert!(s.contains("# histograms"), "{s}");
    assert!(s.contains("# table scenarios"), "{s}");
    assert!(s.contains("scenario\titers\twall_ns"), "{s}");
    assert!(s.contains("none\t12\t34"), "{s}");
    assert!(s.contains("dc:1\t9\t21"), "{s}");
}

#[test]
fn dump_to_path_picks_format_by_extension() {
    let reg = MetricsRegistry::new();
    reg.counter("n").add(2);
    let dir = std::env::temp_dir().join(format!("sb_obs_test_{}", std::process::id()));
    let tsv = dir.join("m.tsv");
    let ndjson = dir.join("m.ndjson");
    reg.dump_to_path(&tsv).unwrap();
    reg.dump_to_path(&ndjson).unwrap();
    let tsv_s = std::fs::read_to_string(&tsv).unwrap();
    let nd_s = std::fs::read_to_string(&ndjson).unwrap();
    assert!(tsv_s.contains("n\t2"), "{tsv_s}");
    assert!(
        nd_s.contains(r#"{"kind":"counter","name":"n","value":2}"#),
        "{nd_s}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn global_registry_starts_disabled() {
    // Other tests in this binary never enable the global registry, so this
    // holds regardless of test order.
    assert!(!sb_obs::global().enabled());
    let c = sb_obs::global().counter("obs.test.disabled_probe");
    c.inc();
    assert_eq!(c.get(), 0);
}

#[test]
#[should_panic(expected = "different schema")]
fn table_schema_conflict_panics() {
    let reg = MetricsRegistry::new();
    let _ = reg.table("t", &["a", "b"]);
    let _ = reg.table("t", &["a"]);
}

#[test]
fn metric_families_share_handles_by_index() {
    let reg = MetricsRegistry::with_enabled(true);
    let a = reg.counter_family("fam.ops", 3);
    let b = reg.counter_family("fam.ops", 3);
    assert_eq!(a.len(), 3);
    a[1].inc();
    a[1].inc();
    // same underlying counters, addressable individually by name
    assert_eq!(b[1].get(), 2);
    assert_eq!(reg.counter("fam.ops.1").get(), 2);
    assert_eq!(b[0].get(), 0);
    let h = reg.histogram_family("fam.ns", 2);
    h[0].record(7);
    assert_eq!(reg.histogram("fam.ns.0").count(), 1);
    assert_eq!(reg.histogram("fam.ns.1").count(), 0);
}
