//! # sb-forecast — demand forecasting for Switchboard
//!
//! Holt–Winters (triple exponential) smoothing as used by Switchboard's
//! call-count forecaster (§5.2): one model per call config over 30-minute
//! buckets, weekly seasonality, forecasting months ahead. Includes automatic
//! parameter selection ([`fit::fit_auto`]), the §6.5 evaluation metrics
//! (peak-normalized RMSE/MAE, CDFs) in [`eval`], and the online path
//! ([`streaming::StreamingForecaster`]) that keeps the whole grid updated
//! incrementally — bitwise-equal to a batch re-fit on the same prefix —
//! with peak-normalized rolling-RMSE drift detection.

//!
//! ```
//! use sb_forecast::{fit_auto, peak_normalized, rmse};
//!
//! // two months of daily-seasonal data (24 samples/day)
//! let series: Vec<f64> = (0..24 * 60)
//!     .map(|t| 40.0 + 20.0 * ((t % 24) as f64 / 24.0 * std::f64::consts::TAU).sin())
//!     .collect();
//! let model = fit_auto(&series[..24 * 50], 24).unwrap();
//! let forecast = model.forecast(24 * 10);
//! let err = peak_normalized(rmse(&forecast, &series[24 * 50..]), &series[24 * 50..]);
//! assert!(err.unwrap() < 0.05); // clean seasonality forecasts almost exactly
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eval;
pub mod fit;
pub mod holt_winters;
pub mod streaming;

pub use eval::{mae, peak_normalized, rmse, Cdf};
pub use fit::{fit_auto, forecast_auto, grid_params};
pub use holt_winters::{FitError, HoltWinters, HwParams, Seasonal};
pub use streaming::{Observation, StreamingForecaster, StreamingParams};
