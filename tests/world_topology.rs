//! Multi-region integration: on the 10-DC world topology the 120 ms latency
//! filter actually binds (cross-ocean hosting is excluded), regional demand
//! stays in-region, and provisioning still succeeds for every scheme.

use switchboard::core::{
    provision, provision_baseline, BaselinePolicy, LatencyMap, PlanningInputs, ProvisionerParams,
    ScenarioData,
};
use switchboard::net::FailureScenario;
use switchboard::workload::{Generator, UniverseParams, WorkloadParams};

#[test]
fn latency_filter_binds_across_oceans() {
    let topo = switchboard::net::presets::world();
    let sd = ScenarioData::compute(&topo, FailureScenario::None);
    let latmap = LatencyMap::from_routing(&topo, &sd.routing);
    // Australia cannot be hosted in Dublin within 120 ms one-way …
    let au = topo.country_by_name("AU");
    let dublin = topo.dc_by_name("Dublin");
    let au_cfg = switchboard::workload::CallConfig::new(
        vec![(au, 3)],
        switchboard::workload::MediaType::Audio,
    );
    assert!(latmap.acl(&au_cfg, dublin).unwrap() > 120.0);
    let allowed = latmap.allowed_dcs(&au_cfg, 120.0);
    assert!(allowed.iter().all(|&(d, _)| d != dublin));
    // … but is allowed in several APAC DCs
    assert!(allowed.len() >= 2, "AU should have regional options");
}

#[test]
fn world_provisioning_keeps_demand_regional() {
    let topo = switchboard::net::presets::world();
    let params = WorkloadParams {
        universe: UniverseParams {
            num_configs: 200,
            seed: 71,
            ..Default::default()
        },
        daily_calls: 3_000.0,
        slot_minutes: 240,
        seed: 71,
        ..Default::default()
    };
    let generator = Generator::new(&topo, params);
    let demand = generator.sample_demand(0, 7, 1);
    let selected = demand.top_configs_covering(0.7);
    let envelope = demand
        .filtered(&selected)
        .envelope_day(generator.slots_per_day());
    let inputs = PlanningInputs {
        topo: &topo,
        catalog: &generator.universe().catalog,
        demand: &envelope,
        latency_threshold_ms: 120.0,
    };
    // serving-only SB plan (the full 48-scenario backup sweep is exercised on
    // the APAC tests; here the point is the multi-region structure)
    let plan = provision(
        &inputs,
        &ProvisionerParams {
            with_backup: false,
            ..Default::default()
        },
    )
    .expect("world provisioning");
    // every region with demand gets cores somewhere in-region
    let sd = ScenarioData::compute(&topo, FailureScenario::None);
    let latmap = &sd.latmap;
    for region in &topo.regions {
        let regional_demand: f64 = selected
            .iter()
            .filter(|&&id| {
                let cfg = generator.universe().catalog.config(id);
                topo.countries[cfg.majority_country().index()].region == region.id
            })
            .map(|&id| envelope.series(id).iter().sum::<f64>())
            .sum();
        if regional_demand < 1.0 {
            continue;
        }
        let regional_cores: f64 = topo
            .dcs_in_region(region.id)
            .map(|d| plan.capacity.cores[d.id.index()])
            .sum();
        assert!(
            regional_cores > 0.0,
            "region {} has demand but no cores",
            region.name
        );
    }
    let _ = latmap;
    // baselines also run on the world topology
    for policy in [BaselinePolicy::RoundRobin, BaselinePolicy::LocalityFirst] {
        let p = provision_baseline(policy, &inputs, false);
        assert!(p.capacity.total_cores() > 0.0);
        assert!(p.mean_acl < 120.0, "{policy:?} mean ACL {}", p.mean_acl);
    }
}
