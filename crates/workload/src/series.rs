//! Recurring meeting series (§8): weekly meetings whose per-participant
//! attendance exhibits temporal structure (habitual attendees, alternating
//! attendees, drop-ins). This is the training/evaluation data for the
//! MOMC + logistic-regression call-config predictor.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sb_net::{CountryId, Topology};

use crate::config::MediaType;
use crate::sampling::weighted_index;

/// A recurring meeting series.
#[derive(Clone, Debug)]
pub struct MeetingSeries {
    /// Series id.
    pub id: u32,
    /// Country of each rostered participant.
    pub countries: Vec<CountryId>,
    /// Base attendance probability per participant.
    pub base_prob: Vec<f64>,
    /// Persistence per participant: positive = habit (same as last time),
    /// negative = alternation (opposite of last time).
    pub persistence: Vec<f64>,
    /// Media type of the series.
    pub media: MediaType,
}

impl MeetingSeries {
    /// Roster size.
    pub fn roster_size(&self) -> usize {
        self.countries.len()
    }
}

/// One occurrence of a series: who actually attended.
#[derive(Clone, Debug)]
pub struct SeriesOccurrence {
    /// Which series.
    pub series: u32,
    /// Occurrence index (0, 1, 2, … weekly).
    pub index: u32,
    /// Attendance flag per rostered participant.
    pub attended: Vec<bool>,
}

impl SeriesOccurrence {
    /// Participant count per country for this occurrence (the realized call
    /// config spread).
    pub fn country_counts(&self, series: &MeetingSeries) -> Vec<(CountryId, u16)> {
        let mut counts: Vec<(CountryId, u16)> = Vec::new();
        for (i, &att) in self.attended.iter().enumerate() {
            if !att {
                continue;
            }
            let c = series.countries[i];
            match counts.iter_mut().find(|(cc, _)| *cc == c) {
                Some((_, n)) => *n += 1,
                None => counts.push((c, 1)),
            }
        }
        counts.sort_unstable_by_key(|&(c, _)| c);
        counts
    }
}

/// Parameters for series generation.
#[derive(Clone, Debug)]
pub struct SeriesParams {
    /// Number of series.
    pub num_series: usize,
    /// Occurrences per series.
    pub occurrences: u32,
    /// Largest roster.
    pub max_roster: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for SeriesParams {
    fn default() -> Self {
        SeriesParams {
            num_series: 400,
            occurrences: 12,
            max_roster: 40,
            seed: 17,
        }
    }
}

/// Generate series and their occurrence history.
pub fn generate_series(
    topo: &Topology,
    params: &SeriesParams,
) -> (Vec<MeetingSeries>, Vec<SeriesOccurrence>) {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let country_weights: Vec<f64> = topo.countries.iter().map(|c| c.weight).collect();
    let mut all_series = Vec::with_capacity(params.num_series);
    let mut occurrences = Vec::new();
    for id in 0..params.num_series {
        let roster = rng.gen_range(3..=params.max_roster.max(3));
        let home = CountryId(weighted_index(&mut rng, &country_weights) as u16);
        let mut countries = Vec::with_capacity(roster);
        for _ in 0..roster {
            // ~80 % of the roster is in the home country
            if rng.gen::<f64>() < 0.8 {
                countries.push(home);
            } else {
                countries.push(CountryId(weighted_index(&mut rng, &country_weights) as u16));
            }
        }
        let base_prob: Vec<f64> = (0..roster)
            .map(|_| {
                // bimodal: regulars (~0.9) and occasional attendees (~0.3)
                if rng.gen::<f64>() < 0.6 {
                    rng.gen_range(0.75..0.98)
                } else {
                    rng.gen_range(0.1..0.5)
                }
            })
            .collect();
        let persistence: Vec<f64> = (0..roster)
            .map(|_| {
                let u: f64 = rng.gen();
                if u < 0.15 {
                    // alternators: skip every other instance
                    rng.gen_range(-0.8..-0.4)
                } else {
                    rng.gen_range(0.2..0.9)
                }
            })
            .collect();
        let media = if rng.gen::<f64>() < 0.6 {
            MediaType::Video
        } else {
            MediaType::Audio
        };
        let series = MeetingSeries {
            id: id as u32,
            countries,
            base_prob,
            persistence,
            media,
        };

        // simulate attendance
        let mut prev: Vec<bool> = Vec::new();
        for occ in 0..params.occurrences {
            let attended: Vec<bool> = (0..roster)
                .map(|i| {
                    let base = series.base_prob[i];
                    let p = if occ == 0 {
                        base
                    } else {
                        let rho = series.persistence[i];
                        let prev_att = prev[i];
                        // blend toward (prev or !prev) depending on sign of rho
                        let target = if rho >= 0.0 {
                            if prev_att {
                                1.0
                            } else {
                                0.0
                            }
                        } else if prev_att {
                            0.0
                        } else {
                            1.0
                        };
                        let w = rho.abs();
                        (1.0 - w) * base + w * target
                    };
                    rng.gen::<f64>() < p.clamp(0.02, 0.98)
                })
                .collect();
            prev = attended.clone();
            occurrences.push(SeriesOccurrence {
                series: id as u32,
                index: occ,
                attended,
            });
        }
        all_series.push(series);
    }
    (all_series, occurrences)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_net::presets;

    fn gen() -> (Vec<MeetingSeries>, Vec<SeriesOccurrence>) {
        let topo = presets::apac();
        generate_series(
            &topo,
            &SeriesParams {
                num_series: 50,
                ..Default::default()
            },
        )
    }

    #[test]
    fn shapes() {
        let (series, occs) = gen();
        assert_eq!(series.len(), 50);
        assert_eq!(occs.len(), 50 * 12);
        for s in &series {
            assert!(s.roster_size() >= 3);
            assert_eq!(s.base_prob.len(), s.roster_size());
            assert_eq!(s.persistence.len(), s.roster_size());
        }
        for o in &occs {
            let s = &series[o.series as usize];
            assert_eq!(o.attended.len(), s.roster_size());
        }
    }

    #[test]
    fn deterministic() {
        let topo = presets::apac();
        let p = SeriesParams {
            num_series: 10,
            ..Default::default()
        };
        let (_, a) = generate_series(&topo, &p);
        let (_, b) = generate_series(&topo, &p);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.attended, y.attended);
        }
    }

    #[test]
    fn regulars_attend_more_than_occasionals() {
        let (series, occs) = gen();
        let mut regular_rate = (0.0, 0);
        let mut occasional_rate = (0.0, 0);
        for o in &occs {
            let s = &series[o.series as usize];
            for (i, &att) in o.attended.iter().enumerate() {
                if s.base_prob[i] > 0.7 {
                    regular_rate.0 += att as u8 as f64;
                    regular_rate.1 += 1;
                } else if s.base_prob[i] < 0.5 {
                    occasional_rate.0 += att as u8 as f64;
                    occasional_rate.1 += 1;
                }
            }
        }
        let r = regular_rate.0 / regular_rate.1 as f64;
        let o = occasional_rate.0 / occasional_rate.1 as f64;
        assert!(r > o + 0.2, "regular {r} vs occasional {o}");
    }

    #[test]
    fn alternators_alternate() {
        let (series, occs) = gen();
        // measure P(attend_t != attend_{t-1}) for strongly negative persistence
        let mut flips = 0usize;
        let mut total = 0usize;
        for s in &series {
            let hist: Vec<&SeriesOccurrence> = occs.iter().filter(|o| o.series == s.id).collect();
            for i in 0..s.roster_size() {
                if s.persistence[i] < -0.5 {
                    for w in hist.windows(2) {
                        total += 1;
                        if w[0].attended[i] != w[1].attended[i] {
                            flips += 1;
                        }
                    }
                }
            }
        }
        if total > 50 {
            let rate = flips as f64 / total as f64;
            assert!(rate > 0.5, "alternation rate {rate}");
        }
    }

    #[test]
    fn country_counts_sum_to_attendance() {
        let (series, occs) = gen();
        let o = &occs[3];
        let s = &series[o.series as usize];
        let counts = o.country_counts(s);
        let total: u16 = counts.iter().map(|&(_, n)| n).sum();
        let attended = o.attended.iter().filter(|&&a| a).count();
        assert_eq!(total as usize, attended);
        // sorted by country id
        assert!(counts.windows(2).all(|w| w[0].0 < w[1].0));
    }
}
