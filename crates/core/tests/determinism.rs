//! The scenario sweep must be deterministic regardless of thread count:
//! `solve_scenarios` preserves scenario order, and every per-scenario LP
//! (iteration counts, problem sizes, objectives) is bit-identical whether
//! solved on one thread or many.

use sb_core::formulation::PlanningInputs;
use sb_core::provision::{solve_scenarios, ProvisionerParams};
use sb_net::FailureScenario;
use sb_workload::{CallConfig, ConfigCatalog, DemandMatrix, MediaType};

fn instance() -> (sb_net::Topology, ConfigCatalog, DemandMatrix) {
    let topo = sb_net::presets::apac();
    let mut cat = ConfigCatalog::new();
    let countries: Vec<_> = (0..topo.countries.len())
        .map(|c| sb_net::CountryId(c as u16))
        .collect();
    let mut demand = DemandMatrix::zero(8, 4, 120, 0);
    for k in 0..8usize {
        let a = countries[k % countries.len()];
        let b = countries[(k + 3) % countries.len()];
        let media = if k % 2 == 0 {
            MediaType::Audio
        } else {
            MediaType::Video
        };
        let cfg = cat.intern(CallConfig::new(vec![(a, 2), (b, 3)], media));
        for slot in 0..4 {
            demand.set(cfg, slot, 10.0 + (k * 7 + slot * 3) as f64);
        }
    }
    (topo, cat, demand)
}

#[test]
fn solve_scenarios_metrics_deterministic_across_thread_counts() {
    let (topo, cat, demand) = instance();
    let inputs = PlanningInputs::new(&topo, &cat, &demand);
    let scenarios = FailureScenario::enumerate(&topo);

    let solve = |threads: usize| {
        let params = ProvisionerParams {
            threads,
            ..Default::default()
        };
        solve_scenarios(&inputs, &scenarios, None, &params).expect("sweep solves")
    };
    let seq = solve(1);
    let par = solve(4);

    assert_eq!(seq.len(), scenarios.len());
    assert_eq!(par.len(), seq.len());
    for ((sc, s), p) in scenarios.iter().zip(&seq).zip(&par) {
        // order preserved: result i corresponds to scenario i
        assert_eq!(s.scenario, *sc);
        assert_eq!(p.scenario, *sc);
        // identical LPs were built and walked identically
        assert_eq!(p.lp_rows, s.lp_rows, "rows differ for {sc:?}");
        assert_eq!(p.lp_cols, s.lp_cols, "cols differ for {sc:?}");
        assert_eq!(p.iterations, s.iterations, "iterations differ for {sc:?}");
        assert_eq!(p.dropped, s.dropped, "dropped configs differ for {sc:?}");
        // and reached bit-identical numbers
        assert_eq!(
            p.objective.to_bits(),
            s.objective.to_bits(),
            "objective differs for {sc:?}"
        );
        assert_eq!(
            p.increment_cost.to_bits(),
            s.increment_cost.to_bits(),
            "increment cost differs for {sc:?}"
        );
    }
}

#[test]
fn scenario_solutions_expose_lp_metrics() {
    let (topo, cat, demand) = instance();
    let inputs = PlanningInputs::new(&topo, &cat, &demand);
    let scenarios = [FailureScenario::None];
    let sols = solve_scenarios(&inputs, &scenarios, None, &ProvisionerParams::default()).unwrap();
    let s = &sols[0];
    assert!(s.lp_rows > 0);
    assert!(s.lp_cols > 0);
    assert!(s.iterations > 0);
    // with no base capacity, everything bought is an increment
    assert!(s.increment_cost > 0.0);
    assert!((s.increment_cost - s.objective).abs() <= 1e-6 * (1.0 + s.objective.abs()));
}
