//! Property tests for the intra-DC packer: randomized heterogeneous fleets
//! and op sequences must preserve the packer's hard invariants.
//!
//! The properties (ISSUE 9, satellite 1):
//!
//! 1. no live server ever exceeds its capacity, and dead servers host
//!    nothing;
//! 2. every placed call occupies exactly one slot on exactly one live
//!    server, and the per-server `used` tallies equal the sum of their
//!    call costs;
//! 3. re-pack migrations conserve calls — a grow never creates or drops a
//!    slot — and never move a frozen call (death drains are the documented
//!    exemption);
//! 4. the scorer is deterministic: the same op sequence on a fresh packer
//!    reproduces placements, stats, and per-server tallies bitwise.

use std::collections::HashMap;

use proptest::prelude::*;
use sb_net::DcId;
use sb_pack::{CostModel, FleetPacker, FleetSpec, GrowKind, PackPolicy, PackerConfig, ServerId};

/// One interpreted op; generated tuples index into a mix table so each test
/// can weight the vocabulary differently.
#[derive(Clone, Copy, Debug)]
enum Op {
    Place,
    Grow,
    Freeze,
    Remove,
    Kill,
}

/// General workload: mostly placements and growth, occasional deaths.
const GENERAL_MIX: &[Op] = &[
    Op::Place,
    Op::Place,
    Op::Place,
    Op::Place,
    Op::Place,
    Op::Place,
    Op::Grow,
    Op::Grow,
    Op::Grow,
    Op::Grow,
    Op::Freeze,
    Op::Freeze,
    Op::Remove,
    Op::Remove,
    Op::Kill,
];

/// Growth-heavy workload: maximizes re-pack and eviction paths.
const GROW_MIX: &[Op] = &[
    Op::Place,
    Op::Place,
    Op::Place,
    Op::Grow,
    Op::Grow,
    Op::Grow,
    Op::Grow,
    Op::Grow,
    Op::Grow,
    Op::Freeze,
    Op::Freeze,
    Op::Freeze,
];

/// Death-heavy workload: drains dominate, exercising rehome and spill.
const KILL_MIX: &[Op] = &[
    Op::Place,
    Op::Place,
    Op::Place,
    Op::Place,
    Op::Grow,
    Op::Freeze,
    Op::Kill,
    Op::Kill,
];

type RawOp = (u8, u64, u32);

/// Tracked state per placed call: `(dc, frozen, participants)`.
type Model = HashMap<u64, (DcId, bool, u32)>;

fn fleet_strategy() -> impl Strategy<Value = (FleetSpec, PackPolicy)> {
    (1usize..4)
        .prop_flat_map(|dcs| {
            (
                collection::vec(collection::vec(600u32..6_000, 1..7), dcs..=dcs),
                prop_oneof![Just(PackPolicy::BestFit), Just(PackPolicy::GrowthAware)],
            )
        })
        .prop_map(|(caps, policy)| {
            let mut spec = FleetSpec::empty(caps.len());
            for (d, dc_caps) in caps.iter().enumerate() {
                for &c in dc_caps {
                    spec.push_server(DcId(d as u16), c);
                }
            }
            (spec, policy)
        })
}

fn ops_strategy() -> impl Strategy<Value = Vec<RawOp>> {
    collection::vec((0u8..=u8::MAX, 0u64..1_000_000, 0u32..100_000), 1..150)
}

fn build(spec: &FleetSpec, policy: PackPolicy) -> FleetPacker {
    FleetPacker::new(
        spec.clone(),
        PackerConfig {
            policy,
            hysteresis_mcpu: 400,
            max_evictions: 3,
        },
    )
}

/// Deterministic pick of an existing call from the model.
fn pick(model: &Model, a: u64) -> Option<u64> {
    if model.is_empty() {
        return None;
    }
    let mut keys: Vec<u64> = model.keys().copied().collect();
    keys.sort_unstable();
    Some(keys[(a % keys.len() as u64) as usize])
}

/// Interpret `ops` against `p`, checking per-op invariants (frozen calls
/// never move on growth, grows conserve slots, victims are unfrozen) and
/// mirroring packed calls into a model for the final audit.
fn run_ops(
    p: &FleetPacker,
    cost: &CostModel,
    ops: &[RawOp],
    mix: &[Op],
) -> Result<Model, TestCaseError> {
    let dcs = p.spec().num_dcs() as u64;
    let mut model: Model = HashMap::new();
    let mut next_call = 1u64;
    for &(kind, a, b) in ops {
        match mix[(kind as usize) % mix.len()] {
            Op::Place => {
                let dc = DcId((a % dcs) as u16);
                let parts = 1 + b % 8;
                let c = cost.cost_mcpu(parts);
                let reserve = c.saturating_add(b % 1_500);
                if p.place(dc, next_call, parts, c, reserve).is_some() {
                    model.insert(next_call, (dc, false, parts));
                }
                next_call += 1;
            }
            Op::Grow => {
                let Some(call) = pick(&model, a) else {
                    continue;
                };
                let (dc, frozen, parts) = model[&call];
                let before = p.server_of(dc, call);
                let slots_before = p.export_state().calls.iter().map(Vec::len).sum::<usize>();
                let np = parts + 1;
                let c = cost.cost_mcpu(np);
                let out = p.grow(dc, call, np, c, c.saturating_add(b % 1_500));
                if frozen {
                    prop_assert_eq!(
                        p.server_of(dc, call),
                        before,
                        "frozen call {} moved on growth ({:?})",
                        call,
                        out.kind
                    );
                }
                for &(id, server, _) in &out.changed {
                    if id != call {
                        prop_assert!(!model[&id].1, "frozen call {} evicted as a victim", id);
                    }
                    prop_assert_eq!(
                        p.server_of(dc, id),
                        Some(ServerId { dc, index: server }),
                        "changed entry for call {} disagrees with live placement",
                        id
                    );
                }
                let slots_after = p.export_state().calls.iter().map(Vec::len).sum::<usize>();
                prop_assert_eq!(
                    slots_before,
                    slots_after,
                    "grow of call {} created or dropped a slot ({:?})",
                    call,
                    out.kind
                );
                if !matches!(out.kind, GrowKind::Rejected | GrowKind::Unknown) {
                    model.get_mut(&call).unwrap().2 = np;
                }
            }
            Op::Freeze => {
                let Some(call) = pick(&model, a) else {
                    continue;
                };
                let dc = model[&call].0;
                prop_assert!(
                    p.freeze(dc, call),
                    "freeze of tracked call {} refused",
                    call
                );
                model.get_mut(&call).unwrap().1 = true;
            }
            Op::Remove => {
                let Some(call) = pick(&model, a) else {
                    continue;
                };
                let (dc, _, _) = model.remove(&call).unwrap();
                prop_assert!(p.remove(dc, call).is_some());
            }
            Op::Kill => {
                let dc = DcId((a % dcs) as u16);
                let n = p.spec().servers_in(dc) as u32;
                if n == 0 {
                    continue;
                }
                let r = p.kill_server(ServerId {
                    dc,
                    index: (b % n) as u16,
                });
                for s in &r.spilled {
                    prop_assert!(model.remove(&s.call).is_some(), "spilled unknown call");
                }
                for &(id, _, _) in &r.rehomed {
                    prop_assert!(model.contains_key(&id), "rehomed unknown call {}", id);
                }
            }
        }
    }
    Ok(model)
}

/// Final audit: properties 1 and 2 over the exported snapshot, plus
/// model agreement (the packer tracks exactly the calls we think it does).
fn audit(p: &FleetPacker, model: &Model) -> Result<(), TestCaseError> {
    prop_assert_eq!(p.capacity_violations(), 0);
    let ex = p.export_state();
    let mut seen: HashMap<u64, usize> = HashMap::new();
    for (d, calls) in ex.calls.iter().enumerate() {
        let mut used = vec![0u32; ex.servers[d].len()];
        for &(id, server, _, c, _, frozen) in calls {
            prop_assert!(
                seen.insert(id, d).is_none(),
                "call {} packed in two DCs",
                id
            );
            let srv = ex.servers[d][server as usize];
            prop_assert!(srv.live, "call {} sits on dead server {}/{}", id, d, server);
            used[server as usize] += c;
            prop_assert_eq!(frozen, model[&id].1, "frozen flag drift on call {}", id);
        }
        for (i, s) in ex.servers[d].iter().enumerate() {
            prop_assert_eq!(s.used_mcpu, used[i], "used tally drift on {}/{}", d, i);
            prop_assert!(
                !s.live || s.used_mcpu <= s.capacity_mcpu,
                "live server {}/{} over capacity: {} > {}",
                d,
                i,
                s.used_mcpu,
                s.capacity_mcpu
            );
            prop_assert!(
                s.live || s.used_mcpu == 0,
                "dead server {}/{} still hosts {} mcpu",
                d,
                i,
                s.used_mcpu
            );
        }
    }
    prop_assert_eq!(
        seen.len(),
        model.len(),
        "packer and model disagree on call count"
    );
    for (id, &(dc, _, _)) in model {
        prop_assert_eq!(
            seen.get(id).copied(),
            Some(dc.0 as usize),
            "call {} in wrong DC",
            id
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn random_workloads_respect_hard_invariants(
        (spec, policy) in fleet_strategy(),
        ops in ops_strategy(),
    ) {
        let p = build(&spec, policy);
        let model = run_ops(&p, &CostModel::default(), &ops, GENERAL_MIX)?;
        audit(&p, &model)?;
    }

    #[test]
    fn growth_repacks_conserve_calls_and_respect_frozen(
        (spec, policy) in fleet_strategy(),
        ops in ops_strategy(),
    ) {
        // growth-heavy mix: forced moves, proactive re-packs, and frozen
        // evictions fire far more often; run_ops checks the frozen and
        // conservation properties after every grow
        let p = build(&spec, policy);
        let model = run_ops(&p, &CostModel::default(), &ops, GROW_MIX)?;
        audit(&p, &model)?;
    }

    #[test]
    fn death_drains_strand_nothing_on_dead_servers(
        (spec, policy) in fleet_strategy(),
        ops in ops_strategy(),
    ) {
        // kill-heavy mix: most servers die mid-run; surviving calls must
        // all sit on live servers and spills must exactly cover the rest
        let p = build(&spec, policy);
        let model = run_ops(&p, &CostModel::default(), &ops, KILL_MIX)?;
        audit(&p, &model)?;
    }

    #[test]
    fn packing_is_deterministic_under_identical_op_sequences(
        (spec, policy) in fleet_strategy(),
        ops in ops_strategy(),
    ) {
        let a = build(&spec, policy);
        let b = build(&spec, policy);
        run_ops(&a, &CostModel::default(), &ops, GENERAL_MIX)?;
        run_ops(&b, &CostModel::default(), &ops, GENERAL_MIX)?;
        prop_assert_eq!(a.export_state(), b.export_state());
        prop_assert_eq!(a.stats(), b.stats());
        prop_assert_eq!(a.per_server_peak_mcpu(), b.per_server_peak_mcpu());
        prop_assert_eq!(a.per_server_placed(), b.per_server_placed());
    }
}
