//! Versioned allocation-plan lifecycle: plan **artifacts**, plan **deltas**,
//! and warm incremental **re-planning**.
//!
//! The paper's controller is a loop (§5.3 → §5.4 → §6.3): a daily allocation
//! plan feeds the real-time selector, and the plan is refreshed when
//! forecasts drift or failures change the topology. This module makes a plan
//! a first-class value:
//!
//! * [`PlanArtifact`] — an immutable, versioned snapshot of one plan epoch:
//!   the fractional shares, the rounded per-DC quotas, and provenance
//!   (scenario planned against, solve statistics, the slot the re-plan
//!   started from). Installed into a selector with
//!   [`crate::RealtimeSelector::install_plan`], persisted with
//!   [`PlanArtifact::to_tsv`] / [`PlanArtifact::to_ndjson`].
//! * [`PlanDelta`] — the per-`(config, slot, DC)` quota diff between two
//!   artifacts, and the migration set it implies.
//! * [`SlotPlanner`] — the incremental re-planner. The allocation LP (Eq.
//!   10) decomposes per slot because capacities are constants; the planner
//!   keeps one patch-in-place LP per slot (the `SweepModel` idiom from the
//!   provisioning sweep) plus the last optimal [`Basis`] per slot, so
//!   [`SlotPlanner::replan_from`] re-solves **only the remaining slots**,
//!   warm-starting each from the previous epoch's basis and recording
//!   per-slot [`SolveRung`] / warm-hit statistics.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use sb_lp::{Basis, GuardedSimplex, LpProblem, PreparedProblem, SolveRung, Var};
use sb_net::{DcId, LinkId, ProvisionedCapacity};
use sb_obs::{Table, Value};
use sb_workload::{ConfigId, DemandMatrix};

use crate::formulation::{PlanningInputs, ProvisionError, ScenarioData, SolveOptions};
use crate::realtime::PlannedQuotas;
use crate::shares::AllocationShares;

/// Where a plan came from: the scenario it was solved against and the
/// solve-effort statistics of the (re-)plan that produced it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlanProvenance {
    /// Debug rendering of the [`sb_net::FailureScenario`] planned against.
    pub scenario: String,
    /// First slot re-solved by the producing re-plan (0 for a full plan).
    pub built_at_slot: usize,
    /// Wall time of the producing (re-)plan, nanoseconds.
    pub solve_wall_ns: u64,
    /// Slots whose warm start was accepted by the engine.
    pub warm_slots: u32,
    /// Slots solved cold (no basis, or basis rejected).
    pub cold_slots: u32,
    /// Slots copied verbatim from the previous epoch.
    pub copied_slots: u32,
    /// Total simplex iterations across re-solved slots.
    pub total_iterations: u64,
}

impl Default for PlanProvenance {
    fn default() -> Self {
        PlanProvenance {
            scenario: "None".to_string(),
            built_at_slot: 0,
            solve_wall_ns: 0,
            warm_slots: 0,
            cold_slots: 0,
            copied_slots: 0,
            total_iterations: 0,
        }
    }
}

/// One immutable, versioned allocation plan: what the selector consumes
/// ([`PlanArtifact::quotas`]), what produced it ([`PlanArtifact::shares`]
/// and [`PlanArtifact::provenance`]), and its position in the epoch
/// sequence.
#[derive(Clone, Debug, PartialEq)]
pub struct PlanArtifact {
    /// Monotone plan version; selectors start at epoch 0.
    pub epoch: u64,
    /// The fractional `S_tcx` this plan was rounded from.
    pub shares: AllocationShares,
    /// Integer per-DC quotas per `(config, slot)` (largest-remainder
    /// rounding of `shares × demand`).
    pub quotas: PlannedQuotas,
    /// Scenario + solve-stats provenance.
    pub provenance: PlanProvenance,
}

impl PlanArtifact {
    /// Assemble an artifact from parts.
    pub fn new(
        epoch: u64,
        shares: AllocationShares,
        quotas: PlannedQuotas,
        provenance: PlanProvenance,
    ) -> PlanArtifact {
        PlanArtifact {
            epoch,
            shares,
            quotas,
            provenance,
        }
    }

    /// The same plan stamped with a different epoch.
    pub fn with_epoch(mut self, epoch: u64) -> PlanArtifact {
        self.epoch = epoch;
        self
    }

    /// Wrap bare quotas as an epoch-0 artifact with empty shares and
    /// default provenance — the seed plan a selector boots from when no LP
    /// solve produced the quotas (tests, baselines, hand-written plans).
    pub fn seed(quotas: PlannedQuotas) -> PlanArtifact {
        PlanArtifact::new(
            0,
            AllocationShares::new(quotas.num_slots()),
            quotas,
            PlanProvenance::default(),
        )
    }
}

/// One quota change between two plan epochs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QuotaChange {
    /// Config whose pool changed.
    pub config: ConfigId,
    /// Slot whose pool changed.
    pub slot: usize,
    /// DC whose quota changed.
    pub dc: DcId,
    /// Quota in the old plan (0 when the entry is new).
    pub before: u32,
    /// Quota in the new plan (0 when the entry was dropped).
    pub after: u32,
}

/// Per-`(config, slot, DC)` quota diff between two [`PlanArtifact`]s,
/// sorted by `(config, slot, dc)`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PlanDelta {
    /// Entries whose quota differs between the two plans.
    pub changes: Vec<QuotaChange>,
}

impl PlanDelta {
    /// Diff two artifacts' quotas.
    pub fn between(old: &PlanArtifact, new: &PlanArtifact) -> PlanDelta {
        let mut merged: HashMap<(ConfigId, usize, DcId), (u32, u32)> = HashMap::new();
        for (key, entries) in old.quotas.iter() {
            for &(dc, n) in entries {
                merged.entry((key.0, key.1, dc)).or_insert((0, 0)).0 += n;
            }
        }
        for (key, entries) in new.quotas.iter() {
            for &(dc, n) in entries {
                merged.entry((key.0, key.1, dc)).or_insert((0, 0)).1 += n;
            }
        }
        let mut changes: Vec<QuotaChange> = merged
            .into_iter()
            .filter(|&(_, (b, a))| b != a)
            .map(|((config, slot, dc), (before, after))| QuotaChange {
                config,
                slot,
                dc,
                before,
                after,
            })
            .collect();
        changes.sort_unstable_by_key(|c| (c.config.index(), c.slot, c.dc.index()));
        PlanDelta { changes }
    }

    /// No quota changed.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// Number of changed entries.
    pub fn len(&self) -> usize {
        self.changes.len()
    }

    /// Calls the delta implies must move: for every entry whose quota
    /// shrank, the lost quota is demand the new plan places elsewhere
    /// (Σ max(0, before − after)).
    pub fn implied_migrations(&self) -> u64 {
        self.changes
            .iter()
            .map(|c| c.before.saturating_sub(c.after) as u64)
            .sum()
    }

    /// Record this delta's implied migration count into the `plan.*`
    /// metrics (`plan.delta_migrations`).
    pub fn record(&self) {
        crate::metrics::plan_metrics()
            .delta_migrations
            .add(self.implied_migrations());
    }
}

// ---------------------------------------------------------------------------
// Incremental re-planner
// ---------------------------------------------------------------------------

/// Per-slot solve outcome of one (re-)plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlotSolveInfo {
    /// Slot index.
    pub slot: usize,
    /// Copied verbatim from the previous epoch (slot < `from_slot`).
    pub copied: bool,
    /// Warm start accepted by the engine (re-solved slots only).
    pub warm_started: bool,
    /// Engine rung that produced the solve; `None` for copied slots.
    pub rung: Option<SolveRung>,
    /// Simplex iterations (0 for copied slots).
    pub iterations: u64,
    /// Wall time of this slot's patch + solve, nanoseconds.
    pub wall_ns: u64,
}

/// What one [`SlotPlanner::replan_from`] (or
/// [`SlotPlanner::plan_initial`]) did: the artifact plus per-slot solve
/// statistics.
#[derive(Clone, Debug)]
pub struct ReplanReport {
    /// The plan produced.
    pub artifact: Arc<PlanArtifact>,
    /// One entry per slot touched (copied or re-solved).
    pub slots: Vec<SlotSolveInfo>,
    /// End-to-end wall time.
    pub wall: Duration,
}

impl ReplanReport {
    /// Slots copied from the previous epoch.
    pub fn copied_slots(&self) -> usize {
        self.slots.iter().filter(|s| s.copied).count()
    }

    /// Slots actually re-solved.
    pub fn solved_slots(&self) -> usize {
        self.slots.len() - self.copied_slots()
    }

    /// Re-solved slots whose warm start was accepted.
    pub fn warm_hits(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| !s.copied && s.warm_started)
            .count()
    }

    /// Warm hits over re-solved slots (0.0 when nothing was re-solved).
    pub fn warm_hit_rate(&self) -> f64 {
        let solved = self.solved_slots();
        if solved == 0 {
            0.0
        } else {
            self.warm_hits() as f64 / solved as f64
        }
    }
}

/// One share variable of a slot LP.
#[derive(Clone, Copy, Debug)]
struct SlotVar {
    cfg_pos: usize,
    dc_pos: usize,
    var: Var,
}

/// The patch-in-place LP of one slot (the per-slot decomposition of Eq. 10
/// under fixed capacity). Structure — variables for every `(active config,
/// union-allowed DC)` pair, completeness rows, per-DC compute rows, per-link
/// network rows — is scenario-independent; a re-plan only patches numbers.
struct SlotModel {
    lp: LpProblem,
    prep: PreparedProblem,
    vars: Vec<SlotVar>,
    /// `(row, cfg_pos)` completeness equality per config in this slot.
    completeness: Vec<(usize, usize)>,
    /// `(row, dc)` compute-capacity rows.
    compute_rows: Vec<(usize, DcId)>,
    /// `(row, link)` network-capacity rows (coefficients patched per
    /// scenario routing).
    network_rows: Vec<(usize, LinkId)>,
    /// `link.index()` → position in `network_rows`, `usize::MAX` if the
    /// link is outside the modeled union.
    net_pos: Vec<usize>,
}

/// Incremental re-planner for the per-slot allocation LP.
///
/// Built once per planning horizon from the scenarios you intend to re-plan
/// against (their union defines the modeled placements and network links —
/// pass at least the healthy scenario plus every failure you may re-plan
/// under; a healthy scenario's allowed sets are supersets of any failure's,
/// so including it covers latency-driven placements). Each
/// [`SlotPlanner::replan_from`] patches the slot LPs for the given scenario
/// and demand, re-solves only slots ≥ `from_slot` warm-started from the
/// previous solve's exported basis, and copies earlier slots' shares from
/// the previous artifact.
pub struct SlotPlanner<'a> {
    inputs: PlanningInputs<'a>,
    capacity: ProvisionedCapacity,
    solver: GuardedSimplex,
    warm_start: bool,
    min_demand: f64,
    /// Configs with any demand: `(config, union allowed DCs)` in catalog
    /// order; DC order is first-seen across the build scenarios (stable).
    active: Vec<(ConfigId, Vec<DcId>)>,
    models: Vec<Option<SlotModel>>,
    bases: Vec<Option<Basis>>,
}

impl<'a> SlotPlanner<'a> {
    /// Build the per-slot models over the union of `sds`' allowed
    /// placements. `capacity` is the fixed provisioned capacity every slot
    /// must fit in.
    pub fn new(
        inputs: &PlanningInputs<'a>,
        sds: &[ScenarioData],
        capacity: &ProvisionedCapacity,
        opts: &SolveOptions,
    ) -> SlotPlanner<'a> {
        let topo = inputs.topo;
        let demand = inputs.demand;
        // active configs + union allowed DCs
        let mut active: Vec<(ConfigId, Vec<DcId>)> = Vec::new();
        for (cfg_id, cfg) in inputs.catalog.iter() {
            if cfg_id.index() >= demand.num_configs() {
                continue;
            }
            if demand.series(cfg_id).iter().all(|&d| d <= opts.min_demand) {
                continue;
            }
            let mut dcs: Vec<DcId> = Vec::new();
            for sd in sds {
                for (dc, _) in sd.latmap.allowed_dcs(cfg, inputs.latency_threshold_ms) {
                    if !dcs.contains(&dc) {
                        dcs.push(dc);
                    }
                }
            }
            if !dcs.is_empty() {
                active.push((cfg_id, dcs));
            }
        }
        // union of links any modeled placement can load under any scenario
        let mut link_used = vec![false; topo.links.len()];
        for sd in sds {
            for (cfg_id, dcs) in &active {
                let cfg = inputs.catalog.config(*cfg_id);
                for &dc in dcs {
                    for &(country, _) in cfg.participants() {
                        if let Some(route) = sd.routing.route(country, dc) {
                            for &l in &route.links {
                                link_used[l.index()] = true;
                            }
                        }
                    }
                }
            }
        }
        let slack = |v: f64| v * (1.0 + 1e-7) + 1e-7;
        let mut models: Vec<Option<SlotModel>> = Vec::with_capacity(demand.num_slots());
        for slot in 0..demand.num_slots() {
            let slot_cfgs: Vec<usize> = active
                .iter()
                .enumerate()
                .filter(|(_, (cfg_id, _))| demand.get(*cfg_id, slot) > opts.min_demand)
                .map(|(i, _)| i)
                .collect();
            if slot_cfgs.is_empty() {
                models.push(None);
                continue;
            }
            let mut lp = LpProblem::new();
            let mut vars: Vec<SlotVar> = Vec::new();
            let mut completeness: Vec<(usize, usize)> = Vec::new();
            let mut compute_acc: Vec<Vec<(Var, f64)>> = vec![Vec::new(); topo.dcs.len()];
            for &cfg_pos in &slot_cfgs {
                let (cfg_id, dcs) = &active[cfg_pos];
                let cfg = inputs.catalog.config(*cfg_id);
                let cl = cfg.compute_load();
                let d = demand.get(*cfg_id, slot);
                let mut comp = Vec::with_capacity(dcs.len());
                for (dc_pos, &dc) in dcs.iter().enumerate() {
                    let v = lp.add_var(format!("S_{}_{}", cfg_id.index(), dc.index()), 0.0, 0.0, d);
                    comp.push((v, 1.0));
                    compute_acc[dc.index()].push((v, cl));
                    vars.push(SlotVar {
                        cfg_pos,
                        dc_pos,
                        var: v,
                    });
                }
                let row = lp.add_eq(comp, d);
                completeness.push((row, cfg_pos));
            }
            let mut compute_rows: Vec<(usize, DcId)> = Vec::new();
            for dc in topo.dc_ids() {
                let acc = std::mem::take(&mut compute_acc[dc.index()]);
                if !acc.is_empty() {
                    let row = lp.add_le(acc, slack(capacity.cores[dc.index()]));
                    compute_rows.push((row, dc));
                }
            }
            let mut network_rows: Vec<(usize, LinkId)> = Vec::new();
            let mut net_pos = vec![usize::MAX; topo.links.len()];
            for l in topo.link_ids() {
                if !link_used[l.index()] {
                    continue;
                }
                // coefficients are scenario-routing-dependent and patched
                // before every solve; start empty
                let row = lp.add_le(Vec::new(), slack(capacity.gbps[l.index()]));
                net_pos[l.index()] = network_rows.len();
                network_rows.push((row, l));
            }
            let prep = PreparedProblem::new(&lp);
            models.push(Some(SlotModel {
                lp,
                prep,
                vars,
                completeness,
                compute_rows,
                network_rows,
                net_pos,
            }));
        }
        let num_slots = demand.num_slots();
        SlotPlanner {
            inputs: *inputs,
            capacity: capacity.clone(),
            solver: GuardedSimplex {
                primary: opts.solver.clone(),
                fallback_to_dense: opts.fallback_to_dense,
                dense_var_limit: 0,
            },
            warm_start: opts.warm_start,
            min_demand: opts.min_demand,
            active,
            models,
            bases: (0..num_slots).map(|_| None).collect(),
        }
    }

    /// Full plan for `sd` (epoch 1, all slots solved cold on the first
    /// call). Seeds the per-slot basis cache for later incremental
    /// re-plans.
    pub fn plan_initial(&mut self, sd: &ScenarioData) -> Result<ReplanReport, ProvisionError> {
        self.replan(None, 0, sd, None)
    }

    /// Incrementally re-plan from `prev`: slots before `from_slot` are
    /// copied verbatim, slots `from_slot..` are patched for `sd` (and
    /// `demand_override` if the forecast drifted — must share the base
    /// demand's slot geometry) and re-solved warm from the last solve's
    /// exported basis. The result carries epoch `prev.epoch + 1`.
    pub fn replan_from(
        &mut self,
        prev: &PlanArtifact,
        from_slot: usize,
        sd: &ScenarioData,
        demand_override: Option<&DemandMatrix>,
    ) -> Result<ReplanReport, ProvisionError> {
        self.replan(Some(prev), from_slot, sd, demand_override)
    }

    fn replan(
        &mut self,
        prev: Option<&PlanArtifact>,
        from_slot: usize,
        sd: &ScenarioData,
        demand_override: Option<&DemandMatrix>,
    ) -> Result<ReplanReport, ProvisionError> {
        let m = crate::metrics::plan_metrics();
        let wall_start = Instant::now();
        let demand = demand_override.unwrap_or(self.inputs.demand);
        let epoch = prev.map(|p| p.epoch + 1).unwrap_or(1);
        let num_slots = self.inputs.demand.num_slots();
        let from_slot = from_slot.min(num_slots);
        let mut shares = AllocationShares::new(num_slots);
        let mut slots_info: Vec<SlotSolveInfo> = Vec::new();

        // copy the already-elapsed slots from the previous epoch
        if let Some(prev) = prev {
            for (cfg, slot, fr) in prev.shares.iter() {
                if slot < from_slot {
                    shares.set(cfg, slot, fr.to_vec());
                }
            }
            for slot in 0..from_slot {
                slots_info.push(SlotSolveInfo {
                    slot,
                    copied: true,
                    warm_started: false,
                    rung: None,
                    iterations: 0,
                    wall_ns: 0,
                });
            }
        }

        // scenario-dependent data shared by every slot: per (config, DC)
        // ACL and link loads under sd
        let threshold = self.inputs.latency_threshold_ms;
        let acl: Vec<Vec<Option<f64>>> = self
            .active
            .iter()
            .map(|(cfg_id, dcs)| {
                let cfg = self.inputs.catalog.config(*cfg_id);
                let allowed = sd.latmap.allowed_dcs(cfg, threshold);
                dcs.iter()
                    .map(|&dc| allowed.iter().find(|&&(a, _)| a == dc).map(|&(_, v)| v))
                    .collect()
            })
            .collect();
        let loads: Vec<Vec<Vec<(LinkId, f64)>>> = self
            .active
            .iter()
            .enumerate()
            .map(|(cfg_pos, (cfg_id, dcs))| {
                let cfg = self.inputs.catalog.config(*cfg_id);
                let nl = cfg.leg_network_load();
                dcs.iter()
                    .enumerate()
                    .map(|(dc_pos, &dc)| {
                        if acl[cfg_pos][dc_pos].is_none() {
                            return Vec::new();
                        }
                        let mut out: Vec<(LinkId, f64)> = Vec::new();
                        for &(country, n) in cfg.participants() {
                            if let Some(route) = sd.routing.route(country, dc) {
                                for &l in &route.links {
                                    match out.iter_mut().find(|(ll, _)| *ll == l) {
                                        Some((_, w)) => *w += n as f64 * nl,
                                        None => out.push((l, n as f64 * nl)),
                                    }
                                }
                            }
                        }
                        out
                    })
                    .collect()
            })
            .collect();

        let slack = |v: f64| v * (1.0 + 1e-7) + 1e-7;
        let obs_on = sb_obs::global().enabled();
        for slot in from_slot..num_slots {
            let Some(model) = self.models[slot].as_mut() else {
                continue; // no demand in this slot at build time
            };
            let slot_start = Instant::now();
            // patch share variables and collect network coefficients
            let mut net_coeffs: Vec<Vec<(Var, f64)>> = vec![Vec::new(); model.network_rows.len()];
            let mut cfg_rhs = vec![0.0f64; self.active.len()];
            for v in &model.vars {
                let (cfg_id, _) = self.active[v.cfg_pos];
                let d = demand.get(cfg_id, slot);
                match acl[v.cfg_pos][v.dc_pos] {
                    Some(a) if d > self.min_demand => {
                        model.lp.set_var_upper(v.var, d);
                        model.lp.set_var_cost(v.var, a);
                        cfg_rhs[v.cfg_pos] = d;
                        for &(l, w) in &loads[v.cfg_pos][v.dc_pos] {
                            let pos = model.net_pos[l.index()];
                            // links outside the build-time union are not
                            // modeled (pass every re-plan scenario to
                            // `SlotPlanner::new` to avoid this)
                            if pos != usize::MAX {
                                net_coeffs[pos].push((v.var, w));
                            }
                        }
                    }
                    _ => {
                        model.lp.set_var_upper(v.var, 0.0);
                        model.lp.set_var_cost(v.var, 0.0);
                    }
                }
            }
            for &(row, cfg_pos) in &model.completeness {
                model.lp.set_rhs(row, cfg_rhs[cfg_pos]);
            }
            for &(row, dc) in &model.compute_rows {
                model
                    .lp
                    .set_rhs(row, slack(self.capacity.cores[dc.index()]));
            }
            for (pos, &(row, l)) in model.network_rows.iter().enumerate() {
                model
                    .lp
                    .set_row_coeffs(row, std::mem::take(&mut net_coeffs[pos]));
                model.lp.set_rhs(row, slack(self.capacity.gbps[l.index()]));
            }
            let _ = model.prep.refresh(&model.lp);
            let warm = if self.warm_start {
                self.bases[slot].as_ref()
            } else {
                None
            };
            let sol = self
                .solver
                .solve_prepared(&model.lp, &model.prep, warm)
                .map_err(|source| {
                    m.replan_failures.inc();
                    ProvisionError::Lp {
                        scenario: sd.scenario,
                        source,
                    }
                })?;
            // extract shares in variable order (stable across identical
            // re-plans — entry order is selector-tie-breaking-relevant)
            let mut per_cfg: Vec<Vec<(DcId, f64)>> = vec![Vec::new(); self.active.len()];
            for v in &model.vars {
                let d = cfg_rhs[v.cfg_pos];
                if d <= 0.0 {
                    continue;
                }
                let val = sol.value(v.var).max(0.0);
                if val > 1e-9 * d.max(1.0) {
                    per_cfg[v.cfg_pos].push((self.active[v.cfg_pos].1[v.dc_pos], val / d));
                }
            }
            for (cfg_pos, fr) in per_cfg.into_iter().enumerate() {
                if !fr.is_empty() {
                    shares.set(self.active[cfg_pos].0, slot, fr);
                }
            }
            let stats = sol.stats();
            self.bases[slot] = sol.basis().cloned();
            let wall_ns = u64::try_from(slot_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            if stats.warm_started {
                m.warm_slots.inc();
            } else {
                m.cold_slots.inc();
            }
            if obs_on {
                m.slot_solves.push(vec![
                    Value::from(epoch),
                    Value::from(slot),
                    Value::from(0u64),
                    Value::from(u64::from(stats.warm_started)),
                    Value::from(stats.rung.to_string()),
                    Value::from(wall_ns),
                ]);
            }
            slots_info.push(SlotSolveInfo {
                slot,
                copied: false,
                warm_started: stats.warm_started,
                rung: Some(stats.rung),
                iterations: sol.iterations(),
                wall_ns,
            });
        }

        let quotas = PlannedQuotas::from_plan(&shares, demand);
        let wall = wall_start.elapsed();
        m.replan_wall_ns.record_duration(wall);
        let provenance = PlanProvenance {
            scenario: format!("{:?}", sd.scenario),
            built_at_slot: from_slot,
            solve_wall_ns: u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX),
            warm_slots: slots_info
                .iter()
                .filter(|s| !s.copied && s.warm_started)
                .count() as u32,
            cold_slots: slots_info
                .iter()
                .filter(|s| !s.copied && !s.warm_started)
                .count() as u32,
            copied_slots: slots_info.iter().filter(|s| s.copied).count() as u32,
            total_iterations: slots_info.iter().map(|s| s.iterations).sum(),
        };
        let artifact = Arc::new(PlanArtifact {
            epoch,
            shares,
            quotas,
            provenance,
        });
        Ok(ReplanReport {
            artifact,
            slots: slots_info,
            wall,
        })
    }
}

// ---------------------------------------------------------------------------
// Persistence (TSV / NDJSON via the sb-obs table writer)
// ---------------------------------------------------------------------------

/// Columns of the persisted plan table: one row per `(config, slot, dc)`
/// share entry, in plan order (`quota` is `-` when the slot's demand
/// rounded to zero and no quota pool exists).
pub const PLAN_EXPORT_COLUMNS: [&str; 5] = ["config", "slot", "dc", "share", "quota"];

/// A persisted plan failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanParseError(pub String);

impl std::fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed plan artifact: {}", self.0)
    }
}

impl std::error::Error for PlanParseError {}

fn err(msg: impl Into<String>) -> PlanParseError {
    PlanParseError(msg.into())
}

/// The export rows, built through the sb-obs [`Table`] writer. Row order:
/// pools sorted by `(config, slot)`, entries within a pool in plan order
/// (the order is part of the selector's tie-breaking behavior and must
/// survive a round-trip).
fn export_table(artifact: &PlanArtifact) -> Table {
    type Pool<'a> = (ConfigId, usize, &'a [(DcId, f64)]);
    let t = Table::standalone(&PLAN_EXPORT_COLUMNS);
    let mut pools: Vec<Pool<'_>> = artifact.shares.iter().collect();
    pools.sort_by_key(|&(cfg, slot, _)| (cfg.index(), slot));
    // Pools that exist only as quotas (seed artifacts carry no shares) are
    // exported as quota-only rows (`share` = "-"), so a round-trip never
    // silently drops quota.
    let mut quota_only: Vec<(ConfigId, usize)> = artifact
        .quotas
        .iter()
        .filter(|&((cfg, slot), _)| artifact.shares.get(cfg, slot).is_empty())
        .map(|(k, _)| k)
        .collect();
    quota_only.sort_by_key(|&(cfg, slot)| (cfg.index(), slot));
    let mut quota_only = quota_only.into_iter().peekable();
    let emit_quota_only = |t: &Table, cfg: ConfigId, slot: usize| {
        for &(dc, n) in artifact.quotas.get(cfg, slot) {
            t.push(vec![
                Value::from(cfg.index()),
                Value::from(slot),
                Value::from(dc.index()),
                Value::from("-"),
                Value::from(n),
            ]);
        }
    };
    for (cfg, slot, fracs) in pools {
        // interleave pending quota-only pools that sort before this one so
        // row order stays sorted by (config, slot)
        while quota_only
            .peek()
            .is_some_and(|&(qc, qs)| (qc.index(), qs) < (cfg.index(), slot))
        {
            let (qc, qs) = quota_only.next().unwrap_or((cfg, slot));
            emit_quota_only(&t, qc, qs);
        }
        let counts = artifact.quotas.get(cfg, slot);
        for (i, &(dc, share)) in fracs.iter().enumerate() {
            let quota: Value = counts
                .iter()
                .enumerate()
                .find(|&(j, &(qdc, _))| qdc == dc && (counts.len() != fracs.len() || j == i))
                .map(|(_, &(_, n))| Value::from(n))
                .unwrap_or_else(|| Value::from("-"));
            t.push(vec![
                Value::from(cfg.index()),
                Value::from(slot),
                Value::from(dc.index()),
                Value::from(share),
                quota,
            ]);
        }
    }
    for (qc, qs) in quota_only {
        emit_quota_only(&t, qc, qs);
    }
    t
}

struct MetaFields {
    epoch: u64,
    slot_minutes: u32,
    start_minute: u64,
    num_slots: usize,
    provenance: PlanProvenance,
}

fn meta_of(artifact: &PlanArtifact) -> MetaFields {
    MetaFields {
        epoch: artifact.epoch,
        slot_minutes: artifact.quotas.slot_minutes(),
        start_minute: artifact.quotas.start_minute(),
        num_slots: artifact.quotas.num_slots(),
        provenance: artifact.provenance.clone(),
    }
}

/// One parsed plan row: `(config, slot, dc, share, quota)` — share is `None`
/// for quota-only pools, quota is `None` for share-only rows.
type PlanRow = (usize, usize, usize, Option<f64>, Option<u32>);

fn rebuild(meta: MetaFields, rows: Vec<PlanRow>) -> Result<PlanArtifact, PlanParseError> {
    let mut shares = AllocationShares::new(meta.num_slots);
    let mut quotas: HashMap<(ConfigId, usize), Vec<(DcId, u32)>> = HashMap::new();
    let mut i = 0usize;
    while i < rows.len() {
        let (cfg, slot, _, _, _) = rows[i];
        if slot >= meta.num_slots {
            return Err(err(format!("slot {slot} out of range")));
        }
        let cfg_id = ConfigId(u32::try_from(cfg).map_err(|_| err("config id out of range"))?);
        let mut fracs: Vec<(DcId, f64)> = Vec::new();
        let mut counts: Vec<(DcId, u32)> = Vec::new();
        let mut in_plan = false;
        while i < rows.len() && rows[i].0 == cfg && rows[i].1 == slot {
            let (_, _, dc, share, quota) = rows[i];
            let dc = DcId(u16::try_from(dc).map_err(|_| err("dc id out of range"))?);
            if let Some(s) = share {
                fracs.push((dc, s));
            }
            if let Some(q) = quota {
                in_plan = true;
                counts.push((dc, q));
            } else {
                counts.push((dc, 0));
            }
            i += 1;
        }
        if !fracs.is_empty() {
            shares.set(cfg_id, slot, fracs);
        }
        if in_plan {
            quotas.insert((cfg_id, slot), counts);
        }
    }
    let quotas =
        PlannedQuotas::from_parts(meta.slot_minutes, meta.start_minute, meta.num_slots, quotas);
    Ok(PlanArtifact {
        epoch: meta.epoch,
        shares,
        quotas,
        provenance: meta.provenance,
    })
}

impl PlanArtifact {
    /// Serialize as TSV: a `#plan` metadata line (tab-separated `key=value`
    /// pairs) followed by the [`PLAN_EXPORT_COLUMNS`] table rendered by the
    /// sb-obs table writer. Shares use Rust's shortest round-trip float
    /// formatting, so [`PlanArtifact::from_tsv`] reconstructs them exactly.
    pub fn to_tsv(&self) -> String {
        let m = meta_of(self);
        let p = &m.provenance;
        let mut out = format!(
            "#plan\tepoch={}\tslot_minutes={}\tstart_minute={}\tnum_slots={}\t\
             built_at_slot={}\tsolve_wall_ns={}\twarm_slots={}\tcold_slots={}\t\
             copied_slots={}\ttotal_iterations={}\tscenario={}\n",
            m.epoch,
            m.slot_minutes,
            m.start_minute,
            m.num_slots,
            p.built_at_slot,
            p.solve_wall_ns,
            p.warm_slots,
            p.cold_slots,
            p.copied_slots,
            p.total_iterations,
            p.scenario,
        );
        out.push_str(&export_table(self).render_tsv());
        out
    }

    /// Parse an artifact previously written by [`PlanArtifact::to_tsv`].
    pub fn from_tsv(s: &str) -> Result<PlanArtifact, PlanParseError> {
        let mut lines = s.lines();
        let meta_line = lines.next().ok_or_else(|| err("empty input"))?;
        let rest = meta_line
            .strip_prefix("#plan\t")
            .ok_or_else(|| err("missing #plan metadata line"))?;
        let mut kv: HashMap<&str, &str> = HashMap::new();
        for field in rest.split('\t') {
            let (k, v) = field
                .split_once('=')
                .ok_or_else(|| err(format!("bad metadata field {field:?}")))?;
            kv.insert(k, v);
        }
        fn get<T: std::str::FromStr>(
            kv: &HashMap<&str, &str>,
            key: &str,
        ) -> Result<T, PlanParseError> {
            kv.get(key)
                .ok_or_else(|| err(format!("missing metadata key {key}")))?
                .parse()
                .map_err(|_| err(format!("bad value for metadata key {key}")))
        }
        let meta = MetaFields {
            epoch: get(&kv, "epoch")?,
            slot_minutes: get(&kv, "slot_minutes")?,
            start_minute: get(&kv, "start_minute")?,
            num_slots: get(&kv, "num_slots")?,
            provenance: PlanProvenance {
                scenario: kv
                    .get("scenario")
                    .ok_or_else(|| err("missing metadata key scenario"))?
                    .to_string(),
                built_at_slot: get(&kv, "built_at_slot")?,
                solve_wall_ns: get(&kv, "solve_wall_ns")?,
                warm_slots: get(&kv, "warm_slots")?,
                cold_slots: get(&kv, "cold_slots")?,
                copied_slots: get(&kv, "copied_slots")?,
                total_iterations: get(&kv, "total_iterations")?,
            },
        };
        let header = lines.next().ok_or_else(|| err("missing header line"))?;
        if header != PLAN_EXPORT_COLUMNS.join("\t") {
            return Err(err(format!("unexpected header {header:?}")));
        }
        let mut rows = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let cells: Vec<&str> = line.split('\t').collect();
            if cells.len() != PLAN_EXPORT_COLUMNS.len() {
                return Err(err(format!("bad row arity in {line:?}")));
            }
            let quota = match cells[4] {
                "-" => None,
                q => Some(q.parse().map_err(|_| err(format!("bad quota {q:?}")))?),
            };
            let share = match cells[3] {
                "-" => None,
                s => Some(s.parse().map_err(|_| err(format!("bad share {s:?}")))?),
            };
            rows.push((
                cells[0]
                    .parse()
                    .map_err(|_| err(format!("bad config {:?}", cells[0])))?,
                cells[1]
                    .parse()
                    .map_err(|_| err(format!("bad slot {:?}", cells[1])))?,
                cells[2]
                    .parse()
                    .map_err(|_| err(format!("bad dc {:?}", cells[2])))?,
                share,
                quota,
            ));
        }
        rebuild(meta, rows)
    }

    /// Serialize as NDJSON: a `{"plan":{…}}` metadata object followed by
    /// one object per table row (same rows as the TSV form).
    pub fn to_ndjson(&self) -> String {
        let m = meta_of(self);
        let p = &m.provenance;
        let scenario = p.scenario.replace('\\', "\\\\").replace('"', "\\\"");
        let mut out = format!(
            concat!(
                r#"{{"plan":{{"epoch":{},"slot_minutes":{},"start_minute":{},"#,
                r#""num_slots":{},"built_at_slot":{},"solve_wall_ns":{},"#,
                r#""warm_slots":{},"cold_slots":{},"copied_slots":{},"#,
                r#""total_iterations":{},"scenario":"{}"}}}}"#,
                "\n"
            ),
            m.epoch,
            m.slot_minutes,
            m.start_minute,
            m.num_slots,
            p.built_at_slot,
            p.solve_wall_ns,
            p.warm_slots,
            p.cold_slots,
            p.copied_slots,
            p.total_iterations,
            scenario,
        );
        out.push_str(&export_table(self).render_ndjson());
        out
    }

    /// Parse an artifact previously written by [`PlanArtifact::to_ndjson`].
    pub fn from_ndjson(s: &str) -> Result<PlanArtifact, PlanParseError> {
        let mut lines = s.lines();
        let meta_line = lines.next().ok_or_else(|| err("empty input"))?;
        if !meta_line.starts_with(r#"{"plan":"#) {
            return Err(err("missing {\"plan\":…} metadata line"));
        }
        fn raw_field(line: &str, key: &str) -> Result<String, PlanParseError> {
            let pat = format!("\"{key}\":");
            let at = line
                .find(&pat)
                .ok_or_else(|| err(format!("missing field {key}")))?;
            let rest = &line[at + pat.len()..];
            if let Some(body) = rest.strip_prefix('"') {
                // string value with \" and \\ escapes
                let mut out = String::new();
                let mut chars = body.chars();
                while let Some(c) = chars.next() {
                    match c {
                        '\\' => match chars.next() {
                            Some(e) => out.push(e),
                            None => return Err(err(format!("unterminated string for {key}"))),
                        },
                        '"' => return Ok(out),
                        c => out.push(c),
                    }
                }
                Err(err(format!("unterminated string for {key}")))
            } else {
                let end = rest
                    .find([',', '}'])
                    .ok_or_else(|| err(format!("unterminated value for {key}")))?;
                Ok(rest[..end].to_string())
            }
        }
        fn num_field<T: std::str::FromStr>(line: &str, key: &str) -> Result<T, PlanParseError> {
            raw_field(line, key)?
                .parse()
                .map_err(|_| err(format!("bad value for field {key}")))
        }
        let meta = MetaFields {
            epoch: num_field(meta_line, "epoch")?,
            slot_minutes: num_field(meta_line, "slot_minutes")?,
            start_minute: num_field(meta_line, "start_minute")?,
            num_slots: num_field(meta_line, "num_slots")?,
            provenance: PlanProvenance {
                scenario: raw_field(meta_line, "scenario")?,
                built_at_slot: num_field(meta_line, "built_at_slot")?,
                solve_wall_ns: num_field(meta_line, "solve_wall_ns")?,
                warm_slots: num_field(meta_line, "warm_slots")?,
                cold_slots: num_field(meta_line, "cold_slots")?,
                copied_slots: num_field(meta_line, "copied_slots")?,
                total_iterations: num_field(meta_line, "total_iterations")?,
            },
        };
        let mut rows = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let quota = match raw_field(line, "quota")?.as_str() {
                "-" => None,
                q => Some(q.parse().map_err(|_| err(format!("bad quota {q:?}")))?),
            };
            let share = match raw_field(line, "share")?.as_str() {
                "-" => None,
                s => Some(s.parse().map_err(|_| err(format!("bad share {s:?}")))?),
            };
            rows.push((
                num_field(line, "config")?,
                num_field(line, "slot")?,
                num_field(line, "dc")?,
                share,
                quota,
            ));
        }
        rebuild(meta, rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formulation::solve_scenario;
    use crate::usage::{compute_usage, placed_fraction};
    use sb_net::{FailureScenario, Topology};
    use sb_workload::{CallConfig, ConfigCatalog, MediaType};

    fn instance() -> (Topology, ConfigCatalog, DemandMatrix) {
        let topo = sb_net::presets::toy_three_dc();
        let jp = topo.country_by_name("JP");
        let iin = topo.country_by_name("IN");
        let mut cat = ConfigCatalog::new();
        let c_jp = cat.intern(CallConfig::new(vec![(jp, 2)], MediaType::Audio));
        let c_in = cat.intern(CallConfig::new(vec![(iin, 2)], MediaType::Audio));
        let mut demand = DemandMatrix::zero(2, 3, 30, 0);
        demand.set(c_jp, 0, 100.0);
        demand.set(c_jp, 1, 10.0);
        demand.set(c_jp, 2, 40.0);
        demand.set(c_in, 0, 10.0);
        demand.set(c_in, 1, 100.0);
        demand.set(c_in, 2, 40.0);
        (topo, cat, demand)
    }

    fn planner_world(
        topo: &Topology,
        cat: &ConfigCatalog,
        demand: &DemandMatrix,
    ) -> (ProvisionedCapacity, ScenarioData, ScenarioData) {
        let inputs = PlanningInputs::new(topo, cat, demand);
        let healthy = ScenarioData::compute(topo, FailureScenario::None);
        let prov = solve_scenario(&inputs, &healthy, None, &SolveOptions::default()).unwrap();
        // headroom so the DC-down re-plan stays feasible
        let capacity = ProvisionedCapacity {
            cores: prov.capacity.cores.iter().map(|c| c * 3.0 + 10.0).collect(),
            gbps: prov.capacity.gbps.iter().map(|g| g * 3.0 + 10.0).collect(),
        };
        let down = ScenarioData::compute(topo, FailureScenario::DcDown(DcId(0)));
        (capacity, healthy, down)
    }

    #[test]
    fn initial_plan_places_everything_within_capacity() {
        let (topo, cat, demand) = instance();
        let (capacity, healthy, down) = planner_world(&topo, &cat, &demand);
        let inputs = PlanningInputs::new(&topo, &cat, &demand);
        let mut planner = SlotPlanner::new(
            &inputs,
            &[healthy.clone(), down],
            &capacity,
            &SolveOptions::default(),
        );
        let report = planner.plan_initial(&healthy).unwrap();
        let plan = &report.artifact;
        assert_eq!(plan.epoch, 1);
        assert_eq!(report.copied_slots(), 0);
        assert_eq!(report.solved_slots(), 3);
        assert!((placed_fraction(&demand, &plan.shares) - 1.0).abs() < 1e-6);
        let usage = compute_usage(&topo, &healthy.routing, &cat, &demand, &plan.shares);
        assert!(usage.fits_within(&capacity, 1e-3));
        assert_eq!(plan.quotas.num_slots(), 3);
        assert_eq!(plan.provenance.built_at_slot, 0);
    }

    #[test]
    fn replan_is_incremental_and_warm() {
        let (topo, cat, demand) = instance();
        let (capacity, healthy, down) = planner_world(&topo, &cat, &demand);
        let inputs = PlanningInputs::new(&topo, &cat, &demand);
        let mut planner = SlotPlanner::new(
            &inputs,
            &[healthy.clone(), down.clone()],
            &capacity,
            &SolveOptions::default(),
        );
        let first = planner.plan_initial(&healthy).unwrap();
        // re-plan from slot 1 under the same scenario: slot 0 copied, the
        // rest re-solved warm to the same optimum
        let second = planner
            .replan_from(&first.artifact, 1, &healthy, None)
            .unwrap();
        assert_eq!(second.artifact.epoch, 2);
        assert_eq!(second.copied_slots(), 1);
        assert_eq!(second.solved_slots(), 2);
        assert_eq!(
            second.warm_hits(),
            2,
            "unchanged scenario must warm-start every re-solved slot: {:?}",
            second.slots
        );
        assert!((second.warm_hit_rate() - 1.0).abs() < 1e-12);
        assert_eq!(second.artifact.shares, first.artifact.shares);
        assert_eq!(second.artifact.quotas, first.artifact.quotas);
        assert!(PlanDelta::between(&first.artifact, &second.artifact).is_empty());
    }

    #[test]
    fn replan_under_dc_down_moves_quota_off_the_failed_dc() {
        let (topo, cat, demand) = instance();
        let (capacity, healthy, down) = planner_world(&topo, &cat, &demand);
        let inputs = PlanningInputs::new(&topo, &cat, &demand);
        let mut planner = SlotPlanner::new(
            &inputs,
            &[healthy.clone(), down.clone()],
            &capacity,
            &SolveOptions::default(),
        );
        let first = planner.plan_initial(&healthy).unwrap();
        let second = planner
            .replan_from(&first.artifact, 1, &down, None)
            .unwrap();
        // slots ≥ 1 place nothing at the failed DC
        for (key, entries) in second.artifact.quotas.iter() {
            if key.1 >= 1 {
                for &(dc, n) in entries {
                    assert!(
                        dc != DcId(0) || n == 0,
                        "slot {} still plans {} calls at the failed DC",
                        key.1,
                        n
                    );
                }
            }
        }
        let delta = PlanDelta::between(&first.artifact, &second.artifact);
        // the healthy plan used DC0 (it hosts JP's closest DC), so the
        // re-plan must move quota
        assert!(!delta.is_empty());
        assert!(delta.implied_migrations() > 0);
        // delta is sorted and only covers slots ≥ 1 (slot 0 was copied)
        assert!(delta.changes.iter().all(|c| c.slot >= 1));
    }

    #[test]
    fn tsv_round_trip_is_exact() {
        let (topo, cat, demand) = instance();
        let (capacity, healthy, down) = planner_world(&topo, &cat, &demand);
        let inputs = PlanningInputs::new(&topo, &cat, &demand);
        let mut planner = SlotPlanner::new(
            &inputs,
            &[healthy.clone(), down],
            &capacity,
            &SolveOptions::default(),
        );
        let report = planner.plan_initial(&healthy).unwrap();
        let tsv = report.artifact.to_tsv();
        let back = PlanArtifact::from_tsv(&tsv).unwrap();
        assert_eq!(back, *report.artifact);
        // quota entry order survives (tie-breaking-relevant)
        for (key, entries) in report.artifact.quotas.iter() {
            assert_eq!(back.quotas.get(key.0, key.1), entries);
        }
    }

    #[test]
    fn ndjson_round_trip_is_exact() {
        let (topo, cat, demand) = instance();
        let (capacity, healthy, down) = planner_world(&topo, &cat, &demand);
        let inputs = PlanningInputs::new(&topo, &cat, &demand);
        let mut planner = SlotPlanner::new(
            &inputs,
            &[healthy.clone(), down.clone()],
            &capacity,
            &SolveOptions::default(),
        );
        let first = planner.plan_initial(&healthy).unwrap();
        // exercise a scenario string with structure in it
        let report = planner
            .replan_from(&first.artifact, 1, &down, None)
            .unwrap();
        let nd = report.artifact.to_ndjson();
        let back = PlanArtifact::from_ndjson(&nd).unwrap();
        assert_eq!(back, *report.artifact);
        assert_eq!(back.provenance.scenario, format!("{:?}", down.scenario));
    }

    /// Regression: seed artifacts carry quotas with *no* shares; the export
    /// used to iterate shares pools only, so a round-trip silently dropped
    /// every quota. Quota-only pools now persist as `share`="-" rows.
    #[test]
    fn seed_artifact_round_trips_quota_only_pools() {
        let cfg = ConfigId(0);
        let slots = 4;
        let mut shares = AllocationShares::new(slots);
        let mut demand = DemandMatrix::zero(1, slots, 30, 0);
        for s in 0..slots {
            shares.set(cfg, s, vec![(DcId(0), 1.0)]);
            demand.set(cfg, s, 10.0);
        }
        let artifact = PlanArtifact::seed(PlannedQuotas::from_plan(&shares, &demand));
        assert_eq!(artifact.shares.iter().count(), 0, "seed drops shares");
        let nd_back = PlanArtifact::from_ndjson(&artifact.to_ndjson()).unwrap();
        assert_eq!(nd_back, artifact);
        let tsv_back = PlanArtifact::from_tsv(&artifact.to_tsv()).unwrap();
        assert_eq!(tsv_back, artifact);
        assert_eq!(nd_back.quotas.get(cfg, 0), &[(DcId(0), 10)]);
    }

    #[test]
    fn malformed_artifacts_are_rejected() {
        assert!(PlanArtifact::from_tsv("").is_err());
        assert!(PlanArtifact::from_tsv("not a plan\n").is_err());
        assert!(PlanArtifact::from_tsv("#plan\tepoch=1\n").is_err());
        assert!(PlanArtifact::from_ndjson("").is_err());
        assert!(PlanArtifact::from_ndjson("{\"plan\":{\"epoch\":1}}\n").is_err());
        // bad row arity
        let bad = "#plan\tepoch=1\tslot_minutes=30\tstart_minute=0\tnum_slots=1\t\
                   built_at_slot=0\tsolve_wall_ns=0\twarm_slots=0\tcold_slots=0\t\
                   copied_slots=0\ttotal_iterations=0\tscenario=None\n\
                   config\tslot\tdc\tshare\tquota\n0\t0\t0\n";
        assert!(PlanArtifact::from_tsv(bad).is_err());
    }

    #[test]
    fn delta_between_identical_plans_is_empty() {
        let mut shares = AllocationShares::new(1);
        shares.set(ConfigId(0), 0, vec![(DcId(0), 0.5), (DcId(1), 0.5)]);
        let mut demand = DemandMatrix::zero(1, 1, 30, 0);
        demand.set(ConfigId(0), 0, 10.0);
        let quotas = PlannedQuotas::from_plan(&shares, &demand);
        let a = PlanArtifact::new(1, shares.clone(), quotas.clone(), PlanProvenance::default());
        let b = a.clone().with_epoch(2);
        assert!(PlanDelta::between(&a, &b).is_empty());
        assert_eq!(PlanDelta::between(&a, &b).implied_migrations(), 0);
        // shrink one entry by 3 → 3 implied migrations
        let mut shares2 = AllocationShares::new(1);
        shares2.set(ConfigId(0), 0, vec![(DcId(0), 0.2), (DcId(1), 0.8)]);
        let quotas2 = PlannedQuotas::from_plan(&shares2, &demand);
        let c = PlanArtifact::new(3, shares2, quotas2, PlanProvenance::default());
        let d = PlanDelta::between(&a, &c);
        assert_eq!(d.len(), 2);
        assert_eq!(d.implied_migrations(), 3);
    }
}
