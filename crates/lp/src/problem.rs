//! Linear-program model: variables with bounds, sparse constraints, a linear
//! objective to **minimize**.
//!
//! The model is solver-agnostic; see [`crate::dense::DenseSimplex`] and
//! [`crate::revised::RevisedSimplex`] for the two engines that consume it.

use std::fmt;

/// Handle to a decision variable inside one [`LpProblem`].
///
/// Handles are plain indices; using a handle from one problem with another
/// problem is a logic error and panics at solve time if out of range.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Var(pub(crate) u32);

impl Var {
    /// Index of the variable in problem order (the order of `add_var` calls).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Constraint relation.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Relation {
    /// `Σ aᵢxᵢ ≤ b`
    Le,
    /// `Σ aᵢxᵢ ≥ b`
    Ge,
    /// `Σ aᵢxᵢ = b`
    Eq,
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Relation::Le => "<=",
            Relation::Ge => ">=",
            Relation::Eq => "=",
        })
    }
}

/// A single linear constraint in sparse form.
#[derive(Clone, Debug)]
pub struct Constraint {
    /// Sparse coefficient list. Duplicate variables are summed.
    pub coeffs: Vec<(Var, f64)>,
    /// Relation between the linear form and `rhs`.
    pub rel: Relation,
    /// Right-hand side.
    pub rhs: f64,
}

impl Constraint {
    /// `Σ coeffs ≤ rhs`
    pub fn le(coeffs: Vec<(Var, f64)>, rhs: f64) -> Self {
        Constraint {
            coeffs,
            rel: Relation::Le,
            rhs,
        }
    }

    /// `Σ coeffs ≥ rhs`
    pub fn ge(coeffs: Vec<(Var, f64)>, rhs: f64) -> Self {
        Constraint {
            coeffs,
            rel: Relation::Ge,
            rhs,
        }
    }

    /// `Σ coeffs = rhs`
    pub fn eq(coeffs: Vec<(Var, f64)>, rhs: f64) -> Self {
        Constraint {
            coeffs,
            rel: Relation::Eq,
            rhs,
        }
    }
}

/// A linear program `minimize cᵀx  s.t.  A x {≤,≥,=} b,  l ≤ x ≤ u`.
///
/// # Example
/// ```
/// use sb_lp::{LpProblem, Constraint, DenseSimplex, Solver};
///
/// // minimize -x - 2y  s.t.  x + y <= 4, y <= 3, x,y >= 0
/// let mut lp = LpProblem::new();
/// let x = lp.add_var("x", -1.0, 0.0, f64::INFINITY);
/// let y = lp.add_var("y", -2.0, 0.0, f64::INFINITY);
/// lp.add_constraint(Constraint::le(vec![(x, 1.0), (y, 1.0)], 4.0));
/// lp.add_constraint(Constraint::le(vec![(y, 1.0)], 3.0));
/// let sol = DenseSimplex::new().solve(&lp).unwrap();
/// assert!((sol.objective() - (-7.0)).abs() < 1e-9);
/// assert!((sol.value(x) - 1.0).abs() < 1e-9);
/// assert!((sol.value(y) - 3.0).abs() < 1e-9);
/// ```
#[derive(Clone, Debug, Default)]
pub struct LpProblem {
    pub(crate) names: Vec<String>,
    pub(crate) cost: Vec<f64>,
    pub(crate) lower: Vec<f64>,
    pub(crate) upper: Vec<f64>,
    pub(crate) rows: Vec<Constraint>,
}

impl LpProblem {
    /// Empty minimization problem.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a variable with objective coefficient `cost` and bounds
    /// `[lower, upper]`. `lower` may be `f64::NEG_INFINITY` (free below) and
    /// `upper` may be `f64::INFINITY`.
    ///
    /// Panics if `lower > upper` or either bound is NaN.
    pub fn add_var(&mut self, name: impl Into<String>, cost: f64, lower: f64, upper: f64) -> Var {
        assert!(
            !lower.is_nan() && !upper.is_nan(),
            "variable bounds must not be NaN"
        );
        assert!(lower <= upper, "variable lower bound exceeds upper bound");
        assert!(
            self.names.len() < u32::MAX as usize,
            "too many variables in one LpProblem"
        );
        let v = Var(self.names.len() as u32);
        self.names.push(name.into());
        self.cost.push(cost);
        self.lower.push(lower);
        self.upper.push(upper);
        v
    }

    /// Convenience: non-negative continuous variable with no upper bound.
    pub fn add_nonneg(&mut self, name: impl Into<String>, cost: f64) -> Var {
        self.add_var(name, cost, 0.0, f64::INFINITY)
    }

    /// Append a constraint; returns its row index.
    ///
    /// # Panics
    ///
    /// Panics if the constraint references a [`Var`] that was not created by
    /// `add_var` on **this** problem, or if `c.rhs` is NaN. Both are logic
    /// errors in the calling code (handles are only obtainable from
    /// `add_var`, and a NaN rhs silently corrupts every simplex ratio test),
    /// so they fail fast here rather than during the solve. Data-driven
    /// callers building constraints from external input should validate the
    /// rhs before calling.
    pub fn add_constraint(&mut self, c: Constraint) -> usize {
        for &(v, _) in &c.coeffs {
            assert!(
                (v.0 as usize) < self.names.len(),
                "constraint references unknown variable"
            );
        }
        assert!(!c.rhs.is_nan(), "constraint rhs must not be NaN");
        self.rows.push(c);
        self.rows.len() - 1
    }

    /// Shorthand for `add_constraint(Constraint::le(..))`.
    pub fn add_le(&mut self, coeffs: Vec<(Var, f64)>, rhs: f64) -> usize {
        self.add_constraint(Constraint::le(coeffs, rhs))
    }

    /// Shorthand for `add_constraint(Constraint::ge(..))`.
    pub fn add_ge(&mut self, coeffs: Vec<(Var, f64)>, rhs: f64) -> usize {
        self.add_constraint(Constraint::ge(coeffs, rhs))
    }

    /// Shorthand for `add_constraint(Constraint::eq(..))`.
    pub fn add_eq(&mut self, coeffs: Vec<(Var, f64)>, rhs: f64) -> usize {
        self.add_constraint(Constraint::eq(coeffs, rhs))
    }

    /// Replace the upper bound of `v` (the lower bound is unchanged).
    ///
    /// This is the patch entry point for scenario sweeps: forcing a variable
    /// to `0` (upper = 0) removes it from the model without disturbing the
    /// column layout, so a [`Basis`] exported from a previous solve stays
    /// structurally valid. Panics if the new bound is NaN or below the lower
    /// bound.
    pub fn set_var_upper(&mut self, v: Var, upper: f64) {
        assert!(!upper.is_nan(), "variable bounds must not be NaN");
        assert!(
            self.lower[v.index()] <= upper,
            "variable lower bound exceeds upper bound"
        );
        self.upper[v.index()] = upper;
    }

    /// Replace the objective coefficient of `v`.
    pub fn set_var_cost(&mut self, v: Var, cost: f64) {
        assert!(!cost.is_nan(), "objective coefficient must not be NaN");
        self.cost[v.index()] = cost;
    }

    /// Replace the right-hand side of constraint `row`. Panics on NaN or an
    /// out-of-range row.
    pub fn set_rhs(&mut self, row: usize, rhs: f64) {
        assert!(!rhs.is_nan(), "constraint rhs must not be NaN");
        self.rows[row].rhs = rhs;
    }

    /// Replace the coefficient list of constraint `row` (relation and rhs are
    /// kept). Panics if a coefficient references an unknown variable.
    pub fn set_row_coeffs(&mut self, row: usize, coeffs: Vec<(Var, f64)>) {
        for &(v, _) in &coeffs {
            assert!(
                (v.0 as usize) < self.names.len(),
                "constraint references unknown variable"
            );
        }
        self.rows[row].coeffs = coeffs;
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.names.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.rows.len()
    }

    /// All constraints, in insertion order.
    pub fn rows(&self) -> &[Constraint] {
        &self.rows
    }

    /// Variable name (as passed to `add_var`).
    pub fn var_name(&self, v: Var) -> &str {
        &self.names[v.index()]
    }

    /// Objective coefficient of `v`.
    pub fn var_cost(&self, v: Var) -> f64 {
        self.cost[v.index()]
    }

    /// Bounds `[lower, upper]` of `v`.
    pub fn var_bounds(&self, v: Var) -> (f64, f64) {
        (self.lower[v.index()], self.upper[v.index()])
    }

    /// Iterate over all variable handles in index order.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        (0..self.names.len() as u32).map(Var)
    }

    /// Evaluate the objective at a full assignment (one value per variable).
    pub fn objective_at(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.num_vars());
        self.cost.iter().zip(x).map(|(c, v)| c * v).sum()
    }

    /// Maximum constraint violation of `x` (0.0 when feasible), considering
    /// rows and bounds. Useful for tests and post-solve verification.
    pub fn max_violation(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.num_vars());
        let mut worst = 0.0f64;
        for (j, &v) in x.iter().enumerate() {
            worst = worst.max(self.lower[j] - v).max(v - self.upper[j]);
        }
        for row in &self.rows {
            let lhs: f64 = row.coeffs.iter().map(|&(v, a)| a * x[v.index()]).sum();
            let viol = match row.rel {
                Relation::Le => lhs - row.rhs,
                Relation::Ge => row.rhs - lhs,
                Relation::Eq => (lhs - row.rhs).abs(),
            };
            worst = worst.max(viol);
        }
        worst.max(0.0)
    }
}

/// Why a solve did not return an optimal solution.
#[derive(Clone, Debug, PartialEq)]
pub enum LpError {
    /// No point satisfies all constraints and bounds.
    Infeasible,
    /// The objective can be driven to −∞.
    Unbounded,
    /// The iteration budget was exhausted (numerical trouble or a budget set
    /// too low for the problem size).
    IterationLimit,
    /// The wall-clock budget was exhausted before reaching the optimum.
    TimeLimit,
    /// The model was malformed (e.g. empty, or NaN coefficients).
    BadModel(String),
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "LP is infeasible"),
            LpError::Unbounded => write!(f, "LP is unbounded below"),
            LpError::IterationLimit => write!(f, "simplex iteration limit reached"),
            LpError::TimeLimit => write!(f, "simplex time budget exhausted"),
            LpError::BadModel(m) => write!(f, "malformed LP model: {m}"),
        }
    }
}

impl std::error::Error for LpError {}

/// Status of one standard-form column in a [`Basis`].
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum VarStatus {
    /// In the basis.
    Basic,
    /// Nonbasic at its lower bound (0 in standard form).
    AtLower,
    /// Nonbasic at its (finite) upper bound.
    AtUpper,
}

/// A simplex basis snapshot: the basic column per row plus the bound status
/// of every column, in the engine's internal standard-form column space.
///
/// Export one from a [`Solution`] via [`Solution::basis`] and inject it into
/// a later solve of a *structurally identical* problem (same variables in
/// the same order, same constraint rows/relations — bounds, costs, rhs and
/// coefficients may differ) via [`crate::RevisedSimplex::solve_with_basis`].
/// The engine validates the basis before trusting it: a singular or
/// primal-infeasible warm basis silently falls back to a cold phase-1 start,
/// so a stale basis can cost time but never correctness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Basis {
    /// Basic column per row. Public so callers can persist or transform a
    /// snapshot; the engine re-validates (and repairs) any injected basis,
    /// so arbitrary contents degrade a solve to a cold start, never corrupt
    /// it.
    pub basic: Vec<usize>,
    /// Status per standard-form column.
    pub status: Vec<VarStatus>,
}

impl Basis {
    /// Number of rows (basic columns) in the snapshot.
    pub fn num_rows(&self) -> usize {
        self.basic.len()
    }

    /// Number of standard-form columns covered by the snapshot.
    pub fn num_cols(&self) -> usize {
        self.status.len()
    }
}

/// Which rung of the guarded solve ladder produced a solution (see
/// [`crate::GuardedSimplex`]).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum SolveRung {
    /// The primary engine, started cold (phase 1 + phase 2).
    #[default]
    ColdPrimary,
    /// The primary engine, warm-started from an injected basis (phase 2
    /// only).
    WarmPrimary,
    /// The primary engine, re-run cold after a warm-started attempt failed
    /// for a recoverable reason.
    ColdRetry,
    /// The dense tableau fallback engine.
    DenseFallback,
}

impl std::fmt::Display for SolveRung {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SolveRung::ColdPrimary => "cold_primary",
            SolveRung::WarmPrimary => "warm_primary",
            SolveRung::ColdRetry => "cold_retry",
            SolveRung::DenseFallback => "dense_fallback",
        })
    }
}

/// Per-solve engine statistics: how the simplex got to the optimum.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SolveStats {
    /// Iterations spent driving artificials out (0 when no phase 1 ran).
    pub phase1_iterations: u64,
    /// Iterations spent optimizing the real objective.
    pub phase2_iterations: u64,
    /// Number of from-scratch basis refactorizations.
    pub refactorizations: u64,
    /// Wall-clock time of the whole solve.
    pub wall: std::time::Duration,
    /// Whether an injected warm basis was accepted and phase 1 skipped.
    pub warm_started: bool,
    /// Estimated phase-1 work the warm start avoided: the number of rows
    /// whose cold start would have begun on an artificial column (each needs
    /// at least one phase-1 pivot to leave the basis). 0 on cold solves.
    pub phase1_iterations_saved: u64,
    /// Pricing passes performed (one per simplex iteration attempt).
    pub pricing_scans: u64,
    /// Reduced costs evaluated across all pricing passes. Partial pricing
    /// exists to shrink this number.
    pub pricing_cols_scanned: u64,
    /// Pricing passes that scanned every column (always all of them under
    /// Dantzig pricing; periodic under partial pricing).
    pub full_pricing_sweeps: u64,
    /// Which solve-ladder rung produced this solution.
    pub rung: SolveRung,
    /// Nonzeros held by the final basis factorization (`nnz(L)+nnz(U)+m`
    /// plus the eta file for the sparse backend; `m²` for the dense
    /// inverse; 0 for the dense tableau engine, which keeps no basis).
    pub basis_nnz: u64,
    /// Fill-in ratio of the final factorization: factorization nonzeros over
    /// the nonzeros of the basis columns it was built from (≈1 means the LU
    /// caused no fill; the dense inverse reports `m²/nnz(B)`).
    pub fill_ratio: f64,
    /// Basis updates (product-form etas / rank-1 inverse updates) applied
    /// across the whole solve.
    pub eta_updates: u64,
    /// Times devex pricing reset its reference weights to all-ones after a
    /// weight overflowed.
    pub devex_resets: u64,
}

impl SolveStats {
    /// Total simplex iterations across both phases.
    pub fn total_iterations(&self) -> u64 {
        self.phase1_iterations + self.phase2_iterations
    }
}

/// An optimal solution.
#[derive(Clone, Debug)]
pub struct Solution {
    pub(crate) values: Vec<f64>,
    pub(crate) objective: f64,
    /// Dual values per constraint row, when the engine produces them.
    pub(crate) duals: Option<Vec<f64>>,
    /// Simplex iterations spent.
    pub(crate) iterations: u64,
    /// Detailed engine statistics.
    pub(crate) stats: SolveStats,
    /// Final basis, when the engine maintains one (the revised engine does,
    /// the dense tableau does not).
    pub(crate) basis: Option<Basis>,
}

impl Solution {
    /// Optimal value of variable `v`.
    pub fn value(&self, v: Var) -> f64 {
        self.values[v.index()]
    }

    /// Full primal assignment in variable index order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Optimal objective value.
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Dual value (shadow price) of constraint `row`, if the engine exposes
    /// duals. Signs follow the minimization convention: for a binding `≤` row
    /// the dual is ≤ 0 contribution-wise as `y·b` reconstructs the objective.
    pub fn dual(&self, row: usize) -> Option<f64> {
        self.duals.as_ref().map(|d| d[row])
    }

    /// Simplex iterations used.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Detailed engine statistics (phase split, refactorizations, wall time).
    pub fn stats(&self) -> SolveStats {
        self.stats
    }

    /// The optimal basis, exportable for warm-starting a structurally
    /// identical problem. `None` when the engine does not maintain one
    /// (e.g. [`crate::DenseSimplex`]).
    pub fn basis(&self) -> Option<&Basis> {
        self.basis.as_ref()
    }
}

/// A linear-programming engine.
pub trait Solver {
    /// Solve to optimality or report why that is impossible.
    fn solve(&self, lp: &LpProblem) -> Result<Solution, LpError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_inspect() {
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", 2.0, 0.0, 5.0);
        let y = lp.add_nonneg("y", -1.0);
        assert_eq!(lp.num_vars(), 2);
        assert_eq!(lp.var_name(x), "x");
        assert_eq!(lp.var_cost(y), -1.0);
        assert_eq!(lp.var_bounds(x), (0.0, 5.0));
        let r = lp.add_le(vec![(x, 1.0), (y, 2.0)], 10.0);
        assert_eq!(r, 0);
        assert_eq!(lp.num_constraints(), 1);
    }

    #[test]
    fn objective_and_violation() {
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", 1.0, 0.0, 2.0);
        let y = lp.add_var("y", 3.0, 0.0, f64::INFINITY);
        lp.add_ge(vec![(x, 1.0), (y, 1.0)], 4.0);
        assert_eq!(lp.objective_at(&[1.0, 2.0]), 7.0);
        // x=1, y=2 violates x+y>=4 by 1
        assert!((lp.max_violation(&[1.0, 2.0]) - 1.0).abs() < 1e-12);
        // feasible point
        assert_eq!(lp.max_violation(&[2.0, 2.0]), 0.0);
        // bound violation
        assert!((lp.max_violation(&[3.0, 4.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "lower bound exceeds")]
    fn bad_bounds_panic() {
        let mut lp = LpProblem::new();
        lp.add_var("x", 0.0, 1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn foreign_var_panics() {
        let mut lp = LpProblem::new();
        lp.add_var("x", 0.0, 0.0, 1.0);
        lp.add_constraint(Constraint::le(vec![(Var(7), 1.0)], 1.0));
    }

    #[test]
    fn duplicate_coeffs_allowed_in_model() {
        let mut lp = LpProblem::new();
        let x = lp.add_nonneg("x", 1.0);
        // duplicates are legal; engines must sum them
        lp.add_le(vec![(x, 1.0), (x, 1.0)], 4.0);
        assert_eq!(lp.num_constraints(), 1);
    }
}
