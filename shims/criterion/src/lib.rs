//! Offline, API-compatible subset of the `criterion` benchmark harness.
//!
//! The build environment has no network access to crates.io, so this shim
//! reproduces the surface the workspace benches use: `Criterion`,
//! `benchmark_group` / `sample_size` / `bench_function` / `bench_with_input`
//! / `finish`, `BenchmarkId::new`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros. Timing is a simple
//! warmup + N timed samples of the closure, reporting median per-iteration
//! time. `--bench` and test-runner flags passed by cargo are accepted and
//! ignored; the binaries also honor `--quick`-style extra args upstream.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { name: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

/// Passed to the benchmark closure; `iter` runs and times the payload.
pub struct Bencher {
    samples: usize,
    per_iter: Duration,
    iters_done: u64,
}

impl Bencher {
    /// Run `f` repeatedly: brief warmup, then timed samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup + calibration: find an iteration count that takes ~5ms.
        let mut batch: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let el = t0.elapsed();
            if el >= Duration::from_millis(5) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        let mut per: Vec<Duration> = Vec::with_capacity(self.samples);
        let mut iters = 0u64;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            per.push(t0.elapsed() / batch as u32);
            iters += batch;
        }
        per.sort();
        self.per_iter = per[per.len() / 2];
        self.iters_done = iters;
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Override the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    /// Soft target for total measurement time (accepted, unused).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let mut b = Bencher {
            samples: self.criterion.sample_size,
            per_iter: Duration::ZERO,
            iters_done: 0,
        };
        f(&mut b);
        println!(
            "{:<50} time: [{}]  ({} iters)",
            format!("{}/{}", self.name, id),
            fmt_duration(b.per_iter),
            b.iters_done
        );
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        self.run(id.into().to_string(), f);
        self
    }

    /// Benchmark a closure receiving `input` under `id`.
    pub fn bench_with_input<I, IdT, F>(&mut self, id: IdT, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        IdT: Into<BenchmarkId>,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into().to_string(), |b| f(b, input));
        self
    }

    /// Finish the group (prints nothing extra in the shim).
    pub fn finish(self) {}
}

/// Benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Apply command-line configuration (flags accepted and ignored).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Override the default sample count.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Start a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            name,
            criterion: self,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            per_iter: Duration::ZERO,
            iters_done: 0,
        };
        f(&mut b);
        println!(
            "{:<50} time: [{}]  ({} iters)",
            name,
            fmt_duration(b.per_iter),
            b.iters_done
        );
        self
    }

    /// Final summary hook (no-op in the shim).
    pub fn final_summary(&mut self) {}
}

/// Define a benchmark group function compatible with `criterion_main!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running each `criterion_group!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_something() {
        let mut c = Criterion::default().sample_size(3);
        let mut g = c.benchmark_group("shim");
        let mut acc = 0u64;
        g.bench_function("sum", |b| {
            b.iter(|| {
                acc = acc.wrapping_add((0..100u64).sum::<u64>());
            })
        });
        g.bench_with_input(BenchmarkId::new("with_input", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        g.finish();
        assert!(acc > 0);
    }
}
