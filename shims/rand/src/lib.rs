//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of `rand 0.8` it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen`, `gen_range`, and `gen_bool`.
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — not the same
//! stream as upstream `StdRng` (which is unspecified anyway), but a
//! high-quality, deterministic-per-seed stream, which is all the
//! workspace relies on.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from their "standard" distribution
/// (`[0, 1)` for floats, full range for integers).
pub trait StandardSample: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range. Panics on an empty range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128).wrapping_sub(lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as StandardSample>::sample(rng); // [0, 1)
                let v = self.start + (self.end - self.start) * unit;
                // fp rounding can land exactly on the (excluded) upper bound
                if v < self.end { v } else { self.start }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as StandardSample>::sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// User-facing extension methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let x = splitmix64(&mut state);
            for (b, s) in chunk.iter_mut().zip(x.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named RNG implementations.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard seeded RNG (xoshiro256++ core).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // avoid the all-zero state xoshiro cannot leave
            if s == [0, 0, 0, 0] {
                let mut sm = 0xDEAD_BEEF_u64;
                for v in s.iter_mut() {
                    *v = splitmix64(&mut sm);
                }
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.gen_range(0..u64::MAX)).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen_range(0..u64::MAX)).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen_range(0..u64::MAX)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..=40usize);
            assert!((3..=40).contains(&v));
            let v = rng.gen_range(-6i8..7);
            assert!((-6..7).contains(&v));
            let f = rng.gen_range(0.75..0.98f64);
            assert!((0.75..0.98).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            let p = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(p > 0.0 && p < 1.0);
        }
    }

    #[test]
    fn unit_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn works_through_unsized_ref() {
        fn take<R: super::Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(1);
        let _ = take(&mut rng);
    }
}
