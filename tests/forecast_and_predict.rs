//! Forecasting and prediction integration: the Holt–Winters pipeline tracks
//! the synthetic demand process months ahead, and the §8 MOMC predictor
//! beats the last-instance baseline on generated meeting series.

use switchboard::forecast::{fit_auto, mae, peak_normalized, rmse};
use switchboard::predict::{evaluate, ParticipantHistory, PredictorParams, SeriesHistory};
use switchboard::workload::series::{generate_series, SeriesParams};
use switchboard::workload::{ConfigId, Generator, UniverseParams, WorkloadParams};

#[test]
fn per_config_forecast_accuracy() {
    let topo = switchboard::net::presets::apac();
    let params = WorkloadParams {
        universe: UniverseParams {
            num_configs: 200,
            seed: 44,
            ..Default::default()
        },
        daily_calls: 8_000.0,
        slot_minutes: 120,
        seed: 44,
        ..Default::default()
    };
    let generator = Generator::new(&topo, params);
    let season = generator.slots_per_day() * 7;
    // top-weight config
    let best = generator
        .universe()
        .specs
        .iter()
        .max_by(|a, b| a.weight.total_cmp(&b.weight))
        .unwrap()
        .id;
    let history = generator.sample_config_series(best, 0, 9 * 30, 1);
    let truth = generator.sample_config_series(best, 9 * 30, 30, 2);
    let model = fit_auto(&history, season).expect("fit");
    let forecast = model.forecast(truth.len());
    let nrmse = peak_normalized(rmse(&forecast, &truth), &truth).unwrap();
    let nmae = peak_normalized(mae(&forecast, &truth), &truth).unwrap();
    // the paper's real-data medians are 13% / 8%; synthetic data must do at
    // least that well
    assert!(nrmse < 0.15, "normalized RMSE {nrmse}");
    assert!(nmae < 0.10, "normalized MAE {nmae}");
}

#[test]
fn momc_beats_last_instance_baseline_on_workload_series() {
    let topo = switchboard::net::presets::apac();
    let (series, occurrences) = generate_series(
        &topo,
        &SeriesParams {
            num_series: 150,
            occurrences: 10,
            max_roster: 40,
            seed: 5,
        },
    );
    let histories: Vec<SeriesHistory> = series
        .iter()
        .map(|s| SeriesHistory {
            participants: (0..s.roster_size())
                .map(|i| ParticipantHistory {
                    country: s.countries[i].0,
                    attendance: occurrences
                        .iter()
                        .filter(|o| o.series == s.id)
                        .map(|o| o.attended[i])
                        .collect(),
                })
                .collect(),
        })
        .collect();
    let eval = evaluate(&histories, &PredictorParams::default());
    assert_eq!(eval.series, 150);
    assert!(
        eval.rmse < eval.baseline_rmse,
        "MOMC RMSE {} must beat baseline {}",
        eval.rmse,
        eval.baseline_rmse
    );
    assert!(eval.mae < eval.baseline_mae);
}

#[test]
fn forecast_feeds_provisioning_demand() {
    // the shapes flow: per-config forecasts reassemble into a demand matrix
    // the planner accepts
    use switchboard::workload::DemandMatrix;
    let topo = switchboard::net::presets::apac();
    let params = WorkloadParams {
        universe: UniverseParams {
            num_configs: 100,
            seed: 46,
            ..Default::default()
        },
        daily_calls: 2_000.0,
        slot_minutes: 120,
        seed: 46,
        ..Default::default()
    };
    let generator = Generator::new(&topo, params);
    let season = generator.slots_per_day() * 7;
    let horizon_slots = generator.slots_per_day() * 7;
    let mut forecast = DemandMatrix::zero(
        generator.universe().catalog.len(),
        horizon_slots,
        120,
        9 * 30 * 24 * 60,
    );
    for raw in 0..10u32 {
        let id = ConfigId(raw);
        let hist = generator.sample_config_series(id, 0, 9 * 30, 3);
        if let Ok(m) = fit_auto(&hist, season) {
            for (s, v) in m.forecast(horizon_slots).into_iter().enumerate() {
                forecast.set(id, s, v);
            }
        }
    }
    assert!(forecast.total_calls() > 0.0);
    let env = forecast.envelope_day(generator.slots_per_day());
    assert_eq!(env.num_slots(), generator.slots_per_day());
}
