//! # sb-obs — observability layer for the Switchboard workspace
//!
//! A small, dependency-light metrics substrate (atomics + `parking_lot`)
//! giving every hot path a way to record what it did without paying for it
//! when nobody is looking:
//!
//! * [`MetricsRegistry`] — a named collection of [`Counter`]s, [`Gauge`]s,
//!   log-bucketed [`Histogram`]s, and structured row [`Table`]s.
//! * [`ScopedTimer`] — RAII wall-clock timing into a histogram.
//! * [`MetricsRegistry::dump_to_path`] — run report as TSV or NDJSON
//!   (picked by file extension), the format consumed by the bench
//!   binaries' `--metrics <path>` flag.
//!
//! ## Enablement model
//!
//! Each registry carries one shared `AtomicBool`. Handles (counters,
//! histograms, …) clone an `Arc` to it, so a disabled registry reduces
//! every `inc`/`record` to a single relaxed load and a predictable branch,
//! and timers skip the `Instant::now()` syscall entirely — that is what
//! keeps the disabled-mode overhead under 1% on the Criterion benches.
//!
//! The process-wide registry [`global()`] starts **disabled**; library code
//! instruments unconditionally against it and callers opt in with
//! `sb_obs::global().set_enabled(true)` (the bench binaries do this when
//! `--metrics` is passed). Fresh registries from [`MetricsRegistry::new`]
//! start enabled, which is what tests want.
//!
//! ```
//! let reg = sb_obs::MetricsRegistry::new();
//! let solves = reg.counter("lp.solves");
//! let wall = reg.histogram("lp.wall_ns");
//! {
//!     let _t = wall.start_timer();
//!     solves.inc();
//! } // timer records on drop
//! assert_eq!(solves.get(), 1);
//! assert_eq!(wall.count(), 1);
//! ```

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Number of log2 buckets in a [`Histogram`] (covers the full `u64` range).
pub const HISTOGRAM_BUCKETS: usize = 64;

// ---------------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------------

/// A monotonically increasing `u64` metric. Cheap to clone; all clones
/// share the same cell and the owning registry's enabled flag.
#[derive(Clone)]
pub struct Counter {
    value: Arc<AtomicU64>,
    enabled: Arc<AtomicBool>,
}

impl Counter {
    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

// ---------------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------------

/// A last-value-wins `f64` metric (stored as bits in an `AtomicU64`).
#[derive(Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
    enabled: Arc<AtomicBool>,
}

impl Gauge {
    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: f64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.bits.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

impl fmt::Debug for Gauge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gauge({})", self.get())
    }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// A lock-free log2-bucketed histogram of `u64` samples (typically
/// nanoseconds). Exact `count`/`sum`/`min`/`max`; percentiles are
/// bucket-upper-bound approximations (≤2× the true value).
#[derive(Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
    enabled: Arc<AtomicBool>,
}

#[inline]
fn bucket_of(v: u64) -> usize {
    (63 - v.max(1).leading_zeros()) as usize
}

impl Histogram {
    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let c = &self.core;
        c.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(v, Ordering::Relaxed);
        c.min.fetch_min(v, Ordering::Relaxed);
        c.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a duration as nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        if self.enabled.load(Ordering::Relaxed) {
            self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
        }
    }

    /// Start an RAII timer that records elapsed wall time (ns) into this
    /// histogram when dropped. When the registry is disabled the timer is
    /// inert and never reads the clock.
    #[inline]
    pub fn start_timer(&self) -> ScopedTimer {
        // the disabled path must stay branch-plus-load cheap: no Arc clones
        let inner = if self.enabled.load(Ordering::Relaxed) {
            Some((self.clone(), Instant::now()))
        } else {
            None
        };
        ScopedTimer { inner }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.core.sum.load(Ordering::Relaxed)
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count() > 0).then(|| self.core.min.load(Ordering::Relaxed))
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count() > 0).then(|| self.core.max.load(Ordering::Relaxed))
    }

    /// Mean sample, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Approximate `q`-quantile (`0.0..=1.0`): the upper bound of the
    /// bucket holding that rank, clamped to the observed max.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.core.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                let upper = if i + 1 >= 64 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                return upper.min(self.core.max.load(Ordering::Relaxed));
            }
        }
        self.core.max.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Histogram(count={}, mean={:.1}, max={:?})",
            self.count(),
            self.mean(),
            self.max()
        )
    }
}

/// RAII wall-clock timer; see [`Histogram::start_timer`].
pub struct ScopedTimer {
    inner: Option<(Histogram, Instant)>,
}

impl ScopedTimer {
    /// Stop early and return the elapsed time (`None` when the registry
    /// was disabled at start). Consumes the timer; nothing more is
    /// recorded on drop.
    pub fn stop(mut self) -> Option<Duration> {
        self.inner.take().map(|(hist, s)| {
            let d = s.elapsed();
            hist.record_duration(d);
            d
        })
    }
}

impl Drop for ScopedTimer {
    fn drop(&mut self) {
        if let Some((hist, s)) = self.inner.take() {
            hist.record_duration(s.elapsed());
        }
    }
}

// ---------------------------------------------------------------------------
// Tables (structured rows)
// ---------------------------------------------------------------------------

/// A single cell of a structured report row.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Unsigned integer cell.
    U64(u64),
    /// Signed integer cell.
    I64(i64),
    /// Floating-point cell.
    F64(f64),
    /// Text cell.
    Str(String),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Str(s) => f.write_str(s),
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

struct TableCore {
    columns: Vec<String>,
    rows: Mutex<Vec<Vec<Value>>>,
}

/// A named table of structured rows with a fixed column schema, e.g. one
/// row per provisioning scenario. Cheap to clone; clones share rows.
#[derive(Clone)]
pub struct Table {
    core: Arc<TableCore>,
    enabled: Arc<AtomicBool>,
}

impl Table {
    /// A free-standing, always-enabled table not attached to any registry.
    /// This is the writer used for single-table artifact exports (e.g.
    /// persisted allocation plans), where rows must be recorded regardless
    /// of the global registry's enablement.
    pub fn standalone(columns: &[&str]) -> Table {
        Table {
            core: Arc::new(TableCore {
                columns: columns.iter().map(|c| c.to_string()).collect(),
                rows: Mutex::new(Vec::new()),
            }),
            enabled: Arc::new(AtomicBool::new(true)),
        }
    }

    /// Render this table alone as TSV: a header line of column names, then
    /// one tab-separated line per row.
    pub fn render_tsv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.core.columns.join("\t"));
        out.push('\n');
        for row in self.core.rows.lock().iter() {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            out.push_str(&cells.join("\t"));
            out.push('\n');
        }
        out
    }

    /// Render this table alone as NDJSON: one `{"col":value,…}` object per
    /// row, columns in schema order.
    pub fn render_ndjson(&self) -> String {
        let mut out = String::new();
        for row in self.core.rows.lock().iter() {
            let mut line = String::from("{");
            for (i, (col, v)) in self.core.columns.iter().zip(row).enumerate() {
                if i > 0 {
                    line.push(',');
                }
                line.push_str(&json_str(col));
                line.push(':');
                match v {
                    Value::U64(x) => line.push_str(&x.to_string()),
                    Value::I64(x) => line.push_str(&x.to_string()),
                    Value::F64(x) => line.push_str(&json_f64(*x)),
                    Value::Str(s) => line.push_str(&json_str(s)),
                }
            }
            line.push('}');
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// Append a row. Panics if the row arity does not match the schema —
    /// schemas are fixed at [`MetricsRegistry::table`] time and rows are
    /// produced by instrumentation code, so a mismatch is a bug.
    pub fn push(&self, row: Vec<Value>) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        assert_eq!(
            row.len(),
            self.core.columns.len(),
            "row arity {} != schema arity {} for table columns {:?}",
            row.len(),
            self.core.columns.len(),
            self.core.columns
        );
        self.core.rows.lock().push(row);
    }

    /// Column names.
    pub fn columns(&self) -> &[String] {
        &self.core.columns
    }

    /// Snapshot of all rows.
    pub fn rows(&self) -> Vec<Vec<Value>> {
        self.core.rows.lock().clone()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.core.rows.lock().len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Debug for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Table({:?}, {} rows)", self.core.columns, self.len())
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
    tables: BTreeMap<String, Table>,
}

/// A named collection of metrics sharing one enable flag.
///
/// Handle lookup (`counter("x")`) takes a lock; call sites cache handles
/// (e.g. in a `OnceLock`) so the hot path touches only atomics.
pub struct MetricsRegistry {
    enabled: Arc<AtomicBool>,
    inner: Mutex<RegistryInner>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// A fresh, **enabled** registry.
    pub fn new() -> Self {
        Self::with_enabled(true)
    }

    /// A fresh registry with the given initial enablement.
    pub fn with_enabled(enabled: bool) -> Self {
        MetricsRegistry {
            enabled: Arc::new(AtomicBool::new(enabled)),
            inner: Mutex::new(RegistryInner::default()),
        }
    }

    /// Whether instrumentation currently records.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Flip recording on or off for every handle of this registry,
    /// including ones already handed out.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock();
        inner
            .counters
            .entry(name.to_string())
            .or_insert_with(|| Counter {
                value: Arc::new(AtomicU64::new(0)),
                enabled: self.enabled.clone(),
            })
            .clone()
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock();
        inner
            .gauges
            .entry(name.to_string())
            .or_insert_with(|| Gauge {
                bits: Arc::new(AtomicU64::new(0f64.to_bits())),
                enabled: self.enabled.clone(),
            })
            .clone()
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut inner = self.inner.lock();
        inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram {
                core: Arc::new(HistogramCore {
                    buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                    count: AtomicU64::new(0),
                    sum: AtomicU64::new(0),
                    min: AtomicU64::new(u64::MAX),
                    max: AtomicU64::new(0),
                }),
                enabled: self.enabled.clone(),
            })
            .clone()
    }

    /// Get or create an indexed family of counters named `name.0` …
    /// `name.{n-1}` — the idiom for per-shard / per-worker counters whose
    /// cardinality is only known at runtime (e.g. selector shards).
    pub fn counter_family(&self, name: &str, n: usize) -> Vec<Counter> {
        (0..n)
            .map(|i| self.counter(&format!("{name}.{i}")))
            .collect()
    }

    /// Get or create an indexed family of histograms named `name.0` …
    /// `name.{n-1}` (per-shard latency distributions and the like).
    pub fn histogram_family(&self, name: &str, n: usize) -> Vec<Histogram> {
        (0..n)
            .map(|i| self.histogram(&format!("{name}.{i}")))
            .collect()
    }

    /// Get or create the table `name` with the given column schema.
    /// Panics if the table exists with a different schema.
    pub fn table(&self, name: &str, columns: &[&str]) -> Table {
        let mut inner = self.inner.lock();
        let t = inner
            .tables
            .entry(name.to_string())
            .or_insert_with(|| Table {
                core: Arc::new(TableCore {
                    columns: columns.iter().map(|c| c.to_string()).collect(),
                    rows: Mutex::new(Vec::new()),
                }),
                enabled: self.enabled.clone(),
            })
            .clone();
        assert_eq!(
            t.core.columns, columns,
            "table {name:?} re-registered with a different schema"
        );
        t
    }

    /// Reset all values to zero / empty. Registered names and handed-out
    /// handles stay valid (handles observe the reset for counters/gauges
    /// and tables; histogram handles are re-pointed, so re-fetch them).
    pub fn reset(&self) {
        let mut inner = self.inner.lock();
        for c in inner.counters.values() {
            c.value.store(0, Ordering::Relaxed);
        }
        for g in inner.gauges.values() {
            g.bits.store(0f64.to_bits(), Ordering::Relaxed);
        }
        let names: Vec<String> = inner.histograms.keys().cloned().collect();
        for name in names {
            inner.histograms.insert(
                name,
                Histogram {
                    core: Arc::new(HistogramCore {
                        buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                        count: AtomicU64::new(0),
                        sum: AtomicU64::new(0),
                        min: AtomicU64::new(u64::MAX),
                        max: AtomicU64::new(0),
                    }),
                    enabled: self.enabled.clone(),
                },
            );
        }
        for t in inner.tables.values() {
            t.core.rows.lock().clear();
        }
    }

    // -- reporting ---------------------------------------------------------

    /// Write the registry as tab-separated sections (counters, gauges,
    /// histogram summaries, then one section per table).
    pub fn dump_tsv(&self, out: &mut dyn io::Write) -> io::Result<()> {
        let inner = self.inner.lock();
        if !inner.counters.is_empty() {
            writeln!(out, "# counters")?;
            writeln!(out, "metric\tvalue")?;
            for (name, c) in &inner.counters {
                writeln!(out, "{name}\t{}", c.get())?;
            }
        }
        if !inner.gauges.is_empty() {
            writeln!(out, "# gauges")?;
            writeln!(out, "metric\tvalue")?;
            for (name, g) in &inner.gauges {
                writeln!(out, "{name}\t{}", g.get())?;
            }
        }
        if !inner.histograms.is_empty() {
            writeln!(out, "# histograms")?;
            writeln!(out, "metric\tcount\tsum\tmin\tmax\tmean\tp50\tp90\tp99")?;
            for (name, h) in &inner.histograms {
                writeln!(
                    out,
                    "{name}\t{}\t{}\t{}\t{}\t{:.1}\t{}\t{}\t{}",
                    h.count(),
                    h.sum(),
                    h.min().unwrap_or(0),
                    h.max().unwrap_or(0),
                    h.mean(),
                    h.quantile(0.50),
                    h.quantile(0.90),
                    h.quantile(0.99),
                )?;
            }
        }
        for (name, t) in &inner.tables {
            writeln!(out, "# table {name}")?;
            writeln!(out, "{}", t.core.columns.join("\t"))?;
            for row in t.core.rows.lock().iter() {
                let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                writeln!(out, "{}", cells.join("\t"))?;
            }
        }
        Ok(())
    }

    /// Write the registry as NDJSON: one object per line with a `kind`
    /// discriminant (`counter`, `gauge`, `histogram`, `row`).
    pub fn dump_ndjson(&self, out: &mut dyn io::Write) -> io::Result<()> {
        let inner = self.inner.lock();
        for (name, c) in &inner.counters {
            writeln!(
                out,
                r#"{{"kind":"counter","name":{},"value":{}}}"#,
                json_str(name),
                c.get()
            )?;
        }
        for (name, g) in &inner.gauges {
            writeln!(
                out,
                r#"{{"kind":"gauge","name":{},"value":{}}}"#,
                json_str(name),
                json_f64(g.get())
            )?;
        }
        for (name, h) in &inner.histograms {
            writeln!(
                out,
                concat!(
                    r#"{{"kind":"histogram","name":{},"count":{},"sum":{},"#,
                    r#""min":{},"max":{},"mean":{},"p50":{},"p90":{},"p99":{}}}"#
                ),
                json_str(name),
                h.count(),
                h.sum(),
                h.min().unwrap_or(0),
                h.max().unwrap_or(0),
                json_f64(h.mean()),
                h.quantile(0.50),
                h.quantile(0.90),
                h.quantile(0.99),
            )?;
        }
        for (name, t) in &inner.tables {
            for row in t.core.rows.lock().iter() {
                let mut line = format!(r#"{{"kind":"row","table":{}"#, json_str(name));
                for (col, v) in t.core.columns.iter().zip(row) {
                    line.push(',');
                    line.push_str(&json_str(col));
                    line.push(':');
                    match v {
                        Value::U64(x) => line.push_str(&x.to_string()),
                        Value::I64(x) => line.push_str(&x.to_string()),
                        Value::F64(x) => line.push_str(&json_f64(*x)),
                        Value::Str(s) => line.push_str(&json_str(s)),
                    }
                }
                line.push('}');
                writeln!(out, "{line}")?;
            }
        }
        Ok(())
    }

    /// Dump to `path`, creating parent directories. `.ndjson` / `.jsonl`
    /// extensions select NDJSON; anything else gets TSV.
    pub fn dump_to_path(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut buf = Vec::new();
        match path.extension().and_then(|e| e.to_str()) {
            Some("ndjson") | Some("jsonl") => self.dump_ndjson(&mut buf)?,
            _ => self.dump_tsv(&mut buf)?,
        }
        std::fs::write(path, buf)
    }

    /// Render the TSV report to a `String` (for tests and logs).
    pub fn render_tsv(&self) -> String {
        let mut buf = Vec::new();
        self.dump_tsv(&mut buf).expect("write to Vec cannot fail");
        String::from_utf8(buf).expect("TSV dump is UTF-8")
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

// ---------------------------------------------------------------------------
// Global registry
// ---------------------------------------------------------------------------

static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();

/// The process-wide registry used by library instrumentation. Starts
/// **disabled**; enable with `sb_obs::global().set_enabled(true)`.
pub fn global() -> &'static MetricsRegistry {
    GLOBAL.get_or_init(|| MetricsRegistry::with_enabled(false))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ndjson_row_encoding_is_valid() {
        let reg = MetricsRegistry::new();
        let t = reg.table("t", &["name", "x"]);
        t.push(vec![Value::from("a\"b"), Value::from(1.5)]);
        let mut buf = Vec::new();
        reg.dump_ndjson(&mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains(r#""table":"t""#), "{s}");
        assert!(s.contains(r#""name":"a\"b""#), "{s}");
        assert!(s.contains(r#""x":1.5"#), "{s}");
    }

    #[test]
    fn bucket_of_is_floor_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(u64::MAX), 63);
    }
}
