//! Demand matrices: expected or observed call counts per `(call config, time
//! slot)` — the `D_tc` input of the provisioning LP (Table 2) and the
//! timeseries input of the forecaster.

use sb_net::{CountryId, Topology};

use crate::config::{ConfigCatalog, ConfigId};

/// Call counts per `(config, slot)`, config-major so each config's timeseries
/// is a contiguous slice.
#[derive(Clone, Debug)]
pub struct DemandMatrix {
    /// Slot width in minutes (30 in the paper).
    pub slot_minutes: u32,
    /// Absolute UTC minute of slot 0.
    pub start_minute: u64,
    num_configs: usize,
    num_slots: usize,
    counts: Vec<f64>,
}

impl DemandMatrix {
    /// Zero matrix.
    pub fn zero(
        num_configs: usize,
        num_slots: usize,
        slot_minutes: u32,
        start_minute: u64,
    ) -> DemandMatrix {
        assert!(slot_minutes > 0);
        DemandMatrix {
            slot_minutes,
            start_minute,
            num_configs,
            num_slots,
            counts: vec![0.0; num_configs * num_slots],
        }
    }

    /// Number of configs (rows).
    pub fn num_configs(&self) -> usize {
        self.num_configs
    }

    /// Number of slots (columns).
    pub fn num_slots(&self) -> usize {
        self.num_slots
    }

    /// Call count for `(config, slot)`.
    pub fn get(&self, cfg: ConfigId, slot: usize) -> f64 {
        self.counts[cfg.index() * self.num_slots + slot]
    }

    /// Set a count.
    pub fn set(&mut self, cfg: ConfigId, slot: usize, v: f64) {
        assert!(v >= 0.0);
        self.counts[cfg.index() * self.num_slots + slot] = v;
    }

    /// Add to a count.
    pub fn add(&mut self, cfg: ConfigId, slot: usize, v: f64) {
        self.counts[cfg.index() * self.num_slots + slot] += v;
    }

    /// The full timeseries of one config.
    pub fn series(&self, cfg: ConfigId) -> &[f64] {
        &self.counts[cfg.index() * self.num_slots..(cfg.index() + 1) * self.num_slots]
    }

    /// Absolute UTC minute at which `slot` starts.
    pub fn slot_start_minute(&self, slot: usize) -> u64 {
        self.start_minute + slot as u64 * self.slot_minutes as u64
    }

    /// Slot containing an absolute UTC minute, if in range.
    pub fn slot_of_minute(&self, minute: u64) -> Option<usize> {
        if minute < self.start_minute {
            return None;
        }
        let s = ((minute - self.start_minute) / self.slot_minutes as u64) as usize;
        (s < self.num_slots).then_some(s)
    }

    /// Total calls across everything.
    pub fn total_calls(&self) -> f64 {
        self.counts.iter().sum()
    }

    /// Total calls per config.
    pub fn config_totals(&self) -> Vec<f64> {
        (0..self.num_configs)
            .map(|c| self.series(ConfigId(c as u32)).iter().sum())
            .collect()
    }

    /// Total calls per slot.
    pub fn slot_totals(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.num_slots];
        for c in 0..self.num_configs {
            for (s, v) in self.series(ConfigId(c as u32)).iter().enumerate() {
                out[s] += v;
            }
        }
        out
    }

    /// Configs ordered by descending total call count.
    pub fn configs_by_popularity(&self) -> Vec<(ConfigId, f64)> {
        let mut v: Vec<(ConfigId, f64)> = self
            .config_totals()
            .into_iter()
            .enumerate()
            .map(|(i, t)| (ConfigId(i as u32), t))
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// The most popular configs covering at least `frac ∈ (0,1]` of all calls
    /// (the "top 1 %" selection of §5.2).
    pub fn top_configs_covering(&self, frac: f64) -> Vec<ConfigId> {
        assert!((0.0..=1.0).contains(&frac));
        let total = self.total_calls();
        let mut acc = 0.0;
        let mut out = Vec::new();
        for (id, t) in self.configs_by_popularity() {
            if acc >= frac * total || t == 0.0 {
                break;
            }
            acc += t;
            out.push(id);
        }
        out
    }

    /// Top `n` most popular configs.
    pub fn top_n_configs(&self, n: usize) -> Vec<ConfigId> {
        self.configs_by_popularity()
            .into_iter()
            .take(n)
            .filter(|&(_, t)| t > 0.0)
            .map(|(id, _)| id)
            .collect()
    }

    /// Coverage curve for Fig. 7c: for each prefix of the popularity ranking,
    /// `(fraction of configs, fraction of calls, fraction of participants)`.
    pub fn coverage_curve(&self, catalog: &ConfigCatalog) -> Vec<(f64, f64, f64)> {
        let ranked = self.configs_by_popularity();
        let total_calls = self.total_calls();
        let total_participants: f64 = ranked
            .iter()
            .map(|&(id, t)| t * catalog.config(id).total_participants() as f64)
            .sum();
        let n = ranked.len() as f64;
        let mut calls_acc = 0.0;
        let mut part_acc = 0.0;
        ranked
            .iter()
            .enumerate()
            .map(|(i, &(id, t))| {
                calls_acc += t;
                part_acc += t * catalog.config(id).total_participants() as f64;
                (
                    (i + 1) as f64 / n,
                    if total_calls > 0.0 {
                        calls_acc / total_calls
                    } else {
                        0.0
                    },
                    if total_participants > 0.0 {
                        part_acc / total_participants
                    } else {
                        0.0
                    },
                )
            })
            .collect()
    }

    /// Fold a multi-day matrix into one *envelope day*: for each slot-of-day,
    /// the maximum demand across days. Provisioning for the envelope day
    /// covers every day of the horizon (the standard reduction that keeps
    /// the LP at `T = slots_per_day` rows; see DESIGN.md §5).
    pub fn envelope_day(&self, slots_per_day: usize) -> DemandMatrix {
        assert!(slots_per_day > 0 && self.num_slots >= slots_per_day);
        let mut out = DemandMatrix::zero(
            self.num_configs,
            slots_per_day,
            self.slot_minutes,
            self.start_minute,
        );
        for c in 0..self.num_configs {
            let id = ConfigId(c as u32);
            for (s, &v) in self.series(id).iter().enumerate() {
                let sod = s % slots_per_day;
                if v > out.get(id, sod) {
                    out.set(id, sod, v);
                }
            }
        }
        out
    }

    /// Keep only the given configs (others zeroed) — the §5.2 top-coverage
    /// selection.
    pub fn filtered(&self, keep: &[ConfigId]) -> DemandMatrix {
        let mut out = DemandMatrix::zero(
            self.num_configs,
            self.num_slots,
            self.slot_minutes,
            self.start_minute,
        );
        for &id in keep {
            let src = self.series(id).to_vec();
            for (s, v) in src.into_iter().enumerate() {
                out.set(id, s, v);
            }
        }
        out
    }

    /// Uniformly scale all demand (the §5.2 cushion for uncovered and future
    /// configs).
    pub fn scaled(&self, factor: f64) -> DemandMatrix {
        assert!(factor >= 0.0);
        let mut out = self.clone();
        for v in out.counts.iter_mut() {
            *v *= factor;
        }
        out
    }

    /// A sub-window of slots `[from, to)` (same configs).
    pub fn window(&self, from: usize, to: usize) -> DemandMatrix {
        assert!(from <= to && to <= self.num_slots);
        let mut out = DemandMatrix::zero(
            self.num_configs,
            to - from,
            self.slot_minutes,
            self.slot_start_minute(from),
        );
        for c in 0..self.num_configs {
            let id = ConfigId(c as u32);
            let src = &self.series(id)[from..to];
            out.counts[c * out.num_slots..(c + 1) * out.num_slots].copy_from_slice(src);
        }
        out
    }

    /// Per-country core demand per slot (`Σ_calls CL · participants_from_u`):
    /// the quantity plotted in Fig. 3.
    pub fn country_core_demand(&self, catalog: &ConfigCatalog, topo: &Topology) -> Vec<Vec<f64>> {
        let mut out = vec![vec![0.0; self.num_slots]; topo.countries.len()];
        for (id, cfg) in catalog.iter() {
            if id.index() >= self.num_configs {
                break;
            }
            let cl = cfg.media().compute_load();
            for &(country, n) in cfg.participants() {
                let row = &mut out[country.index()];
                for (s, v) in self.series(id).iter().enumerate() {
                    row[s] += v * cl * n as f64;
                }
            }
        }
        out
    }

    /// Per-country core demand for one country.
    pub fn country_series(
        &self,
        catalog: &ConfigCatalog,
        topo: &Topology,
        country: CountryId,
    ) -> Vec<f64> {
        self.country_core_demand(catalog, topo)
            .swap_remove(country.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CallConfig, MediaType};

    fn catalog2() -> (ConfigCatalog, ConfigId, ConfigId) {
        let mut cat = ConfigCatalog::new();
        let a = cat.intern(CallConfig::new(vec![(CountryId(0), 2)], MediaType::Audio));
        let b = cat.intern(CallConfig::new(
            vec![(CountryId(0), 1), (CountryId(1), 3)],
            MediaType::Video,
        ));
        (cat, a, b)
    }

    #[test]
    fn get_set_series() {
        let (_, a, b) = catalog2();
        let mut m = DemandMatrix::zero(2, 4, 30, 0);
        m.set(a, 0, 5.0);
        m.add(a, 0, 1.0);
        m.set(b, 3, 2.0);
        assert_eq!(m.get(a, 0), 6.0);
        assert_eq!(m.series(a), &[6.0, 0.0, 0.0, 0.0]);
        assert_eq!(m.series(b), &[0.0, 0.0, 0.0, 2.0]);
        assert_eq!(m.total_calls(), 8.0);
        assert_eq!(m.slot_totals(), vec![6.0, 0.0, 0.0, 2.0]);
        assert_eq!(m.config_totals(), vec![6.0, 2.0]);
    }

    #[test]
    fn slot_time_mapping() {
        let m = DemandMatrix::zero(1, 4, 30, 600);
        assert_eq!(m.slot_start_minute(2), 660);
        assert_eq!(m.slot_of_minute(600), Some(0));
        assert_eq!(m.slot_of_minute(629), Some(0));
        assert_eq!(m.slot_of_minute(630), Some(1));
        assert_eq!(m.slot_of_minute(599), None);
        assert_eq!(m.slot_of_minute(600 + 4 * 30), None);
    }

    #[test]
    fn popularity_and_coverage() {
        let (cat, a, b) = catalog2();
        let mut m = DemandMatrix::zero(2, 2, 30, 0);
        m.set(a, 0, 9.0);
        m.set(b, 0, 1.0);
        let ranked = m.configs_by_popularity();
        assert_eq!(ranked[0].0, a);
        assert_eq!(m.top_configs_covering(0.5), vec![a]);
        assert_eq!(m.top_configs_covering(1.0), vec![a, b]);
        assert_eq!(m.top_n_configs(1), vec![a]);
        let cov = m.coverage_curve(&cat);
        assert_eq!(cov.len(), 2);
        assert!((cov[0].1 - 0.9).abs() < 1e-12);
        // participants: a: 9*2=18, b: 1*4=4 → first point 18/22
        assert!((cov[0].2 - 18.0 / 22.0).abs() < 1e-12);
        assert!((cov[1].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn envelope_day_takes_per_slot_max() {
        let (_, a, b) = catalog2();
        // 2 days × 2 slots/day
        let mut m = DemandMatrix::zero(2, 4, 30, 0);
        m.set(a, 0, 1.0);
        m.set(a, 2, 5.0); // day 2, slot-of-day 0
        m.set(b, 1, 4.0);
        m.set(b, 3, 2.0);
        let e = m.envelope_day(2);
        assert_eq!(e.num_slots(), 2);
        assert_eq!(e.get(a, 0), 5.0);
        assert_eq!(e.get(b, 1), 4.0);
    }

    #[test]
    fn filtered_and_scaled() {
        let (_, a, b) = catalog2();
        let mut m = DemandMatrix::zero(2, 2, 30, 0);
        m.set(a, 0, 3.0);
        m.set(b, 1, 7.0);
        let f = m.filtered(&[a]);
        assert_eq!(f.get(a, 0), 3.0);
        assert_eq!(f.get(b, 1), 0.0);
        let s = m.scaled(2.0);
        assert_eq!(s.get(b, 1), 14.0);
        assert_eq!(s.get(a, 0), 6.0);
    }

    #[test]
    fn window_slices() {
        let (_, a, _) = catalog2();
        let mut m = DemandMatrix::zero(2, 4, 30, 0);
        for s in 0..4 {
            m.set(a, s, s as f64);
        }
        let w = m.window(1, 3);
        assert_eq!(w.num_slots(), 2);
        assert_eq!(w.series(a), &[1.0, 2.0]);
        assert_eq!(w.start_minute, 30);
    }

    #[test]
    fn country_core_demand_attribution() {
        let (cat, a, b) = catalog2();
        let topo = sb_net::presets::toy_three_dc();
        let mut m = DemandMatrix::zero(2, 1, 30, 0);
        m.set(a, 0, 2.0); // 2 audio calls, 2 participants each, country 0
        m.set(b, 0, 1.0); // 1 video call: 1 from country 0, 3 from country 1
        let d = m.country_core_demand(&cat, &topo);
        let audio_cl = MediaType::Audio.compute_load();
        let video_cl = MediaType::Video.compute_load();
        assert!((d[0][0] - (2.0 * 2.0 * audio_cl + 1.0 * 1.0 * video_cl)).abs() < 1e-12);
        assert!((d[1][0] - 1.0 * 3.0 * video_cl).abs() < 1e-12);
        assert_eq!(d[2][0], 0.0);
    }
}
