//! Replay-engine throughput: serial oracle vs the concurrent sharded driver
//! at 1/2/4/8 worker threads, on a full APAC day trace.
//!
//! Every variant drives the *same* trace through a fresh
//! [`sb_core::RealtimeSelector`] and must produce a byte-identical
//! [`sb_sim::ReplayStats`] — floats included — before its wall time counts;
//! the run aborts on the first divergence. Calls/sec is measured over the
//! drive phase only (the part the concurrent engine parallelizes); the
//! accounting pass is serial by design and identical across variants.
//!
//! Usage: `replay_throughput [--smoke] [--json <path>]`
//!
//! `--smoke` shrinks the workload and skips the speedup assertion — it is the
//! CI gate for serial/concurrent equivalence. The full run asserts a >= 3x
//! drive speedup at 8 threads, but only when the host actually has 8 hardware
//! threads to run them on; either way the measured numbers and the hardware
//! parallelism land in `BENCH_replay.json` and
//! `results/replay_throughput.txt`.

use std::fmt::Write as _;
use std::time::Instant;

use sb_bench::common::print_table;
use sb_core::formulation::ScenarioData;
use sb_core::{AllocationShares, PlanArtifact, PlannedQuotas, RealtimeSelector};
use sb_net::FailureScenario;
use sb_sim::{replay, replay_concurrent, ReplayConfig, ReplayReport};
use sb_workload::{Generator, UniverseParams, WorkloadParams};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let json_path = {
        let mut args = std::env::args().skip(1);
        let mut path = String::from("BENCH_replay.json");
        while let Some(a) = args.next() {
            if a == "--json" {
                path = args.next().unwrap_or_else(|| {
                    eprintln!("--json requires a path argument");
                    std::process::exit(2);
                });
            } else if let Some(p) = a.strip_prefix("--json=") {
                path = p.to_string();
            }
        }
        path
    };
    let reps = if smoke { 1 } else { 3 };
    let (num_configs, daily_calls, slot_minutes, coverage) = if smoke {
        (300, 4_000.0, 120, 0.97)
    } else {
        (2_000, 40_000.0, 240, 0.90)
    };

    let topo = sb_net::presets::apac();
    let params = WorkloadParams {
        universe: UniverseParams {
            num_configs,
            ..Default::default()
        },
        daily_calls,
        slot_minutes,
        ..Default::default()
    };
    let generator = Generator::new(&topo, params);
    let day = 2;
    let expected = generator.expected_demand(day, 1);
    let selected = expected.top_configs_covering(coverage);
    let planned_demand = expected.filtered(&selected).scaled(1.15);
    let db = generator.sample_records(day, 1, 9);
    eprintln!(
        "APAC day trace: {} calls, plan covers {} configs",
        db.len(),
        selected.len()
    );

    // a synthetic plan spreading every planned config across all DCs: enough
    // quota pressure to exercise the striped pools without the LP solve
    let slots = planned_demand.num_slots();
    let mut shares = AllocationShares::new(slots);
    let n = topo.dcs.len() as f64;
    let spread: Vec<_> = topo.dc_ids().map(|d| (d, 1.0 / n)).collect();
    for &cfg in &selected {
        for s in 0..slots {
            shares.set(cfg, s, spread.clone());
        }
    }
    let quotas = PlannedQuotas::from_plan(&shares, &planned_demand);
    let sd0 = ScenarioData::compute(&topo, FailureScenario::None);
    let cfg = ReplayConfig::default();

    let run = |threads: Option<usize>| -> ReplayReport {
        let selector =
            RealtimeSelector::from_artifact(&sd0.latmap, &PlanArtifact::seed(quotas.clone()));
        match threads {
            None => replay(
                &topo,
                &sd0.routing,
                &sd0.latmap,
                &generator.universe().catalog,
                &db,
                &selector,
                &cfg,
            ),
            Some(n) => replay_concurrent(
                &topo,
                &sd0.routing,
                &sd0.latmap,
                &generator.universe().catalog,
                &db,
                &selector,
                &cfg,
                n,
            ),
        }
    };
    // best-of-reps drive time per variant; stats must match on every rep
    let best_of = |threads: Option<usize>, oracle: Option<&ReplayReport>| -> (f64, ReplayReport) {
        let mut best: Option<(f64, ReplayReport)> = None;
        for _ in 0..reps {
            let t0 = Instant::now();
            let report = run(threads);
            let _wall = t0.elapsed();
            if let Some(serial) = oracle {
                assert_eq!(
                    serial.stats(),
                    report.stats(),
                    "concurrent replay (threads={threads:?}) diverged from the serial oracle"
                );
            }
            let drive = report.timing.drive.as_secs_f64();
            if best.as_ref().is_none_or(|(d, _)| drive < *d) {
                best = Some((drive, report));
            }
        }
        best.expect("at least one rep")
    };

    let (serial_drive, serial) = best_of(None, None);
    let calls = serial.calls;
    eprintln!(
        "serial: {:.3}s drive, {:.0} calls/s",
        serial_drive,
        calls as f64 / serial_drive
    );
    let mut variants: Vec<(String, f64)> = vec![("serial".to_string(), serial_drive)];
    for &t in &THREAD_COUNTS {
        let (drive, _) = best_of(Some(t), Some(&serial));
        eprintln!(
            "{t} thread(s): {:.3}s drive, {:.0} calls/s",
            drive,
            calls as f64 / drive
        );
        variants.push((format!("{t}-thread"), drive));
    }

    let hardware = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let speedup8 = serial_drive / variants.last().unwrap().1;

    println!("== Replay throughput: serial oracle vs concurrent sharded driver ==\n");
    println!(
        "APAC, {calls} calls, best of {reps}, {hardware} hardware thread(s); \
         aggregate ReplayStats byte-identical across all variants\n"
    );
    let rows: Vec<Vec<String>> = variants
        .iter()
        .map(|(name, drive)| {
            vec![
                name.clone(),
                format!("{drive:.3}"),
                format!("{:.0}", calls as f64 / drive),
                format!("{:.2}x", serial_drive / drive),
            ]
        })
        .collect();
    print_table(&["variant", "drive(s)", "calls/s", "speedup"], &rows);
    println!("\n8-thread speedup over serial: {speedup8:.2}x");

    if !smoke {
        if hardware >= 8 {
            assert!(
                speedup8 >= 3.0,
                "expected >= 3x drive speedup at 8 threads, measured {speedup8:.2}x"
            );
        } else {
            println!(
                "note: host has only {hardware} hardware thread(s) — the >= 3x \
                 speedup assertion needs 8 and was skipped; equivalence was still \
                 asserted on every run"
            );
        }
    }

    // machine-readable dump
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"replay_throughput\",\n");
    out.push_str("  \"topology\": \"apac\",\n");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(out, "  \"reps\": {reps},");
    let _ = writeln!(out, "  \"calls\": {calls},");
    let _ = writeln!(out, "  \"hardware_threads\": {hardware},");
    out.push_str("  \"stats_identical\": true,\n");
    out.push_str("  \"variants\": [\n");
    for (i, (name, drive)) in variants.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"name\": \"{name}\", \"drive_s\": {drive:.6}, \
             \"calls_per_sec\": {:.1}, \"speedup_vs_serial\": {:.4}}}{}",
            calls as f64 / drive,
            serial_drive / drive,
            if i + 1 < variants.len() { "," } else { "" }
        );
    }
    out.push_str("  ],\n");
    let _ = writeln!(out, "  \"speedup_8_thread\": {speedup8:.4}");
    out.push_str("}\n");
    match std::fs::write(&json_path, &out) {
        Ok(()) => eprintln!("wrote {json_path}"),
        Err(e) => {
            eprintln!("failed to write {json_path}: {e}");
            std::process::exit(1);
        }
    }
    if !smoke {
        let mut txt = String::new();
        let _ = writeln!(
            txt,
            "Replay throughput — APAC, {calls} calls, best of {reps}, \
             {hardware} hardware thread(s)\n"
        );
        let _ = writeln!(
            txt,
            "{:<10} {:>9} {:>10} {:>8}",
            "variant", "drive(s)", "calls/s", "speedup"
        );
        for (name, drive) in &variants {
            let _ = writeln!(
                txt,
                "{name:<10} {drive:>9.3} {:>10.0} {:>7.2}x",
                calls as f64 / drive,
                serial_drive / drive
            );
        }
        let _ = writeln!(
            txt,
            "\naggregate ReplayStats byte-identical across all variants; \
             8-thread speedup {speedup8:.2}x"
        );
        if let Err(e) = std::fs::write("results/replay_throughput.txt", txt) {
            eprintln!("failed to write results/replay_throughput.txt: {e}");
        } else {
            eprintln!("wrote results/replay_throughput.txt");
        }
    }
}
