//! Call-state records as the real-time controller maintains them (§5.4/§6.6):
//! as participants join a new call and media changes, worker threads write
//! the evolving call config back to the store.

use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use crate::latency::LatencyHistogram;
use crate::map::ShardedMap;

/// A store write was dropped because the target shard is failed.
///
/// [`CallStateStore::apply`] keeps the original fire-and-forget semantics
/// (drops are counted but silent); [`CallStateStore::try_apply`] surfaces
/// them so an engine can back off and retry instead of losing state.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct StoreWriteError {
    /// The shard the rejected write was routed to.
    pub shard: usize,
    /// The call the rejected event belonged to.
    pub call: u64,
}

impl fmt::Display for StoreWriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "store write for call {} dropped: shard {} is failed",
            self.call, self.shard
        )
    }
}

impl std::error::Error for StoreWriteError {}

/// Media flag recorded on a call (mirrors the §5.1 classification without
/// depending on the workload crate).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum MediaFlag {
    /// Audio only.
    #[default]
    Audio,
    /// Somebody shares their screen.
    ScreenShare,
    /// Somebody has video on (and no screen-share).
    Video,
}

/// The evolving state of one call.
#[derive(Clone, Debug, Default)]
pub struct CallState {
    /// `(country, participant count)` accumulated so far.
    pub participants: Vec<(u16, u16)>,
    /// Current media classification.
    pub media: MediaFlag,
    /// Assigned DC index.
    pub dc: u16,
    /// Whether the config has been frozen (A minutes in).
    pub frozen: bool,
}

impl CallState {
    /// Total participants.
    pub fn total_participants(&self) -> u32 {
        self.participants.iter().map(|&(_, n)| n as u32).sum()
    }
}

/// Store events, in trace order.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CallEvent {
    /// First participant joined: create the call.
    Start {
        /// Call id.
        call: u64,
        /// First joiner's country index.
        country: u16,
        /// Assigned DC index.
        dc: u16,
    },
    /// A participant joined.
    Join {
        /// Call id.
        call: u64,
        /// Joiner's country index.
        country: u16,
    },
    /// Media classification changed.
    Media {
        /// Call id.
        call: u64,
        /// New flag.
        media: MediaFlag,
    },
    /// Config freeze (A minutes in).
    Freeze {
        /// Call id.
        call: u64,
    },
    /// Call ended: delete the state.
    End {
        /// Call id.
        call: u64,
    },
}

impl CallEvent {
    /// The call this event belongs to.
    pub fn call(&self) -> u64 {
        match *self {
            CallEvent::Start { call, .. }
            | CallEvent::Join { call, .. }
            | CallEvent::Media { call, .. }
            | CallEvent::Freeze { call }
            | CallEvent::End { call } => call,
        }
    }
}

/// The controller-facing store: applies [`CallEvent`]s with per-write latency
/// accounting.
#[derive(Clone)]
pub struct CallStateStore {
    map: Arc<ShardedMap<u64, CallState>>,
    simulated_rtt: std::time::Duration,
}

impl CallStateStore {
    /// Create with the given shard count.
    pub fn new(shards: usize) -> CallStateStore {
        CallStateStore {
            map: Arc::new(ShardedMap::new(shards)),
            simulated_rtt: std::time::Duration::ZERO,
        }
    }

    /// Create with a simulated per-write network round trip. The paper's
    /// controller writes to Azure Redis (0.3–4.2 ms per write, §6.6); an
    /// in-process map alone would make every thread count look infinitely
    /// fast. The simulated RTT restores the latency-bound regime in which
    /// adding writer threads increases throughput.
    pub fn with_simulated_rtt(shards: usize, rtt: std::time::Duration) -> CallStateStore {
        CallStateStore {
            map: Arc::new(ShardedMap::new(shards)),
            simulated_rtt: rtt,
        }
    }

    /// Apply one event, recording the write latency into `hist`.
    pub fn apply(&self, ev: CallEvent, hist: &mut LatencyHistogram) {
        let t = Instant::now();
        if !self.simulated_rtt.is_zero() {
            std::thread::sleep(self.simulated_rtt);
        }
        match ev {
            CallEvent::Start { call, country, dc } => {
                self.map.insert(
                    call,
                    CallState {
                        participants: vec![(country, 1)],
                        media: MediaFlag::Audio,
                        dc,
                        frozen: false,
                    },
                );
            }
            CallEvent::Join { call, country } => {
                self.map.update(&call, |st| {
                    match st.participants.iter_mut().find(|(c, _)| *c == country) {
                        Some((_, n)) => *n += 1,
                        None => st.participants.push((country, 1)),
                    }
                });
            }
            CallEvent::Media { call, media } => {
                self.map.update(&call, |st| st.media = media);
            }
            CallEvent::Freeze { call } => {
                self.map.update(&call, |st| st.frozen = true);
            }
            CallEvent::End { call } => {
                self.map.remove(&call);
            }
        }
        hist.record(t.elapsed());
    }

    /// Like [`CallStateStore::apply`], but reports a dropped write as a
    /// typed error instead of swallowing it. The latency of the attempt is
    /// recorded either way (a failed round trip still costs the caller).
    pub fn try_apply(
        &self,
        ev: CallEvent,
        hist: &mut LatencyHistogram,
    ) -> Result<(), StoreWriteError> {
        let call = ev.call();
        let failed = self.map.key_shard_failed(&call);
        self.apply(ev, hist);
        if failed {
            Err(StoreWriteError {
                shard: self.map.shard_index(&call),
                call,
            })
        } else {
            Ok(())
        }
    }

    /// Snapshot a call's state.
    pub fn get(&self, call: u64) -> Option<CallState> {
        self.map.get(&call)
    }

    /// Fail or heal a store shard (chaos drills): writes routed to a failed
    /// shard are dropped and counted, reads serve stale state.
    pub fn fail_shard(&self, idx: usize, down: bool) {
        self.map.fail_shard(idx, down);
    }

    /// Which shard `call`'s state lives on.
    pub fn shard_of(&self, call: u64) -> usize {
        self.map.shard_index(&call)
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.map.num_shards()
    }

    /// Writes dropped on failed shards since creation.
    pub fn dropped_writes(&self) -> u64 {
        self.map.dropped_writes()
    }

    /// Active calls.
    pub fn active_calls(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle() {
        let store = CallStateStore::new(8);
        let mut h = LatencyHistogram::new();
        store.apply(
            CallEvent::Start {
                call: 1,
                country: 3,
                dc: 0,
            },
            &mut h,
        );
        store.apply(
            CallEvent::Join {
                call: 1,
                country: 3,
            },
            &mut h,
        );
        store.apply(
            CallEvent::Join {
                call: 1,
                country: 5,
            },
            &mut h,
        );
        store.apply(
            CallEvent::Media {
                call: 1,
                media: MediaFlag::Video,
            },
            &mut h,
        );
        store.apply(CallEvent::Freeze { call: 1 }, &mut h);
        let st = store.get(1).unwrap();
        assert_eq!(st.total_participants(), 3);
        assert_eq!(st.participants, vec![(3, 2), (5, 1)]);
        assert_eq!(st.media, MediaFlag::Video);
        assert!(st.frozen);
        assert_eq!(store.active_calls(), 1);
        store.apply(CallEvent::End { call: 1 }, &mut h);
        assert!(store.get(1).is_none());
        assert_eq!(store.active_calls(), 0);
        assert_eq!(h.count(), 6);
    }

    #[test]
    fn events_on_missing_calls_are_noops() {
        let store = CallStateStore::new(2);
        let mut h = LatencyHistogram::new();
        store.apply(
            CallEvent::Join {
                call: 9,
                country: 1,
            },
            &mut h,
        );
        store.apply(CallEvent::End { call: 9 }, &mut h);
        assert_eq!(store.active_calls(), 0);
    }

    #[test]
    fn try_apply_reports_failed_shards() {
        let store = CallStateStore::new(1); // one shard: every call maps to it
        let mut h = LatencyHistogram::new();
        store
            .try_apply(
                CallEvent::Start {
                    call: 4,
                    country: 1,
                    dc: 0,
                },
                &mut h,
            )
            .unwrap();
        store.fail_shard(0, true);
        let err = store
            .try_apply(
                CallEvent::Join {
                    call: 4,
                    country: 2,
                },
                &mut h,
            )
            .unwrap_err();
        assert_eq!(err, StoreWriteError { shard: 0, call: 4 });
        assert_eq!(store.dropped_writes(), 1);
        // stale read still shows the pre-failure state
        assert_eq!(store.get(4).unwrap().total_participants(), 1);
        store.fail_shard(0, false);
        store
            .try_apply(
                CallEvent::Join {
                    call: 4,
                    country: 2,
                },
                &mut h,
            )
            .unwrap();
        assert_eq!(store.get(4).unwrap().total_participants(), 2);
        assert_eq!(h.count(), 3); // failed attempts are timed too
    }

    #[test]
    fn event_call_accessor() {
        assert_eq!(CallEvent::Freeze { call: 7 }.call(), 7);
        assert_eq!(
            CallEvent::Start {
                call: 3,
                country: 0,
                dc: 0
            }
            .call(),
            3
        );
    }
}
