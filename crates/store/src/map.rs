//! A sharded concurrent hash map — the in-process stand-in for the Azure
//! Redis instance the paper's controller writes call state to (§6.6).
//! Sharding by key hash keeps writer threads from serializing on one lock.
//!
//! Shards can be failed at runtime ([`ShardedMap::fail_shard`]) to model a
//! Redis partition losing its primary: writes to a failed shard are dropped
//! (and counted), reads keep serving the stale pre-failure state — the
//! read-only failover regime of a replicated cache.

use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, RandomState};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;

use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};
use sb_obs::{Counter, Histogram};

struct StoreMetrics {
    read_ops: Counter,
    write_ops: Counter,
    dropped_writes: Counter,
    lock_wait_ns: Histogram,
}

fn store_metrics() -> &'static StoreMetrics {
    static METRICS: OnceLock<StoreMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = sb_obs::global();
        StoreMetrics {
            read_ops: reg.counter("store.read_ops"),
            write_ops: reg.counter("store.write_ops"),
            dropped_writes: reg.counter("store.dropped_writes"),
            lock_wait_ns: reg.histogram("store.lock_wait_ns"),
        }
    })
}

/// One shard: its lock plus a relaxed op counter for hot-spot diagnosis and
/// a failure flag for chaos drills.
#[derive(Debug)]
struct Shard<K, V> {
    lock: RwLock<HashMap<K, V>>,
    ops: AtomicU64,
    failed: AtomicBool,
}

/// Sharded `HashMap` with per-shard `RwLock`s.
#[derive(Debug)]
pub struct ShardedMap<K, V> {
    shards: Vec<Shard<K, V>>,
    hasher: RandomState,
    mask: usize,
    dropped: AtomicU64,
}

impl<K: Hash + Eq, V> ShardedMap<K, V> {
    /// Create with `shards` rounded up to a power of two (minimum 1).
    pub fn new(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        ShardedMap {
            shards: (0..n)
                .map(|_| Shard {
                    lock: RwLock::new(HashMap::new()),
                    ops: AtomicU64::new(0),
                    failed: AtomicBool::new(false),
                })
                .collect(),
            hasher: RandomState::new(),
            mask: n - 1,
            dropped: AtomicU64::new(0),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Ops (any kind) that have touched each shard since creation. A skewed
    /// distribution here means the key hash is concentrating load.
    pub fn shard_ops(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.ops.load(Ordering::Relaxed))
            .collect()
    }

    /// Which shard `key` hashes to.
    pub fn shard_index(&self, key: &K) -> usize {
        self.hasher.hash_one(key) as usize & self.mask
    }

    /// Fail or heal a shard. Writes to a failed shard are dropped (and
    /// counted in [`ShardedMap::dropped_writes`]); reads keep serving the
    /// stale pre-failure state.
    pub fn fail_shard(&self, idx: usize, down: bool) {
        self.shards[idx].failed.store(down, Ordering::Relaxed);
    }

    /// Whether the shard `key` hashes to is currently failed — the check a
    /// caller needs to turn a silently-dropped write into a typed error.
    pub fn key_shard_failed(&self, key: &K) -> bool {
        self.shard(key).failed.load(Ordering::Relaxed)
    }

    /// Indices of currently failed shards.
    pub fn failed_shards(&self) -> Vec<usize> {
        self.shards
            .iter()
            .enumerate()
            .filter(|(_, s)| s.failed.load(Ordering::Relaxed))
            .map(|(i, _)| i)
            .collect()
    }

    /// Writes dropped because their shard was failed, since creation.
    pub fn dropped_writes(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    fn shard(&self, key: &K) -> &Shard<K, V> {
        let h = self.hasher.hash_one(key) as usize;
        &self.shards[h & self.mask]
    }

    /// True (and accounted) when `key`'s shard is failed: the write must be
    /// dropped.
    fn drop_write(&self, key: &K) -> bool {
        if self.shard(key).failed.load(Ordering::Relaxed) {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            store_metrics().dropped_writes.inc();
            true
        } else {
            false
        }
    }

    /// Acquire a shard's read lock, recording the wait in the global registry.
    fn read_shard(&self, key: &K) -> RwLockReadGuard<'_, HashMap<K, V>> {
        let s = self.shard(key);
        s.ops.fetch_add(1, Ordering::Relaxed);
        let m = store_metrics();
        m.read_ops.inc();
        let _t = m.lock_wait_ns.start_timer();
        s.lock.read()
    }

    /// Acquire a shard's write lock, recording the wait in the global registry.
    fn write_shard(&self, key: &K) -> RwLockWriteGuard<'_, HashMap<K, V>> {
        let s = self.shard(key);
        s.ops.fetch_add(1, Ordering::Relaxed);
        let m = store_metrics();
        m.write_ops.inc();
        let _t = m.lock_wait_ns.start_timer();
        s.lock.write()
    }

    /// Insert, returning the previous value. Dropped (returning `None`)
    /// when the key's shard is failed.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        if self.drop_write(&key) {
            return None;
        }
        self.write_shard(&key).insert(key, value)
    }

    /// Clone-read a value.
    pub fn get(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        self.read_shard(key).get(key).cloned()
    }

    /// Read through a closure without cloning.
    pub fn with<R>(&self, key: &K, f: impl FnOnce(&V) -> R) -> Option<R> {
        self.read_shard(key).get(key).map(f)
    }

    /// Atomic read-modify-write; returns false when the key is absent or
    /// its shard is failed (the write is dropped).
    pub fn update(&self, key: &K, f: impl FnOnce(&mut V)) -> bool {
        if self.drop_write(key) {
            return false;
        }
        match self.write_shard(key).get_mut(key) {
            Some(v) => {
                f(v);
                true
            }
            None => false,
        }
    }

    /// Insert-or-update. Dropped when the key's shard is failed.
    pub fn upsert(&self, key: K, insert: impl FnOnce() -> V, update: impl FnOnce(&mut V)) {
        if self.drop_write(&key) {
            return;
        }
        let mut guard = self.write_shard(&key);
        match guard.get_mut(&key) {
            Some(v) => update(v),
            None => {
                guard.insert(key, insert());
            }
        }
    }

    /// Remove a key, returning its value. Dropped (returning `None`) when
    /// the key's shard is failed.
    pub fn remove(&self, key: &K) -> Option<V> {
        if self.drop_write(key) {
            return None;
        }
        self.write_shard(key).remove(key)
    }

    /// Visit every entry, one shard read-lock at a time (shard index order;
    /// entry order within a shard is unspecified — sort the collected output
    /// if determinism matters). Like [`ShardedMap::len`], the view is not
    /// linearizable across shards.
    pub fn for_each(&self, mut f: impl FnMut(&K, &V)) {
        for s in &self.shards {
            for (k, v) in s.lock.read().iter() {
                f(k, v);
            }
        }
    }

    /// Total entries across shards (not linearizable, like Redis `DBSIZE`).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock.read().len()).sum()
    }

    /// Is the map empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn shard_count_power_of_two() {
        assert_eq!(ShardedMap::<u64, u64>::new(0).num_shards(), 1);
        assert_eq!(ShardedMap::<u64, u64>::new(5).num_shards(), 8);
        assert_eq!(ShardedMap::<u64, u64>::new(16).num_shards(), 16);
    }

    #[test]
    fn basic_ops() {
        let m = ShardedMap::new(8);
        assert!(m.is_empty());
        assert_eq!(m.insert(1u64, "a"), None);
        assert_eq!(m.insert(1, "b"), Some("a"));
        assert_eq!(m.get(&1), Some("b"));
        assert_eq!(m.with(&1, |v| v.len()), Some(1));
        assert!(m.update(&1, |v| *v = "c"));
        assert!(!m.update(&2, |_| unreachable!()));
        m.upsert(2, || "x", |_| unreachable!());
        m.upsert(2, || unreachable!(), |v| *v = "y");
        assert_eq!(m.get(&2), Some("y"));
        assert_eq!(m.len(), 2);
        assert_eq!(m.remove(&1), Some("c"));
        assert_eq!(m.remove(&1), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn failed_shard_drops_writes_but_serves_stale_reads() {
        let m = ShardedMap::new(1); // one shard: every key maps to it
        m.insert(1u64, 10u64);
        assert_eq!(m.shard_index(&1), 0);
        m.fail_shard(0, true);
        assert_eq!(m.failed_shards(), vec![0]);
        // writes of every flavor are dropped …
        assert_eq!(m.insert(2, 20), None);
        assert!(!m.update(&1, |v| *v = 99));
        m.upsert(3, || 30, |_| unreachable!());
        assert_eq!(m.remove(&1), None);
        assert_eq!(m.dropped_writes(), 4);
        // … while stale reads keep working
        assert_eq!(m.get(&1), Some(10));
        assert_eq!(m.get(&2), None);
        // healing restores writes; the drop counter is cumulative
        m.fail_shard(0, false);
        assert!(m.failed_shards().is_empty());
        assert!(m.update(&1, |v| *v = 11));
        assert_eq!(m.get(&1), Some(11));
        assert_eq!(m.dropped_writes(), 4);
    }

    #[test]
    fn for_each_visits_every_entry() {
        let m = ShardedMap::new(4);
        for k in 0..32u64 {
            m.insert(k, k * 10);
        }
        let mut seen: Vec<(u64, u64)> = Vec::new();
        m.for_each(|&k, &v| seen.push((k, v)));
        seen.sort_unstable();
        assert_eq!(seen.len(), 32);
        for (i, &(k, v)) in seen.iter().enumerate() {
            assert_eq!((k, v), (i as u64, i as u64 * 10));
        }
    }

    #[test]
    fn concurrent_counters_are_exact() {
        // read-modify-write under contention must not lose updates
        let m = Arc::new(ShardedMap::new(4));
        for k in 0..8u64 {
            m.insert(k, 0u64);
        }
        let threads = 8;
        let per_thread = 5_000;
        std::thread::scope(|s| {
            for t in 0..threads {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for i in 0..per_thread {
                        let k = ((t + i) % 8) as u64;
                        m.update(&k, |v| *v += 1);
                    }
                });
            }
        });
        let total: u64 = (0..8u64).map(|k| m.get(&k).unwrap()).sum();
        assert_eq!(total, (threads * per_thread) as u64);
    }
}
