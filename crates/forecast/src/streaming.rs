//! Streaming Holt–Winters: the online half of the closed autoscaling loop.
//!
//! The batch pipeline (§5.2) re-fits [`fit_auto`](crate::fit::fit_auto) on a
//! materialized history whenever a new plan is needed. The
//! [`StreamingForecaster`] replaces that with one incremental pass: every
//! closed demand bucket is [`observe`](StreamingForecaster::observe)d once,
//! each grid candidate advances by one `O(1)` recurrence step, and the
//! refreshed horizon forecast plus a drift verdict come back immediately.
//!
//! Two properties make it a drop-in replacement rather than an
//! approximation:
//!
//! * **Differential equality.** After observing a prefix, every candidate
//!   model — and therefore the selected model and its forecasts — is
//!   *bitwise identical* to `fit_auto` on the same prefix. This holds
//!   because [`HoltWinters::fit`] initializes from a fixed two-season
//!   prefix and `observe` runs the identical recurrence, in the identical
//!   grid order with the identical strict-`<` tie-break.
//! * **Bounded state.** Per config the forecaster keeps the grid models
//!   (`36 × (2 + season_len)` floats) and a rolling error window — no
//!   history is retained after seeding, so memory stays flat over a
//!   multi-week stream.
//!
//! Drift detection follows the paper's §6.5 normalization: the rolling RMSE
//! of the selected model's one-step errors, divided by the running peak of
//! the observed truth. When that crosses the configured watermark the
//! observation reports [`Observation::Drift`] and the window resets, which
//! is the signal the `sb-sim` autoscale loop turns into a warm re-plan.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use crate::fit::grid_params;
use crate::holt_winters::HoltWinters;

/// Tuning for a [`StreamingForecaster`].
#[derive(Clone, Copy, Debug)]
pub struct StreamingParams {
    /// Season length in buckets (336 = one week of 30-minute buckets).
    pub season_len: usize,
    /// Buckets of rolling one-step error feeding the drift watermark.
    pub error_window: usize,
    /// Peak-normalized rolling-RMSE threshold above which a config is
    /// declared drifted (the paper's real-data median is ~0.13; the default
    /// fires only on genuine regime changes, not sampling noise).
    pub watermark: f64,
}

impl StreamingParams {
    /// Defaults for a given season length: a half-season error window and a
    /// 0.25 peak-normalized watermark.
    pub fn new(season_len: usize) -> StreamingParams {
        StreamingParams {
            season_len,
            error_window: (season_len / 2).max(4),
            watermark: 0.25,
        }
    }
}

/// What one [`StreamingForecaster::observe`] call saw.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Observation {
    /// Still buffering the two-season warmup prefix; `remaining` more
    /// buckets until the grid seeds.
    Warmup {
        /// Buckets still needed before the models exist.
        remaining: usize,
    },
    /// This bucket completed the warmup prefix and seeded the grid.
    Seeded,
    /// Tracked normally. `err` is the selected model's one-step error on
    /// this bucket; `nrmse` is the peak-normalized rolling RMSE (`None`
    /// until the truth peak is positive).
    Tracked {
        /// One-step-ahead error (`prediction − y`) of the selected model.
        err: f64,
        /// Peak-normalized rolling RMSE after absorbing this bucket.
        nrmse: Option<f64>,
    },
    /// The rolling error crossed the watermark: the config's demand has
    /// drifted from what the models learned. The error window resets so the
    /// signal re-arms instead of firing every bucket.
    Drift {
        /// One-step-ahead error on the bucket that crossed the watermark.
        err: f64,
        /// The peak-normalized rolling RMSE that crossed it.
        nrmse: f64,
    },
}

/// Per-config streaming state: the grid candidates plus drift bookkeeping.
#[derive(Clone, Debug)]
struct ConfigState {
    /// Warmup buffer; drained (and never refilled) once the grid seeds.
    warmup: Vec<f64>,
    /// All grid candidates, in [`grid_params`] order. Empty until seeded.
    models: Vec<HoltWinters>,
    /// Rolling squared one-step errors of the selected model.
    sq_errors: VecDeque<f64>,
    /// Running peak of the observed truth (the §6.5 normalizer).
    peak: f64,
    /// Observations absorbed (warmup + streamed).
    observed: u64,
    /// Drift events signalled so far.
    drifts: u64,
}

impl ConfigState {
    fn new() -> ConfigState {
        ConfigState {
            warmup: Vec::new(),
            models: Vec::new(),
            sq_errors: VecDeque::new(),
            peak: 0.0,
            observed: 0,
            drifts: 0,
        }
    }

    /// Index of the minimum-MSE model, mirroring `fit_auto`'s selection:
    /// grid order with strict `<`, so ties keep the earlier entry.
    fn best_index(&self) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, m) in self.models.iter().enumerate() {
            if best.is_none_or(|b| m.mse() < self.models[b].mse()) {
                best = Some(i);
            }
        }
        best
    }
}

/// Incremental per-config Holt–Winters with drift detection.
///
/// ```
/// use sb_forecast::streaming::{Observation, StreamingForecaster, StreamingParams};
///
/// let m = 24; // daily season, hourly buckets
/// let mut fc = StreamingForecaster::new(StreamingParams::new(m));
/// let series: Vec<f64> = (0..m * 4)
///     .map(|t| 40.0 + 10.0 * ((t % m) as f64 / m as f64 * std::f64::consts::TAU).sin())
///     .collect();
/// for (t, &y) in series.iter().enumerate() {
///     let obs = fc.observe(0, y);
///     if t + 1 == 2 * m {
///         assert_eq!(obs, Observation::Seeded);
///     }
/// }
/// // once seeded, the horizon forecast refreshes after every bucket
/// let horizon = fc.forecast(0, m).unwrap();
/// assert_eq!(horizon.len(), m);
/// ```
#[derive(Clone, Debug)]
pub struct StreamingForecaster {
    params: StreamingParams,
    configs: BTreeMap<u32, ConfigState>,
}

impl StreamingForecaster {
    /// New forecaster; configs appear lazily on first observation.
    pub fn new(params: StreamingParams) -> StreamingForecaster {
        assert!(params.season_len > 0, "season length must be positive");
        assert!(params.error_window > 0, "error window must be positive");
        StreamingForecaster {
            params,
            configs: BTreeMap::new(),
        }
    }

    /// The forecaster's tuning.
    pub fn params(&self) -> StreamingParams {
        self.params
    }

    /// Absorb one closed bucket of config `config`'s demand.
    ///
    /// Buckets must arrive in time order per config (each call advances that
    /// config's series by exactly one step); configs are independent.
    pub fn observe(&mut self, config: u32, y: f64) -> Observation {
        let m = self.params.season_len;
        let window = self.params.error_window;
        let watermark = self.params.watermark;
        let state = self.configs.entry(config).or_insert_with(ConfigState::new);
        state.observed += 1;
        state.peak = state.peak.max(y);

        if state.models.is_empty() {
            state.warmup.push(y);
            if state.warmup.len() < 2 * m {
                return Observation::Warmup {
                    remaining: 2 * m - state.warmup.len(),
                };
            }
            // Two full seasons buffered: fit every grid candidate on the
            // prefix (2m points never fail TooShort, and the grid contains
            // no invalid parameters, so the expects are structural).
            state.models = grid_params(m)
                .into_iter()
                .map(|p| HoltWinters::fit(&state.warmup, p).expect("warmup prefix is two seasons"))
                .collect();
            state.warmup = Vec::new();
            return Observation::Seeded;
        }

        // Advance every candidate; the selected model's error (selection as
        // of *before* this bucket, matching what a forecast consumer saw)
        // drives the drift watermark.
        let best = state.best_index().expect("seeded grid is non-empty");
        let mut err = 0.0;
        for (i, model) in state.models.iter_mut().enumerate() {
            let e = model.observe(y);
            if i == best {
                err = e;
            }
        }
        state.sq_errors.push_back(err * err);
        while state.sq_errors.len() > window {
            state.sq_errors.pop_front();
        }
        let nrmse = (state.peak > 0.0).then(|| {
            let mean = state.sq_errors.iter().sum::<f64>() / state.sq_errors.len() as f64;
            mean.sqrt() / state.peak
        });
        if state.sq_errors.len() == window {
            if let Some(nrmse) = nrmse {
                if nrmse > watermark {
                    state.drifts += 1;
                    state.sq_errors.clear();
                    return Observation::Drift { err, nrmse };
                }
            }
        }
        Observation::Tracked { err, nrmse }
    }

    /// The selected (minimum-MSE) model for `config`, `None` until seeded.
    pub fn best(&self, config: u32) -> Option<&HoltWinters> {
        let state = self.configs.get(&config)?;
        state.best_index().map(|i| &state.models[i])
    }

    /// Forecast `h` buckets ahead for `config` from the selected model;
    /// `None` until the config has seeded. Bitwise-identical to
    /// `fit_auto(prefix, season_len).forecast(h)` on the observed prefix.
    pub fn forecast(&self, config: u32, h: usize) -> Option<Vec<f64>> {
        self.best(config).map(|m| m.forecast(h))
    }

    /// Has `config` seeded its grid (two seasons observed)?
    pub fn is_seeded(&self, config: u32) -> bool {
        self.configs
            .get(&config)
            .is_some_and(|s| !s.models.is_empty())
    }

    /// Peak-normalized rolling RMSE for `config` (`None` until the config
    /// has seeded, observed at least one tracked bucket, and seen a
    /// positive truth peak).
    pub fn nrmse(&self, config: u32) -> Option<f64> {
        let state = self.configs.get(&config)?;
        if state.sq_errors.is_empty() || state.peak <= 0.0 {
            return None;
        }
        let mean = state.sq_errors.iter().sum::<f64>() / state.sq_errors.len() as f64;
        Some(mean.sqrt() / state.peak)
    }

    /// Total observations absorbed across all configs.
    pub fn observed(&self) -> u64 {
        self.configs.values().map(|s| s.observed).sum()
    }

    /// Total drift events signalled across all configs.
    pub fn drifts(&self) -> u64 {
        self.configs.values().map(|s| s.drifts).sum()
    }

    /// Number of configs tracked (seeded or warming up).
    pub fn num_configs(&self) -> usize {
        self.configs.len()
    }

    /// Number of configs whose grids have seeded.
    pub fn num_seeded(&self) -> usize {
        self.configs
            .values()
            .filter(|s| !s.models.is_empty())
            .count()
    }

    /// Exact state equality of the *model* state (every grid candidate of
    /// every config, bitwise). Drift bookkeeping is excluded: it is
    /// derived, not part of the forecast contract.
    pub fn models_eq(&self, other: &StreamingForecaster) -> bool {
        self.configs.len() == other.configs.len()
            && self.configs.iter().zip(&other.configs).all(|(a, b)| {
                a.0 == b.0
                    && a.1.warmup.len() == b.1.warmup.len()
                    && a.1
                        .warmup
                        .iter()
                        .zip(&b.1.warmup)
                        .all(|(x, y)| x.to_bits() == y.to_bits())
                    && a.1.models.len() == b.1.models.len()
                    && a.1
                        .models
                        .iter()
                        .zip(&b.1.models)
                        .all(|(x, y)| x.state_eq(y))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fit::fit_auto;

    fn synth(n: usize, m: usize) -> Vec<f64> {
        (0..n)
            .map(|t| {
                let season = ((t % m) as f64 / m as f64 * std::f64::consts::TAU).sin() * 10.0;
                50.0 + 0.05 * t as f64 + season + ((t * 2654435761) % 5) as f64 * 0.4
            })
            .collect()
    }

    #[test]
    fn matches_batch_fit_auto_bitwise_at_every_prefix() {
        let m = 12;
        let series = synth(m * 5, m);
        let mut fc = StreamingForecaster::new(StreamingParams::new(m));
        for (t, &y) in series.iter().enumerate() {
            fc.observe(7, y);
            if t + 1 >= 2 * m {
                let batch = fit_auto(&series[..t + 1], m).unwrap();
                let best = fc.best(7).unwrap();
                assert!(best.state_eq(&batch), "diverged at prefix {}", t + 1);
                assert_eq!(best.forecast(m), batch.forecast(m));
            } else {
                assert!(fc.best(7).is_none());
            }
        }
    }

    #[test]
    fn warmup_counts_down_then_seeds() {
        let m = 8;
        let mut fc = StreamingForecaster::new(StreamingParams::new(m));
        for t in 0..2 * m {
            let obs = fc.observe(0, t as f64);
            if t + 1 < 2 * m {
                assert_eq!(
                    obs,
                    Observation::Warmup {
                        remaining: 2 * m - t - 1
                    }
                );
            } else {
                assert_eq!(obs, Observation::Seeded);
            }
        }
        assert!(fc.is_seeded(0));
        assert_eq!(fc.num_seeded(), 1);
    }

    #[test]
    fn drift_fires_on_regime_change_and_rearms() {
        let m = 8;
        let mut params = StreamingParams::new(m);
        params.watermark = 0.2;
        let mut fc = StreamingForecaster::new(params);
        // clean seasonal regime
        for t in 0..m * 6 {
            let y = 20.0 + 10.0 * ((t % m) as f64 / m as f64 * std::f64::consts::TAU).sin();
            let obs = fc.observe(3, y);
            assert!(
                !matches!(obs, Observation::Drift { .. }),
                "no drift on the learned regime (t={t}): {obs:?}"
            );
        }
        // demand triples: the rolling error must cross the watermark
        let mut drifted = false;
        for t in 0..m * 4 {
            let y = 60.0 + 30.0 * ((t % m) as f64 / m as f64 * std::f64::consts::TAU).sin();
            if let Observation::Drift { nrmse, .. } = fc.observe(3, y) {
                assert!(nrmse > params.watermark);
                drifted = true;
                break;
            }
        }
        assert!(drifted, "tripled demand must cross the watermark");
        assert_eq!(fc.drifts(), 1);
        // the window reset re-arms the signal instead of firing every bucket
        assert!(fc.nrmse(3).is_none());
    }

    #[test]
    fn configs_are_independent() {
        let m = 8;
        let mut fc = StreamingForecaster::new(StreamingParams::new(m));
        let series = synth(m * 3, m);
        for &y in &series {
            fc.observe(1, y);
        }
        assert!(fc.is_seeded(1));
        assert!(!fc.is_seeded(2));
        assert_eq!(fc.num_configs(), 1);
        fc.observe(2, 1.0);
        assert_eq!(fc.num_configs(), 2);
        assert_eq!(fc.num_seeded(), 1);
    }

    #[test]
    fn replayed_stream_is_bitwise_equal() {
        // the crash-recovery contract: re-observing the same stream from
        // scratch reproduces the controller exactly
        let m = 10;
        let series = synth(m * 4, m);
        let mut a = StreamingForecaster::new(StreamingParams::new(m));
        let mut b = StreamingForecaster::new(StreamingParams::new(m));
        for &y in &series {
            a.observe(0, y);
            a.observe(5, y * 2.0);
        }
        for &y in &series {
            b.observe(0, y);
            b.observe(5, y * 2.0);
        }
        assert!(a.models_eq(&b));
        assert_eq!(a.forecast(5, m), b.forecast(5, m));
    }

    #[test]
    fn memory_is_bounded_after_seeding() {
        let m = 6;
        let mut fc = StreamingForecaster::new(StreamingParams::new(m));
        for t in 0..m * 100 {
            fc.observe(0, (t % m) as f64);
        }
        let s = fc.configs.get(&0).unwrap();
        assert!(s.warmup.is_empty(), "warmup buffer must drain at seeding");
        assert!(s.sq_errors.len() <= fc.params.error_window);
    }
}
