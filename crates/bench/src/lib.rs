//! # sb-bench — the paper's evaluation harness
//!
//! One binary per table/figure (see `src/bin/`), plus Criterion
//! micro-benchmarks of our own implementation (see `benches/`). The shared
//! pipeline — topology, workload, top-coverage selection, envelope-day
//! reduction — lives in [`common`].

pub mod common;
pub mod load;
