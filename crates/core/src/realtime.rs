//! The real-time MP selector (§5.4): assign a DC the moment the first
//! participant joins (closest-DC heuristic), tally the call against the
//! precomputed allocation plan once its config freezes (A = 300 s in), and
//! migrate when the initial choice disagrees with the plan.
//!
//! The selector is the controller's hot path, so it must *degrade*, never
//! panic: when the allocation plan is missing, stale, or names a failed DC,
//! placement falls down a ladder — plan → locality-first → any-reachable-DC
//! — and every placement reports which [`SelectorRung`] served it. The
//! chaos engine (`sb-sim::chaos`) drives the same ladder mid-call via
//! [`RealtimeSelector::rehome_call`] when a hosting DC fails, and pushes
//! updated topology views in via [`RealtimeSelector::update_topology`].
//!
//! # Concurrency model
//!
//! Calls are independent between events; the only *shared* selector state is
//! the per-`(config, slot)` quota pools, the per-DC freeze tallies, and the
//! aggregate statistics. The state is therefore split for parallelism:
//!
//! * call → DC state lives in an [`sb_store::ShardedMap`] keyed by call id
//!   (the same store abstraction the §6.6 controller writes call state to);
//! * quota pools are a *dense table* of `AtomicU32` cells — one cell per
//!   `(config, slot, DC)` plan entry, resolved to a contiguous index range
//!   per `(config, slot)` pool at plan install — debited by CAS loops, so
//!   freezes never take a lock and contend only on the exact cell they race;
//! * per-DC freeze tallies are relaxed atomics;
//! * the topology view (latency map + per-DC health + closest-DC cache) is
//!   an immutable snapshot behind `RwLock<Arc<…>>`, swapped wholesale by
//!   [`RealtimeSelector::update_topology`]; the quota table is swapped the
//!   same way by [`RealtimeSelector::install_plan`];
//! * aggregate [`SelectorStats`] accumulate in per-field atomics that worker
//!   threads never touch per-event: workers drive a [`SelectorShard`], which
//!   batches stats locally and merges the whole delta on
//!   [`SelectorShard::flush`] (or drop).
//!
//! All public methods take `&self` and are safe to call from any thread. A
//! serial driver calling the methods in trace order remains the correctness
//! oracle: `sb-sim`'s `replay_concurrent` reproduces its aggregate results
//! exactly by keeping each quota pool's freeze sequence in trace order (see
//! that module for the equivalence argument).

use std::collections::HashMap;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use sb_net::{CountryId, DcId};
use sb_store::ShardedMap;
use sb_workload::{ConfigId, DemandMatrix};

use crate::latency::LatencyMap;
use crate::metrics::SELECTOR_SHARD_METRICS;
use crate::shares::AllocationShares;

/// Integer per-DC call quotas per `(config, slot)`, derived from the
/// fractional allocation plan by largest-remainder rounding.
#[derive(Clone, Debug, PartialEq)]
pub struct PlannedQuotas {
    slot_minutes: u32,
    start_minute: u64,
    num_slots: usize,
    quotas: HashMap<(ConfigId, usize), Vec<(DcId, u32)>>,
}

impl PlannedQuotas {
    /// Round `share × demand` into integer slots that sum to the rounded
    /// demand (largest-remainder method).
    pub fn from_plan(shares: &AllocationShares, demand: &DemandMatrix) -> PlannedQuotas {
        let mut quotas = HashMap::new();
        for (cfg, slot, fracs) in shares.iter() {
            let d = demand.get(cfg, slot).round() as u32;
            if d == 0 {
                continue;
            }
            let targets: Vec<(DcId, f64)> =
                fracs.iter().map(|&(dc, f)| (dc, f * d as f64)).collect();
            let mut counts: Vec<(DcId, u32)> = targets
                .iter()
                .map(|&(dc, t)| (dc, t.floor() as u32))
                .collect();
            let assigned: u32 = counts.iter().map(|&(_, n)| n).sum();
            let mut remainders: Vec<(usize, f64)> = targets
                .iter()
                .enumerate()
                .map(|(i, &(_, t))| (i, t - t.floor()))
                .collect();
            remainders.sort_by(|a, b| b.1.total_cmp(&a.1));
            let total_target: f64 = targets.iter().map(|&(_, t)| t).sum();
            let want = total_target.round() as u32;
            for k in 0..(want.saturating_sub(assigned)) as usize {
                let idx = remainders[k % remainders.len()].0;
                counts[idx].1 += 1;
            }
            quotas.insert((cfg, slot), counts);
        }
        PlannedQuotas {
            slot_minutes: demand.slot_minutes,
            start_minute: demand.start_minute,
            num_slots: demand.num_slots(),
            quotas,
        }
    }

    /// Rebuild quotas from explicit parts (plan reload from a persisted
    /// artifact). Entry order within each `(config, slot)` vector is
    /// preserved — it is part of the selector's tie-breaking behavior.
    pub fn from_parts(
        slot_minutes: u32,
        start_minute: u64,
        num_slots: usize,
        quotas: HashMap<(ConfigId, usize), Vec<(DcId, u32)>>,
    ) -> PlannedQuotas {
        PlannedQuotas {
            slot_minutes,
            start_minute,
            num_slots,
            quotas,
        }
    }

    /// Slot containing an absolute minute, if within the plan horizon.
    pub fn slot_of_minute(&self, minute: u64) -> Option<usize> {
        if minute < self.start_minute {
            return None;
        }
        let s = ((minute - self.start_minute) / self.slot_minutes as u64) as usize;
        (s < self.num_slots).then_some(s)
    }

    /// Total planned calls for a `(config, slot)`.
    pub fn total(&self, cfg: ConfigId, slot: usize) -> u32 {
        self.quotas
            .get(&(cfg, slot))
            .map(|v| v.iter().map(|&(_, n)| n).sum())
            .unwrap_or(0)
    }

    /// Per-DC quota entries for a `(config, slot)`, in plan order.
    pub fn get(&self, cfg: ConfigId, slot: usize) -> &[(DcId, u32)] {
        self.quotas
            .get(&(cfg, slot))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// All `(config, slot)` pools with their per-DC quota entries.
    pub fn iter(&self) -> impl Iterator<Item = ((ConfigId, usize), &[(DcId, u32)])> + '_ {
        self.quotas.iter().map(|(&k, v)| (k, v.as_slice()))
    }

    /// Slot width in minutes.
    pub fn slot_minutes(&self) -> u32 {
        self.slot_minutes
    }

    /// Absolute minute at which slot 0 starts.
    pub fn start_minute(&self) -> u64 {
        self.start_minute
    }

    /// Number of slots in the plan horizon.
    pub fn num_slots(&self) -> usize {
        self.num_slots
    }

    /// Total planned quota summed over every pool.
    pub fn total_quota(&self) -> u64 {
        self.quotas
            .values()
            .flat_map(|v| v.iter().map(|&(_, n)| n as u64))
            .sum()
    }
}

/// What happened when a call's config froze.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum FreezeDecision {
    /// Initial DC agreed with the plan (or had quota): no migration.
    Stay(DcId),
    /// Plan required a different DC: the call migrates.
    Migrate {
        /// Initial DC.
        from: DcId,
        /// Plan-mandated DC.
        to: DcId,
    },
    /// Config was not in the plan (unanticipated config, §5.4(b) last ¶),
    /// or the plan was missing/stale: the call stays at its current DC.
    Unplanned(DcId),
    /// Planned quotas for this (config, slot) were exhausted everywhere
    /// (or only at failed DCs): the call stays put, served from headroom.
    Overflow(DcId),
    /// The call's config already froze earlier: the duplicate event is a
    /// counted no-op (no second quota debit, no second tally) and the call
    /// stays where it is.
    AlreadyFrozen(DcId),
    /// `call_id` was never started (or already ended). Freezing an unknown
    /// call is a protocol anomaly; it is counted and ignored rather than
    /// crashing the controller.
    UnknownCall,
}

impl FreezeDecision {
    /// The DC the call is hosted at after the decision; `None` for
    /// [`FreezeDecision::UnknownCall`].
    pub fn final_dc(self) -> Option<DcId> {
        match self {
            FreezeDecision::Stay(d)
            | FreezeDecision::Unplanned(d)
            | FreezeDecision::Overflow(d)
            | FreezeDecision::AlreadyFrozen(d) => Some(d),
            FreezeDecision::Migrate { to, .. } => Some(to),
            FreezeDecision::UnknownCall => None,
        }
    }

    /// Did the call migrate?
    pub fn migrated(self) -> bool {
        matches!(self, FreezeDecision::Migrate { .. })
    }
}

/// Which rung of the degradation ladder served a placement
/// (plan → locality-first → any-reachable-DC).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum SelectorRung {
    /// The allocation plan named the DC (only reachable on re-homes, where
    /// the frozen config is known).
    Plan,
    /// Closest reachable DC for the relevant country (the §5.4(a) heuristic;
    /// the normal rung for call starts).
    Locality,
    /// No latency estimate for the country — any DC that is still up.
    AnyReachable,
}

/// Typed outcome of a placement attempt (call start or forced re-home).
/// Never panics: when no DC can host the call, the outcome is
/// [`SelectorOutcome::Stranded`], not a crash.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum SelectorOutcome {
    /// The call is hosted at `dc`, served by ladder rung `rung`.
    Placed {
        /// Hosting DC.
        dc: DcId,
        /// Ladder rung that produced the placement.
        rung: SelectorRung,
    },
    /// No reachable DC is up: the call cannot be hosted.
    Stranded,
}

impl SelectorOutcome {
    /// Hosting DC, if placed.
    pub fn dc(self) -> Option<DcId> {
        match self {
            SelectorOutcome::Placed { dc, .. } => Some(dc),
            SelectorOutcome::Stranded => None,
        }
    }

    /// Did the placement fail?
    pub fn is_stranded(self) -> bool {
        matches!(self, SelectorOutcome::Stranded)
    }
}

/// Aggregate selector statistics. Order-insensitive by construction: every
/// field is a count, so merging per-shard deltas in any order produces the
/// same totals as a serial run over the same events.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SelectorStats {
    /// Calls started.
    pub calls: u64,
    /// Config-freeze events that completed a tally (known call, first
    /// freeze): every one of these contributed to the per-DC tallies.
    pub freezes: u64,
    /// Calls migrated at config freeze (§6.4 metric, plan-driven).
    pub migrations: u64,
    /// Calls with a config absent from the plan.
    pub unplanned: u64,
    /// Calls whose planned quotas were exhausted.
    pub overflow: u64,
    /// Placements that found no up DC at all.
    pub stranded: u64,
    /// Mid-call re-homes forced by a failure (distinct from plan
    /// migrations — see `migrations`).
    pub forced_migrations: u64,
    /// Forced re-homes that the plan rung absorbed (quota at an up DC).
    pub rehomed_plan: u64,
    /// Placements that fell through to the any-reachable rung.
    pub degraded_any: u64,
    /// Freezes handled while the plan was marked stale/invalid.
    pub plan_stale: u64,
    /// Duplicate freeze events for already-frozen calls (counted no-ops).
    pub duplicate_freezes: u64,
    /// Freeze events for unknown call ids (counted no-ops).
    pub unknown_freezes: u64,
    /// End events for unknown call ids (counted no-ops).
    pub unknown_ends: u64,
    /// Re-home requests for unknown call ids (counted no-ops).
    pub unknown_rehomes: u64,
}

impl SelectorStats {
    /// Plan-migration rate over all started calls.
    pub fn migration_rate(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.migrations as f64 / self.calls as f64
        }
    }

    /// Add `other`'s counts into `self` (shard merge).
    pub fn merge(&mut self, other: &SelectorStats) {
        self.calls += other.calls;
        self.freezes += other.freezes;
        self.migrations += other.migrations;
        self.unplanned += other.unplanned;
        self.overflow += other.overflow;
        self.stranded += other.stranded;
        self.forced_migrations += other.forced_migrations;
        self.rehomed_plan += other.rehomed_plan;
        self.degraded_any += other.degraded_any;
        self.plan_stale += other.plan_stale;
        self.duplicate_freezes += other.duplicate_freezes;
        self.unknown_freezes += other.unknown_freezes;
        self.unknown_ends += other.unknown_ends;
        self.unknown_rehomes += other.unknown_rehomes;
    }
}

/// Shared stats sink: one relaxed `AtomicU64` per [`SelectorStats`] field,
/// so merging a shard's batched delta is a handful of `fetch_add`s instead
/// of a global mutex. Counts are order-insensitive, so any merge
/// interleaving yields the serial totals.
#[derive(Default)]
struct StatsSink {
    calls: AtomicU64,
    freezes: AtomicU64,
    migrations: AtomicU64,
    unplanned: AtomicU64,
    overflow: AtomicU64,
    stranded: AtomicU64,
    forced_migrations: AtomicU64,
    rehomed_plan: AtomicU64,
    degraded_any: AtomicU64,
    plan_stale: AtomicU64,
    duplicate_freezes: AtomicU64,
    unknown_freezes: AtomicU64,
    unknown_ends: AtomicU64,
    unknown_rehomes: AtomicU64,
}

impl StatsSink {
    /// Add a batched delta; zero fields skip the atomic entirely.
    fn merge(&self, d: &SelectorStats) {
        fn add(sink: &AtomicU64, v: u64) {
            if v != 0 {
                sink.fetch_add(v, Ordering::Relaxed);
            }
        }
        add(&self.calls, d.calls);
        add(&self.freezes, d.freezes);
        add(&self.migrations, d.migrations);
        add(&self.unplanned, d.unplanned);
        add(&self.overflow, d.overflow);
        add(&self.stranded, d.stranded);
        add(&self.forced_migrations, d.forced_migrations);
        add(&self.rehomed_plan, d.rehomed_plan);
        add(&self.degraded_any, d.degraded_any);
        add(&self.plan_stale, d.plan_stale);
        add(&self.duplicate_freezes, d.duplicate_freezes);
        add(&self.unknown_freezes, d.unknown_freezes);
        add(&self.unknown_ends, d.unknown_ends);
        add(&self.unknown_rehomes, d.unknown_rehomes);
    }

    fn snapshot(&self) -> SelectorStats {
        SelectorStats {
            calls: self.calls.load(Ordering::Relaxed),
            freezes: self.freezes.load(Ordering::Relaxed),
            migrations: self.migrations.load(Ordering::Relaxed),
            unplanned: self.unplanned.load(Ordering::Relaxed),
            overflow: self.overflow.load(Ordering::Relaxed),
            stranded: self.stranded.load(Ordering::Relaxed),
            forced_migrations: self.forced_migrations.load(Ordering::Relaxed),
            rehomed_plan: self.rehomed_plan.load(Ordering::Relaxed),
            degraded_any: self.degraded_any.load(Ordering::Relaxed),
            plan_stale: self.plan_stale.load(Ordering::Relaxed),
            duplicate_freezes: self.duplicate_freezes.load(Ordering::Relaxed),
            unknown_freezes: self.unknown_freezes.load(Ordering::Relaxed),
            unknown_ends: self.unknown_ends.load(Ordering::Relaxed),
            unknown_rehomes: self.unknown_rehomes.load(Ordering::Relaxed),
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct ActiveCall {
    dc: DcId,
    country: CountryId,
    /// `(config, slot)` recorded at freeze so a later forced re-home can
    /// try the plan rung first.
    frozen: Option<(ConfigId, usize)>,
}

/// One immutable topology snapshot: latency map, per-DC health, and the
/// derived closest-up-DC cache. Swapped wholesale on topology updates so
/// readers never observe a half-applied fault.
#[derive(Debug)]
struct TopologyView {
    dc_up: Vec<bool>,
    closest: Vec<Option<DcId>>,
}

impl TopologyView {
    fn build(latmap: &LatencyMap, dc_up: &[bool]) -> TopologyView {
        let closest = (0..latmap.num_countries())
            .map(|c| {
                latmap
                    .closest_dc_where(CountryId(c as u16), |dc| dc_up[dc.index()])
                    .map(|(dc, _)| dc)
            })
            .collect();
        TopologyView {
            dc_up: dc_up.to_vec(),
            closest,
        }
    }

    /// Locality-first → any-reachable placement for `country`.
    fn place(&self, country: CountryId) -> SelectorOutcome {
        if let Some(dc) = self.closest[country.index()] {
            return SelectorOutcome::Placed {
                dc,
                rung: SelectorRung::Locality,
            };
        }
        // no latency estimate reaches this country; last rung is any up DC
        if let Some(i) = self.dc_up.iter().position(|&up| up) {
            return SelectorOutcome::Placed {
                dc: DcId(i as u16),
                rung: SelectorRung::AnyReachable,
            };
        }
        SelectorOutcome::Stranded
    }
}

/// Shards of the active call → DC map.
const CALL_SHARDS: usize = 64;

/// Contiguous cell range of one `(config, slot)` pool inside a
/// [`QuotaTable`]. `start` doubles as the pool's stable token for
/// [`RealtimeSelector::quota_pool_token`] — unique per pool within an epoch.
#[derive(Clone, Copy, Debug)]
struct PoolRange {
    start: u32,
    len: u32,
}

/// One plan epoch's quota pools, flattened to dense parallel arrays: cell
/// `i` is one `(config, slot, DC)` plan entry, and a `(config, slot)` pool
/// is the contiguous range `index[(cfg, slot)]`, in plan-entry order (order
/// is tie-breaking-relevant). `remaining` is debited by CAS loops on the
/// freeze hot path; `consumed` counts the debits recognized in *this* epoch
/// and is what [`RealtimeSelector::install_plan`] carries across a swap so a
/// freeze is never double-counted and exhausted quota never resurrected.
///
/// The table is immutable in shape: plan swaps build a fresh table and swap
/// the `Arc` wholesale (same discipline as `TopologyView`).
#[derive(Debug)]
struct QuotaTable {
    geom: PlanGeom,
    index: HashMap<(ConfigId, usize), PoolRange>,
    dcs: Vec<DcId>,
    remaining: Vec<AtomicU32>,
    consumed: Vec<AtomicU32>,
}

/// A freshly built [`QuotaTable`] plus the carry-over accounting
/// [`PlanSwapStats`] reports.
struct TableBuild {
    table: QuotaTable,
    carried: u64,
    quota_initial: u64,
    quota_after: u64,
}

impl QuotaTable {
    /// Flatten `quotas` into dense cells, carrying `consumed` tallies from
    /// `prev` (the table being replaced) per the
    /// [`RealtimeSelector::install_plan`] swap semantics.
    fn build(epoch: u64, quotas: &PlannedQuotas, prev: Option<&QuotaTable>) -> TableBuild {
        let mut index = HashMap::new();
        let mut dcs: Vec<DcId> = Vec::new();
        let mut remaining = Vec::new();
        let mut consumed = Vec::new();
        let (mut carried, mut quota_initial, mut quota_after) = (0u64, 0u64, 0u64);
        for (key, counts) in quotas.iter() {
            let start = dcs.len() as u32;
            let prev_range = prev.and_then(|t| t.range(key.0, key.1));
            for &(dc, q) in counts {
                // first old entry for this DC in the same pool, as the
                // striped-map swap did with `iter().find(|e| e.dc == dc)`
                let was = prev_range
                    .clone()
                    .and_then(|r| {
                        let t = prev.expect("prev_range implies prev");
                        r.clone()
                            .find(|&i| t.dcs[i] == dc)
                            .map(|i| t.consumed[i].load(Ordering::Relaxed))
                    })
                    .unwrap_or(0);
                let recognized = was.min(q);
                carried += recognized as u64;
                quota_initial += q as u64;
                quota_after += (q - recognized) as u64;
                dcs.push(dc);
                remaining.push(AtomicU32::new(q - recognized));
                consumed.push(AtomicU32::new(was));
            }
            let len = dcs.len() as u32 - start;
            index.insert(key, PoolRange { start, len });
        }
        TableBuild {
            table: QuotaTable {
                geom: PlanGeom::of(epoch, quotas),
                index,
                dcs,
                remaining,
                consumed,
            },
            carried,
            quota_initial,
            quota_after,
        }
    }

    /// Cell range of a `(config, slot)` pool, if planned.
    fn range(&self, cfg: ConfigId, slot: usize) -> Option<Range<usize>> {
        self.index
            .get(&(cfg, slot))
            .map(|p| p.start as usize..(p.start + p.len) as usize)
    }

    /// CAS-debit one unit from cell `i`; `false` when the cell is exhausted.
    /// A successful debit also bumps the cell's `consumed` tally.
    fn try_debit(&self, i: usize) -> bool {
        let won = self.remaining[i]
            .fetch_update(Ordering::AcqRel, Ordering::Relaxed, |v| v.checked_sub(1))
            .is_ok();
        if won {
            self.consumed[i].fetch_add(1, Ordering::Relaxed);
        }
        won
    }

    /// Quota not yet debited, summed over every cell.
    fn remaining_total(&self) -> u64 {
        self.remaining
            .iter()
            .map(|r| r.load(Ordering::Relaxed) as u64)
            .sum()
    }
}

/// Plan geometry + version, swapped atomically alongside the quota pools by
/// [`RealtimeSelector::install_plan`] (the same snapshot-swap discipline as
/// `TopologyView`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct PlanGeom {
    epoch: u64,
    slot_minutes: u32,
    start_minute: u64,
    num_slots: usize,
}

impl PlanGeom {
    fn of(epoch: u64, q: &PlannedQuotas) -> PlanGeom {
        PlanGeom {
            epoch,
            slot_minutes: q.slot_minutes,
            start_minute: q.start_minute,
            num_slots: q.num_slots,
        }
    }

    fn slot_of_minute(&self, minute: u64) -> Option<usize> {
        if minute < self.start_minute {
            return None;
        }
        let s = ((minute - self.start_minute) / self.slot_minutes as u64) as usize;
        (s < self.num_slots).then_some(s)
    }
}

/// What a [`RealtimeSelector::install_plan`] swap did: epochs involved,
/// quota carried over, and totals before/after. `carried_consumed` is the
/// sum of already-debited freezes recognized by the new plan (capped at the
/// new per-entry quota, so over-consumption never resurrects quota).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanSwapStats {
    /// Epoch that was live before the swap.
    pub from_epoch: u64,
    /// Epoch now live.
    pub to_epoch: u64,
    /// Consumed-quota tallies carried into the new plan (Σ min(consumed,
    /// new quota) over surviving entries).
    pub carried_consumed: u64,
    /// Remaining (un-debited) quota before the swap.
    pub quota_before: u64,
    /// Remaining quota after the swap.
    pub quota_after: u64,
    /// `(config, slot)` pools in the new plan.
    pub pools: usize,
}

/// One active call, exported for a recovery cross-check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CallExport {
    /// Call id.
    pub id: u64,
    /// DC currently hosting the call.
    pub dc: DcId,
    /// First joiner's country (drives the locality rung).
    pub country: CountryId,
    /// `(config, slot)` recorded at freeze, if the call has frozen.
    pub frozen: Option<(ConfigId, usize)>,
}

/// One quota cell (a `(config, slot, DC)` plan entry), exported for a
/// recovery cross-check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QuotaCellExport {
    /// Config the cell belongs to.
    pub config: ConfigId,
    /// Plan slot the cell belongs to.
    pub slot: usize,
    /// DC the quota is granted at.
    pub dc: DcId,
    /// Quota not yet debited.
    pub remaining: u32,
    /// Debits recognized in this epoch.
    pub consumed: u32,
}

/// A deterministic snapshot of everything a crash-recovery path must
/// rebuild: plan epoch/validity, the live call map, every quota cell's
/// debit state, per-DC tallies, and aggregate stats. Two selectors that
/// compare equal here are behaviorally indistinguishable to every future
/// operation — the recovery differential's definition of "bitwise
/// identical".
#[derive(Clone, Debug, PartialEq)]
pub struct SelectorStateExport {
    /// Epoch of the installed plan.
    pub plan_epoch: u64,
    /// Whether the plan is currently trusted.
    pub plan_valid: bool,
    /// Active calls, sorted by id.
    pub calls: Vec<CallExport>,
    /// Quota cells, sorted by `(config, slot)` pool; cell order within a
    /// pool preserved (it is tie-breaking-relevant).
    pub cells: Vec<QuotaCellExport>,
    /// Completed freeze tallies per DC.
    pub per_dc_tallies: Vec<u64>,
    /// Aggregate selector statistics.
    pub stats: SelectorStats,
}

/// How [`RealtimeSelector::restore_freeze`] should re-apply a recovered
/// freeze's quota debit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RestoreDebit {
    /// No quota was debited (unplanned / overflow / stale-plan freezes).
    None,
    /// Debit the first cell of this DC with quota left, in plan-entry order
    /// — the [`FreezeDecision::Stay`] debit rule.
    FirstOf(DcId),
    /// Debit the max-remaining cell of this DC, later ties winning — the
    /// [`FreezeDecision::Migrate`] debit rule, restricted to the recorded
    /// winner's DC (the global maximum lived there, so the restriction
    /// picks the same cell).
    BestOf(DcId),
}

/// The real-time selector state machine.
///
/// Owns its topology view (latency map + per-DC health) so the chaos engine
/// can swap it mid-replay as faults hit and recover. All methods take
/// `&self` and are thread-safe; see the module docs for the sharding model
/// and [`RealtimeSelector::shard`] for the batched-stats worker handle.
pub struct RealtimeSelector {
    topo: RwLock<Arc<TopologyView>>,
    plan_valid: AtomicBool,
    plan: RwLock<Arc<QuotaTable>>,
    quota_initial: AtomicU64,
    active: ShardedMap<u64, ActiveCall>,
    dc_tally: Vec<AtomicU64>,
    stats: StatsSink,
    shard_seq: AtomicUsize,
}

impl RealtimeSelector {
    /// Build a selector from a plan artifact: the boot plan is the same
    /// first-class [`PlanArtifact`] that [`RealtimeSelector::install_plan`]
    /// swaps in later, so the epoch-0 state needs no special case. All DCs
    /// start healthy and the plan starts valid, at the artifact's epoch.
    ///
    /// [`PlanArtifact`]: crate::plan::PlanArtifact
    pub fn from_artifact(
        latmap: &LatencyMap,
        artifact: &crate::plan::PlanArtifact,
    ) -> RealtimeSelector {
        Self::from_quotas(latmap, artifact.epoch, &artifact.quotas)
    }

    fn from_quotas(latmap: &LatencyMap, epoch: u64, quotas: &PlannedQuotas) -> RealtimeSelector {
        let dc_up = vec![true; latmap.num_dcs()];
        let view = TopologyView::build(latmap, &dc_up);
        let built = QuotaTable::build(epoch, quotas, None);
        RealtimeSelector {
            topo: RwLock::new(Arc::new(view)),
            plan_valid: AtomicBool::new(true),
            plan: RwLock::new(Arc::new(built.table)),
            quota_initial: AtomicU64::new(built.quota_initial),
            active: ShardedMap::new(CALL_SHARDS),
            dc_tally: (0..latmap.num_dcs()).map(|_| AtomicU64::new(0)).collect(),
            stats: StatsSink::default(),
            shard_seq: AtomicUsize::new(0),
        }
    }

    /// Atomically swap in a new allocation plan, carrying already-consumed
    /// quota tallies into the new pools.
    ///
    /// Swap semantics, for each `(config, slot, dc)` entry of the new plan:
    ///
    /// * `consumed` freezes already debited in the old plan stay debited —
    ///   the entry starts with `remaining = new_quota - min(consumed,
    ///   new_quota)`, so a freeze is never double-counted and shrinking a
    ///   quota below what was already used cannot go negative;
    /// * consumption beyond the new quota is remembered in full, so a later
    ///   plan that re-grows the quota does not resurrect spent capacity;
    /// * pools absent from the new plan are dropped outright (their quota is
    ///   not resurrected elsewhere).
    ///
    /// Installing a byte-identical artifact is a behavioral no-op: every
    /// entry rebuilds to exactly its pre-swap state, in the same order (entry
    /// order is tie-breaking-relevant).
    ///
    /// The swap follows the same discipline as
    /// [`RealtimeSelector::update_topology`]: concurrent drivers must only
    /// call it at a window barrier with no in-flight shard operations. It
    /// also marks the plan valid — installing a plan is what ends a
    /// stale-plan window.
    pub fn install_plan(&self, artifact: &crate::plan::PlanArtifact) -> PlanSwapStats {
        let m = crate::metrics::plan_metrics();
        let _t = m.swap_ns.start_timer();
        // Build the new table from the old one's consumed tallies (barrier
        // contract: no concurrent freeze can race this), then swap the Arc.
        let old = self.table();
        let from_epoch = old.geom.epoch;
        let quota_before = old.remaining_total();
        let built = QuotaTable::build(artifact.epoch, &artifact.quotas, Some(&old));
        let pools_n = built.table.index.len();
        self.quota_initial
            .store(built.quota_initial, Ordering::Relaxed);
        *self.plan.write() = Arc::new(built.table);
        self.plan_valid.store(true, Ordering::Relaxed);
        m.epochs_installed.inc();
        m.carryover_quota.add(built.carried);
        PlanSwapStats {
            from_epoch,
            to_epoch: artifact.epoch,
            carried_consumed: built.carried,
            quota_before,
            quota_after: built.quota_after,
            pools: pools_n,
        }
    }

    /// Epoch of the currently installed plan (the boot artifact's epoch
    /// until the first [`RealtimeSelector::install_plan`]).
    pub fn plan_epoch(&self) -> u64 {
        self.table().geom.epoch
    }

    fn topo_view(&self) -> Arc<TopologyView> {
        self.topo.read().clone()
    }

    fn table(&self) -> Arc<QuotaTable> {
        self.plan.read().clone()
    }

    /// Swap in a new topology view (latency map + per-DC health), e.g. after
    /// a fault or a recovery. Existing placements are untouched; call
    /// [`rehome_call`] for calls hosted at DCs that just went down.
    ///
    /// Concurrent drivers must only call this at a window barrier (no
    /// in-flight shard ops): live [`SelectorShard`]s keep serving their
    /// cached snapshot until [`SelectorShard::refresh_topology`].
    ///
    /// [`rehome_call`]: RealtimeSelector::rehome_call
    pub fn update_topology(&self, latmap: &LatencyMap, dc_up: &[bool]) {
        debug_assert_eq!(latmap.num_dcs(), dc_up.len());
        *self.topo.write() = Arc::new(TopologyView::build(latmap, dc_up));
    }

    /// Mark the allocation plan stale (`false`) or valid again (`true`). A
    /// stale plan takes the plan rung out of the ladder: freezes degrade to
    /// [`FreezeDecision::Unplanned`] instead of consulting quotas.
    pub fn set_plan_valid(&self, valid: bool) {
        self.plan_valid.store(valid, Ordering::Relaxed);
    }

    /// Is the plan currently trusted?
    pub fn plan_valid(&self) -> bool {
        self.plan_valid.load(Ordering::Relaxed)
    }

    /// Is `dc` currently considered up?
    pub fn dc_up(&self, dc: DcId) -> bool {
        self.topo.read().dc_up[dc.index()]
    }

    /// Slot of the quota plan containing `minute` (replay drivers use this
    /// to group freeze events by the quota pool they will debit).
    pub fn plan_slot_of_minute(&self, minute: u64) -> Option<usize> {
        self.table().geom.slot_of_minute(minute)
    }

    /// Stable token of the quota pool a freeze for `(cfg, call_start_minute)`
    /// would debit under the current plan, or `None` when such a freeze
    /// resolves without touching quota (no slot for the minute, or the pool
    /// is absent from the plan → [`FreezeDecision::Unplanned`]).
    ///
    /// Concurrent drivers partition call lifecycles by this token so every
    /// pool's freeze sequence is driven by one worker in trace order — the
    /// serial-equivalence requirement — without any cross-worker barrier.
    /// Tokens are only comparable within one plan epoch; re-resolve after
    /// [`RealtimeSelector::install_plan`].
    pub fn quota_pool_token(&self, cfg: ConfigId, call_start_minute: u64) -> Option<u64> {
        let t = self.table();
        let slot = t.geom.slot_of_minute(call_start_minute)?;
        t.index.get(&(cfg, slot)).map(|p| p.start as u64)
    }

    /// Total planned quota across all pools of the current plan epoch.
    pub fn quota_initial_total(&self) -> u64 {
        self.quota_initial.load(Ordering::Relaxed)
    }

    /// Quota not yet debited, summed across all pools.
    pub fn quota_remaining_total(&self) -> u64 {
        self.table().remaining_total()
    }

    /// Freezes debited against the current plan epoch and recognized by it
    /// (Σ min(consumed, quota) per entry): equals `quota_initial_total() -
    /// quota_remaining_total()` at all times.
    pub fn quota_consumed_total(&self) -> u64 {
        self.quota_initial_total() - self.quota_remaining_total()
    }

    /// Completed config-freeze tallies per DC (index = DC id): how many
    /// calls finalized at each DC. `sum(per_dc_tallies) == stats().freezes`
    /// under any interleaving — the invariant the concurrent property tests
    /// pin down.
    pub fn per_dc_tallies(&self) -> Vec<u64> {
        self.dc_tally
            .iter()
            .map(|t| t.load(Ordering::Relaxed))
            .collect()
    }

    /// Best live candidate cell of `pool` that passes `keep`: maximum
    /// `remaining`, later cells winning ties (exactly `max_by_key` over the
    /// old striped entries, whose `max` kept the *last* maximum).
    fn best_cell(
        table: &QuotaTable,
        topo: &TopologyView,
        pool: Range<usize>,
        keep: impl Fn(DcId) -> bool,
    ) -> Option<(usize, u32)> {
        let mut best: Option<(usize, u32)> = None;
        for i in pool {
            let dc = table.dcs[i];
            if !topo.dc_up[dc.index()] || !keep(dc) {
                continue;
            }
            let r = table.remaining[i].load(Ordering::Relaxed);
            if r > 0 && best.is_none_or(|(_, br)| r >= br) {
                best = Some((i, r));
            }
        }
        best
    }

    /// CAS-debit the best candidate of `pool`, rescanning when a racing
    /// debit wins the cell first. Returns the debited DC, or `None` when no
    /// candidate has quota left.
    fn debit_best(
        table: &QuotaTable,
        topo: &TopologyView,
        pool: Range<usize>,
        keep: impl Fn(DcId) -> bool,
    ) -> Option<DcId> {
        loop {
            let (i, r) = Self::best_cell(table, topo, pool.clone(), &keep)?;
            if table.remaining[i]
                .compare_exchange(r, r - 1, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                table.consumed[i].fetch_add(1, Ordering::Relaxed);
                return Some(table.dcs[i]);
            }
            // lost the cell to a concurrent debit: re-rank and retry
            crate::metrics::realtime_metrics().pool_contention.inc();
        }
    }

    fn record_rung(st: &mut SelectorStats, rung: SelectorRung) {
        let m = crate::metrics::realtime_metrics();
        match rung {
            SelectorRung::Plan => st.rehomed_plan += 1,
            SelectorRung::Locality => {}
            SelectorRung::AnyReachable => {
                st.degraded_any += 1;
                m.degraded_any.inc();
            }
        }
    }

    fn start_core(
        &self,
        topo: &TopologyView,
        st: &mut SelectorStats,
        call_id: u64,
        first_joiner: CountryId,
    ) -> SelectorOutcome {
        let m = crate::metrics::realtime_metrics();
        let _t = m.selection_ns.start_timer();
        st.calls += 1;
        let outcome = topo.place(first_joiner);
        match outcome {
            SelectorOutcome::Placed { dc, rung } => {
                m.assignments.inc();
                Self::record_rung(st, rung);
                self.active.insert(
                    call_id,
                    ActiveCall {
                        dc,
                        country: first_joiner,
                        frozen: None,
                    },
                );
            }
            SelectorOutcome::Stranded => {
                st.stranded += 1;
                m.stranded.inc();
            }
        }
        outcome
    }

    /// Quota consultation for one freeze. Caller holds the call's shard
    /// lock; quota cells are debited lock-free by CAS, so there is no pool
    /// lock to order against.
    fn decide_freeze(
        &self,
        topo: &TopologyView,
        table: &QuotaTable,
        st: &mut SelectorStats,
        current: DcId,
        cfg: ConfigId,
        slot: Option<usize>,
    ) -> FreezeDecision {
        let m = crate::metrics::realtime_metrics();
        if !self.plan_valid.load(Ordering::Relaxed) {
            st.plan_stale += 1;
            st.unplanned += 1;
            m.unplanned.inc();
            return FreezeDecision::Unplanned(current);
        }
        let Some(slot) = slot else {
            st.unplanned += 1;
            m.unplanned.inc();
            return FreezeDecision::Unplanned(current);
        };
        let Some(pool) = table.range(cfg, slot) else {
            st.unplanned += 1;
            m.unplanned.inc();
            return FreezeDecision::Unplanned(current);
        };
        // current DC still has quota → debit and stay (first cell of the
        // current DC with quota, in plan-entry order, as before)
        if topo.dc_up[current.index()] {
            for i in pool.clone() {
                if table.dcs[i] == current && table.try_debit(i) {
                    return FreezeDecision::Stay(current);
                }
            }
        }
        // otherwise migrate to the up planned DC with the most remaining
        // quota (failed DCs hold dead quota — skip them)
        if let Some(to) = Self::debit_best(table, topo, pool, |_| true) {
            st.migrations += 1;
            m.migrations.inc();
            return FreezeDecision::Migrate { from: current, to };
        }
        st.overflow += 1;
        m.overflow.inc();
        FreezeDecision::Overflow(current)
    }

    fn freeze_core(
        &self,
        topo: &TopologyView,
        table: &QuotaTable,
        st: &mut SelectorStats,
        call_id: u64,
        cfg: ConfigId,
        call_start_minute: u64,
    ) -> FreezeDecision {
        let m = crate::metrics::realtime_metrics();
        let _t = m.selection_ns.start_timer();
        m.freezes.inc();
        let slot = table.geom.slot_of_minute(call_start_minute);
        let mut decision = None;
        let known = self.active.update(&call_id, |call| {
            if call.frozen.is_some() {
                decision = Some(FreezeDecision::AlreadyFrozen(call.dc));
                return;
            }
            let current = call.dc;
            if let Some(s) = slot {
                call.frozen = Some((cfg, s));
            }
            let d = self.decide_freeze(topo, table, st, current, cfg, slot);
            if let FreezeDecision::Migrate { to, .. } = d {
                call.dc = to;
            }
            decision = Some(d);
        });
        if !known {
            st.unknown_freezes += 1;
            m.unknown_events.inc();
            return FreezeDecision::UnknownCall;
        }
        // `known` implies the closure ran and set `decision`; stay
        // panic-free regardless.
        let d = decision.unwrap_or(FreezeDecision::UnknownCall);
        match d {
            FreezeDecision::AlreadyFrozen(_) => {
                st.duplicate_freezes += 1;
                m.duplicate_freezes.inc();
            }
            FreezeDecision::UnknownCall => {}
            _ => {
                st.freezes += 1;
                if let Some(dc) = d.final_dc() {
                    self.dc_tally[dc.index()].fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        d
    }

    fn rehome_core(
        &self,
        topo: &TopologyView,
        table: &QuotaTable,
        st: &mut SelectorStats,
        call_id: u64,
    ) -> SelectorOutcome {
        let m = crate::metrics::realtime_metrics();
        let _t = m.selection_ns.start_timer();
        let mut outcome = None;
        let mut old_dc = None;
        let known = self.active.update(&call_id, |call| {
            let (old, country, frozen) = (call.dc, call.country, call.frozen);
            old_dc = Some(old);
            // plan rung: only for frozen calls with live quota at an up DC
            let mut out = None;
            if self.plan_valid.load(Ordering::Relaxed) {
                if let Some(pool) = frozen.and_then(|key| table.range(key.0, key.1)) {
                    if let Some(dc) = Self::debit_best(table, topo, pool, |dc| dc != old) {
                        out = Some(SelectorOutcome::Placed {
                            dc,
                            rung: SelectorRung::Plan,
                        });
                    }
                }
            }
            let out = out.unwrap_or_else(|| topo.place(country));
            if let SelectorOutcome::Placed { dc, .. } = out {
                call.dc = dc;
            }
            outcome = Some(out);
        });
        if !known {
            st.unknown_rehomes += 1;
            m.unknown_events.inc();
            return SelectorOutcome::Stranded;
        }
        let outcome = outcome.unwrap_or(SelectorOutcome::Stranded);
        match outcome {
            SelectorOutcome::Placed { dc, rung } => {
                Self::record_rung(st, rung);
                if old_dc != Some(dc) {
                    st.forced_migrations += 1;
                    m.forced_migrations.inc();
                }
            }
            SelectorOutcome::Stranded => {
                st.stranded += 1;
                m.stranded.inc();
                self.active.remove(&call_id);
            }
        }
        outcome
    }

    fn end_core(&self, st: &mut SelectorStats, call_id: u64) {
        if self.active.remove(&call_id).is_none() {
            st.unknown_ends += 1;
            crate::metrics::realtime_metrics().unknown_events.inc();
        }
    }

    /// First participant joined: assign the DC closest to them (§5.4(a)),
    /// falling down the ladder when locality cannot serve. Never panics: a
    /// country with no reachable DC yields [`SelectorOutcome::Stranded`]
    /// and the call is not tracked.
    pub fn call_start(&self, call_id: u64, first_joiner: CountryId) -> SelectorOutcome {
        let topo = self.topo_view();
        let mut st = SelectorStats::default();
        let out = self.start_core(&topo, &mut st, call_id, first_joiner);
        self.stats.merge(&st);
        out
    }

    /// The call's config froze (A minutes in): tally against the plan and
    /// decide whether to migrate (§5.4(b)(c)).
    ///
    /// Never panics: an unknown `call_id` returns
    /// [`FreezeDecision::UnknownCall`] (counted), a repeat freeze returns
    /// [`FreezeDecision::AlreadyFrozen`] (counted, no second debit), a stale
    /// plan degrades to [`FreezeDecision::Unplanned`], and quota held only
    /// by failed DCs degrades to [`FreezeDecision::Overflow`].
    pub fn config_frozen(
        &self,
        call_id: u64,
        cfg: ConfigId,
        call_start_minute: u64,
    ) -> FreezeDecision {
        let topo = self.topo_view();
        let table = self.table();
        let mut st = SelectorStats::default();
        let d = self.freeze_core(&topo, &table, &mut st, call_id, cfg, call_start_minute);
        self.stats.merge(&st);
        d
    }

    /// A failure displaced this call (its hosting DC went down): re-home it
    /// down the full ladder — plan (if the config froze and quota remains at
    /// an up DC) → locality → any-reachable. A successful re-home counts as
    /// a *forced* migration; [`SelectorOutcome::Stranded`] drops the call.
    pub fn rehome_call(&self, call_id: u64) -> SelectorOutcome {
        let topo = self.topo_view();
        let table = self.table();
        let mut st = SelectorStats::default();
        let out = self.rehome_core(&topo, &table, &mut st, call_id);
        self.stats.merge(&st);
        out
    }

    /// The call ended; release its bookkeeping. Unknown ids are counted
    /// no-ops (the call may have been stranded and dropped mid-flight).
    pub fn call_end(&self, call_id: u64) {
        let mut st = SelectorStats::default();
        self.end_core(&mut st, call_id);
        self.stats.merge(&st);
    }

    /// DC currently hosting a call.
    pub fn current_dc(&self, call_id: u64) -> Option<DcId> {
        self.active.get(&call_id).map(|c| c.dc)
    }

    /// Ids of calls currently hosted at `dc` (chaos engine: the blast
    /// radius of a DC failure).
    pub fn calls_at(&self, dc: DcId) -> Vec<u64> {
        let mut ids = Vec::new();
        self.active.for_each(|&id, c| {
            if c.dc == dc {
                ids.push(id);
            }
        });
        ids.sort_unstable();
        ids
    }

    /// Number of currently-active calls.
    pub fn active_calls(&self) -> usize {
        self.active.len()
    }

    /// Snapshot of the statistics so far (shared totals; un-flushed
    /// [`SelectorShard`] deltas are not yet included).
    pub fn stats(&self) -> SelectorStats {
        self.stats.snapshot()
    }

    /// Export a deterministic snapshot of the selector's entire mutable
    /// state (see [`SelectorStateExport`]). Not linearizable under
    /// concurrent mutation — call it quiesced, as recovery cross-checks do.
    pub fn export_state(&self) -> SelectorStateExport {
        let table = self.table();
        let mut calls: Vec<CallExport> = Vec::new();
        self.active.for_each(|&id, c| {
            calls.push(CallExport {
                id,
                dc: c.dc,
                country: c.country,
                frozen: c.frozen,
            });
        });
        calls.sort_unstable_by_key(|c| c.id);
        let mut pools: Vec<(ConfigId, usize)> = table.index.keys().copied().collect();
        pools.sort_unstable_by_key(|&(cfg, slot)| (cfg.index(), slot));
        let mut cells = Vec::new();
        for (cfg, slot) in pools {
            if let Some(range) = table.range(cfg, slot) {
                for i in range {
                    cells.push(QuotaCellExport {
                        config: cfg,
                        slot,
                        dc: table.dcs[i],
                        remaining: table.remaining[i].load(Ordering::Relaxed),
                        consumed: table.consumed[i].load(Ordering::Relaxed),
                    });
                }
            }
        }
        SelectorStateExport {
            plan_epoch: table.geom.epoch,
            plan_valid: self.plan_valid(),
            calls,
            cells,
            per_dc_tallies: self.per_dc_tallies(),
            stats: self.stats(),
        }
    }

    /// Recovery: re-insert an admitted call exactly as a journaled
    /// [`RealtimeSelector::call_start`] left it — no placement logic runs
    /// and no statistics move (the recovery driver replays the recorded
    /// decision and accounts stats separately).
    pub fn restore_call(&self, call_id: u64, first_joiner: CountryId, dc: DcId) {
        self.active.insert(
            call_id,
            ActiveCall {
                dc,
                country: first_joiner,
                frozen: None,
            },
        );
    }

    /// Recovery: re-apply a journaled freeze *decision* — mark the call
    /// frozen at `frozen`, move it to `final_dc`, re-debit quota per
    /// `debit`, and bump the per-DC tally when `tally`. Returns `false`
    /// when the call is not live (an inconsistent journal). Statistics do
    /// not move; the recovery driver accounts them from the record.
    pub fn restore_freeze(
        &self,
        call_id: u64,
        frozen: Option<(ConfigId, usize)>,
        final_dc: DcId,
        debit: RestoreDebit,
        tally: bool,
    ) -> bool {
        let table = self.table();
        let known = self.active.update(&call_id, |call| {
            call.frozen = frozen;
            call.dc = final_dc;
        });
        if !known {
            return false;
        }
        let pool = frozen.and_then(|(cfg, s)| table.range(cfg, s));
        match (debit, pool) {
            (RestoreDebit::None, _) | (_, None) => {}
            (RestoreDebit::FirstOf(dc), Some(pool)) => {
                for i in pool {
                    if table.dcs[i] == dc && table.try_debit(i) {
                        break;
                    }
                }
            }
            (RestoreDebit::BestOf(dc), Some(pool)) => {
                let mut best: Option<(usize, u32)> = None;
                for i in pool {
                    if table.dcs[i] != dc {
                        continue;
                    }
                    let r = table.remaining[i].load(Ordering::Relaxed);
                    if r > 0 && best.is_none_or(|(_, br)| r >= br) {
                        best = Some((i, r));
                    }
                }
                if let Some((i, _)) = best {
                    table.try_debit(i);
                }
            }
        }
        if tally {
            self.dc_tally[final_dc.index()].fetch_add(1, Ordering::Relaxed);
        }
        true
    }

    /// Recovery: re-apply a journaled forced re-home *decision* — move the
    /// call to `dc` preserving its frozen key, re-debiting quota when the
    /// recorded rung was the plan rung (the [`RestoreDebit::BestOf`]
    /// mirror, matching what [`RealtimeSelector::rehome_call`] debited).
    /// Returns the DC the call occupied before, or `None` when the call is
    /// not live (an inconsistent journal). Statistics do not move; the
    /// recovery driver accounts them from the record.
    pub fn restore_rehome(&self, call_id: u64, dc: DcId, plan_rung: bool) -> Option<DcId> {
        let mut old = None;
        let mut frozen_key = None;
        let known = self.active.update(&call_id, |call| {
            old = Some(call.dc);
            frozen_key = call.frozen;
            call.dc = dc;
        });
        if !known {
            return None;
        }
        if plan_rung {
            let table = self.table();
            if let Some(pool) = frozen_key.and_then(|(cfg, s)| table.range(cfg, s)) {
                let mut best: Option<(usize, u32)> = None;
                for i in pool {
                    if table.dcs[i] != dc {
                        continue;
                    }
                    let r = table.remaining[i].load(Ordering::Relaxed);
                    if r > 0 && best.is_none_or(|(_, br)| r >= br) {
                        best = Some((i, r));
                    }
                }
                if let Some((i, _)) = best {
                    table.try_debit(i);
                }
            }
        }
        old
    }

    /// Merge a statistics delta straight into the aggregate counters —
    /// recovery drivers rebuild stats from journaled decisions and land
    /// them here in one shot.
    pub fn add_stats(&self, delta: &SelectorStats) {
        self.stats.merge(delta);
    }

    /// A worker handle for one replay thread: caches the topology and
    /// quota-table snapshots and batches statistics locally so per-event
    /// work never touches shared selector state beyond the CAS cells it
    /// debits. Merge explicitly with [`SelectorShard::flush`]; dropping the
    /// shard flushes too.
    pub fn shard(&self) -> SelectorShard<'_> {
        SelectorShard {
            sel: self,
            topo: self.topo_view(),
            table: self.table(),
            stats: SelectorStats::default(),
            id: self.shard_seq.fetch_add(1, Ordering::Relaxed),
        }
    }
}

/// A per-worker view of a [`RealtimeSelector`].
///
/// Shares the selector's call map, quota pools, and tallies; keeps its own
/// [`SelectorStats`] delta and topology snapshot. Serial-equivalence rules
/// for concurrent drivers (see `sb-sim::replay_concurrent`):
///
/// * one call's events must be driven in trace order (start → freeze → end);
/// * freezes debiting the same `(config, slot)` pool must be driven in
///   trace order relative to each other (partition calls by
///   [`RealtimeSelector::quota_pool_token`]);
/// * topology updates, plan swaps, and plan validity flips must happen at
///   barriers, with [`SelectorShard::refresh_topology`] called (or fresh
///   shards created) before the next segment.
pub struct SelectorShard<'a> {
    sel: &'a RealtimeSelector,
    topo: Arc<TopologyView>,
    table: Arc<QuotaTable>,
    stats: SelectorStats,
    id: usize,
}

impl SelectorShard<'_> {
    fn metric_slot(&self) -> usize {
        self.id % SELECTOR_SHARD_METRICS
    }

    /// Re-read the selector's topology and quota-table snapshots (call
    /// after [`RealtimeSelector::update_topology`] or
    /// [`RealtimeSelector::install_plan`], at a segment barrier).
    pub fn refresh_topology(&mut self) {
        self.topo = self.sel.topo_view();
        self.table = self.sel.table();
    }

    /// Shard-local [`RealtimeSelector::call_start`].
    pub fn call_start(&mut self, call_id: u64, first_joiner: CountryId) -> SelectorOutcome {
        let m = crate::metrics::realtime_metrics();
        m.shard_ops[self.metric_slot()].inc();
        let _t = m.shard_selection_ns[self.metric_slot()].start_timer();
        self.sel
            .start_core(&self.topo, &mut self.stats, call_id, first_joiner)
    }

    /// Shard-local [`RealtimeSelector::config_frozen`].
    pub fn config_frozen(
        &mut self,
        call_id: u64,
        cfg: ConfigId,
        call_start_minute: u64,
    ) -> FreezeDecision {
        let m = crate::metrics::realtime_metrics();
        m.shard_ops[self.metric_slot()].inc();
        let _t = m.shard_selection_ns[self.metric_slot()].start_timer();
        self.sel.freeze_core(
            &self.topo,
            &self.table,
            &mut self.stats,
            call_id,
            cfg,
            call_start_minute,
        )
    }

    /// Shard-local [`RealtimeSelector::rehome_call`].
    pub fn rehome_call(&mut self, call_id: u64) -> SelectorOutcome {
        let m = crate::metrics::realtime_metrics();
        m.shard_ops[self.metric_slot()].inc();
        let _t = m.shard_selection_ns[self.metric_slot()].start_timer();
        self.sel
            .rehome_core(&self.topo, &self.table, &mut self.stats, call_id)
    }

    /// Shard-local [`RealtimeSelector::call_end`].
    pub fn call_end(&mut self, call_id: u64) {
        let m = crate::metrics::realtime_metrics();
        m.shard_ops[self.metric_slot()].inc();
        self.sel.end_core(&mut self.stats, call_id)
    }

    /// Current DC of a call (reads the shared map).
    pub fn current_dc(&self, call_id: u64) -> Option<DcId> {
        self.sel.current_dc(call_id)
    }

    /// Merge this shard's batched stats into the selector's shared totals
    /// (per-field atomic adds; no lock).
    pub fn flush(&mut self) {
        let local = std::mem::take(&mut self.stats);
        if local != SelectorStats::default() {
            crate::metrics::realtime_metrics().shard_flushes.inc();
            self.sel.stats.merge(&local);
        }
    }
}

impl Drop for SelectorShard<'_> {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_workload::{CallConfig, ConfigCatalog, MediaType};

    /// 2 countries × 2 DCs; country 0 → DC 0, country 1 → DC 1.
    fn latmap() -> LatencyMap {
        LatencyMap::from_matrix(vec![
            vec![Some(5.0), Some(50.0)],
            vec![Some(50.0), Some(5.0)],
        ])
    }

    fn catalog() -> (ConfigCatalog, ConfigId) {
        let mut cat = ConfigCatalog::new();
        let id = cat.intern(CallConfig::new(vec![(CountryId(0), 2)], MediaType::Audio));
        (cat, id)
    }

    fn quotas_for(cfg: ConfigId, fracs: Vec<(DcId, f64)>, demand_count: f64) -> PlannedQuotas {
        let mut shares = AllocationShares::new(1);
        shares.set(cfg, 0, fracs);
        let mut demand = DemandMatrix::zero(cfg.index() + 1, 1, 30, 0);
        demand.set(cfg, 0, demand_count);
        PlannedQuotas::from_plan(&shares, &demand)
    }

    fn selector_of(lm: &LatencyMap, q: PlannedQuotas) -> RealtimeSelector {
        RealtimeSelector::from_artifact(lm, &crate::plan::PlanArtifact::seed(q))
    }

    #[test]
    fn largest_remainder_preserves_total() {
        let (_, cfg) = catalog();
        let q = quotas_for(
            cfg,
            vec![(DcId(0), 0.8), (DcId(1), 0.1), (DcId(0), 0.0)],
            100.0,
        );
        // 0.9 placed fraction: totals round to 90
        assert_eq!(q.total(cfg, 0), 90);
        let q = quotas_for(cfg, vec![(DcId(0), 1.0 / 3.0), (DcId(1), 2.0 / 3.0)], 10.0);
        assert_eq!(q.total(cfg, 0), 10);
    }

    #[test]
    fn stay_when_quota_available() {
        let lm = latmap();
        let (_, cfg) = catalog();
        let q = quotas_for(cfg, vec![(DcId(0), 1.0)], 2.0);
        let sel = selector_of(&lm, q);
        assert_eq!(sel.quota_initial_total(), 2);
        let out = sel.call_start(1, CountryId(0));
        assert_eq!(
            out,
            SelectorOutcome::Placed {
                dc: DcId(0),
                rung: SelectorRung::Locality
            }
        );
        let d = sel.config_frozen(1, cfg, 0);
        assert_eq!(d, FreezeDecision::Stay(DcId(0)));
        assert_eq!(sel.stats().migrations, 0);
        assert_eq!(sel.stats().freezes, 1);
        assert_eq!(sel.quota_remaining_total(), 1);
        assert_eq!(sel.per_dc_tallies(), vec![1, 0]);
    }

    #[test]
    fn migrate_when_plan_disagrees() {
        let lm = latmap();
        let (_, cfg) = catalog();
        // plan puts everything on DC1 but the first joiner is closest to DC0
        let q = quotas_for(cfg, vec![(DcId(1), 1.0)], 5.0);
        let sel = selector_of(&lm, q);
        sel.call_start(7, CountryId(0));
        let d = sel.config_frozen(7, cfg, 10);
        assert_eq!(
            d,
            FreezeDecision::Migrate {
                from: DcId(0),
                to: DcId(1)
            }
        );
        assert!(d.migrated());
        assert_eq!(sel.current_dc(7), Some(DcId(1)));
        assert_eq!(sel.stats().migrations, 1);
        assert_eq!(sel.per_dc_tallies(), vec![0, 1]);
    }

    #[test]
    fn quota_exhaustion_forces_migration_of_later_calls() {
        let lm = latmap();
        let (_, cfg) = catalog();
        // plan: 2 calls at DC0, 1 at DC1
        let q = quotas_for(cfg, vec![(DcId(0), 2.0 / 3.0), (DcId(1), 1.0 / 3.0)], 3.0);
        let sel = selector_of(&lm, q);
        for id in 0..3u64 {
            sel.call_start(id, CountryId(0));
        }
        assert_eq!(sel.config_frozen(0, cfg, 0), FreezeDecision::Stay(DcId(0)));
        assert_eq!(sel.config_frozen(1, cfg, 0), FreezeDecision::Stay(DcId(0)));
        // third call: DC0 exhausted → migrate to DC1
        assert!(sel.config_frozen(2, cfg, 0).migrated());
        // a fourth call overflows
        sel.call_start(3, CountryId(0));
        assert!(matches!(
            sel.config_frozen(3, cfg, 0),
            FreezeDecision::Overflow(_)
        ));
        assert_eq!(sel.stats().overflow, 1);
        assert!((sel.stats().migration_rate() - 0.25).abs() < 1e-12);
        // quota conservation: debits == freezes - unplanned - overflow
        let st = sel.stats();
        assert_eq!(
            sel.quota_initial_total() - sel.quota_remaining_total(),
            st.freezes - st.unplanned - st.overflow
        );
    }

    #[test]
    fn unplanned_config_stays_closest() {
        let lm = latmap();
        let (_, cfg) = catalog();
        let q = quotas_for(cfg, vec![(DcId(0), 1.0)], 1.0);
        let sel = selector_of(&lm, q);
        sel.call_start(1, CountryId(1));
        // a config id the plan never saw
        let other = ConfigId(42);
        let d = sel.config_frozen(1, other, 0);
        assert!(matches!(d, FreezeDecision::Unplanned(_)));
        assert_eq!(d.final_dc(), Some(DcId(1)));
        sel.call_end(1);
        assert_eq!(sel.current_dc(1), None);
    }

    #[test]
    fn unknown_ids_are_counted_noops_not_panics() {
        let lm = latmap();
        let (_, cfg) = catalog();
        let q = quotas_for(cfg, vec![(DcId(0), 1.0)], 1.0);
        let sel = selector_of(&lm, q);
        assert_eq!(sel.config_frozen(99, cfg, 0), FreezeDecision::UnknownCall);
        assert_eq!(sel.config_frozen(99, cfg, 0).final_dc(), None);
        sel.call_end(99);
        sel.call_end(99);
        assert_eq!(sel.stats().unknown_freezes, 2);
        assert_eq!(sel.stats().unknown_ends, 2);
        assert_eq!(sel.stats().freezes, 0);
    }

    #[test]
    fn double_freeze_tallies_once() {
        let lm = latmap();
        let (_, cfg) = catalog();
        // plan on DC1: the first freeze migrates, the duplicate must not
        // debit quota, tally, or migrate again
        let q = quotas_for(cfg, vec![(DcId(1), 1.0)], 5.0);
        let sel = selector_of(&lm, q);
        sel.call_start(1, CountryId(0));
        assert!(sel.config_frozen(1, cfg, 0).migrated());
        let remaining = sel.quota_remaining_total();
        let d = sel.config_frozen(1, cfg, 0);
        assert_eq!(d, FreezeDecision::AlreadyFrozen(DcId(1)));
        assert_eq!(d.final_dc(), Some(DcId(1)));
        assert!(!d.migrated());
        let st = sel.stats();
        assert_eq!(st.freezes, 1, "duplicate freeze must not tally");
        assert_eq!(st.duplicate_freezes, 1);
        assert_eq!(st.migrations, 1);
        assert_eq!(sel.quota_remaining_total(), remaining, "no second debit");
        assert_eq!(sel.per_dc_tallies().iter().sum::<u64>(), 1);
    }

    #[test]
    fn rehome_after_call_end_is_counted_noop() {
        let lm = latmap();
        let (_, cfg) = catalog();
        let q = quotas_for(cfg, vec![(DcId(0), 1.0)], 2.0);
        let sel = selector_of(&lm, q);
        sel.call_start(1, CountryId(0));
        sel.config_frozen(1, cfg, 0);
        sel.call_end(1);
        // the DC fails after the call already ended; the stale re-home
        // request must not count as stranded or as a forced migration
        let out = sel.rehome_call(1);
        assert!(out.is_stranded());
        let st = sel.stats();
        assert_eq!(st.unknown_rehomes, 1);
        assert_eq!(st.stranded, 0);
        assert_eq!(st.forced_migrations, 0);
    }

    #[test]
    fn dc_down_between_start_and_freeze_migrates_off_failed_dc() {
        let lm = latmap();
        let (_, cfg) = catalog();
        // quota at both DCs, slightly more at DC0
        let q = quotas_for(cfg, vec![(DcId(0), 0.6), (DcId(1), 0.4)], 10.0);
        let sel = selector_of(&lm, q);
        sel.call_start(1, CountryId(0));
        assert_eq!(sel.current_dc(1), Some(DcId(0)));
        // DC0 fails between start and freeze: the freeze must skip DC0's
        // quota (even though the call sits there) and migrate to DC1
        sel.update_topology(&lm, &[false, true]);
        let d = sel.config_frozen(1, cfg, 0);
        assert_eq!(
            d,
            FreezeDecision::Migrate {
                from: DcId(0),
                to: DcId(1)
            }
        );
        assert_eq!(sel.per_dc_tallies(), vec![0, 1]);
    }

    #[test]
    fn stale_plan_degrades_to_unplanned() {
        let lm = latmap();
        let (_, cfg) = catalog();
        // the plan would migrate this call to DC1 — but it is stale
        let q = quotas_for(cfg, vec![(DcId(1), 1.0)], 5.0);
        let sel = selector_of(&lm, q);
        sel.set_plan_valid(false);
        assert!(!sel.plan_valid());
        sel.call_start(1, CountryId(0));
        let d = sel.config_frozen(1, cfg, 0);
        assert_eq!(d, FreezeDecision::Unplanned(DcId(0)));
        assert_eq!(sel.stats().plan_stale, 1);
        assert_eq!(sel.stats().migrations, 0);
        // plan restored: the next call migrates again
        sel.set_plan_valid(true);
        sel.call_start(2, CountryId(0));
        assert!(sel.config_frozen(2, cfg, 0).migrated());
    }

    #[test]
    fn failed_dc_quota_is_skipped_at_freeze() {
        let lm = latmap();
        let (_, cfg) = catalog();
        // all quota on DC1, which is down → freeze overflows in place
        let q = quotas_for(cfg, vec![(DcId(1), 1.0)], 5.0);
        let sel = selector_of(&lm, q);
        sel.update_topology(&lm, &[true, false]);
        sel.call_start(1, CountryId(0));
        let d = sel.config_frozen(1, cfg, 0);
        assert_eq!(d, FreezeDecision::Overflow(DcId(0)));
        assert_eq!(sel.stats().migrations, 0);
    }

    #[test]
    fn ladder_falls_to_any_reachable_then_strands() {
        let (_, cfg) = catalog();
        // country 1 can only reach DC1
        let lm = LatencyMap::from_matrix(vec![vec![Some(5.0), Some(50.0)], vec![None, Some(5.0)]]);
        let q = quotas_for(cfg, vec![(DcId(0), 1.0)], 1.0);
        let sel = selector_of(&lm, q);
        // DC1 down: country 1 has no latency row to an up DC → any-reachable
        sel.update_topology(&lm, &[true, false]);
        let out = sel.call_start(1, CountryId(1));
        assert_eq!(
            out,
            SelectorOutcome::Placed {
                dc: DcId(0),
                rung: SelectorRung::AnyReachable
            }
        );
        assert_eq!(sel.stats().degraded_any, 1);
        // both DCs down → stranded, call not tracked
        sel.update_topology(&lm, &[false, false]);
        let out = sel.call_start(2, CountryId(1));
        assert!(out.is_stranded());
        assert_eq!(out.dc(), None);
        assert_eq!(sel.current_dc(2), None);
        assert_eq!(sel.stats().stranded, 1);
    }

    #[test]
    fn rehome_prefers_plan_quota_then_locality() {
        let lm = LatencyMap::from_matrix(vec![vec![Some(5.0), Some(20.0), Some(50.0)]]);
        let (_, cfg) = catalog();
        // plan: quota at DC0 (closest) and DC2 (far)
        let q = quotas_for(cfg, vec![(DcId(0), 0.5), (DcId(2), 0.5)], 4.0);
        let sel = selector_of(&lm, q);
        sel.call_start(1, CountryId(0));
        assert_eq!(sel.config_frozen(1, cfg, 0), FreezeDecision::Stay(DcId(0)));
        // DC0 fails → plan rung re-homes to DC2 (has quota), not DC1
        sel.update_topology(&lm, &[false, true, true]);
        let out = sel.rehome_call(1);
        assert_eq!(
            out,
            SelectorOutcome::Placed {
                dc: DcId(2),
                rung: SelectorRung::Plan
            }
        );
        assert_eq!(sel.stats().forced_migrations, 1);
        assert_eq!(sel.stats().rehomed_plan, 1);
        assert_eq!(sel.calls_at(DcId(2)), vec![1]);
        // a pre-freeze call has no plan info → locality rung (DC1 now
        // closest among up DCs)
        sel.update_topology(&lm, &[true, true, true]);
        sel.call_start(2, CountryId(0));
        sel.update_topology(&lm, &[false, true, true]);
        let out = sel.rehome_call(2);
        assert_eq!(
            out,
            SelectorOutcome::Placed {
                dc: DcId(1),
                rung: SelectorRung::Locality
            }
        );
        assert_eq!(sel.stats().forced_migrations, 2);
    }

    #[test]
    fn rehome_strands_when_nothing_up_and_drops_call() {
        let lm = latmap();
        let (_, cfg) = catalog();
        let q = quotas_for(cfg, vec![(DcId(0), 1.0)], 1.0);
        let sel = selector_of(&lm, q);
        sel.call_start(1, CountryId(0));
        sel.update_topology(&lm, &[false, false]);
        assert!(sel.rehome_call(1).is_stranded());
        assert_eq!(sel.active_calls(), 0);
        // the trace's later End event for the dropped call is a counted no-op
        sel.call_end(1);
        assert_eq!(sel.stats().unknown_ends, 1);
    }

    #[test]
    fn recovery_restores_locality_placement() {
        let lm = latmap();
        let (_, cfg) = catalog();
        let q = quotas_for(cfg, vec![(DcId(0), 1.0)], 8.0);
        let sel = selector_of(&lm, q);
        // DC0 down: country 0's calls land on DC1
        sel.update_topology(&lm, &[false, true]);
        assert_eq!(sel.call_start(1, CountryId(0)).dc(), Some(DcId(1)));
        // DC0 recovers: new calls return to it
        sel.update_topology(&lm, &[true, true]);
        assert_eq!(sel.call_start(2, CountryId(0)).dc(), Some(DcId(0)));
        let _ = cfg;
    }

    #[test]
    fn shards_merge_to_serial_totals() {
        let lm = latmap();
        let (_, cfg) = catalog();
        let q = quotas_for(cfg, vec![(DcId(0), 0.5), (DcId(1), 0.5)], 8.0);
        let sel = selector_of(&lm, q);
        {
            let mut a = sel.shard();
            let mut b = sel.shard();
            // four calls driven through two shards
            for id in 0..2u64 {
                a.call_start(id, CountryId(0));
            }
            for id in 2..4u64 {
                b.call_start(id, CountryId(1));
            }
            // shard-local stats are not yet visible on the selector
            assert_eq!(sel.stats().calls, 0);
            for id in 0..2u64 {
                a.config_frozen(id, cfg, 0);
            }
            for id in 2..4u64 {
                b.config_frozen(id, cfg, 0);
            }
            a.call_end(0);
            b.call_end(2);
            a.flush();
            b.flush();
        }
        let st = sel.stats();
        assert_eq!(st.calls, 4);
        assert_eq!(st.freezes, 4);
        assert_eq!(sel.per_dc_tallies().iter().sum::<u64>(), 4);
        assert_eq!(sel.active_calls(), 2);
        // quota conservation across shards
        assert_eq!(
            sel.quota_initial_total() - sel.quota_remaining_total(),
            st.freezes - st.unplanned - st.overflow
        );
    }

    #[test]
    fn shard_topology_refresh_sees_update() {
        let lm = latmap();
        let (_, cfg) = catalog();
        let q = quotas_for(cfg, vec![(DcId(0), 1.0)], 4.0);
        let sel = selector_of(&lm, q);
        let mut shard = sel.shard();
        assert_eq!(shard.call_start(1, CountryId(0)).dc(), Some(DcId(0)));
        sel.update_topology(&lm, &[false, true]);
        // stale snapshot until refreshed (barrier discipline)
        assert_eq!(shard.call_start(2, CountryId(0)).dc(), Some(DcId(0)));
        shard.refresh_topology();
        assert_eq!(shard.call_start(3, CountryId(0)).dc(), Some(DcId(1)));
    }

    #[test]
    fn from_artifact_boots_at_artifact_epoch() {
        let lm = latmap();
        let (_, cfg) = catalog();
        let q = quotas_for(cfg, vec![(DcId(0), 1.0)], 3.0);
        let art = crate::plan::PlanArtifact::seed(q).with_epoch(7);
        let sel = RealtimeSelector::from_artifact(&lm, &art);
        assert_eq!(sel.plan_epoch(), 7);
        assert_eq!(sel.quota_initial_total(), 3);
        assert!(sel.plan_valid());
        // the boot plan behaves exactly like an installed one
        sel.call_start(1, CountryId(0));
        assert_eq!(sel.config_frozen(1, cfg, 0), FreezeDecision::Stay(DcId(0)));
        assert_eq!(sel.quota_remaining_total(), 2);
    }

    #[test]
    fn pool_tokens_identify_pools_and_unplanned_freezes() {
        let lm = latmap();
        let (_, cfg) = catalog();
        let q = quotas_for(cfg, vec![(DcId(0), 0.5), (DcId(1), 0.5)], 4.0);
        let sel = selector_of(&lm, q);
        let tok = sel.quota_pool_token(cfg, 0);
        assert!(tok.is_some());
        // same pool → same token; both freezes of slot 0 debit it
        assert_eq!(sel.quota_pool_token(cfg, 29), tok);
        // outside the horizon or an unplanned config → no pool
        assert_eq!(sel.quota_pool_token(cfg, 10_000), None);
        assert_eq!(sel.quota_pool_token(ConfigId(999), 0), None);
    }

    #[test]
    fn shard_sees_new_plan_after_refresh() {
        let lm = latmap();
        let (_, cfg) = catalog();
        let sel = selector_of(&lm, quotas_for(cfg, vec![(DcId(0), 1.0)], 2.0));
        let mut shard = sel.shard();
        shard.call_start(1, CountryId(0));
        // swap in a plan that forces a migration to DC1
        let art = crate::plan::PlanArtifact::seed(quotas_for(cfg, vec![(DcId(1), 1.0)], 2.0))
            .with_epoch(1);
        sel.install_plan(&art);
        shard.refresh_topology();
        assert!(shard.config_frozen(1, cfg, 0).migrated());
        shard.flush();
        assert_eq!(sel.stats().migrations, 1);
    }

    #[test]
    fn restore_apis_rebuild_an_identical_export() {
        let lm = latmap();
        let (_, cfg) = catalog();
        // DC0 quota 1, DC1 quota 2: call 1 stays, call 2 must migrate
        let mk = || quotas_for(cfg, vec![(DcId(0), 1.0 / 3.0), (DcId(1), 2.0 / 3.0)], 3.0);
        let live = selector_of(&lm, mk());
        live.call_start(1, CountryId(0));
        live.call_start(2, CountryId(0));
        live.call_start(3, CountryId(1));
        assert_eq!(live.config_frozen(1, cfg, 0), FreezeDecision::Stay(DcId(0)));
        assert_eq!(
            live.config_frozen(2, cfg, 0),
            FreezeDecision::Migrate {
                from: DcId(0),
                to: DcId(1)
            }
        );
        live.call_end(3);
        assert_eq!(live.config_frozen(99, cfg, 0), FreezeDecision::UnknownCall);

        // recovery: re-apply the recorded decisions, stats in one delta
        let rec = selector_of(&lm, mk());
        rec.restore_call(1, CountryId(0), DcId(0));
        rec.restore_call(2, CountryId(0), DcId(0));
        rec.restore_call(3, CountryId(1), DcId(1));
        assert!(rec.restore_freeze(
            1,
            Some((cfg, 0)),
            DcId(0),
            RestoreDebit::FirstOf(DcId(0)),
            true
        ));
        assert!(rec.restore_freeze(
            2,
            Some((cfg, 0)),
            DcId(1),
            RestoreDebit::BestOf(DcId(1)),
            true
        ));
        rec.call_end(3);
        assert!(!rec.restore_freeze(99, Some((cfg, 0)), DcId(0), RestoreDebit::None, false));
        let delta = SelectorStats {
            calls: 3,
            freezes: 2,
            migrations: 1,
            unknown_freezes: 1,
            ..SelectorStats::default()
        };
        rec.add_stats(&delta);

        let (a, b) = (live.export_state(), rec.export_state());
        assert_eq!(a.stats, b.stats);
        assert_eq!(a, b);
        assert_eq!(a.calls.len(), 2);
        assert_eq!(a.per_dc_tallies, vec![1, 1]);
    }
}
